// Reproduces paper Fig. 6: average amount of piggyback per message (number
// of identifiers) for the three causal logging protocols on LU / BT / SP at
// 4, 8, 16, 32 processes.
//
// Expected shape (paper §IV.A): TDI piggybacks exactly n identifiers per
// message (the dependency-interval vector), flat in message frequency; TAG
// and TEL piggyback determinants (4 identifiers each) and grow sharply with
// message frequency (LU worst) and with system scale; TEL sits below TAG
// because stability acknowledgements from the event logger retire
// determinants early.
//
//   ./fig6_piggyback [--ranks=4,8,16,32] [--scale=1.0] [--csv]
#include "bench/common.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 32}, "rank sweep");
  const double scale = opts.real("scale", 1.0, "iteration scale factor");
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"app", "ranks", "protocol", "msgs",
                     "piggyback idents/msg", "piggyback bytes/msg",
                     "logger msgs"});

  for (auto app : all_apps()) {
    for (int n : ranks) {
      for (auto proto : all_protocols()) {
        NpbJob job;
        job.app = app;
        job.ranks = n;
        job.protocol = proto;
        job.scale = scale;
        const NpbOutcome out = run_npb_job(job);
        const ft::Metrics& m = out.result.total;
        table.row({std::string(to_string(app)), std::to_string(n),
                   to_string(proto), std::to_string(m.app_sent),
                   fmt(m.avg_piggyback_idents()),
                   fmt(m.app_sent ? static_cast<double>(m.piggyback_bytes) /
                                        static_cast<double>(m.app_sent)
                                  : 0.0),
                   std::to_string(out.result.logger_batches)});
      }
    }
  }

  table.print(
      "Fig. 6 — average piggyback per message (identifiers), TDI vs TAG vs TEL");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
