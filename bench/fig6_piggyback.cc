// Reproduces paper Fig. 6: average amount of piggyback per message (number
// of identifiers) for the three causal logging protocols on LU / BT / SP at
// 4, 8, 16, 32 processes.
//
// Expected shape (paper §IV.A): TDI piggybacks exactly n identifiers per
// message (the dependency-interval vector), flat in message frequency; TAG
// and TEL piggyback determinants (4 identifiers each) and grow sharply with
// message frequency (LU worst) and with system scale; TEL sits below TAG
// because stability acknowledgements from the event logger retire
// determinants early.  The TDI-S/TDI-D rows judge the sparse and delta
// encodings against the same dense baseline: "pb ratio" is wire bytes over
// what the dense vector would have cost for the same sends.
//
// The --logger-shards sweep adds sharded-event-logger columns: TEL/PES rerun
// at each shard count (other protocols don't touch the logger and run once),
// showing the single-logger commit serialization — the Fig. 6 TEL-above-TAG
// anomaly — disappear at >= 2 shards.
//
//   ./fig6_piggyback [--ranks=4,8,16,32] [--scale=1.0] [--logger-shards=1]
//                    [--csv] [--json=BENCH_logger.json]
#include "bench/common.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 32}, "rank sweep");
  const double scale = opts.real("scale", 1.0, "iteration scale factor");
  const auto shard_list = opts.int_list(
      "logger-shards", {1},
      "event-logger shard sweep (TEL/PES rerun per value; others run once)");
  const auto protocols = parse_protocol_list(
      opts.str("protocols", "tdi,tdi-s,tdi-d,tag,tel",
               "comma list: tdi | tdi-s | tdi-d | tag | tel | pes"));
  exec::ExecModel exec_model = exec::ExecModel::kAuto;
  const std::string ename =
      opts.str("exec", "auto", "threads | coop | auto (rank execution model)");
  WINDAR_CHECK(exec::parse_exec_model(ename, &exec_model))
      << "unknown exec model '" << ename << "'";
  const std::string json_path =
      opts.str("json", "", "also write rows to this JSON file");
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"app", "ranks", "protocol", "shards", "msgs",
                     "piggyback idents/msg", "piggyback bytes/msg",
                     "pb ratio", "logger msgs", "commit rounds", "acks"});
  JsonRows json;

  for (auto app : all_apps()) {
    for (int n : ranks) {
      for (auto proto : protocols) {
        for (std::size_t si = 0; si < shard_list.size(); ++si) {
          // Protocols that never talk to the logger produce the same row at
          // every shard count: run them once, at the first value.
          if (si > 0 && !uses_logger(proto)) continue;
          const int shards = shard_list[si];
          NpbJob job;
          job.app = app;
          job.ranks = n;
          job.protocol = proto;
          job.scale = scale;
          job.exec_model = exec_model;
          job.logger_shards = shards;
          const NpbOutcome out = run_npb_job(job);
          const ft::Metrics& m = out.result.total;
          const double bytes_per_msg =
              m.app_sent ? static_cast<double>(m.piggyback_bytes) /
                               static_cast<double>(m.app_sent)
                         : 0.0;
          table.row({std::string(to_string(app)), std::to_string(n),
                     to_string(proto),
                     uses_logger(proto) ? std::to_string(shards) : "-",
                     std::to_string(m.app_sent), fmt(m.avg_piggyback_idents()),
                     fmt(bytes_per_msg), fmt(m.piggyback_compression(), 3),
                     std::to_string(out.result.logger_batches),
                     std::to_string(out.result.logger_commit_rounds),
                     std::to_string(out.result.logger_acks)});
          json.field("app", std::string(to_string(app)))
              .field("ranks", n)
              .field("protocol", std::string(to_string(proto)))
              .field("logger_shards", uses_logger(proto) ? shards : 0)
              .field("msgs", m.app_sent)
              .field("piggyback_idents_per_msg", m.avg_piggyback_idents())
              .field("piggyback_bytes_per_msg", bytes_per_msg)
              .field("piggyback_ratio", m.piggyback_compression())
              .field("logger_msgs", out.result.logger_batches)
              .field("logger_commit_rounds", out.result.logger_commit_rounds)
              .field("logger_acks", out.result.logger_acks)
              .end_row();
        }
      }
    }
  }

  table.print(
      "Fig. 6 — average piggyback per message (identifiers), TDI vs TAG vs TEL");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  if (!json_path.empty()) {
    WINDAR_CHECK(json.write(json_path)) << "cannot write " << json_path;
    std::fprintf(stderr, "fig6_piggyback: wrote %s\n", json_path.c_str());
  }
  return 0;
}
