// Ablation A4: piggyback and tracking overhead versus message frequency —
// the paper's claim that TDI's advantage is "more prominent" for
// applications with frequent message passing (§IV.A).
//
// A fixed 8-rank ring workload varies the compute time between messages
// (high compute = low frequency).  TDI's piggyback stays exactly n
// identifiers regardless of rate; the determinant protocols' piggyback per
// message grows as more unstable/unsent determinants accumulate per send
// window.
//
//   ./abl_frequency [--ranks=8] [--rounds=120]
#include "bench/common.h"
#include "mp/comm.h"
#include "npb/workload.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.integer("ranks", 8, "ranks"));
  const int rounds = static_cast<int>(opts.integer("rounds", 120, "rounds"));
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"gap us", "msgs/s/rank", "protocol", "idents/msg",
                     "track us/msg"});

  for (int gap_us : {0, 50, 200, 1000}) {
    for (auto proto : all_protocols()) {
      ft::JobConfig cfg;
      cfg.n = ranks;
      cfg.protocol = proto;
      cfg.latency = bench_latency();
      auto result = ft::run_job(cfg, [&](ft::Ctx& ctx) {
        const int n = ctx.size();
        const int right = (ctx.rank() + 1) % n;
        const int left = (ctx.rank() + n - 1) % n;
        for (int round = 0; round < rounds; ++round) {
          if (round > 0 && round % 40 == 0) ctx.checkpoint({});
          mp::send_value(ctx, right, 0, round);
          (void)mp::recv_value<int>(ctx, left, 0);
          npb::compute_spin(gap_us * 1000);
        }
      });
      const ft::Metrics& m = result.total;
      const double rate = result.wall_ms > 0
                              ? static_cast<double>(m.app_sent) /
                                    static_cast<double>(ranks) /
                                    (result.wall_ms / 1e3)
                              : 0.0;
      table.row({std::to_string(gap_us), fmt(rate, 0), to_string(proto),
                 fmt(m.avg_piggyback_idents()), fmt(m.avg_track_us(), 3)});
    }
  }

  table.print("Ablation A4 — overhead vs message frequency (ring, 8 ranks)");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
