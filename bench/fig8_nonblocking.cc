// Reproduces paper Fig. 8: the gain from eliminating computation blocking
// (paper §III.E / §IV.B).
//
// Methodology, scaled from the paper's: run each benchmark under the TDI
// protocol in the two communication architectures of Fig. 4 — (a) blocking
// synchronous sends on the application thread, (b) buffered queues with
// sender/receiver threads — inject one fault mid-run (after a checkpoint),
// recover, and compare total accomplishment time.  Reported as the
// normalized accomplishment time of each mode against the blocking mode
// (blocking = 1.0), so "gain" = 1 - nonblocking/blocking.
//
// Expected shape: non-blocking <= blocking everywhere; the gap widens with
// system scale, and is sensitive to message size (BT's large rendezvous
// messages block senders on busy/recovering receivers).
//
//   ./fig8_nonblocking [--ranks=4,8,16,32] [--scale=1.0] [--repeats=3]
#include "bench/common.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 32}, "rank sweep");
  const double scale = opts.real("scale", 1.0, "iteration scale factor");
  const int repeats = static_cast<int>(
      opts.integer("repeats", 3, "timed repetitions per cell (median)"));
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"app", "ranks", "blocking ms", "nonblocking ms",
                     "normalized", "gain %", "send-block ms (blk)"});

  for (auto app : all_apps()) {
    for (int n : ranks) {
      // Calibrate the fault time: half of a failure-free non-blocking run.
      NpbJob probe;
      probe.app = app;
      probe.ranks = n;
      probe.scale = scale;
      const double base_ms = run_npb_job(probe).result.wall_ms;
      const double fault_at = 0.5 * base_ms;

      auto timed = [&](ft::SendMode mode, double* send_block_ms) {
        util::Samples walls;
        double blocked = 0;
        for (int rep = 0; rep < repeats; ++rep) {
          NpbJob job = probe;
          job.mode = mode;
          job.seed = 1 + static_cast<std::uint64_t>(rep);
          job.faults = {{1 % n, fault_at}};
          const NpbOutcome out = run_npb_job(job);
          walls.add(out.result.wall_ms);
          blocked += static_cast<double>(out.result.total.send_block_ns) / 1e6;
        }
        if (send_block_ms) *send_block_ms = blocked / repeats;
        return walls.median();
      };

      double blk_send_block = 0;
      const double blocking_ms = timed(ft::SendMode::kBlocking, &blk_send_block);
      const double nonblocking_ms = timed(ft::SendMode::kNonBlocking, nullptr);
      const double normalized = nonblocking_ms / blocking_ms;
      table.row({std::string(to_string(app)), std::to_string(n),
                 fmt(blocking_ms, 1), fmt(nonblocking_ms, 1),
                 fmt(normalized, 3), fmt(100.0 * (1.0 - normalized), 1),
                 fmt(blk_send_block, 1)});
    }
  }

  table.print(
      "Fig. 8 — normalized accomplishment time with one fault: blocking vs "
      "non-blocking send path (TDI)");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
