// Ablation A1: piggyback size versus system scale on a synthetic workload —
// isolates the paper's scalability argument (§IV.A last paragraph) from the
// NPB communication patterns.
//
// Workload: a neighbour ring with periodic cross-ring shuffles, which makes
// every process causally depend on every other within a few rounds (worst
// case for determinant-based protocols).  TDI's piggyback is n identifiers
// by construction — exactly linear in scale; TAG/TEL grow super-linearly
// because the determinant population grows with both scale and traffic.
// TDI-S/TDI-D are the sub-linear encodings this sweep exists to judge: at
// 1k-4k ranks the dense vector is the dominant per-message cost, and the
// delta encoding is the one that breaks the O(n) wall.
//
// Scale runs multiplex ranks on the cooperative scheduler (--exec=coop) so
// 4096 ranks fit on a 4-core host.  Determinant protocols are skipped above
// --det-rank-cap (their piggyback would dominate the wall clock); the skip
// is logged, never silent.
//
//   ./abl_scale [--ranks=4,8,16,24,32,48] [--rounds=30]
//               [--protocols=tdi,tag,tel] [--exec=auto]
//               [--json=BENCH_scale.json]
#include "bench/common.h"
#include "mp/comm.h"

using namespace windar;
using namespace windar::bench;

namespace {

void ring_shuffle_app(ft::Ctx& ctx, int rounds) {
  const int n = ctx.size();
  const int me = ctx.rank();
  for (int round = 0; round < rounds; ++round) {
    if (round > 0 && round % 10 == 0) ctx.checkpoint({});
    const int hop = (round % 5 == 4) ? (n / 2 > 0 ? n / 2 : 1) : 1;
    const int to = (me + hop) % n;
    const int from = (me - hop + n) % n;
    if (to == me) continue;
    mp::send_value(ctx, to, round, me * 1000 + round);
    (void)mp::recv_value<int>(ctx, from, round);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 24, 32, 48}, "scales");
  const int rounds = static_cast<int>(opts.integer("rounds", 30, "rounds"));
  const auto protocols = parse_protocol_list(
      opts.str("protocols", "tdi,tag,tel",
               "comma list: tdi | tdi-s | tdi-d | tag | tel | pes"));
  const int det_cap = static_cast<int>(
      opts.integer("det-rank-cap", 128,
                   "skip determinant protocols (tag/tel/pes) above this rank "
                   "count (no hard limit since the dynamic knowledge bitset; "
                   "purely a wall-clock guard — their piggyback grows with "
                   "scale AND traffic)"));
  const int logger_shards = static_cast<int>(
      opts.integer("logger-shards", 0,
                   "TEL/PES event-logger shards (0 = env/default)"));
  exec::ExecModel exec_model = exec::ExecModel::kAuto;
  const std::string ename =
      opts.str("exec", "auto", "threads | coop | auto (rank execution model)");
  WINDAR_CHECK(exec::parse_exec_model(ename, &exec_model))
      << "unknown exec model '" << ename << "'";
  const std::string json_path =
      opts.str("json", "", "also write rows to this JSON file");
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"ranks", "protocol", "wall ms", "msgs", "msgs/s",
                     "idents/msg", "bytes/msg", "pb ratio",
                     "idents/msg per rank"});
  JsonRows json;

  for (int n : ranks) {
    for (auto proto : protocols) {
      if (determinant_based(proto) && n > det_cap) {
        std::fprintf(stderr,
                     "abl_scale: skipping %s at n=%d (> --det-rank-cap=%d; "
                     "determinant piggyback dominates at scale)\n",
                     ft::to_string(proto).c_str(), n, det_cap);
        continue;
      }
      ft::JobConfig cfg;
      cfg.n = n;
      cfg.protocol = proto;
      cfg.latency = bench_latency();
      cfg.exec_model = exec_model;
      cfg.logger_shards = logger_shards;
      auto result =
          ft::run_job(cfg, [&](ft::Ctx& ctx) { ring_shuffle_app(ctx, rounds); });
      const ft::Metrics& m = result.total;
      const double bytes_per_msg =
          m.app_sent ? static_cast<double>(m.piggyback_bytes) /
                           static_cast<double>(m.app_sent)
                     : 0.0;
      const double msgs_per_s =
          result.wall_ms > 0
              ? static_cast<double>(m.app_sent) / (result.wall_ms / 1e3)
              : 0.0;
      table.row({std::to_string(n), to_string(proto),
                 fmt(result.wall_ms, 1), std::to_string(m.app_sent),
                 fmt(msgs_per_s, 0), fmt(m.avg_piggyback_idents()),
                 fmt(bytes_per_msg), fmt(m.piggyback_compression(), 3),
                 fmt(m.avg_piggyback_idents() / n, 3)});
      json.field("ranks", n)
          .field("protocol", std::string(to_string(proto)))
          .field("wall_ms", result.wall_ms)
          .field("msgs", m.app_sent)
          .field("msgs_per_s", msgs_per_s)
          .field("piggyback_idents_per_msg", m.avg_piggyback_idents())
          .field("piggyback_bytes_per_msg", bytes_per_msg)
          .field("piggyback_bytes_dense", m.piggyback_bytes_dense)
          .field("piggyback_bytes_sent", m.piggyback_bytes_sent)
          .field("piggyback_ratio", m.piggyback_compression())
          .field("piggyback_resyncs", m.piggyback_resyncs)
          // Per-send protocol time (vector merge + piggyback encode): the
          // figure that must stay flat in n for TDI-D now that delta
          // tracking is O(churn), not O(n).
          .field("track_send_ns_per_msg",
                 m.app_sent ? static_cast<double>(m.track_send_ns) /
                                  static_cast<double>(m.app_sent)
                            : 0.0)
          .field("recoveries", m.recoveries)
          .end_row();
    }
  }

  table.print("Ablation A1 — piggyback growth with system scale "
              "(ring + cross-ring shuffle)");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  if (!json_path.empty()) {
    WINDAR_CHECK(json.write(json_path)) << "cannot write " << json_path;
    std::fprintf(stderr, "abl_scale: wrote %s\n", json_path.c_str());
  }
  return 0;
}
