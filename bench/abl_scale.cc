// Ablation A1: piggyback size versus system scale on a synthetic workload —
// isolates the paper's scalability argument (§IV.A last paragraph) from the
// NPB communication patterns.
//
// Workload: a neighbour ring with periodic cross-ring shuffles, which makes
// every process causally depend on every other within a few rounds (worst
// case for determinant-based protocols).  TDI's piggyback is n identifiers
// by construction — exactly linear in scale; TAG/TEL grow super-linearly
// because the determinant population grows with both scale and traffic.
//
//   ./abl_scale [--ranks=4,8,16,24,32,48] [--rounds=30]
#include "bench/common.h"
#include "mp/comm.h"

using namespace windar;
using namespace windar::bench;

namespace {

void ring_shuffle_app(ft::Ctx& ctx, int rounds) {
  const int n = ctx.size();
  const int me = ctx.rank();
  for (int round = 0; round < rounds; ++round) {
    if (round > 0 && round % 10 == 0) ctx.checkpoint({});
    const int hop = (round % 5 == 4) ? (n / 2 > 0 ? n / 2 : 1) : 1;
    const int to = (me + hop) % n;
    const int from = (me - hop + n) % n;
    if (to == me) continue;
    mp::send_value(ctx, to, round, me * 1000 + round);
    (void)mp::recv_value<int>(ctx, from, round);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 24, 32, 48}, "scales");
  const int rounds = static_cast<int>(opts.integer("rounds", 30, "rounds"));
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"ranks", "protocol", "msgs", "idents/msg", "bytes/msg",
                     "idents/msg per rank"});

  for (int n : ranks) {
    for (auto proto : all_protocols()) {
      ft::JobConfig cfg;
      cfg.n = n;
      cfg.protocol = proto;
      cfg.latency = bench_latency();
      auto result =
          ft::run_job(cfg, [&](ft::Ctx& ctx) { ring_shuffle_app(ctx, rounds); });
      const ft::Metrics& m = result.total;
      table.row({std::to_string(n), to_string(proto),
                 std::to_string(m.app_sent), fmt(m.avg_piggyback_idents()),
                 fmt(m.app_sent ? static_cast<double>(m.piggyback_bytes) /
                                      static_cast<double>(m.app_sent)
                                : 0.0),
                 fmt(m.avg_piggyback_idents() / n, 3)});
    }
  }

  table.print("Ablation A1 — piggyback growth with system scale "
              "(ring + cross-ring shuffle)");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
