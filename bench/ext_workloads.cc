// Extension bench: the three protocols on the CG and MG communication
// profiles (the NPB workloads the paper did *not* evaluate) — checks that
// the Fig. 6/7 shapes generalize beyond LU/BT/SP.
//
// Expected: CG's per-iteration allreduce chains make it causally dense, so
// TAG/TEL grow quickly; MG's mixed message sizes sit between LU and BT.
// TDI stays at n identifiers regardless.
//
//   ./ext_workloads [--ranks=4,8,16,32] [--scale=1.0]
#include "bench/common.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 32}, "rank sweep");
  const double scale = opts.real("scale", 1.0, "iteration scale factor");
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"app", "ranks", "protocol", "msgs", "idents/msg",
                     "track us/msg", "wall ms"});

  for (auto app : {npb::App::kCG, npb::App::kMG}) {
    for (int n : ranks) {
      for (auto proto : all_protocols()) {
        NpbJob job;
        job.app = app;
        job.ranks = n;
        job.protocol = proto;
        job.scale = scale;
        const NpbOutcome out = run_npb_job(job);
        const ft::Metrics& m = out.result.total;
        table.row({std::string(to_string(app)), std::to_string(n),
                   to_string(proto), std::to_string(m.app_sent),
                   fmt(m.avg_piggyback_idents()), fmt(m.avg_track_us(), 3),
                   fmt(out.result.wall_ms, 1)});
      }
    }
  }

  table.print("Extension — protocol overheads on CG and MG profiles");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
