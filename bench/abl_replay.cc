// Ablation A3: rolling-forward overhead — TDI's dependency-gated replay
// versus the PWD baselines' exact-order replay (paper §III.A and §V's
// "proactive perception of delivery order").
//
// Workload: a fan-in ANY_SOURCE aggregator (rank 0) fed by all other ranks —
// independent messages whose arrival order is scrambled by fabric jitter.
// Rank 0 is crashed mid-run and must roll forward.  Under TDI, resent
// messages are deliverable the moment they arrive (their depend_interval
// gate is already satisfied); under TAG/TEL the incarnation must first
// gather determinants from every survivor and then deliver in exactly the
// recorded order, holding early arrivals in the receiving queue.  We report
// the fault-to-finish recovery cost (faulted wall time minus failure-free
// wall time) per protocol.
//
//   ./abl_replay [--ranks=8] [--rounds=40] [--repeats=5]
#include "bench/common.h"
#include "mp/comm.h"

using namespace windar;
using namespace windar::bench;

namespace {

void fanin_app(ft::Ctx& ctx, int rounds) {
  const int n = ctx.size();
  if (ctx.rank() == 0) {
    long long sum = 0;
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      sum = r.i64();
    }
    for (int round = start; round < rounds; ++round) {
      if (round > 0 && round % 8 == 0) {
        util::ByteWriter w;
        w.i32(round);
        w.i64(sum);
        ctx.checkpoint(w.view());
      }
      for (int i = 1; i < n; ++i) {
        sum += mp::recv_value<int>(ctx);  // ANY_SOURCE fan-in
      }
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  } else {
    for (int round = 0; round < rounds; ++round) {
      mp::send_value(ctx, 0, 1, ctx.rank() + round);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.integer("ranks", 8, "ranks"));
  const int rounds = static_cast<int>(opts.integer("rounds", 40, "rounds"));
  const int repeats = static_cast<int>(opts.integer("repeats", 5, "medians"));
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"protocol", "clean ms", "faulted ms", "recovery cost ms",
                     "resent msgs", "dup dropped"});

  for (auto proto : {ft::ProtocolKind::kTdi, ft::ProtocolKind::kTag,
                     ft::ProtocolKind::kTel, ft::ProtocolKind::kPes}) {
    util::Samples clean_ms, faulted_ms;
    std::uint64_t resent = 0, dups = 0;
    for (int rep = 0; rep < repeats; ++rep) {
      ft::JobConfig cfg;
      cfg.n = ranks;
      cfg.protocol = proto;
      cfg.latency = bench_latency();
      cfg.seed = 1 + static_cast<std::uint64_t>(rep);
      cfg.restart_delay_ms = 5;
      auto clean = ft::run_job(cfg, [&](ft::Ctx& c) { fanin_app(c, rounds); });
      clean_ms.add(clean.wall_ms);

      cfg.faults = {{0, clean.wall_ms * 0.6}};
      auto faulted = ft::run_job(cfg, [&](ft::Ctx& c) { fanin_app(c, rounds); });
      faulted_ms.add(faulted.wall_ms);
      resent += faulted.total.resent_msgs;
      dups += faulted.total.dup_dropped;
    }
    table.row({to_string(proto), fmt(clean_ms.median(), 1),
               fmt(faulted_ms.median(), 1),
               fmt(faulted_ms.median() - clean_ms.median(), 1),
               std::to_string(resent / repeats),
               std::to_string(dups / repeats)});
  }

  table.print("Ablation A3 — rolling-forward cost: dependency-gated (TDI) vs "
              "PWD-ordered replay (TAG/TEL)");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
