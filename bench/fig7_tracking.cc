// Reproduces paper Fig. 7: time overhead of dependency tracking (CPU time
// spent in protocol code on the application thread, per message) for the
// three protocols on LU / BT / SP at 4, 8, 16, 32 processes.
//
// Expected shape (paper §IV.A): TDI's per-message cost is a vector copy +
// element-wise max — nearly independent of system scale and message
// frequency.  TAG pays for the incremental antecedence-graph computation and
// the large piggyback serialization; TEL pays for determinant-set
// serialization plus watermark merging.  Both grow with message frequency
// (LU worst) and scale.
//
//   ./fig7_tracking [--ranks=4,8,16,32] [--scale=1.0] [--csv]
#include "bench/common.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 32}, "rank sweep");
  const double scale = opts.real("scale", 1.0, "iteration scale factor");
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"app", "ranks", "protocol", "events", "track us/msg",
                     "send us/msg", "deliver us/msg", "total track ms"});

  for (auto app : all_apps()) {
    for (int n : ranks) {
      for (auto proto : all_protocols()) {
        NpbJob job;
        job.app = app;
        job.ranks = n;
        job.protocol = proto;
        job.scale = scale;
        const NpbOutcome out = run_npb_job(job);
        const ft::Metrics& m = out.result.total;
        const double sends = static_cast<double>(m.app_sent);
        const double delivers = static_cast<double>(m.app_delivered);
        table.row(
            {std::string(to_string(app)), std::to_string(n), to_string(proto),
             std::to_string(m.app_sent + m.app_delivered),
             fmt(m.avg_track_us(), 3),
             fmt(sends ? static_cast<double>(m.track_send_ns) / 1e3 / sends
                       : 0.0,
                 3),
             fmt(delivers
                     ? static_cast<double>(m.track_deliver_ns) / 1e3 / delivers
                     : 0.0,
                 3),
             fmt(static_cast<double>(m.track_send_ns + m.track_deliver_ns) /
                     1e6,
                 2)});
      }
    }
  }

  table.print("Fig. 7 — dependency-tracking time overhead per message");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
