// Reproduces paper Fig. 7: time overhead of dependency tracking (CPU time
// spent in protocol code on the application thread, per message) for the
// three protocols on LU / BT / SP at 4, 8, 16, 32 processes.
//
// Expected shape (paper §IV.A): TDI's per-message cost is a vector copy +
// element-wise max — nearly independent of system scale and message
// frequency.  TAG pays for the incremental antecedence-graph computation and
// the large piggyback serialization; TEL pays for determinant-set
// serialization plus watermark merging.  Both grow with message frequency
// (LU worst) and scale.
//
// The --logger-shards sweep adds sharded-event-logger columns (TEL reruns
// per shard count; TDI/TAG never touch the logger and run once): batched
// commit-round acks cut the watermark merges the TEL send path pays for.
//
//   ./fig7_tracking [--ranks=4,8,16,32] [--scale=1.0] [--logger-shards=1]
//                   [--csv] [--json=F]
#include "bench/common.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 32}, "rank sweep");
  const double scale = opts.real("scale", 1.0, "iteration scale factor");
  const auto shard_list = opts.int_list(
      "logger-shards", {1},
      "event-logger shard sweep (TEL reruns per value; others run once)");
  const std::string json_path =
      opts.str("json", "", "also write rows to this JSON file");
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"app", "ranks", "protocol", "shards", "events",
                     "track us/msg", "send us/msg", "deliver us/msg",
                     "total track ms"});
  JsonRows json;

  for (auto app : all_apps()) {
    for (int n : ranks) {
      for (auto proto : all_protocols()) {
        for (std::size_t si = 0; si < shard_list.size(); ++si) {
          if (si > 0 && !uses_logger(proto)) continue;
          const int shards = shard_list[si];
          NpbJob job;
          job.app = app;
          job.ranks = n;
          job.protocol = proto;
          job.scale = scale;
          job.logger_shards = shards;
          const NpbOutcome out = run_npb_job(job);
          const ft::Metrics& m = out.result.total;
          const double sends = static_cast<double>(m.app_sent);
          const double delivers = static_cast<double>(m.app_delivered);
          const double send_us =
              sends ? static_cast<double>(m.track_send_ns) / 1e3 / sends : 0.0;
          const double deliver_us =
              delivers
                  ? static_cast<double>(m.track_deliver_ns) / 1e3 / delivers
                  : 0.0;
          table.row(
              {std::string(to_string(app)), std::to_string(n),
               to_string(proto),
               uses_logger(proto) ? std::to_string(shards) : "-",
               std::to_string(m.app_sent + m.app_delivered),
               fmt(m.avg_track_us(), 3), fmt(send_us, 3), fmt(deliver_us, 3),
               fmt(static_cast<double>(m.track_send_ns + m.track_deliver_ns) /
                       1e6,
                   2)});
          json.field("app", std::string(to_string(app)))
              .field("ranks", n)
              .field("protocol", std::string(to_string(proto)))
              .field("logger_shards", uses_logger(proto) ? shards : 0)
              .field("track_us_per_msg", m.avg_track_us())
              .field("track_send_us_per_msg", send_us)
              .field("track_deliver_us_per_msg", deliver_us)
              .end_row();
        }
      }
    }
  }

  table.print("Fig. 7 — dependency-tracking time overhead per message");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  if (!json_path.empty()) {
    WINDAR_CHECK(json.write(json_path)) << "cannot write " << json_path;
    std::fprintf(stderr, "fig7_tracking: wrote %s\n", json_path.c_str());
  }
  return 0;
}
