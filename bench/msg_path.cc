// End-to-end message-path benchmark: app send -> sender log -> fabric ->
// delivery, on a fault-free pairwise stream.  Measures throughput and — via
// a counting global operator new — heap allocations on the whole path, the
// number the zero-copy buffer refactor is meant to lower: the wire packet
// and the sender-log entry must share one payload buffer instead of each
// materialising its own copy.
//
// Even ranks stream `msgs` payloads to rank+1; odd ranks consume them and
// checkpoint every `ckpt-every` deliveries so CHECKPOINT_ADVANCE keeps the
// sender log bounded (the steady-state shape of a long-running job).
//
//   ./msg_path [--sizes=64,4096,65536] [--msgs=0] [--protocol=TDI]
//              [--ranks=2] [--shards=0] [--csv]
//   ./msg_path --contend [--ranks=8] [--sizes=4096] [--shards=1,4]
//   ./msg_path --transport=socket [--ranks=2] [--sizes=64,4096,65536]
//
// --msgs=0 picks a per-size count targeting ~32 MB of payload per run.
// --shards selects the fabric scheduler shard count (0: default).
//
// --transport=socket is the A8 experiment: the same pairwise streams pushed
// through net::SocketTransport (real AF_UNIX sockets, length-prefixed
// frames) with every endpoint hosted in this process so the global alloc
// counter sees both sides of the wire.  The zero-copy claim is the
// "alloc/payload" column: the sender writes the shared payload buffer
// straight into sendmsg scatter-gather, so steady-state heap traffic is the
// receiver's single reassembly block — about 1.0 payloads worth of
// allocation per message, not the 2-3x a copying send path would show.
//
// --contend is the interconnect-scalability scenario: ranks/2 concurrent
// pairwise streams hammer the fabric through the raw transport (no
// recovery-layer work), once per requested shard count, reporting msgs/s
// and the speedup over the first (baseline) shard count.  This is the
// A7 experiment: the fabric must not be the bottleneck the causal-delivery
// overhead measurements end up measuring.
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <new>
#include <thread>

#include "bench/common.h"
#include "mp/runtime.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "util/clock.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace windar;
using namespace windar::bench;

namespace {

ft::ProtocolKind parse_protocol(const std::string& s) {
  for (auto k : {ft::ProtocolKind::kTdi, ft::ProtocolKind::kTag,
                 ft::ProtocolKind::kTel, ft::ProtocolKind::kTdiSparse,
                 ft::ProtocolKind::kPes}) {
    if (s == to_string(k)) return k;
  }
  std::fprintf(stderr, "unknown protocol %s\n", s.c_str());
  std::exit(1);
}

// Multi-sender contention sweep over shard counts: ranks/2 pairwise streams
// (rank k blasts rank k + ranks/2, so consecutive destination ids spread
// across every shard) through the raw transport — nearly all CPU is fabric
// path (send, shard scheduler, inbox) and scheduler serialization is what
// the sweep exposes.
void run_contention(int ranks, const std::vector<int>& sizes,
                    const std::vector<int>& shard_counts, int msgs_opt,
                    bool csv, JsonRows* json) {
  util::Table table({"payload B", "shards", "msgs", "wall ms", "msgs/s",
                     "MB/s", "vs first"});
  for (int size : sizes) {
    const int msgs =
        msgs_opt > 0
            ? msgs_opt
            : std::max(2000, static_cast<int>((32u << 20) /
                                              static_cast<unsigned>(size) /
                                              static_cast<unsigned>(
                                                  std::max(1, ranks / 2))));
    const util::Bytes payload(static_cast<std::size_t>(size), 0x5A);
    double first_rate = 0;
    for (int shards : shard_counts) {
      const double t0 = util::now_ms();
      mp::run_raw(
          ranks,
          [&](mp::Comm& comm) {
            const int r = comm.rank();
            const int half = comm.size() / 2;
            if (r < half) {
              for (int i = 0; i < msgs; ++i) comm.send(r + half, 0, payload);
            } else {
              for (int i = 0; i < msgs; ++i) {
                const mp::Message m = comm.recv(r - half, 0);
                WINDAR_CHECK_EQ(m.payload.size(), payload.size());
              }
            }
          },
          net::LatencyModel::deterministic(std::chrono::nanoseconds(0),
                                           std::chrono::nanoseconds(0)),
          /*seed=*/1, shards);
      const double wall_ms = util::now_ms() - t0;
      const double total_msgs = static_cast<double>(msgs) * (ranks / 2);
      const double rate = total_msgs / (wall_ms / 1e3);
      if (first_rate == 0) first_rate = rate;
      table.row({std::to_string(size), std::to_string(shards),
                 std::to_string(static_cast<long long>(total_msgs)),
                 fmt(wall_ms, 1), fmt(rate, 0), fmt(rate * size / 1e6, 1),
                 fmt(rate / first_rate, 2) + "x"});
      if (json) {
        json->field("mode", std::string("contend"))
            .field("payload_b", size)
            .field("shards", shards)
            .field("ranks", ranks)
            .field("msgs", static_cast<std::uint64_t>(total_msgs))
            .field("wall_ms", wall_ms)
            .field("msgs_per_s", rate)
            .field("mb_per_s", rate * size / 1e6)
            .field("speedup_vs_first", rate / first_rate);
        json->end_row();
      }
    }
  }
  table.print("msg_path --contend — " + std::to_string(ranks / 2) +
              " concurrent streams, raw transport, by fabric shards");
  if (csv) std::fputs(table.csv().c_str(), stdout);
}

// A8: pairwise streams over the real socket transport.  All endpoints live
// in this process (the loopback mesh from tests/test_transport.cc) so the
// counting operator new observes the full path: send -> per-peer writer ->
// sendmsg -> poll/read -> frame reassembly -> inbox pop.  One immutable
// payload buffer is shared by every send; whatever the wire adds per
// message shows up as allocs.
void run_socket(int ranks, const std::vector<int>& sizes, int msgs_opt,
                bool csv, JsonRows* json) {
  WINDAR_CHECK(ranks >= 2 && ranks % 2 == 0) << "--ranks must be even";
  util::Table table({"payload B", "msgs", "wall ms", "msgs/s", "MB/s",
                     "allocs/msg", "alloc B/msg", "alloc/payload"});
  for (int size : sizes) {
    const int half = ranks / 2;
    const int msgs =
        msgs_opt > 0
            ? msgs_opt
            : std::max(2000, static_cast<int>((32u << 20) /
                                              static_cast<unsigned>(size) /
                                              static_cast<unsigned>(half)));
    char tmpl[] = "/tmp/windar_msgpath_XXXXXX";
    const std::string dir = ::mkdtemp(tmpl);
    std::vector<std::unique_ptr<net::SocketTransport>> nodes;
    for (int i = 0; i < ranks; ++i) {
      net::SocketTransportOptions o;
      o.endpoints = ranks;
      o.self = i;
      o.dir = dir;
      nodes.push_back(std::make_unique<net::SocketTransport>(o));
    }
    const util::Buffer payload(util::Bytes(static_cast<std::size_t>(size),
                                           0x5A));

    const std::uint64_t allocs0 = g_allocs.load();
    const std::uint64_t bytes0 = g_alloc_bytes.load();
    const double t0 = util::now_ms();
    std::vector<std::thread> threads;
    for (int r = 0; r < half; ++r) {
      threads.emplace_back([&, r] {
        for (int i = 0; i < msgs; ++i) {
          nodes[static_cast<std::size_t>(r)]->send(
              net::make_packet(r, r + half, 1, 0,
                               static_cast<std::uint64_t>(i), {}, payload));
        }
      });
      threads.emplace_back([&, r] {
        auto& inbox =
            nodes[static_cast<std::size_t>(r + half)]->endpoint(r + half)
                .inbox();
        for (int i = 0; i < msgs; ++i) {
          auto p = inbox.pop();
          WINDAR_CHECK(p.has_value()) << "inbox poisoned mid-stream";
          WINDAR_CHECK_EQ(p->payload.size(), payload.size());
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_ms = util::now_ms() - t0;
    const double total = static_cast<double>(msgs) * half;
    const double allocs_per_msg =
        static_cast<double>(g_allocs.load() - allocs0) / total;
    const double alloc_bytes_per_msg =
        static_cast<double>(g_alloc_bytes.load() - bytes0) / total;
    const double rate = total / (wall_ms / 1e3);
    table.row({std::to_string(size),
               std::to_string(static_cast<long long>(total)), fmt(wall_ms, 1),
               fmt(rate, 0), fmt(rate * size / 1e6, 1), fmt(allocs_per_msg),
               fmt(alloc_bytes_per_msg, 0),
               fmt(alloc_bytes_per_msg / size, 2)});
    if (json) {
      json->field("mode", std::string("socket"))
          .field("payload_b", size)
          .field("ranks", ranks)
          .field("msgs", static_cast<std::uint64_t>(total))
          .field("wall_ms", wall_ms)
          .field("msgs_per_s", rate)
          .field("mb_per_s", rate * size / 1e6)
          .field("allocs_per_msg", allocs_per_msg)
          .field("alloc_bytes_per_msg", alloc_bytes_per_msg);
      json->end_row();
    }
    for (auto& t : nodes) t->shutdown();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  table.print("msg_path --transport=socket — AF_UNIX pairwise streams, " +
              std::to_string(ranks / 2) + " stream(s), both sides counted");
  if (csv) std::fputs(table.csv().c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto sizes = opts.int_list("sizes", {64, 4096, 65536}, "payload sizes");
  const int msgs_opt = static_cast<int>(
      opts.integer("msgs", 0, "messages per sender (0: auto)"));
  const std::string proto_s = opts.str("protocol", "TDI", "protocol");
  const int ranks = static_cast<int>(
      opts.integer("ranks", 2, "ranks (even; pairwise streams)"));
  const int ckpt_every = static_cast<int>(opts.integer(
      "ckpt-every", 256, "receiver checkpoint interval (msgs)"));
  const int shards = static_cast<int>(opts.integer(
      "shards", 0, "fabric scheduler shards (0: default)"));
  const bool contend = opts.flag(
      "contend", false, "multi-sender contention sweep over --shard-sweep");
  const auto shard_sweep =
      opts.int_list("shard-sweep", {1, 4}, "shard counts for --contend");
  const bool csv = opts.flag("csv", false, "also print CSV");
  const std::string json_path = opts.str(
      "json", "", "also write rows as a JSON array to this path");
  const std::string transport_s = opts.str(
      "transport", to_string(net::default_transport()),
      "sim | socket (raw AF_UNIX streams, in-process mesh)");
  opts.finish();
  const ft::ProtocolKind protocol = parse_protocol(proto_s);
  net::TransportKind transport;
  WINDAR_CHECK(net::parse_transport(transport_s, &transport))
      << "unknown transport '" << transport_s << "'";

  JsonRows json_rows;
  JsonRows* const json = json_path.empty() ? nullptr : &json_rows;
  const auto write_json = [&] {
    if (json && !json_rows.write(json_path)) {
      std::fprintf(stderr, "msg_path: cannot write %s\n", json_path.c_str());
      return 1;
    }
    return 0;
  };

  if (transport == net::TransportKind::kSocket) {
    run_socket(ranks, sizes, msgs_opt, csv, json);
    return write_json();
  }
  if (contend) {
    run_contention(ranks, sizes, shard_sweep, msgs_opt, csv, json);
    return write_json();
  }

  util::Table table({"payload B", "msgs", "wall ms", "msgs/s", "MB/s",
                     "allocs/msg", "alloc B/msg", "log copies B/msg"});

  for (int size : sizes) {
    const int msgs =
        msgs_opt > 0
            ? msgs_opt
            : std::max(2000, static_cast<int>((32u << 20) /
                                              static_cast<unsigned>(size)));
    ft::JobConfig cfg;
    cfg.n = ranks;
    cfg.protocol = protocol;
    cfg.mode = ft::SendMode::kNonBlocking;
    cfg.fabric_shards = shards;
    // Near-zero link latency: the wire is not the subject, the CPU path is.
    cfg.latency = net::LatencyModel::deterministic(std::chrono::nanoseconds(0),
                                                   std::chrono::nanoseconds(0));
    const util::Bytes payload(static_cast<std::size_t>(size), 0x5A);

    const std::uint64_t allocs0 = g_allocs.load();
    const std::uint64_t bytes0 = g_alloc_bytes.load();
    const ft::JobResult res = ft::run_job(cfg, [&](ft::Ctx& ctx) {
      if (ctx.rank() % 2 == 0) {
        for (int i = 0; i < msgs; ++i) ctx.send(ctx.rank() + 1, 0, payload);
      } else {
        for (int i = 0; i < msgs; ++i) {
          const mp::Message m = ctx.recv(ctx.rank() - 1, 0);
          WINDAR_CHECK_EQ(m.payload.size(), payload.size());
          if ((i + 1) % ckpt_every == 0) ctx.checkpoint(util::to_bytes(i));
        }
      }
    });
    const double allocs_per_msg =
        static_cast<double>(g_allocs.load() - allocs0) /
        static_cast<double>(res.total.app_sent);
    const double alloc_bytes_per_msg =
        static_cast<double>(g_alloc_bytes.load() - bytes0) /
        static_cast<double>(res.total.app_sent);
    const double msgs_per_s =
        static_cast<double>(res.total.app_sent) / (res.wall_ms / 1e3);
    const double mb_per_s = msgs_per_s * size / 1e6;
    const double copied_per_msg =
        static_cast<double>(res.total.bytes_copied) /
        static_cast<double>(res.total.app_sent);
    table.row({std::to_string(size), std::to_string(res.total.app_sent),
               fmt(res.wall_ms, 1), fmt(msgs_per_s, 0), fmt(mb_per_s, 1),
               fmt(allocs_per_msg), fmt(alloc_bytes_per_msg, 0),
               fmt(copied_per_msg, 0)});
    if (json) {
      const char* inbox_env = std::getenv("WINDAR_INBOX");
      json->field("mode", std::string("sim"))
          .field("protocol", to_string(protocol))
          .field("inbox", std::string(inbox_env ? inbox_env : "ring"))
          .field("payload_b", size)
          .field("ranks", ranks)
          .field("msgs", res.total.app_sent)
          .field("wall_ms", res.wall_ms)
          .field("msgs_per_s", msgs_per_s)
          .field("mb_per_s", mb_per_s)
          .field("allocs_per_msg", allocs_per_msg)
          .field("alloc_bytes_per_msg", alloc_bytes_per_msg)
          .field("log_copies_b_per_msg", copied_per_msg)
          .field("packets_recycled", res.total.packets_recycled);
      json->end_row();
    }
  }

  table.print("msg_path — send->deliver throughput and allocations (" +
              to_string(protocol) + ", " + std::to_string(ranks) + " ranks)");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return write_json();
}
