// Ablation A2: sender-log memory versus checkpoint interval — quantifies
// the CHECKPOINT_ADVANCE garbage-collection path (Algorithm 1 lines 32-39).
//
// A pairwise-exchange workload runs a fixed number of rounds while varying
// the checkpoint cadence.  The peak sender-log footprint should shrink
// roughly in proportion to the interval, while released-entry counts rise —
// the memory/IO trade the paper's checkpoint interval choice (180 s)
// balances.
//
//   ./abl_logmem [--rounds=200] [--ranks=8]
#include "bench/common.h"
#include "mp/comm.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int rounds = static_cast<int>(opts.integer("rounds", 200, "rounds"));
  const int ranks = static_cast<int>(opts.integer("ranks", 8, "ranks"));
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"ckpt every", "checkpoints", "peak log entries",
                     "peak log KiB", "released entries", "wall ms"});

  for (int every : {0, 100, 50, 25, 10, 5}) {
    ft::JobConfig cfg;
    cfg.n = ranks;
    cfg.protocol = ft::ProtocolKind::kTdi;
    cfg.latency = bench_latency();
    auto result = ft::run_job(cfg, [&](ft::Ctx& ctx) {
      const int n = ctx.size();
      const int me = ctx.rank();
      const int peer = me ^ 1;  // pairwise partners
      if (peer >= n) return;
      std::vector<double> payload(64, 1.0);
      for (int round = 0; round < rounds; ++round) {
        if (every > 0 && round > 0 && round % every == 0) ctx.checkpoint({});
        if (me < peer) {
          mp::send_vec<double>(ctx, peer, 1, payload);
          (void)mp::recv_vec<double>(ctx, peer, 1);
        } else {
          (void)mp::recv_vec<double>(ctx, peer, 1);
          mp::send_vec<double>(ctx, peer, 1, payload);
        }
      }
    });
    const ft::Metrics& m = result.total;
    table.row({every == 0 ? "never" : std::to_string(every),
               std::to_string(m.checkpoints),
               std::to_string(m.log_peak_entries),
               fmt(static_cast<double>(m.log_peak_bytes) / 1024.0, 1),
               std::to_string(m.log_released_entries),
               fmt(result.wall_ms, 1)});
  }

  table.print("Ablation A2 — sender-log footprint vs checkpoint interval "
              "(TDI, pairwise exchange)");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
