// Chaos soak driver: seeded randomized event-keyed fault schedules swept
// across the causal-logging protocols, each run checked for convergence to
// the failure-free digest.
//
//   chaos_soak [--schedules=50] [--seed0=1000] [--protocols=tdi,tag,tel]
//              [--replay=SEED] [--timeout-ms=30000] [--transport=sim|socket]
//              [--logger-shards=N] [--exec=threads|coop|auto]
//
// Every schedule is a pure function of its seed (windar::ft::make_chaos_plan),
// so a failure is replayed from the printed seed alone:
//
//   chaos_soak --replay=1017
//
// --transport=socket runs every faulty schedule as real OS processes over
// Unix-domain sockets: chaos kills become actual SIGKILLs and recovery is
// driven by respawned incarnations restoring from disk checkpoints
// (windar/launcher.h).  The clean baseline digest is computed in-process —
// the ring digest is a pure function of the delivered values, identical
// across transports — so convergence still certifies exactly-once ordered
// delivery.  (The binary re-execs itself as the per-rank worker.)
//
// A per-run watchdog flags hangs: if one (plan, protocol) run exceeds
// --timeout-ms the driver prints "FAIL seed=... (hang)" and exits nonzero,
// leaving the seed on stdout for replay.  Exit status: 0 iff every run
// converged.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/transport.h"
#include "tests/chaos_app.h"
#include "util/clock.h"
#include "windar/launcher.h"

namespace {

using namespace windar;
using namespace windar::ft;

struct Options {
  int schedules = 50;
  std::uint64_t seed0 = 1000;
  std::vector<ProtocolKind> protocols = {ProtocolKind::kTdi,
                                         ProtocolKind::kTdiDelta,
                                         ProtocolKind::kTag,
                                         ProtocolKind::kTel};
  std::uint64_t replay = 0;  // 0: sweep mode
  double timeout_ms = 30000;
  net::TransportKind transport = net::default_transport();
  int logger_shards = 0;  // TEL/PES logger shards (0 = env/default)
  exec::ExecModel exec_model = exec::ExecModel::kAuto;
};

ProtocolKind parse_protocol(const std::string& s) {
  if (s == "tdi") return ProtocolKind::kTdi;
  if (s == "tdi-sparse") return ProtocolKind::kTdiSparse;
  if (s == "tdi-d" || s == "tdi-delta") return ProtocolKind::kTdiDelta;
  if (s == "tag") return ProtocolKind::kTag;
  if (s == "tel") return ProtocolKind::kTel;
  if (s == "pes") return ProtocolKind::kPes;
  std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--schedules=", 0) == 0) {
      opt.schedules = std::atoi(value("--schedules="));
    } else if (arg.rfind("--seed0=", 0) == 0) {
      opt.seed0 = std::strtoull(value("--seed0="), nullptr, 10);
    } else if (arg.rfind("--replay=", 0) == 0) {
      opt.replay = std::strtoull(value("--replay="), nullptr, 10);
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      opt.timeout_ms = std::atof(value("--timeout-ms="));
    } else if (arg.rfind("--logger-shards=", 0) == 0) {
      opt.logger_shards = std::atoi(value("--logger-shards="));
    } else if (arg.rfind("--exec=", 0) == 0) {
      if (!exec::parse_exec_model(value("--exec="), &opt.exec_model)) {
        std::fprintf(stderr, "unknown exec model '%s'\n", value("--exec="));
        std::exit(2);
      }
    } else if (arg.rfind("--transport=", 0) == 0) {
      if (!net::parse_transport(value("--transport="), &opt.transport)) {
        std::fprintf(stderr, "unknown transport '%s'\n",
                     value("--transport="));
        std::exit(2);
      }
    } else if (arg.rfind("--protocols=", 0) == 0) {
      opt.protocols.clear();
      std::string list = value("--protocols=");
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) opt.protocols.push_back(parse_protocol(list.substr(pos, end - pos)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

// Hang watchdog: the main thread arms a deadline before each run; if the run
// outlives it, the process prints the offending seed and exits.  run_job
// cannot be cancelled from outside, so a hard exit is the only honest
// outcome for a hung schedule — the seed on stdout is the repro.
struct Watchdog {
  explicit Watchdog(double timeout_ms) : timeout_ms_(timeout_ms) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        const double armed = armed_at_ms_.load(std::memory_order_acquire);
        if (armed > 0 && util::now_ms() - armed > timeout_ms_) {
          std::printf("FAIL seed=%llu proto=%s (hang after %.0f ms)\n",
                      static_cast<unsigned long long>(
                          seed_.load(std::memory_order_acquire)),
                      proto_.load(std::memory_order_acquire), timeout_ms_);
          std::fflush(stdout);
          std::_Exit(3);
        }
      }
    });
  }
  ~Watchdog() {
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }
  void arm(std::uint64_t seed, const char* proto) {
    seed_.store(seed, std::memory_order_release);
    proto_.store(proto, std::memory_order_release);
    armed_at_ms_.store(util::now_ms(), std::memory_order_release);
  }
  void disarm() { armed_at_ms_.store(0, std::memory_order_release); }

  const double timeout_ms_;
  std::atomic<double> armed_at_ms_{0};
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<const char*> proto_{""};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

struct Tally {
  int runs = 0;
  int divergences = 0;
  std::uint64_t triggers = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t rollback_broadcasts = 0;
};

// Socket-mode worker entry: the launcher re-execs this binary with
// --windar-* flags plus our own --iters/--ckpt app arguments.
int soak_worker_main(int argc, char** argv) {
  const WorkerConfig cfg = WorkerConfig::parse(argc, argv);
  int iters = 30;
  int ckpt = 5;
  for (const std::string& a : cfg.app_args) {
    if (a.rfind("--iters=", 0) == 0) iters = std::atoi(a.c_str() + 8);
    if (a.rfind("--ckpt=", 0) == 0) ckpt = std::atoi(a.c_str() + 7);
  }
  return run_worker(cfg, [iters, ckpt](Ctx& ctx) {
    return ft::chaos::ring_digest_rank(ctx, iters, ckpt);
  });
}

// One faulty schedule as real processes with real SIGKILLs.
MultiProcResult run_plan_multiproc(const ChaosPlan& plan, ProtocolKind proto,
                                   double timeout_ms, int logger_shards) {
  LaunchSpec spec;
  spec.job = ft::chaos::plan_config(plan, proto, /*with_faults=*/true,
                                    logger_shards);
  spec.worker_args = {"--iters=" + std::to_string(plan.iterations),
                      "--ckpt=" + std::to_string(plan.checkpoint_every)};
  spec.timeout_ms = timeout_ms;
  spec.verbose = std::getenv("WINDAR_LAUNCH_VERBOSE") != nullptr;
  return run_multiproc_job(spec);
}

}  // namespace

int main(int argc, char** argv) {
  if (WorkerConfig::is_worker_invocation(argc, argv)) {
    return soak_worker_main(argc, argv);
  }
  const Options opt = parse_args(argc, argv);
  const bool replay = opt.replay != 0;
  const bool socket = opt.transport == net::TransportKind::kSocket;
  Watchdog watchdog(opt.timeout_ms * (socket ? 2 : 1));

  int failures = 0;
  std::printf("%-10s %-6s %-9s %-9s %-9s %-8s %s\n", "protocol", "runs",
              "diverged", "triggers", "recov", "rb_bcast", "status");
  for (const ProtocolKind proto : opt.protocols) {
    const std::string pname = to_string(proto);
    Tally tally;
    for (int s = 0; s < (replay ? 1 : opt.schedules); ++s) {
      const std::uint64_t seed = replay ? opt.replay : opt.seed0 + s;
      const ChaosPlan plan = make_chaos_plan(seed);
      if (replay) std::printf("replaying %s\n", plan.describe().c_str());
      watchdog.arm(seed, pname.c_str());
      // The clean baseline is always computed in-process: the digest is a
      // pure function of the delivered values, identical on either backend,
      // and the simulated run is far cheaper than n fault-free processes.
      const auto clean = ft::chaos::run_plan(plan, proto, false,
                                             opt.logger_shards,
                                             opt.exec_model);
      std::uint64_t faulty_digest = 0;
      std::uint64_t triggers = 0;
      std::uint64_t recoveries = 0;
      std::uint64_t rollback_broadcasts = 0;
      bool run_ok = true;
      std::string run_error;
      if (socket) {
        const auto faulty =
            run_plan_multiproc(plan, proto, opt.timeout_ms, opt.logger_shards);
        faulty_digest = faulty.digest;
        triggers = faulty.chaos_triggers_fired;
        recoveries = faulty.recoveries;
        run_ok = faulty.ok;
        run_error = faulty.error;
      } else {
        const auto faulty = ft::chaos::run_plan(plan, proto, true,
                                                opt.logger_shards,
                                                opt.exec_model);
        faulty_digest = faulty.digest;
        triggers = faulty.result.chaos_triggers_fired;
        recoveries = faulty.result.total.recoveries;
        rollback_broadcasts = faulty.result.total.rollback_broadcasts;
      }
      watchdog.disarm();
      ++tally.runs;
      tally.triggers += triggers;
      tally.recoveries += recoveries;
      tally.rollback_broadcasts += rollback_broadcasts;
      if (!run_ok || clean.digest != faulty_digest) {
        ++tally.divergences;
        ++failures;
        if (!run_ok) {
          std::printf("FAIL seed=%llu proto=%s (%s)\n",
                      static_cast<unsigned long long>(seed), pname.c_str(),
                      run_error.c_str());
        } else {
          std::printf(
              "FAIL seed=%llu proto=%s (digest %llu != clean %llu)\n",
              static_cast<unsigned long long>(seed), pname.c_str(),
              static_cast<unsigned long long>(faulty_digest),
              static_cast<unsigned long long>(clean.digest));
        }
        std::printf("  plan: %s\n", plan.describe().c_str());
      } else if (replay) {
        std::printf("OK seed=%llu proto=%s triggers=%llu recov=%llu\n",
                    static_cast<unsigned long long>(seed), pname.c_str(),
                    static_cast<unsigned long long>(triggers),
                    static_cast<unsigned long long>(recoveries));
      }
    }
    std::printf("%-10s %-6d %-9d %-9llu %-9llu %-8llu %s\n", pname.c_str(),
                tally.runs, tally.divergences,
                static_cast<unsigned long long>(tally.triggers),
                static_cast<unsigned long long>(tally.recoveries),
                static_cast<unsigned long long>(tally.rollback_broadcasts),
                tally.divergences == 0 ? "ok" : "DIVERGED");
    std::fflush(stdout);
  }
  return failures == 0 ? 0 : 1;
}
