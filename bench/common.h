// Shared harness pieces for the figure-reproduction benchmarks.
#pragma once

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "npb/driver.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "windar/runtime.h"

namespace windar::bench {

inline net::LatencyModel bench_latency() {
  // 100 Mb/s-Ethernet-flavoured but scaled down so 36-run sweeps finish in
  // minutes: moderate base, cheap per-byte, enough jitter to reorder
  // independent channels constantly.
  net::LatencyModel m;
  m.base = std::chrono::nanoseconds(8'000);
  m.per_byte = std::chrono::nanoseconds(8);
  m.jitter = std::chrono::nanoseconds(20'000);
  return m;
}

struct NpbJob {
  npb::App app = npb::App::kLU;
  int ranks = 4;
  ft::ProtocolKind protocol = ft::ProtocolKind::kTdi;
  ft::SendMode mode = ft::SendMode::kNonBlocking;
  double scale = 1.0;
  int checkpoint_every = 8;  // iterations; bounds metadata growth like the
                             // paper's 180 s checkpoint interval
  std::vector<ft::FaultEvent> faults;
  std::uint64_t seed = 1;
};

struct NpbOutcome {
  ft::JobResult result;
  double checksum = 0;
};

inline NpbOutcome run_npb_job(const NpbJob& job) {
  npb::Params params = npb::make_params(job.app, job.ranks, job.scale);
  params.checkpoint_every = job.checkpoint_every;
  ft::JobConfig cfg;
  cfg.n = job.ranks;
  cfg.protocol = job.protocol;
  cfg.mode = job.mode;
  cfg.latency = bench_latency();
  cfg.seed = job.seed;
  cfg.faults = job.faults;
  cfg.restart_delay_ms = 5;
  auto checksum = std::make_shared<std::atomic<double>>(0.0);
  NpbOutcome out;
  out.result = ft::run_job(cfg, [&](ft::Ctx& ctx) {
    const double cs = npb::run_app(ctx, params, &ctx);
    if (ctx.rank() == 0) checksum->store(cs);
  });
  out.checksum = checksum->load();
  return out;
}

inline const std::vector<npb::App>& all_apps() {
  static const std::vector<npb::App> apps{npb::App::kLU, npb::App::kBT,
                                          npb::App::kSP};
  return apps;
}

inline const std::vector<ft::ProtocolKind>& all_protocols() {
  static const std::vector<ft::ProtocolKind> protos{
      ft::ProtocolKind::kTdi, ft::ProtocolKind::kTag, ft::ProtocolKind::kTel};
  return protos;
}

inline std::string fmt(double v, int digits = 2) {
  return util::fmt_double(v, digits);
}

}  // namespace windar::bench
