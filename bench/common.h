// Shared harness pieces for the figure-reproduction benchmarks.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "npb/driver.h"
#include "util/check.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "windar/runtime.h"

namespace windar::bench {

inline net::LatencyModel bench_latency() {
  // 100 Mb/s-Ethernet-flavoured but scaled down so 36-run sweeps finish in
  // minutes: moderate base, cheap per-byte, enough jitter to reorder
  // independent channels constantly.
  net::LatencyModel m;
  m.base = std::chrono::nanoseconds(8'000);
  m.per_byte = std::chrono::nanoseconds(8);
  m.jitter = std::chrono::nanoseconds(20'000);
  return m;
}

struct NpbJob {
  npb::App app = npb::App::kLU;
  int ranks = 4;
  ft::ProtocolKind protocol = ft::ProtocolKind::kTdi;
  ft::SendMode mode = ft::SendMode::kNonBlocking;
  double scale = 1.0;
  int checkpoint_every = 8;  // iterations; bounds metadata growth like the
                             // paper's 180 s checkpoint interval
  std::vector<ft::FaultEvent> faults;
  std::uint64_t seed = 1;
  exec::ExecModel exec_model = exec::ExecModel::kAuto;
  int logger_shards = 0;  // TEL/PES event-logger shards; 0 = env/default
};

struct NpbOutcome {
  ft::JobResult result;
  double checksum = 0;
};

inline NpbOutcome run_npb_job(const NpbJob& job) {
  npb::Params params = npb::make_params(job.app, job.ranks, job.scale);
  params.checkpoint_every = job.checkpoint_every;
  ft::JobConfig cfg;
  cfg.n = job.ranks;
  cfg.protocol = job.protocol;
  cfg.mode = job.mode;
  cfg.latency = bench_latency();
  cfg.seed = job.seed;
  cfg.exec_model = job.exec_model;
  cfg.faults = job.faults;
  cfg.logger_shards = job.logger_shards;
  cfg.restart_delay_ms = 5;
  auto checksum = std::make_shared<std::atomic<double>>(0.0);
  NpbOutcome out;
  out.result = ft::run_job(cfg, [&](ft::Ctx& ctx) {
    const double cs = npb::run_app(ctx, params, &ctx);
    if (ctx.rank() == 0) checksum->store(cs);
  });
  out.checksum = checksum->load();
  return out;
}

inline const std::vector<npb::App>& all_apps() {
  static const std::vector<npb::App> apps{npb::App::kLU, npb::App::kBT,
                                          npb::App::kSP};
  return apps;
}

inline const std::vector<ft::ProtocolKind>& all_protocols() {
  static const std::vector<ft::ProtocolKind> protos{
      ft::ProtocolKind::kTdi, ft::ProtocolKind::kTag, ft::ProtocolKind::kTel};
  return protos;
}

/// The TDI encodings: the only protocols whose per-message cost stays
/// tractable at 1k-4k ranks (determinant piggybacks grow with traffic too).
inline const std::vector<ft::ProtocolKind>& tdi_family() {
  static const std::vector<ft::ProtocolKind> protos{
      ft::ProtocolKind::kTdi, ft::ProtocolKind::kTdiSparse,
      ft::ProtocolKind::kTdiDelta};
  return protos;
}

/// True for protocols that log determinants (piggyback grows with traffic),
/// i.e. the ones a scale sweep must cap or they dominate the wall clock.
inline bool determinant_based(ft::ProtocolKind p) {
  return p == ft::ProtocolKind::kTag || p == ft::ProtocolKind::kTel ||
         p == ft::ProtocolKind::kPes;
}

/// True for protocols that talk to the event logger — the ones a
/// --logger-shards sweep actually varies.
inline bool uses_logger(ft::ProtocolKind p) {
  return p == ft::ProtocolKind::kTel || p == ft::ProtocolKind::kPes;
}

inline ft::ProtocolKind parse_protocol_name(const std::string& s) {
  if (s == "tdi") return ft::ProtocolKind::kTdi;
  if (s == "tdi-s" || s == "tdis") return ft::ProtocolKind::kTdiSparse;
  if (s == "tdi-d" || s == "tdid") return ft::ProtocolKind::kTdiDelta;
  if (s == "tag") return ft::ProtocolKind::kTag;
  if (s == "tel") return ft::ProtocolKind::kTel;
  if (s == "pes") return ft::ProtocolKind::kPes;
  WINDAR_CHECK(false) << "unknown protocol '" << s << "'";
  return ft::ProtocolKind::kTdi;
}

inline std::vector<ft::ProtocolKind> parse_protocol_list(
    const std::string& csv) {
  std::vector<ft::ProtocolKind> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    if (next > pos) out.push_back(parse_protocol_name(csv.substr(pos, next - pos)));
    pos = next + 1;
  }
  return out;
}

inline std::string fmt(double v, int digits = 2) {
  return util::fmt_double(v, digits);
}

/// Minimal machine-readable output: an array of flat JSON objects, one per
/// bench row, written in one shot.  Values are either numbers or strings —
/// nothing nested, no escapes beyond quoting (bench strings are tokens).
class JsonRows {
 public:
  JsonRows& field(const char* key, const std::string& v) {
    sep();
    row_ += '"';
    row_ += key;
    row_ += "\": \"";
    row_ += v;
    row_ += '"';
    return *this;
  }
  JsonRows& field(const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(key, buf);
  }
  JsonRows& field(const char* key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonRows& field(const char* key, int v) { return raw(key, std::to_string(v)); }

  void end_row() {
    rows_.push_back("  {" + row_ + "}");
    row_.clear();
  }

  /// Writes `[ {...}, ... ]` to `path`; returns false on I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fputs(rows_[i].c_str(), f);
      std::fputs(i + 1 < rows_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    return std::fclose(f) == 0;
  }

 private:
  JsonRows& raw(const char* key, const std::string& lit) {
    sep();
    row_ += '"';
    row_ += key;
    row_ += "\": ";
    row_ += lit;
    return *this;
  }
  void sep() {
    if (!row_.empty()) row_ += ", ";
  }

  std::string row_;
  std::vector<std::string> rows_;
};

}  // namespace windar::bench
