// A10: checkpoint-path cost — synchronous vs asynchronous commit, full vs
// delta images, fault-free vs post-fault completion.
//
// A ring workload carries a sizeable application state blob (mostly cold;
// a few bytes mutate per round, the delta codec's favourable case) and
// checkpoints every `ckpt-every` rounds into a real spill directory, so
// the commit path pays genuine serialize + write + fsync + rename costs.
//
// The headline number is the application-thread checkpoint stall
// (ckpt_stall_ns per checkpoint): under synchronous commit it contains the
// whole serialize+fsync; under asynchronous commit it is just the seal.
// The acceptance bar for the async path is a >=5x stall reduction.  The
// faulted variant kills one rank mid-run and reports completion wall time,
// showing recovery works (and is not slower) with deltas + async commit.
//
//   ./ckpt_path [--ranks=4] [--rounds=240] [--ckpt-every=8]
//               [--state-kb=256] [--anchor-k=8] [--json=BENCH_ckpt.json]
#include <cstring>
#include <filesystem>

#include "bench/common.h"
#include "mp/comm.h"

using namespace windar;
using namespace windar::bench;

namespace {

struct RunStats {
  double wall_ms = 0;
  double stall_us_per_ckpt = 0;
  double commit_us_per_ckpt = 0;
  ft::Metrics m;
  ft::CheckpointStoreStats store;
};

RunStats run_once(int ranks, int rounds, int ckpt_every, std::size_t state_kb,
                  std::size_t anchor_k, bool async, bool faulted,
                  const std::string& dir) {
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ft::JobConfig cfg;
  cfg.n = ranks;
  cfg.latency = bench_latency();
  cfg.checkpoint_spill_dir = dir;
  cfg.ckpt_async = async ? 1 : 0;
  cfg.ckpt_delta_anchor = anchor_k;
  cfg.restart_delay_ms = 5;
  if (faulted) cfg.faults.push_back({1, 25.0});

  const std::size_t state_bytes = state_kb * 1024;
  auto result = ft::run_job(cfg, [&](ft::Ctx& ctx) {
    const int n = ctx.size();
    const int right = (ctx.rank() + 1) % n;
    const int left = (ctx.rank() + n - 1) % n;
    std::vector<std::uint8_t> state(state_bytes, 0xA5);
    std::uint32_t start = 0;
    if (ctx.restored() && ctx.restored()->size() >= sizeof(start)) {
      std::memcpy(&start, ctx.restored()->data(), sizeof(start));
    }
    for (std::uint32_t round = start;
         round < static_cast<std::uint32_t>(rounds); ++round) {
      mp::send_value(ctx, right, 0, round);
      (void)mp::recv_value<std::uint32_t>(ctx, left, 0);
      // Touch a handful of bytes: realistic iterative-solver dirtiness,
      // so consecutive images differ in a few pages out of hundreds.
      state[(round * 4097) % state_bytes] ^= 0x5A;
      if ((round + 1) % static_cast<std::uint32_t>(ckpt_every) == 0) {
        const std::uint32_t resume_at = round + 1;
        std::memcpy(state.data(), &resume_at, sizeof(resume_at));
        ctx.checkpoint(state);
      }
    }
  });

  RunStats out;
  out.wall_ms = result.wall_ms;
  out.m = result.total;
  out.store = result.checkpoints;
  if (out.m.checkpoints > 0) {
    out.stall_us_per_ckpt = static_cast<double>(out.m.ckpt_stall_ns) / 1e3 /
                            static_cast<double>(out.m.checkpoints);
  }
  if (out.m.ckpt_committed > 0) {
    out.commit_us_per_ckpt = static_cast<double>(out.m.ckpt_commit_ns) / 1e3 /
                             static_cast<double>(out.m.ckpt_committed);
  }
  std::filesystem::remove_all(dir);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.integer("ranks", 4, "ranks"));
  const int rounds = static_cast<int>(opts.integer("rounds", 240, "rounds"));
  const int ckpt_every =
      static_cast<int>(opts.integer("ckpt-every", 8, "rounds per checkpoint"));
  const std::size_t state_kb = static_cast<std::size_t>(
      opts.integer("state-kb", 256, "application state size"));
  const std::size_t anchor_k = static_cast<std::size_t>(
      opts.integer("anchor-k", 8, "full image every K commits"));
  const bool csv = opts.flag("csv", false, "also print CSV");
  const std::string json_path = opts.str(
      "json", "", "also write rows as a JSON array to this path");
  opts.finish();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "windar_ckpt_bench").string();

  util::Table table({"mode", "fault", "wall ms", "ckpts", "committed",
                     "stall us/ckpt", "commit us/ckpt", "delta/fulls",
                     "MB written"});
  JsonRows json_rows;
  JsonRows* const json = json_path.empty() ? nullptr : &json_rows;

  double sync_stall = 0, async_stall = 0;
  for (const bool faulted : {false, true}) {
    for (const bool async : {false, true}) {
      RunStats r = run_once(ranks, rounds, ckpt_every, state_kb, anchor_k,
                            async, faulted, dir);
      if (!faulted) (async ? async_stall : sync_stall) = r.stall_us_per_ckpt;
      const std::string mode = async ? "async" : "sync";
      table.row({mode, faulted ? "kill r1" : "none", fmt(r.wall_ms, 1),
                 std::to_string(r.m.checkpoints),
                 std::to_string(r.m.ckpt_committed),
                 fmt(r.stall_us_per_ckpt, 1), fmt(r.commit_us_per_ckpt, 1),
                 std::to_string(r.store.delta_saves) + "/" +
                     std::to_string(r.store.full_saves),
                 fmt(static_cast<double>(r.store.bytes_written) / 1e6)});
      if (json) {
        json->field("mode", mode)
            .field("faulted", faulted ? 1 : 0)
            .field("ranks", ranks)
            .field("state_kb", static_cast<std::uint64_t>(state_kb))
            .field("anchor_k", static_cast<std::uint64_t>(anchor_k))
            .field("wall_ms", r.wall_ms)
            .field("checkpoints", r.m.checkpoints)
            .field("committed", r.m.ckpt_committed)
            .field("stall_us_per_ckpt", r.stall_us_per_ckpt)
            .field("commit_us_per_ckpt", r.commit_us_per_ckpt)
            .field("full_saves", r.store.full_saves)
            .field("delta_saves", r.store.delta_saves)
            .field("bytes_written", r.store.bytes_written)
            .field("delta_bytes", r.store.delta_bytes)
            .field("recoveries", r.m.recoveries);
        json->end_row();
      }
    }
  }

  table.print("A10 — checkpoint path: app-thread stall & completion");
  if (sync_stall > 0 && async_stall > 0) {
    std::printf("\nasync stall reduction: %.1fx (sync %.1f us -> async %.1f "
                "us per checkpoint)\n",
                sync_stall / async_stall, sync_stall, async_stall);
  }
  if (csv) std::fputs(table.csv().c_str(), stdout);
  if (json && !json->write(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
