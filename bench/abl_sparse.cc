// Ablation A5: dense vs sparse TDI vector encoding.
//
// The paper's TDI piggybacks all n vector entries on every message.  One
// might hope that on sparse communication graphs (halo exchanges, rings)
// most entries stay zero, making (index, value) pairs cheaper on the wire.
// The measured result is a *negative* one that justifies the paper's dense
// choice: depend_interval entries are monotone counters that saturate to
// non-zero within one diameter of the communication graph, so nnz ~ n
// almost immediately and each surviving entry then costs two words (index +
// value) against the dense form's one.  "sparse wins" is judged on bytes
// per message — the wire cost — while idents/msg counts tracked entries
// (identical accounting for both encodings; Fig. 6's metric).
// Kept as an ablation because the failure mode is instructive.
//
//   ./abl_sparse [--ranks=4,8,16,32] [--scale=1.0]
#include "bench/common.h"
#include "mp/comm.h"

using namespace windar;
using namespace windar::bench;

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const auto ranks = opts.int_list("ranks", {4, 8, 16, 32}, "rank sweep");
  const double scale = opts.real("scale", 1.0, "iteration scale factor");
  const bool csv = opts.flag("csv", false, "also print CSV");
  opts.finish();

  util::Table table({"workload", "ranks", "dense idents/msg",
                     "sparse idents/msg", "dense B/msg", "sparse B/msg",
                     "sparse wins"});

  auto add_row = [&](const std::string& name, int n, const ft::Metrics& dense,
                     const ft::Metrics& sparse) {
    const double di = dense.avg_piggyback_idents();
    const double si = sparse.avg_piggyback_idents();
    auto bytes_per = [](const ft::Metrics& m) {
      return m.app_sent ? static_cast<double>(m.piggyback_bytes) /
                              static_cast<double>(m.app_sent)
                        : 0.0;
    };
    table.row({name, std::to_string(n), fmt(di), fmt(si),
               fmt(bytes_per(dense)), fmt(bytes_per(sparse)),
               bytes_per(sparse) < bytes_per(dense) ? "yes" : "no"});
  };

  for (auto app : all_apps()) {
    for (int n : ranks) {
      ft::Metrics results[2];
      for (int variant = 0; variant < 2; ++variant) {
        NpbJob job;
        job.app = app;
        job.ranks = n;
        job.scale = scale;
        job.protocol = variant == 0 ? ft::ProtocolKind::kTdi
                                    : ft::ProtocolKind::kTdiSparse;
        results[variant] = run_npb_job(job).result.total;
      }
      add_row(to_string(app), n, results[0], results[1]);
    }
  }

  // Nearest-neighbour ring: the sparsest realistic pattern.
  for (int n : ranks) {
    ft::Metrics results[2];
    for (int variant = 0; variant < 2; ++variant) {
      ft::JobConfig cfg;
      cfg.n = n;
      cfg.protocol = variant == 0 ? ft::ProtocolKind::kTdi
                                  : ft::ProtocolKind::kTdiSparse;
      cfg.latency = bench_latency();
      auto result = ft::run_job(cfg, [&](ft::Ctx& ctx) {
        const int right = (ctx.rank() + 1) % ctx.size();
        const int left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        for (int round = 0; round < 40; ++round) {
          mp::send_value(ctx, right, 0, round);
          (void)mp::recv_value<int>(ctx, left, 0);
        }
      });
      results[variant] = result.total;
    }
    add_row("ring", n, results[0], results[1]);
  }

  table.print("Ablation A5 — dense (paper) vs sparse TDI vector encoding");
  if (csv) std::fputs(table.csv().c_str(), stdout);
  return 0;
}
