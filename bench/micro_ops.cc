// Protocol micro-benchmarks (google-benchmark): the per-operation costs
// behind Fig. 7 — piggyback construction (on_send) and metadata merge
// (on_deliver) for each protocol, across system scales and determinant
// populations.
#include <benchmark/benchmark.h>

#include "windar/checkpoint.h"
#include "windar/sender_log.h"
#include "windar/tag_protocol.h"
#include "windar/tdi_protocol.h"
#include "windar/tel_protocol.h"

namespace windar::ft {
namespace {

// ---- TDI: vector piggyback + element-wise max merge ----

void BM_TdiOnSend(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TdiProtocol p(0, n);
  SeqNo idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.on_send(1, ++idx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TdiOnSend)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_TdiOnDeliver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TdiProtocol p(0, n);
  TdiProtocol sender(1, n);
  const Piggyback pb = sender.on_send(0, 1);
  SeqNo seq = 0;
  for (auto _ : state) {
    p.on_deliver(1, ++seq, seq, pb.blob);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TdiOnDeliver)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// ---- TAG: incremental antecedence-graph piggyback ----

// Each iteration: one delivery creating a determinant, then one send that
// piggybacks the increment — the steady-state TAG cycle.
void BM_TagDeliverSendCycle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TagProtocol p(0, n);
  util::ByteWriter empty;
  empty.u32(0);
  SeqNo seq = 0;
  int dst = 1;
  for (auto _ : state) {
    ++seq;
    p.on_deliver(1, seq, seq, empty.view());
    benchmark::DoNotOptimize(p.on_send(dst, seq));
    dst = 1 + static_cast<int>(seq % static_cast<SeqNo>(n - 1));
    // Periodic checkpoint-advance GC, as a real run would see.
    if (seq % 512 == 0) p.on_peer_checkpoint(0, seq);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TagDeliverSendCycle)->Arg(4)->Arg(16)->Arg(64);

// Merge cost as a function of piggybacked determinant count.
void BM_TagMergeDeterminants(benchmark::State& state) {
  const int dets = static_cast<int>(state.range(0));
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(dets));
  for (int i = 0; i < dets; ++i) {
    Determinant{2, 3, static_cast<SeqNo>(i + 1), static_cast<SeqNo>(i + 1)}
        .write(w);
  }
  const util::Bytes blob = w.take();
  SeqNo seq = 0;
  TagProtocol p(0, 8);
  for (auto _ : state) {
    p.on_deliver(1, ++seq, seq, blob);
  }
  state.SetItemsProcessed(state.iterations() * dets);
}
BENCHMARK(BM_TagMergeDeterminants)->Arg(1)->Arg(16)->Arg(128)->Arg(1024);

// ---- TEL: unstable-set piggyback ----

void BM_TelOnSendUnstable(benchmark::State& state) {
  const int unstable = static_cast<int>(state.range(0));
  TelProtocol p(0, 8);
  util::ByteWriter carrier;
  carrier.u32_vec(std::vector<SeqNo>(8, 0));
  carrier.u32(0);
  for (int i = 0; i < unstable; ++i) {
    p.on_deliver(1, static_cast<SeqNo>(i + 1), static_cast<SeqNo>(i + 1),
                 carrier.view());
  }
  SeqNo idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.on_send(1, ++idx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelOnSendUnstable)->Arg(0)->Arg(8)->Arg(64)->Arg(512);

// ---- shared plumbing ----

void BM_SenderLogAppendRelease(benchmark::State& state) {
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  SenderLog log(2);
  SeqNo idx = 0;
  for (auto _ : state) {
    LogEntry e;
    e.send_index = ++idx;
    e.payload = util::Buffer(util::Bytes(payload, 0x5A));
    log.append(1, std::move(e));
    if (idx % 64 == 0) log.release_upto(1, idx);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SenderLogAppendRelease)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CheckpointImageRoundTrip(benchmark::State& state) {
  CheckpointImage img;
  img.app.assign(static_cast<std::size_t>(state.range(0)), 0xA5);
  img.last_send.assign(32, 7);
  img.last_deliver.assign(32, 9);
  for (auto _ : state) {
    auto blob = img.serialize();
    benchmark::DoNotOptimize(CheckpointImage::deserialize(blob));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointImageRoundTrip)->Arg(1024)->Arg(65536)->Arg(1 << 20);

}  // namespace
}  // namespace windar::ft

BENCHMARK_MAIN();
