# Empty compiler generated dependencies file for windar_sim.
# This may be replaced when dependencies are built.
