file(REMOVE_RECURSE
  "CMakeFiles/windar_sim.dir/windar_sim.cpp.o"
  "CMakeFiles/windar_sim.dir/windar_sim.cpp.o.d"
  "windar_sim"
  "windar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
