file(REMOVE_RECURSE
  "CMakeFiles/simultaneous_failures.dir/simultaneous_failures.cpp.o"
  "CMakeFiles/simultaneous_failures.dir/simultaneous_failures.cpp.o.d"
  "simultaneous_failures"
  "simultaneous_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simultaneous_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
