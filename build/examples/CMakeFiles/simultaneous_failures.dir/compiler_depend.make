# Empty compiler generated dependencies file for simultaneous_failures.
# This may be replaced when dependencies are built.
