# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--rounds=20")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_stencil "/root/repo/build/examples/heat_stencil" "--iters=40")
set_tests_properties(example_heat_stencil PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_master_worker "/root/repo/build/examples/master_worker" "--tasks=32")
set_tests_properties(example_master_worker PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simultaneous_failures "/root/repo/build/examples/simultaneous_failures" "--iters=30")
set_tests_properties(example_simultaneous_failures PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_windar_sim "/root/repo/build/examples/windar_sim" "--app=ring" "--ranks=4" "--rounds=20" "--faults=1@4" "--trace")
set_tests_properties(example_windar_sim PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
