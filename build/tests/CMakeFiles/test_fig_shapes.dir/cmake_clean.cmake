file(REMOVE_RECURSE
  "CMakeFiles/test_fig_shapes.dir/test_fig_shapes.cc.o"
  "CMakeFiles/test_fig_shapes.dir/test_fig_shapes.cc.o.d"
  "test_fig_shapes"
  "test_fig_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
