# Empty dependencies file for test_fig_shapes.
# This may be replaced when dependencies are built.
