# Empty compiler generated dependencies file for test_sender_log.
# This may be replaced when dependencies are built.
