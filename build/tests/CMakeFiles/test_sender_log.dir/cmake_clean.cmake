file(REMOVE_RECURSE
  "CMakeFiles/test_sender_log.dir/test_sender_log.cc.o"
  "CMakeFiles/test_sender_log.dir/test_sender_log.cc.o.d"
  "test_sender_log"
  "test_sender_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sender_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
