file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_edge.dir/test_recovery_edge.cc.o"
  "CMakeFiles/test_recovery_edge.dir/test_recovery_edge.cc.o.d"
  "test_recovery_edge"
  "test_recovery_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
