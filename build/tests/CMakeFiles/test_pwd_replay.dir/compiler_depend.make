# Empty compiler generated dependencies file for test_pwd_replay.
# This may be replaced when dependencies are built.
