file(REMOVE_RECURSE
  "CMakeFiles/test_pwd_replay.dir/test_pwd_replay.cc.o"
  "CMakeFiles/test_pwd_replay.dir/test_pwd_replay.cc.o.d"
  "test_pwd_replay"
  "test_pwd_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pwd_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
