file(REMOVE_RECURSE
  "CMakeFiles/test_ft_basic.dir/test_ft_basic.cc.o"
  "CMakeFiles/test_ft_basic.dir/test_ft_basic.cc.o.d"
  "test_ft_basic"
  "test_ft_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ft_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
