# Empty dependencies file for test_ft_basic.
# This may be replaced when dependencies are built.
