file(REMOVE_RECURSE
  "CMakeFiles/test_seqset.dir/test_seqset.cc.o"
  "CMakeFiles/test_seqset.dir/test_seqset.cc.o.d"
  "test_seqset"
  "test_seqset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seqset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
