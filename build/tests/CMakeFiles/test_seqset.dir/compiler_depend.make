# Empty compiler generated dependencies file for test_seqset.
# This may be replaced when dependencies are built.
