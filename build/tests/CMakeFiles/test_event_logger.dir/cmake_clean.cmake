file(REMOVE_RECURSE
  "CMakeFiles/test_event_logger.dir/test_event_logger.cc.o"
  "CMakeFiles/test_event_logger.dir/test_event_logger.cc.o.d"
  "test_event_logger"
  "test_event_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_event_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
