# Empty dependencies file for test_event_logger.
# This may be replaced when dependencies are built.
