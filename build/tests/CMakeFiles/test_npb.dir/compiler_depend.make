# Empty compiler generated dependencies file for test_npb.
# This may be replaced when dependencies are built.
