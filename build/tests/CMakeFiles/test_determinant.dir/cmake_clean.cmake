file(REMOVE_RECURSE
  "CMakeFiles/test_determinant.dir/test_determinant.cc.o"
  "CMakeFiles/test_determinant.dir/test_determinant.cc.o.d"
  "test_determinant"
  "test_determinant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_determinant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
