# Empty compiler generated dependencies file for test_determinant.
# This may be replaced when dependencies are built.
