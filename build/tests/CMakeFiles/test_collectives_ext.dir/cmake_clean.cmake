file(REMOVE_RECURSE
  "CMakeFiles/test_collectives_ext.dir/test_collectives_ext.cc.o"
  "CMakeFiles/test_collectives_ext.dir/test_collectives_ext.cc.o.d"
  "test_collectives_ext"
  "test_collectives_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
