# Empty compiler generated dependencies file for test_raw_comm.
# This may be replaced when dependencies are built.
