file(REMOVE_RECURSE
  "CMakeFiles/test_raw_comm.dir/test_raw_comm.cc.o"
  "CMakeFiles/test_raw_comm.dir/test_raw_comm.cc.o.d"
  "test_raw_comm"
  "test_raw_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raw_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
