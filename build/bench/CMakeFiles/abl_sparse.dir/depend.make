# Empty dependencies file for abl_sparse.
# This may be replaced when dependencies are built.
