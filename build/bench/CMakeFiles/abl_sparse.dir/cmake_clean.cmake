file(REMOVE_RECURSE
  "CMakeFiles/abl_sparse.dir/abl_sparse.cc.o"
  "CMakeFiles/abl_sparse.dir/abl_sparse.cc.o.d"
  "abl_sparse"
  "abl_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
