file(REMOVE_RECURSE
  "CMakeFiles/fig7_tracking.dir/fig7_tracking.cc.o"
  "CMakeFiles/fig7_tracking.dir/fig7_tracking.cc.o.d"
  "fig7_tracking"
  "fig7_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
