# Empty compiler generated dependencies file for fig7_tracking.
# This may be replaced when dependencies are built.
