
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_tracking.cc" "bench/CMakeFiles/fig7_tracking.dir/fig7_tracking.cc.o" "gcc" "bench/CMakeFiles/fig7_tracking.dir/fig7_tracking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/npb/CMakeFiles/windar_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/windar/CMakeFiles/windar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/windar_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/windar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/windar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
