file(REMOVE_RECURSE
  "CMakeFiles/abl_scale.dir/abl_scale.cc.o"
  "CMakeFiles/abl_scale.dir/abl_scale.cc.o.d"
  "abl_scale"
  "abl_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
