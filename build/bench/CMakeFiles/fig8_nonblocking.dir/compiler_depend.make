# Empty compiler generated dependencies file for fig8_nonblocking.
# This may be replaced when dependencies are built.
