file(REMOVE_RECURSE
  "CMakeFiles/fig8_nonblocking.dir/fig8_nonblocking.cc.o"
  "CMakeFiles/fig8_nonblocking.dir/fig8_nonblocking.cc.o.d"
  "fig8_nonblocking"
  "fig8_nonblocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nonblocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
