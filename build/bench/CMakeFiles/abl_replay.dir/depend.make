# Empty dependencies file for abl_replay.
# This may be replaced when dependencies are built.
