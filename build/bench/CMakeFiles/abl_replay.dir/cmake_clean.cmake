file(REMOVE_RECURSE
  "CMakeFiles/abl_replay.dir/abl_replay.cc.o"
  "CMakeFiles/abl_replay.dir/abl_replay.cc.o.d"
  "abl_replay"
  "abl_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
