file(REMOVE_RECURSE
  "CMakeFiles/fig6_piggyback.dir/fig6_piggyback.cc.o"
  "CMakeFiles/fig6_piggyback.dir/fig6_piggyback.cc.o.d"
  "fig6_piggyback"
  "fig6_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
