# Empty dependencies file for fig6_piggyback.
# This may be replaced when dependencies are built.
