file(REMOVE_RECURSE
  "CMakeFiles/abl_logmem.dir/abl_logmem.cc.o"
  "CMakeFiles/abl_logmem.dir/abl_logmem.cc.o.d"
  "abl_logmem"
  "abl_logmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_logmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
