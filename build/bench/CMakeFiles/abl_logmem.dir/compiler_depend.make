# Empty compiler generated dependencies file for abl_logmem.
# This may be replaced when dependencies are built.
