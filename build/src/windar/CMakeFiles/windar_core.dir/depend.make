# Empty dependencies file for windar_core.
# This may be replaced when dependencies are built.
