
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/windar/checkpoint.cc" "src/windar/CMakeFiles/windar_core.dir/checkpoint.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/windar/event_logger.cc" "src/windar/CMakeFiles/windar_core.dir/event_logger.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/event_logger.cc.o.d"
  "/root/repo/src/windar/metrics.cc" "src/windar/CMakeFiles/windar_core.dir/metrics.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/metrics.cc.o.d"
  "/root/repo/src/windar/pes_protocol.cc" "src/windar/CMakeFiles/windar_core.dir/pes_protocol.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/pes_protocol.cc.o.d"
  "/root/repo/src/windar/process.cc" "src/windar/CMakeFiles/windar_core.dir/process.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/process.cc.o.d"
  "/root/repo/src/windar/protocol.cc" "src/windar/CMakeFiles/windar_core.dir/protocol.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/protocol.cc.o.d"
  "/root/repo/src/windar/runtime.cc" "src/windar/CMakeFiles/windar_core.dir/runtime.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/runtime.cc.o.d"
  "/root/repo/src/windar/sender_log.cc" "src/windar/CMakeFiles/windar_core.dir/sender_log.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/sender_log.cc.o.d"
  "/root/repo/src/windar/tag_protocol.cc" "src/windar/CMakeFiles/windar_core.dir/tag_protocol.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/tag_protocol.cc.o.d"
  "/root/repo/src/windar/tdi_protocol.cc" "src/windar/CMakeFiles/windar_core.dir/tdi_protocol.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/tdi_protocol.cc.o.d"
  "/root/repo/src/windar/tel_protocol.cc" "src/windar/CMakeFiles/windar_core.dir/tel_protocol.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/tel_protocol.cc.o.d"
  "/root/repo/src/windar/trace.cc" "src/windar/CMakeFiles/windar_core.dir/trace.cc.o" "gcc" "src/windar/CMakeFiles/windar_core.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/windar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/windar_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/windar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
