file(REMOVE_RECURSE
  "CMakeFiles/windar_core.dir/checkpoint.cc.o"
  "CMakeFiles/windar_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/windar_core.dir/event_logger.cc.o"
  "CMakeFiles/windar_core.dir/event_logger.cc.o.d"
  "CMakeFiles/windar_core.dir/metrics.cc.o"
  "CMakeFiles/windar_core.dir/metrics.cc.o.d"
  "CMakeFiles/windar_core.dir/pes_protocol.cc.o"
  "CMakeFiles/windar_core.dir/pes_protocol.cc.o.d"
  "CMakeFiles/windar_core.dir/process.cc.o"
  "CMakeFiles/windar_core.dir/process.cc.o.d"
  "CMakeFiles/windar_core.dir/protocol.cc.o"
  "CMakeFiles/windar_core.dir/protocol.cc.o.d"
  "CMakeFiles/windar_core.dir/runtime.cc.o"
  "CMakeFiles/windar_core.dir/runtime.cc.o.d"
  "CMakeFiles/windar_core.dir/sender_log.cc.o"
  "CMakeFiles/windar_core.dir/sender_log.cc.o.d"
  "CMakeFiles/windar_core.dir/tag_protocol.cc.o"
  "CMakeFiles/windar_core.dir/tag_protocol.cc.o.d"
  "CMakeFiles/windar_core.dir/tdi_protocol.cc.o"
  "CMakeFiles/windar_core.dir/tdi_protocol.cc.o.d"
  "CMakeFiles/windar_core.dir/tel_protocol.cc.o"
  "CMakeFiles/windar_core.dir/tel_protocol.cc.o.d"
  "CMakeFiles/windar_core.dir/trace.cc.o"
  "CMakeFiles/windar_core.dir/trace.cc.o.d"
  "libwindar_core.a"
  "libwindar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
