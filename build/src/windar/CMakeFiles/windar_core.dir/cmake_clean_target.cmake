file(REMOVE_RECURSE
  "libwindar_core.a"
)
