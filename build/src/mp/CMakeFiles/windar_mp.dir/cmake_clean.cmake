file(REMOVE_RECURSE
  "CMakeFiles/windar_mp.dir/collectives.cc.o"
  "CMakeFiles/windar_mp.dir/collectives.cc.o.d"
  "CMakeFiles/windar_mp.dir/raw_comm.cc.o"
  "CMakeFiles/windar_mp.dir/raw_comm.cc.o.d"
  "CMakeFiles/windar_mp.dir/runtime.cc.o"
  "CMakeFiles/windar_mp.dir/runtime.cc.o.d"
  "libwindar_mp.a"
  "libwindar_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windar_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
