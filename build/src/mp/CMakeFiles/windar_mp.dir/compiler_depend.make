# Empty compiler generated dependencies file for windar_mp.
# This may be replaced when dependencies are built.
