
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/collectives.cc" "src/mp/CMakeFiles/windar_mp.dir/collectives.cc.o" "gcc" "src/mp/CMakeFiles/windar_mp.dir/collectives.cc.o.d"
  "/root/repo/src/mp/raw_comm.cc" "src/mp/CMakeFiles/windar_mp.dir/raw_comm.cc.o" "gcc" "src/mp/CMakeFiles/windar_mp.dir/raw_comm.cc.o.d"
  "/root/repo/src/mp/runtime.cc" "src/mp/CMakeFiles/windar_mp.dir/runtime.cc.o" "gcc" "src/mp/CMakeFiles/windar_mp.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/windar_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/windar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
