file(REMOVE_RECURSE
  "libwindar_mp.a"
)
