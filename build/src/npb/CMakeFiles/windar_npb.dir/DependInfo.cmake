
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/adi.cc" "src/npb/CMakeFiles/windar_npb.dir/adi.cc.o" "gcc" "src/npb/CMakeFiles/windar_npb.dir/adi.cc.o.d"
  "/root/repo/src/npb/cg.cc" "src/npb/CMakeFiles/windar_npb.dir/cg.cc.o" "gcc" "src/npb/CMakeFiles/windar_npb.dir/cg.cc.o.d"
  "/root/repo/src/npb/driver.cc" "src/npb/CMakeFiles/windar_npb.dir/driver.cc.o" "gcc" "src/npb/CMakeFiles/windar_npb.dir/driver.cc.o.d"
  "/root/repo/src/npb/lu.cc" "src/npb/CMakeFiles/windar_npb.dir/lu.cc.o" "gcc" "src/npb/CMakeFiles/windar_npb.dir/lu.cc.o.d"
  "/root/repo/src/npb/mg.cc" "src/npb/CMakeFiles/windar_npb.dir/mg.cc.o" "gcc" "src/npb/CMakeFiles/windar_npb.dir/mg.cc.o.d"
  "/root/repo/src/npb/workload.cc" "src/npb/CMakeFiles/windar_npb.dir/workload.cc.o" "gcc" "src/npb/CMakeFiles/windar_npb.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/windar/CMakeFiles/windar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/windar_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/windar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/windar_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
