file(REMOVE_RECURSE
  "libwindar_npb.a"
)
