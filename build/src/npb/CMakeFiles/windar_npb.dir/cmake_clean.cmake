file(REMOVE_RECURSE
  "CMakeFiles/windar_npb.dir/adi.cc.o"
  "CMakeFiles/windar_npb.dir/adi.cc.o.d"
  "CMakeFiles/windar_npb.dir/cg.cc.o"
  "CMakeFiles/windar_npb.dir/cg.cc.o.d"
  "CMakeFiles/windar_npb.dir/driver.cc.o"
  "CMakeFiles/windar_npb.dir/driver.cc.o.d"
  "CMakeFiles/windar_npb.dir/lu.cc.o"
  "CMakeFiles/windar_npb.dir/lu.cc.o.d"
  "CMakeFiles/windar_npb.dir/mg.cc.o"
  "CMakeFiles/windar_npb.dir/mg.cc.o.d"
  "CMakeFiles/windar_npb.dir/workload.cc.o"
  "CMakeFiles/windar_npb.dir/workload.cc.o.d"
  "libwindar_npb.a"
  "libwindar_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windar_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
