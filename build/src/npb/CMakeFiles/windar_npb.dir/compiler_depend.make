# Empty compiler generated dependencies file for windar_npb.
# This may be replaced when dependencies are built.
