# Empty dependencies file for windar_util.
# This may be replaced when dependencies are built.
