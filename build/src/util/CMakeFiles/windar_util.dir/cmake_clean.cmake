file(REMOVE_RECURSE
  "CMakeFiles/windar_util.dir/check.cc.o"
  "CMakeFiles/windar_util.dir/check.cc.o.d"
  "CMakeFiles/windar_util.dir/options.cc.o"
  "CMakeFiles/windar_util.dir/options.cc.o.d"
  "CMakeFiles/windar_util.dir/stats.cc.o"
  "CMakeFiles/windar_util.dir/stats.cc.o.d"
  "CMakeFiles/windar_util.dir/table.cc.o"
  "CMakeFiles/windar_util.dir/table.cc.o.d"
  "libwindar_util.a"
  "libwindar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
