file(REMOVE_RECURSE
  "libwindar_util.a"
)
