file(REMOVE_RECURSE
  "libwindar_net.a"
)
