# Empty dependencies file for windar_net.
# This may be replaced when dependencies are built.
