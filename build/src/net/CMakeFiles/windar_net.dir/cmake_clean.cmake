file(REMOVE_RECURSE
  "CMakeFiles/windar_net.dir/fabric.cc.o"
  "CMakeFiles/windar_net.dir/fabric.cc.o.d"
  "libwindar_net.a"
  "libwindar_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windar_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
