// Link latency model for the simulated fabric.
//
// delay(bytes) = base + per_byte * bytes + U[0, jitter)
//
// The jitter term is what makes message *arrival order* non-deterministic
// between independent channels — the phenomenon the paper's relaxed execution
// model exploits (§II.C) and which the PWD baselines must serialize away.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/rng.h"

namespace windar::net {

struct LatencyModel {
  std::chrono::nanoseconds base{20'000};            // per-message fixed cost
  std::chrono::nanoseconds per_byte{80};            // ~100 Mb/s Ethernet-ish
  std::chrono::nanoseconds jitter{40'000};          // uniform [0, jitter)

  /// Identically-zero model: every delay() is 0ns for every packet size.
  /// The fabric uses this to enable the sender-side cut-through fast path
  /// (no delay to model means no scheduler hop is needed).
  bool is_zero() const {
    return base.count() == 0 && per_byte.count() == 0 && jitter.count() == 0;
  }

  std::chrono::nanoseconds delay(std::size_t bytes, util::Rng& rng) const {
    auto d = base + per_byte * static_cast<std::int64_t>(bytes);
    if (jitter.count() > 0) {
      d += std::chrono::nanoseconds(
          static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(jitter.count()))));
    }
    return d;
  }

  /// A model with zero jitter — used by tests that need deterministic
  /// arrival order.
  static LatencyModel deterministic(std::chrono::nanoseconds base_ns =
                                        std::chrono::nanoseconds(5'000),
                                    std::chrono::nanoseconds per_byte_ns =
                                        std::chrono::nanoseconds(10)) {
    return LatencyModel{base_ns, per_byte_ns, std::chrono::nanoseconds(0)};
  }

  /// A fast model for large test sweeps: sub-microsecond base, heavy jitter
  /// relative to base so reordering is frequent.
  static LatencyModel turbulent(std::chrono::nanoseconds base_ns =
                                    std::chrono::nanoseconds(2'000)) {
    return LatencyModel{base_ns, std::chrono::nanoseconds(2),
                        std::chrono::nanoseconds(30'000)};
  }
};

}  // namespace windar::net
