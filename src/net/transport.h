// Abstract message transport — the seam between the windar protocol stack
// and whatever actually moves bytes.
//
// Everything above this interface (mp::RawComm, the recovery engine, the
// TEL event logger) is written against Transport, so the same protocol code
// runs unchanged over two very different substrates:
//
//   net::Fabric           the in-process simulated interconnect: every rank
//                         is a thread in one address space, latency and
//                         reordering are modelled, faults are cooperative
//                         (kill() poisons the victim's inbox).
//   net::SocketTransport  real OS processes over Unix-domain sockets with
//                         length-prefixed framing; faults are actual SIGKILL
//                         plus a spare-process incarnation (see
//                         windar/launcher.h).
//
// The contract every backend must keep (DESIGN.md §3f):
//   * endpoint(id).inbox() is where packets for `id` appear; per-channel
//     (src, dst) FIFO is preserved for same-size zero-jitter streams;
//   * packets sent to a dead/unreachable endpoint are dropped and counted,
//     never errored back to the sender;
//   * stats() books every accepted send exactly once:
//       packets_sent == packets_delivered + packets_dropped_dead
//                                         + packets_dropped_chaos
//     on a quiescent transport (for SocketTransport the invariant is over
//     the *merged* stats of every process's transport, and only fault-free
//     traffic is guaranteed to quiesce — bytes SIGKILLed inside a kernel
//     socket buffer are sent-but-never-delivered, exactly like a real NIC).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/chaos.h"
#include "net/inbox.h"
#include "net/packet.h"

namespace windar::net {

/// Per-endpoint view handed to rank threads: the inbox packets arrive on and
/// the liveness flag the fault plane flips.  The inbox backend (bounded MPSC
/// ring or legacy BlockingQueue) is fixed at construction — see net/inbox.h.
class Endpoint {
 public:
  Endpoint() : inbox_(resolve_inbox_config(1)) {}
  explicit Endpoint(const InboxConfig& cfg) : inbox_(cfg) {}

  Inbox& inbox() { return inbox_; }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

 private:
  friend class Fabric;
  friend class SocketTransport;
  Inbox inbox_;
  std::atomic<bool> alive_{true};
};

/// Uniform traffic accounting across backends.  (The name predates the
/// Transport split; it is the stats block of every backend, not just the
/// simulated fabric.)
struct FabricStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_dead = 0;   // destination dead at delivery
  std::uint64_t packets_dropped_chaos = 0;  // sender killed mid-send (chaos)
  std::uint64_t bytes_sent = 0;  // wire bytes; chaos-dropped sends excluded
  // Socket backend only: frames rejected by the decoder (bad magic/version,
  // corrupt length prefix, truncated-by-EOF).  Each costs the offending
  // connection, never the process; the simulated backend is always 0.
  std::uint64_t frame_errors = 0;
  // Socket backend only: high-water mark, in wire bytes, of any single
  // per-peer writer queue — the figure that used to grow without bound when
  // a peer stalled.  Bounded by the writer-queue caps; merges as a max (the
  // job-wide peak), not a sum.
  std::uint64_t writer_queue_hwm = 0;

  void merge(const FabricStats& other) {
    packets_sent += other.packets_sent;
    packets_delivered += other.packets_delivered;
    packets_dropped_dead += other.packets_dropped_dead;
    packets_dropped_chaos += other.packets_dropped_chaos;
    bytes_sent += other.bytes_sent;
    frame_errors += other.frame_errors;
    if (other.writer_queue_hwm > writer_queue_hwm) {
      writer_queue_hwm = other.writer_queue_hwm;
    }
  }

  bool accounted() const {
    return packets_sent == packets_delivered + packets_dropped_dead +
                               packets_dropped_chaos;
  }
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Endpoints this transport can address (ranks plus auxiliary endpoints
  /// such as TEL's event logger).  A SocketTransport addresses the whole
  /// job but *hosts* only its own endpoint's inbox.
  virtual int endpoint_count() const = 0;
  virtual Endpoint& endpoint(EndpointId id) = 0;

  /// Enqueues a packet for asynchronous delivery.  Thread-safe.  Never
  /// blocks on a dead destination; packets to dead endpoints are dropped
  /// and counted.  The socket backend applies flow control: when a *live*
  /// peer's bounded writer queue is full the producer blocks until the
  /// writer drains (backpressure), so a stalled reader bounds the sender's
  /// memory instead of growing it.
  virtual void send(Packet p) = 0;

  /// Fault plane: mark an endpoint dead (its queued inbox is volatile state
  /// and is discarded) / re-arm it for an incarnation.  For the socket
  /// backend these act on the local process's view — the real fault is a
  /// SIGKILL delivered by the launcher.
  virtual void kill(EndpointId id) = 0;
  virtual void revive(EndpointId id) = 0;

  /// Attaches an event-keyed fault schedule (non-owning; must outlive the
  /// transport's traffic).  Call before traffic starts.
  virtual void set_chaos(FaultSchedule* chaos) = 0;

  /// Stops delivery; undelivered packets are discarded.  Idempotent.
  virtual void shutdown() = 0;

  /// This transport's accounting slab (for SocketTransport: this process's
  /// share — merge across processes for the job-wide view).
  virtual FabricStats stats() const = 0;
};

/// Backend selector shared by drivers and benches.
enum class TransportKind { kSim, kSocket };

inline const char* to_string(TransportKind k) {
  return k == TransportKind::kSim ? "sim" : "socket";
}

/// Parses "sim" / "socket"; anything else returns false.
bool parse_transport(const std::string& s, TransportKind* out);

/// Default backend: WINDAR_TRANSPORT environment variable if set to a valid
/// kind (mirrors WINDAR_FABRIC_SHARDS), else the simulated fabric.
TransportKind default_transport();

}  // namespace windar::net
