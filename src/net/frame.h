// Wire framing for the socket transport.
//
// A frame is a fixed 40-byte little-endian header followed by the packet's
// two byte sections:
//
//   [0,4)    magic      0x52464457 ("WDFR")
//   [4,5)    version    kFrameVersion
//   [5,6)    reserved   0
//   [6,8)    kind       u16   net::Packet::kind (values >= 0xFF00 are
//                             transport-internal: hello, control channel)
//   [8,12)   src        i32
//   [12,16)  dst        i32
//   [16,20)  tag        i32
//   [20,28)  seq        u64
//   [28,32)  incarnation u32  sender's incarnation (the transport-level half
//                             of the join/incarnation handshake)
//   [32,36)  meta_len   u32
//   [36,40)  payload_len u32
//   [40,...) meta bytes, then payload bytes
//
// Decoding is defensive by construction: a frame whose magic, version, or
// section lengths are wrong is a *connection*-level error — the decoder
// reports it, the transport counts it (FabricStats::frame_errors) and closes
// that connection — never a process abort.  This extends the ByteReader
// corrupt-length-prefix hardening (PR 4) across the syscall boundary: a
// malicious or corrupted peer cannot make a rank reserve gigabytes or read
// past a buffer.
//
// The encoder never copies section bytes: the writer hands the header plus
// the packet's refcounted Buffer views straight to sendmsg() as an iovec
// (scatter-gather), so the PR 4 copy-once invariant survives the syscall
// boundary.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "net/packet.h"
#include "util/buffer.h"
#include "util/check.h"
#include "util/pool.h"

namespace windar::net {

inline constexpr std::uint32_t kFrameMagic = 0x52464457;  // "WDFR" (LE)
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 40;

/// Per-section ceiling a decoder accepts before declaring the length prefix
/// corrupt.  Generous (the NPB workloads top out far below), yet small
/// enough that a corrupt prefix can never look like a plausible allocation.
inline constexpr std::size_t kDefaultMaxSectionBytes = 64u << 20;

/// Transport-internal packet kinds (never delivered to endpoint inboxes).
/// The windar layer's kinds are small enum values; everything >= 0xFF00 is
/// reserved for the transport and the launcher's control channel.
inline constexpr std::uint16_t kTransportKindBase = 0xFF00;
inline constexpr std::uint16_t kHelloKind = 0xFFFE;  // seq = incarnation

/// Bytes this packet occupies on the socket wire (header + both sections).
inline std::size_t frame_wire_size(const Packet& p) {
  return kFrameHeaderBytes + p.meta.size() + p.payload.size();
}

using FrameHeaderBytes = std::array<std::uint8_t, kFrameHeaderBytes>;

struct FrameHeader {
  std::uint16_t kind = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t tag = 0;
  std::uint64_t seq = 0;
  std::uint32_t incarnation = 0;
  std::uint32_t meta_len = 0;
  std::uint32_t payload_len = 0;
};

inline FrameHeaderBytes encode_frame_header(const Packet& p,
                                            std::uint32_t incarnation) {
  FrameHeaderBytes out{};
  std::size_t at = 0;
  auto put = [&](auto v) {
    for (std::size_t i = 0; i < sizeof(v); ++i) {
      out[at++] = static_cast<std::uint8_t>(
          static_cast<std::uint64_t>(v) >> (8 * i));
    }
  };
  put(kFrameMagic);
  put(kFrameVersion);
  put(std::uint8_t{0});
  put(p.kind);
  put(static_cast<std::uint32_t>(p.src));
  put(static_cast<std::uint32_t>(p.dst));
  put(static_cast<std::uint32_t>(p.tag));
  put(p.seq);
  put(incarnation);
  put(static_cast<std::uint32_t>(p.meta.size()));
  put(static_cast<std::uint32_t>(p.payload.size()));
  WINDAR_CHECK_EQ(at, kFrameHeaderBytes);
  return out;
}

enum class FrameError {
  kNone = 0,
  kBadMagic,    // stream desynchronised or not a windar peer
  kBadVersion,  // protocol version mismatch
  kOversize,    // corrupt length prefix (section exceeds the ceiling)
  kTruncated,   // connection EOF in the middle of a frame
};

inline const char* to_string(FrameError e) {
  switch (e) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kOversize: return "oversize-section";
    case FrameError::kTruncated: return "truncated";
  }
  return "?";
}

/// Validates and decodes a header.  Returns kNone and fills `out` on
/// success; any failure identifies which contract the bytes broke.
inline FrameError decode_frame_header(const FrameHeaderBytes& h,
                                      std::size_t max_section,
                                      FrameHeader* out) {
  std::size_t at = 0;
  auto get = [&]<typename T>(T* v) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      acc |= static_cast<std::uint64_t>(h[at++]) << (8 * i);
    }
    *v = static_cast<T>(acc);
  };
  std::uint32_t magic;
  std::uint8_t version, reserved;
  get(&magic);
  if (magic != kFrameMagic) return FrameError::kBadMagic;
  get(&version);
  if (version != kFrameVersion) return FrameError::kBadVersion;
  get(&reserved);
  (void)reserved;
  FrameHeader hdr;
  get(&hdr.kind);
  std::uint32_t src, dst, tag;
  get(&src);
  get(&dst);
  get(&tag);
  hdr.src = static_cast<std::int32_t>(src);
  hdr.dst = static_cast<std::int32_t>(dst);
  hdr.tag = static_cast<std::int32_t>(tag);
  get(&hdr.seq);
  get(&hdr.incarnation);
  get(&hdr.meta_len);
  get(&hdr.payload_len);
  if (hdr.meta_len > max_section || hdr.payload_len > max_section) {
    return FrameError::kOversize;
  }
  *out = hdr;
  return FrameError::kNone;
}

/// Incremental frame reassembler for one connection.
//
// Pull-style so the reader can recv() straight into the decoder's buffers
// (header scratch, then the packet's single body allocation — the bytes the
// application will eventually see are written exactly once, by the kernel):
//
//   while (readable) {
//     auto chunk = dec.write_cursor();
//     n = recv(fd, chunk.data(), chunk.size(), ...);
//     if (n > 0) dec.advance(n);
//     while (auto p = dec.take_packet()) deliver(*p);
//     if (dec.error() != FrameError::kNone) { close(fd); break; }
//   }
//
// A completed frame becomes a Packet whose meta/payload are views into one
// shared Buffer block (one allocation per packet, zero re-copies).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_section = kDefaultMaxSectionBytes)
      : max_section_(max_section) {}

  /// Where the next bytes belong and how many are wanted (never empty
  /// unless a decoded packet is waiting to be taken or the stream errored).
  std::span<std::uint8_t> write_cursor() {
    if (error_ != FrameError::kNone || ready_) return {};
    if (!in_body_) {
      return {header_.data() + filled_, kFrameHeaderBytes - filled_};
    }
    return {body_.data() + filled_, body_len_ - filled_};
  }

  /// `n` bytes were written at the cursor.  May complete the header (and
  /// validate it) or the body (making a packet ready).
  void advance(std::size_t n) {
    WINDAR_CHECK_LE(n, write_cursor().size()) << "FrameDecoder overfeed";
    filled_ += n;
    if (!in_body_) {
      if (filled_ < kFrameHeaderBytes) return;
      error_ = decode_frame_header(header_, max_section_, &hdr_);
      if (error_ != FrameError::kNone) return;
      body_len_ = std::size_t{hdr_.meta_len} + hdr_.payload_len;
      if (body_len_ > 0) {
        // The one buffer a received packet costs — drawn from the slab pool,
        // so steady-state receive traffic recycles a drained packet's block
        // instead of allocating (the kernel writes the bytes exactly once).
        body_ = util::BlockPool::global().acquire(body_len_);
      }
      in_body_ = true;
      filled_ = 0;
    }
    if (in_body_ && filled_ == body_len_) ready_ = true;
  }

  /// Convenience for tests and in-memory feeds: consume from `data`,
  /// returning how many bytes were accepted (stops early on error or when a
  /// packet becomes ready).
  std::size_t feed(std::span<const std::uint8_t> data) {
    std::size_t used = 0;
    while (used < data.size()) {
      auto cur = write_cursor();
      if (cur.empty()) break;
      const std::size_t n = std::min(cur.size(), data.size() - used);
      std::memcpy(cur.data(), data.data() + used, n);
      advance(n);
      used += n;
    }
    return used;
  }

  /// The completed packet, if one is ready.  Resets the decoder for the
  /// next frame.
  std::optional<Packet> take_packet() {
    if (!ready_) return std::nullopt;
    util::Buffer block =
        util::Buffer::from_block(std::move(body_), body_len_);
    Packet p = make_packet(hdr_.src, hdr_.dst, hdr_.kind, hdr_.tag, hdr_.seq,
                           block.view(0, hdr_.meta_len),
                           block.view(hdr_.meta_len, hdr_.payload_len));
    last_incarnation_ = hdr_.incarnation;
    body_len_ = 0;
    filled_ = 0;
    in_body_ = false;
    ready_ = false;
    return p;
  }

  /// Incarnation stamped on the most recently completed frame.
  std::uint32_t last_incarnation() const { return last_incarnation_; }

  FrameError error() const { return error_; }

  /// True if the stream may end here without losing data (between frames).
  bool at_frame_boundary() const {
    return !in_body_ && filled_ == 0 && !ready_;
  }

 private:
  std::size_t max_section_;
  FrameHeaderBytes header_{};
  FrameHeader hdr_;
  util::BlockRef body_;      // pooled body block for the in-progress frame
  std::size_t body_len_ = 0;  // bytes this frame's body occupies in body_
  std::size_t filled_ = 0;
  bool in_body_ = false;
  bool ready_ = false;
  FrameError error_ = FrameError::kNone;
  std::uint32_t last_incarnation_ = 0;
};

}  // namespace windar::net
