// Simulated interconnect.
//
// A Fabric owns N endpoints (one per rank, plus auxiliary endpoints such as
// TEL's stable-storage event logger).  `send` stamps the packet with a
// delivery deadline drawn from the latency model and hands it to a single
// scheduler thread, which moves packets into destination inboxes when their
// deadline passes.  Because channels share the scheduler but draw independent
// jitter, packets on different channels are frequently reordered relative to
// their send order — the source of non-deterministic arrival the protocols
// under study must cope with.
//
// Fault plane: `kill(ep)` marks an endpoint dead and discards its queued
// inbox (a crashed node loses volatile state); in-flight packets that reach a
// dead endpoint are dropped and counted.  `revive(ep)` re-arms the endpoint
// for the rank's incarnation.  Recovery-time retransmission is the job of the
// layers above — the fabric itself is a lossy-when-dead, reordering,
// otherwise reliable network.
//
// An optional FaultSchedule (chaos.h) extends the fault plane with scripted,
// event-keyed triggers: every send and every completed delivery is matched
// against the schedule, which may duplicate or delay packets and fires kill
// triggers through its handler (the runtime turns those into rank kills).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "net/latency.h"
#include "net/packet.h"
#include "util/queue.h"
#include "util/rng.h"

namespace windar::net {

/// Per-endpoint view handed to rank threads.
class Endpoint {
 public:
  util::BlockingQueue<Packet>& inbox() { return inbox_; }
  bool alive() const { return alive_.load(std::memory_order_acquire); }

 private:
  friend class Fabric;
  util::BlockingQueue<Packet> inbox_;
  std::atomic<bool> alive_{true};
};

struct FabricStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped_dead = 0;  // destination dead at delivery time
  std::uint64_t bytes_sent = 0;
};

class Fabric {
 public:
  /// `endpoints` includes any auxiliary endpoints (e.g. the TEL logger).
  Fabric(int endpoints, LatencyModel model, std::uint64_t seed);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int endpoint_count() const { return static_cast<int>(eps_.size()); }
  Endpoint& endpoint(EndpointId id);

  /// Enqueues a packet for delayed delivery.  Thread-safe.  Packets sent to
  /// dead endpoints still travel and are dropped on arrival, modelling
  /// in-flight loss at the moment of a crash.
  void send(Packet p);

  /// Marks the endpoint dead and discards all packets queued in its inbox.
  void kill(EndpointId id);

  /// Re-arms a killed endpoint for an incarnation.
  void revive(EndpointId id);

  /// Attaches an event-keyed fault schedule (non-owning; must outlive the
  /// fabric's traffic).  Every send and completed delivery is matched
  /// against it.  Call before traffic starts.
  void set_chaos(FaultSchedule* chaos) {
    chaos_.store(chaos, std::memory_order_release);
  }

  /// Stops the scheduler; undelivered packets are discarded.  Idempotent.
  void shutdown();

  FabricStats stats() const;

 private:
  struct InFlight {
    std::chrono::steady_clock::time_point deliver_at;
    std::uint64_t order;  // tie-break so equal deadlines keep send order
    Packet packet;
  };
  struct Later {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.order > b.order;
    }
  };

  void scheduler_loop();

  LatencyModel model_;
  std::vector<std::unique_ptr<Endpoint>> eps_;
  std::atomic<FaultSchedule*> chaos_{nullptr};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<InFlight, std::vector<InFlight>, Later> in_flight_;
  util::Rng rng_;
  std::uint64_t next_order_ = 0;
  bool shutdown_ = false;
  FabricStats stats_;

  std::thread scheduler_;
};

}  // namespace windar::net
