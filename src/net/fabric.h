// Simulated interconnect — the in-process Transport backend (and the
// default one; see net/transport.h for the interface contract and
// net/socket_transport.h for the real-process backend).
//
// A Fabric owns N endpoints (one per rank, plus auxiliary endpoints such as
// TEL's stable-storage event logger).  `send` stamps the packet with a
// delivery deadline drawn from the latency model and hands it to one of
// `num_shards` scheduler threads — packets are sharded by destination
// (`dst % num_shards`), so every packet for one endpoint flows through one
// shard and per-channel FIFO is structural.  Each shard owns its own mutex,
// condition variable, in-flight priority queue, RNG stream, and stats slab;
// `stats()` merges the slabs on read.  Because channels share a shard's
// scheduler but draw independent jitter, packets on different channels are
// frequently reordered relative to their send order — the source of
// non-deterministic arrival the protocols under study must cope with.
// `num_shards == 1` reproduces the single-scheduler global delivery order
// exactly (the deterministic-test mode).
//
// Fault plane: `kill(ep)` marks an endpoint dead and discards its queued
// inbox (a crashed node loses volatile state); in-flight packets that reach a
// dead endpoint are dropped and counted.  `revive(ep)` re-arms the endpoint
// for the rank's incarnation.  Recovery-time retransmission is the job of the
// layers above — the fabric itself is a lossy-when-dead, reordering,
// otherwise reliable network.
//
// Drop accounting invariant (asserted by tests/test_fabric.cc): on a
// quiescent, non-shut-down fabric,
//   packets_sent == packets_delivered + packets_dropped_dead
//                                     + packets_dropped_chaos.
// A packet counts as delivered only when the inbox push actually succeeded —
// a concurrent kill() that poisons the inbox between the liveness check and
// the push books the packet under packets_dropped_dead, never both.
//
// An optional FaultSchedule (chaos.h) extends the fault plane with scripted,
// event-keyed triggers: every send and every completed delivery is matched
// against the schedule, which may duplicate or delay packets and fires kill
// triggers through its handler (the runtime turns those into rank kills).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "net/inbox.h"
#include "net/latency.h"
#include "net/packet.h"
#include "net/transport.h"
#include "util/rng.h"

namespace windar::net {

class Fabric final : public Transport {
 public:
  /// `endpoints` includes any auxiliary endpoints (e.g. the TEL logger).
  /// `num_shards` scheduler threads split the endpoints by `dst %
  /// num_shards`; 0 resolves the default — the WINDAR_FABRIC_SHARDS
  /// environment variable if set, else min(4, hardware_concurrency).
  /// `inbox` overrides the per-endpoint inbox backend/capacity; nullopt
  /// resolves WINDAR_INBOX / WINDAR_INBOX_CAP (default: bounded MPSC ring).
  Fabric(int endpoints, LatencyModel model, std::uint64_t seed,
         int num_shards = 0, std::optional<InboxConfig> inbox = std::nullopt);
  ~Fabric() override;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  int endpoint_count() const override { return static_cast<int>(eps_.size()); }
  Endpoint& endpoint(EndpointId id) override;

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Default shard count when the constructor gets `num_shards == 0`:
  /// WINDAR_FABRIC_SHARDS if set and positive, else
  /// min(4, hardware_concurrency).
  static int default_shards();

  /// Enqueues a packet for delayed delivery.  Thread-safe.  Packets sent to
  /// dead endpoints still travel and are dropped on arrival, modelling
  /// in-flight loss at the moment of a crash.
  void send(Packet p) override;

  /// Marks the endpoint dead and discards all packets queued in its inbox.
  void kill(EndpointId id) override;

  /// Re-arms a killed endpoint for an incarnation.
  void revive(EndpointId id) override;

  /// Attaches an event-keyed fault schedule (non-owning; must outlive the
  /// fabric's traffic).  Every send and completed delivery is matched
  /// against it.  Call before traffic starts.
  void set_chaos(FaultSchedule* chaos) override {
    chaos_.store(chaos, std::memory_order_release);
  }

  /// Stops the schedulers; undelivered packets are discarded.  Idempotent.
  void shutdown() override;

  /// Merged view of the per-shard stats slabs.
  FabricStats stats() const override;

 private:
  struct InFlight {
    std::chrono::steady_clock::time_point deliver_at;
    std::uint64_t order;  // tie-break so equal deadlines keep send order
    Packet packet;
  };
  struct Later {
    bool operator()(const InFlight& a, const InFlight& b) const {
      if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
      return a.order > b.order;
    }
  };

  // One scheduler's world: everything a shard touches per packet lives on
  // its own cache lines so shards never contend except in stats().
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::priority_queue<InFlight, std::vector<InFlight>, Later> in_flight;
    util::Rng rng;          // independent jitter stream, guarded by mu
    FabricStats stats;      // slab merged by Fabric::stats()
    bool stopping = false;  // guarded by mu
    std::thread thread;
  };

  Shard& shard_for(EndpointId dst) {
    return *shards_[static_cast<std::size_t>(dst) % shards_.size()];
  }

  void scheduler_loop(Shard& shard);

  /// Accounting slab for the zero-latency cut-through path (sender threads
  /// deliver directly, so these can't live under any shard's mutex).
  struct alignas(64) DirectStats {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> dropped_dead{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  LatencyModel model_;
  std::vector<std::unique_ptr<Endpoint>> eps_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<FaultSchedule*> chaos_{nullptr};
  std::atomic<std::uint64_t> next_order_{0};
  std::atomic<bool> shutdown_{false};

  // Cut-through plumbing (active only when the latency model is identically
  // zero and WINDAR_FABRIC_CUTTHROUGH is not "0"/"off").  shard_pending_[d]
  // counts packets for endpoint d still inside the shard scheduler: while it
  // is non-zero, new sends to d keep taking the shard path so a packet that
  // fell back (full ring, chaos duplicate) is never overtaken on its own
  // channel — that preserves the documented per-channel FIFO for zero-jitter
  // same-size streams.
  bool cut_through_ = false;
  DirectStats direct_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> shard_pending_;
};

}  // namespace windar::net
