#include "net/socket_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace windar::net {

namespace {

void fill_addr(const std::string& path, sockaddr_un* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  WINDAR_CHECK_LT(path.size(), sizeof(addr->sun_path))
      << "socket path too long: " << path;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  WINDAR_CHECK_GE(flags, 0) << "fcntl(F_GETFL): " << std::strerror(errno);
  WINDAR_CHECK_GE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0)
      << "fcntl(F_SETFL): " << std::strerror(errno);
}

}  // namespace

std::string SocketTransport::socket_path(const std::string& dir,
                                         EndpointId id) {
  return dir + "/ep" + std::to_string(id) + ".sock";
}

SocketTransport::SocketTransport(SocketTransportOptions opts)
    : opts_(std::move(opts)) {
  WINDAR_CHECK_GT(opts_.endpoints, 0) << "transport needs endpoints";
  WINDAR_CHECK(opts_.self >= 0 && opts_.self < opts_.endpoints)
      << "self endpoint " << opts_.self << " outside job of "
      << opts_.endpoints;
  WINDAR_CHECK(!opts_.dir.empty()) << "socket dir required";

  self_ep_ = std::make_unique<Endpoint>(
      opts_.inbox.has_value() ? *opts_.inbox
                              : resolve_inbox_config(opts_.endpoints));
  const auto n = static_cast<std::size_t>(opts_.endpoints);
  peer_down_ = std::make_unique<std::atomic<bool>[]>(n);
  peer_incarnation_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);

  const std::string path = socket_path(opts_.dir, opts_.self);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  WINDAR_CHECK_GE(listen_fd_, 0) << "socket(): " << std::strerror(errno);
  ::unlink(path.c_str());
  sockaddr_un addr;
  fill_addr(path, &addr);
  WINDAR_CHECK_EQ(
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "bind(" << path << "): " << std::strerror(errno);
  WINDAR_CHECK_EQ(::listen(listen_fd_, 64), 0)
      << "listen(): " << std::strerror(errno);

  WINDAR_CHECK_EQ(::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC), 0)
      << "pipe2(): " << std::strerror(errno);

  writers_.resize(n);
  for (int peer = 0; peer < opts_.endpoints; ++peer) {
    if (peer == opts_.self) continue;
    auto w = std::make_unique<PeerWriter>();
    w->thread = std::thread([this, peer, pw = w.get()] {
      writer_loop(peer, *pw);
    });
    writers_[static_cast<std::size_t>(peer)] = std::move(w);
  }
  reader_ = std::thread([this] { reader_loop(); });
}

SocketTransport::~SocketTransport() { shutdown(); }

Endpoint& SocketTransport::endpoint(EndpointId id) {
  WINDAR_CHECK_EQ(id, opts_.self)
      << "a SocketTransport hosts only its own endpoint";
  return *self_ep_;
}

std::uint32_t SocketTransport::peer_incarnation(EndpointId id) const {
  WINDAR_CHECK(id >= 0 && id < opts_.endpoints) << "bad endpoint " << id;
  return peer_incarnation_[static_cast<std::size_t>(id)].load(
      std::memory_order_acquire);
}

void SocketTransport::send(Packet p) {
  WINDAR_CHECK(p.dst >= 0 && p.dst < opts_.endpoints)
      << "send to bad endpoint " << p.dst;
  if (shutdown_.load(std::memory_order_acquire)) return;
  // Same chaos choreography as Fabric::send: triggers fire before the
  // packet enters the transport, outside every transport lock.  kDelay
  // shaping is meaningless here (latency is real) and is ignored.
  FaultSchedule::SendEffects fx;
  if (FaultSchedule* chaos = chaos_.load(std::memory_order_acquire)) {
    fx = chaos->on_send(p);
    if (fx.drop) {
      std::scoped_lock lock(stats_mu_);
      ++stats_.packets_sent;
      ++stats_.packets_dropped_chaos;
      return;
    }
  }
  if (p.dst == opts_.self) {
    // Loopback: no wire, but identical accounting so merged stats stay
    // backend-agnostic.
    if (fx.duplicate) deliver_local(p);
    deliver_local(std::move(p));
    return;
  }
  PeerWriter& w = *writers_[static_cast<std::size_t>(p.dst)];
  const std::size_t copies = fx.duplicate ? 2 : 1;
  const std::size_t wire_each = frame_wire_size(p);
  // Backpressure: reserve queue depth before pushing, blocking while a live
  // peer's queue is at either cap.  This is the bound that keeps a stalled
  // reader from growing this process without limit.
  reserve_writer_depth(p.dst, w, copies, copies * wire_each);
  {
    std::scoped_lock lock(stats_mu_);
    stats_.packets_sent += copies;
  }
  if (fx.duplicate) {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    if (!w.queue.push(p)) {  // poisoned by shutdown
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      release_writer_depth(w, 1, wire_each);
    }
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (!w.queue.push(std::move(p))) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    release_writer_depth(w, 1, wire_each);
  }
}

void SocketTransport::reserve_writer_depth(EndpointId peer, PeerWriter& w,
                                           std::size_t packets,
                                           std::size_t bytes) {
  const auto peer_idx = static_cast<std::size_t>(peer);
  std::size_t depth_bytes;
  {
    std::unique_lock lock(w.bp_mu);
    w.bp_cv.wait(lock, [&] {
      // Blocking is only ever for flow control on a live peer: shutdown,
      // poison, and peer death all release the producer (the queue then
      // drains by dropping, which frees the depth anyway).
      return shutdown_.load(std::memory_order_acquire) ||
             peer_down_[peer_idx].load(std::memory_order_acquire) ||
             w.queue.poisoned() ||
             (w.queued_packets < opts_.writer_queue_max_packets &&
              w.queued_bytes < opts_.writer_queue_max_bytes);
    });
    w.queued_packets += packets;
    w.queued_bytes += bytes;
    depth_bytes = w.queued_bytes;
  }
  std::scoped_lock lock(stats_mu_);
  if (depth_bytes > stats_.writer_queue_hwm) {
    stats_.writer_queue_hwm = depth_bytes;
  }
}

void SocketTransport::release_writer_depth(PeerWriter& w, std::size_t packets,
                                           std::size_t bytes) {
  {
    std::scoped_lock lock(w.bp_mu);
    w.queued_packets -= packets;
    w.queued_bytes -= bytes;
  }
  w.bp_cv.notify_all();
}

bool SocketTransport::flush(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (inflight_.load(std::memory_order_acquire) != 0) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

void SocketTransport::deliver_local(Packet p) {
  const int src = p.src;
  const int dst = p.dst;
  const std::uint16_t kind = p.kind;
  const std::size_t bytes = frame_wire_size(p);
  const bool delivered =
      self_ep_->alive() && self_ep_->inbox_.push(std::move(p));
  {
    std::scoped_lock lock(stats_mu_);
    ++stats_.packets_sent;
    stats_.bytes_sent += bytes;
    if (delivered) {
      ++stats_.packets_delivered;
    } else {
      ++stats_.packets_dropped_dead;
    }
  }
  if (delivered) {
    if (FaultSchedule* chaos = chaos_.load(std::memory_order_acquire)) {
      chaos->on_deliver(src, dst, kind);
    }
  }
}

void SocketTransport::kill(EndpointId id) {
  WINDAR_CHECK(id >= 0 && id < opts_.endpoints) << "bad endpoint " << id;
  if (id == opts_.self) {
    self_ep_->alive_.store(false, std::memory_order_release);
    self_ep_->inbox_.poison();
    return;
  }
  // Local view only: the peer process (if any) is the launcher's to SIGKILL.
  peer_down_[static_cast<std::size_t>(id)].store(true,
                                                 std::memory_order_release);
  // Producers may be parked on the peer's full writer queue; death releases
  // them (the queue now drains by dropping).
  if (auto& w = writers_[static_cast<std::size_t>(id)]) w->bp_cv.notify_all();
}

void SocketTransport::revive(EndpointId id) {
  WINDAR_CHECK(id >= 0 && id < opts_.endpoints) << "bad endpoint " << id;
  if (id == opts_.self) {
    self_ep_->inbox_.revive();
    self_ep_->alive_.store(true, std::memory_order_release);
    return;
  }
  peer_down_[static_cast<std::size_t>(id)].store(false,
                                                 std::memory_order_release);
}

void SocketTransport::shutdown() {
  if (shutdown_.exchange(true)) return;
  // Poison the hosted inbox first: the reader thread may be blocked pushing
  // into a full bounded ring whose consumer already stopped popping — poison
  // fails that push immediately, so the reader can reach its shutdown wake.
  self_ep_->inbox_.poison();
  for (auto& w : writers_) {
    if (!w) continue;
    w->queue.poison();
    w->bp_cv.notify_all();  // unblock producers parked on a full queue
  }
  for (auto& w : writers_) {
    if (!w) continue;
    if (w->thread.joinable()) w->thread.join();
    if (w->fd >= 0) {
      ::close(w->fd);
      w->fd = -1;
    }
  }
  // Wake the reader out of poll().
  const char one = 1;
  (void)!::write(wake_pipe_[1], &one, 1);
  if (reader_.joinable()) reader_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  ::unlink(socket_path(opts_.dir, opts_.self).c_str());
}

FabricStats SocketTransport::stats() const {
  std::scoped_lock lock(stats_mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Writer side
// ---------------------------------------------------------------------------

void SocketTransport::writer_loop(EndpointId peer, PeerWriter& w) {
  const auto peer_idx = static_cast<std::size_t>(peer);
  while (auto item = w.queue.pop()) {
    Packet p = std::move(*item);
    // The packet left the queue: free its flow-control depth now, so at most
    // cap + one-in-write packets are ever held per peer.
    release_writer_depth(w, 1, frame_wire_size(p));
    if (shutdown_.load(std::memory_order_acquire)) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    bool sent_ok = false;
    if (!peer_down_[peer_idx].load(std::memory_order_acquire)) {
      // On a mid-stream failure the peer may be a freshly respawned
      // incarnation: one reconnect attempt before declaring the packet lost
      // in flight.
      for (int attempt = 0; attempt < 2 && !sent_ok; ++attempt) {
        if (w.fd < 0 && !connect_peer(peer, w)) break;
        const WriteResult r = write_frame(w.fd, p);
        if (r == WriteResult::kOk) {
          sent_ok = true;
        } else if (r == WriteResult::kAborted) {
          inflight_.fetch_sub(1, std::memory_order_acq_rel);
          return;
        } else {
          ::close(w.fd);
          w.fd = -1;
        }
      }
    }
    {
      std::scoped_lock lock(stats_mu_);
      if (sent_ok) {
        stats_.bytes_sent += frame_wire_size(p);
      } else {
        ++stats_.packets_dropped_dead;
      }
    }
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

bool SocketTransport::connect_peer(EndpointId peer, PeerWriter& w) {
  const std::string path = socket_path(opts_.dir, peer);
  sockaddr_un addr;
  fill_addr(path, &addr);
  const auto now = std::chrono::steady_clock::now();
  // A peer that just failed a full window is almost certainly dead; charge
  // later packets one attempt instead of a window until it has had time to
  // come back.
  const int attempts =
      now < w.fast_fail_until ? 1 : std::max(1, opts_.connect_attempts);
  for (int i = 0; i < attempts; ++i) {
    if (shutdown_.load(std::memory_order_acquire)) return false;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    WINDAR_CHECK_GE(fd, 0) << "socket(): " << std::strerror(errno);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      if (opts_.sndbuf_bytes > 0) {
        (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.sndbuf_bytes,
                           sizeof(opts_.sndbuf_bytes));
      }
      set_nonblocking(fd);
      // First frame on every connection: who we are and which incarnation.
      const Packet hello = make_packet(opts_.self, peer, kHelloKind, 0,
                                       opts_.incarnation);
      if (write_frame(fd, hello) == WriteResult::kOk) {
        std::scoped_lock lock(stats_mu_);
        stats_.bytes_sent += frame_wire_size(hello);
        w.fd = fd;
        w.fast_fail_until = {};
        return true;
      }
    }
    ::close(fd);
    if (i + 1 < attempts) std::this_thread::sleep_for(opts_.connect_retry);
  }
  w.fast_fail_until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  return false;
}

SocketTransport::WriteResult SocketTransport::write_frame(int fd,
                                                          const Packet& p) {
  // Scatter-gather straight from the packet's refcounted sections: the only
  // bytes assembled here are the 40-byte header on the stack.  meta/payload
  // go to the kernel from the Buffer storage they have aliased since the
  // sender encoded them — zero per-message payload copies.
  FrameHeaderBytes hdr = encode_frame_header(p, opts_.incarnation);
  iovec iov[3];
  iov[0] = {hdr.data(), hdr.size()};
  iov[1] = {const_cast<std::uint8_t*>(p.meta.data()), p.meta.size()};
  iov[2] = {const_cast<std::uint8_t*>(p.payload.data()), p.payload.size()};
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 3;
  std::size_t remaining = frame_wire_size(p);
  while (remaining > 0) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (shutdown_.load(std::memory_order_acquire)) {
          return WriteResult::kAborted;
        }
        pollfd pfd{fd, POLLOUT, 0};
        (void)::poll(&pfd, 1, 20);
        continue;
      }
      // EPIPE / ECONNRESET / anything else: the peer is gone mid-frame.
      return WriteResult::kPeerGone;
    }
    remaining -= static_cast<std::size_t>(n);
    // Advance the iovec past what the kernel took (partial-write path).
    std::size_t off = static_cast<std::size_t>(n);
    while (off > 0 && msg.msg_iovlen > 0) {
      if (off >= msg.msg_iov[0].iov_len) {
        off -= msg.msg_iov[0].iov_len;
        ++msg.msg_iov;
        --msg.msg_iovlen;
      } else {
        msg.msg_iov[0].iov_base =
            static_cast<std::uint8_t*>(msg.msg_iov[0].iov_base) + off;
        msg.msg_iov[0].iov_len -= off;
        off = 0;
      }
    }
    // Skip now-empty leading entries so msg_iovlen reaches 0 at the end.
    while (msg.msg_iovlen > 0 && msg.msg_iov[0].iov_len == 0) {
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
  }
  return WriteResult::kOk;
}

// ---------------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------------

void SocketTransport::reader_loop() {
  struct Conn {
    int fd;
    FrameDecoder dec;
  };
  std::vector<Conn> conns;
  std::vector<pollfd> pfds;
  while (!shutdown_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const Conn& c : conns) pfds.push_back({c.fd, POLLIN, 0});
    if (::poll(pfds.data(), pfds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[1].revents != 0) break;  // shutdown wake
    // Connections accepted below were not in this poll set: only the first
    // `polled` entries of conns have a matching pfds[i + 2]; fresh fds wait
    // for the next poll round.
    const std::size_t polled = pfds.size() - 2;
    if (pfds[0].revents != 0) {
      for (;;) {
        const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        conns.push_back(Conn{fd, FrameDecoder(opts_.max_section_bytes)});
      }
    }
    // pfds[i + 2] mirrors conns[i] for i < polled; service and compact in
    // one pass.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < conns.size(); ++i) {
      Conn& c = conns[i];
      bool alive = true;
      if (i < polled && pfds[i + 2].revents != 0) {
        alive = service_connection(c.fd, c.dec);
      }
      if (!alive) {
        ::close(c.fd);
        continue;
      }
      if (keep != i) conns[keep] = std::move(c);
      ++keep;
    }
    conns.resize(keep);
  }
  for (const Conn& c : conns) ::close(c.fd);
}

bool SocketTransport::service_connection(int fd, FrameDecoder& dec) {
  for (;;) {
    while (auto p = dec.take_packet()) {
      if (p->kind == kHelloKind) {
        if (p->src < 0 || p->src >= opts_.endpoints) {
          std::scoped_lock lock(stats_mu_);
          ++stats_.frame_errors;
          return false;
        }
        peer_incarnation_[static_cast<std::size_t>(p->src)].store(
            dec.last_incarnation(), std::memory_order_release);
        continue;
      }
      if (p->kind >= kTransportKindBase) continue;  // reserved, not for us
      if (p->dst != opts_.self || p->src < 0 || p->src >= opts_.endpoints) {
        // Misrouted frame: the stream is not speaking to this endpoint —
        // treat like corruption, count and hang up.
        std::scoped_lock lock(stats_mu_);
        ++stats_.frame_errors;
        return false;
      }
      const int src = p->src;
      const int dst = p->dst;
      const std::uint16_t kind = p->kind;
      const bool delivered =
          self_ep_->alive() && self_ep_->inbox_.push(std::move(*p));
      {
        std::scoped_lock lock(stats_mu_);
        if (delivered) {
          ++stats_.packets_delivered;
        } else {
          ++stats_.packets_dropped_dead;
        }
      }
      if (delivered) {
        if (FaultSchedule* chaos = chaos_.load(std::memory_order_acquire)) {
          chaos->on_deliver(src, dst, kind);
        }
      }
    }
    if (dec.error() != FrameError::kNone) {
      // Corrupt magic/version/length: the connection is charged, never the
      // process.
      std::scoped_lock lock(stats_mu_);
      ++stats_.frame_errors;
      return false;
    }
    const auto cur = dec.write_cursor();
    const ssize_t n = ::read(fd, cur.data(), cur.size());
    if (n > 0) {
      dec.advance(static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      // EOF or hard error.  Mid-frame means the peer vanished with a frame
      // in flight (SIGKILL does this routinely): counted, connection
      // closed, process unharmed.
      if (!dec.at_frame_boundary()) {
        std::scoped_lock lock(stats_mu_);
        ++stats_.frame_errors;
      }
      return false;
    }
    if (errno == EINTR) continue;
    return true;  // EAGAIN: drained for now
  }
}

}  // namespace windar::net
