#include "net/fabric.h"

#include "util/check.h"

namespace windar::net {

Fabric::Fabric(int endpoints, LatencyModel model, std::uint64_t seed)
    : model_(model), rng_(seed) {
  WINDAR_CHECK_GT(endpoints, 0) << "fabric needs at least one endpoint";
  eps_.reserve(static_cast<std::size_t>(endpoints));
  for (int i = 0; i < endpoints; ++i) {
    eps_.push_back(std::make_unique<Endpoint>());
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
}

Fabric::~Fabric() { shutdown(); }

Endpoint& Fabric::endpoint(EndpointId id) {
  WINDAR_CHECK(id >= 0 && id < endpoint_count()) << "bad endpoint " << id;
  return *eps_[static_cast<std::size_t>(id)];
}

void Fabric::send(Packet p) {
  WINDAR_CHECK(p.dst >= 0 && p.dst < endpoint_count())
      << "send to bad endpoint " << p.dst;
  // Chaos triggers run before enqueue and outside mu_: a kill fired here may
  // re-enter the fabric (kill()).  A kill targeting the sender itself drops
  // the triggering packet (the crash interrupted the send); kills of other
  // endpoints leave it in flight (packets survive their sender's death).
  FaultSchedule::SendEffects fx;
  if (FaultSchedule* chaos = chaos_.load(std::memory_order_acquire)) {
    fx = chaos->on_send(p);
    if (fx.drop) {
      std::scoped_lock lock(mu_);
      ++stats_.packets_dropped_dead;
      return;
    }
  }
  const std::size_t bytes = p.wire_size();
  {
    std::scoped_lock lock(mu_);
    if (shutdown_) return;
    const auto now = std::chrono::steady_clock::now();
    if (fx.duplicate) {
      // Independent latency draw: the duplicate frequently overtakes the
      // original, exercising the receiver's duplicate filter both ways.
      const auto dup_delay = model_.delay(bytes, rng_) + fx.extra_delay;
      ++stats_.packets_sent;
      stats_.bytes_sent += bytes;
      in_flight_.push(InFlight{now + dup_delay, next_order_++, p});
    }
    const auto delay = model_.delay(bytes, rng_) + fx.extra_delay;
    ++stats_.packets_sent;
    stats_.bytes_sent += bytes;
    in_flight_.push(InFlight{now + delay, next_order_++, std::move(p)});
  }
  cv_.notify_one();
}

void Fabric::kill(EndpointId id) {
  Endpoint& ep = endpoint(id);
  ep.alive_.store(false, std::memory_order_release);
  // Queued-but-unconsumed packets are volatile state of the crashed node.
  ep.inbox_.poison();
}

void Fabric::revive(EndpointId id) {
  Endpoint& ep = endpoint(id);
  ep.inbox_.revive();
  ep.alive_.store(true, std::memory_order_release);
}

void Fabric::shutdown() {
  {
    std::scoped_lock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  for (auto& ep : eps_) ep->inbox_.poison();
}

FabricStats Fabric::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

void Fabric::scheduler_loop() {
  std::unique_lock lock(mu_);
  while (true) {
    if (shutdown_) return;
    if (in_flight_.empty()) {
      cv_.wait(lock, [&] { return shutdown_ || !in_flight_.empty(); });
      continue;
    }
    const auto deadline = in_flight_.top().deliver_at;
    if (std::chrono::steady_clock::now() < deadline) {
      cv_.wait_until(lock, deadline,
                     [&] { return shutdown_ ||
                                  (!in_flight_.empty() &&
                                   in_flight_.top().deliver_at < deadline); });
      continue;
    }
    // Deadline reached: deliver (or drop) the packet outside the lock so a
    // full inbox never stalls the whole fabric.
    Packet p = std::move(const_cast<InFlight&>(in_flight_.top()).packet);
    in_flight_.pop();
    const int src = p.src;
    const int dst_id = p.dst;
    const std::uint16_t kind = p.kind;
    Endpoint& dst = *eps_[static_cast<std::size_t>(dst_id)];
    if (dst.alive()) {
      ++stats_.packets_delivered;
      lock.unlock();
      dst.inbox_.push(std::move(p));
      // Delivery-keyed chaos triggers fire after the packet reached the
      // inbox: "kill on the Kth delivery" means the Kth packet arrived and
      // then the endpoint died (losing whatever was still queued).
      if (FaultSchedule* chaos = chaos_.load(std::memory_order_acquire)) {
        chaos->on_deliver(src, dst_id, kind);
      }
      lock.lock();
    } else {
      ++stats_.packets_dropped_dead;
    }
  }
}

}  // namespace windar::net
