#include "net/fabric.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace windar::net {

int Fabric::default_shards() {
  if (const char* env = std::getenv("WINDAR_FABRIC_SHARDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, hw == 0 ? 1u : hw));
}

Fabric::Fabric(int endpoints, LatencyModel model, std::uint64_t seed,
               int num_shards)
    : model_(model) {
  WINDAR_CHECK_GT(endpoints, 0) << "fabric needs at least one endpoint";
  if (num_shards <= 0) num_shards = default_shards();
  num_shards = std::min(num_shards, endpoints);
  eps_.reserve(static_cast<std::size_t>(endpoints));
  for (int i = 0; i < endpoints; ++i) {
    eps_.push_back(std::make_unique<Endpoint>());
  }
  util::Rng seeder(seed);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Split per shard so adding shards never re-correlates jitter streams;
    // one shard reproduces the seed's original stream behaviourally (same
    // generator family, deterministic in the seed).
    shard->rng = seeder.split(static_cast<std::uint64_t>(s));
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, sh = shard.get()] {
      scheduler_loop(*sh);
    });
  }
}

Fabric::~Fabric() { shutdown(); }

Endpoint& Fabric::endpoint(EndpointId id) {
  WINDAR_CHECK(id >= 0 && id < endpoint_count()) << "bad endpoint " << id;
  return *eps_[static_cast<std::size_t>(id)];
}

void Fabric::send(Packet p) {
  WINDAR_CHECK(p.dst >= 0 && p.dst < endpoint_count())
      << "send to bad endpoint " << p.dst;
  // Chaos triggers run before enqueue and outside any shard lock: a kill
  // fired here may re-enter the fabric (kill()).  A kill targeting the
  // sender itself drops the triggering packet (the crash interrupted the
  // send); kills of other endpoints leave it in flight (packets survive
  // their sender's death).
  FaultSchedule::SendEffects fx;
  if (FaultSchedule* chaos = chaos_.load(std::memory_order_acquire)) {
    fx = chaos->on_send(p);
    if (fx.drop) {
      // The send was attempted, so it counts toward packets_sent — the
      // dedicated chaos counter keeps the dead-destination signal
      // (packets_dropped_dead) clean for the chaos soaks.  No wire bytes:
      // the packet never left the crashing sender.
      Shard& sh = shard_for(p.dst);
      std::scoped_lock lock(sh.mu);
      ++sh.stats.packets_sent;
      ++sh.stats.packets_dropped_chaos;
      return;
    }
  }
  const std::size_t bytes = p.wire_size();
  Shard& sh = shard_for(p.dst);
  {
    std::scoped_lock lock(sh.mu);
    if (sh.stopping) return;
    const auto now = std::chrono::steady_clock::now();
    if (fx.duplicate) {
      // Independent latency draw: the duplicate frequently overtakes the
      // original, exercising the receiver's duplicate filter both ways.
      const auto dup_delay = model_.delay(bytes, sh.rng) + fx.extra_delay;
      ++sh.stats.packets_sent;
      sh.stats.bytes_sent += bytes;
      sh.in_flight.push(InFlight{now + dup_delay,
                                 next_order_.fetch_add(1), p});
    }
    const auto delay = model_.delay(bytes, sh.rng) + fx.extra_delay;
    ++sh.stats.packets_sent;
    sh.stats.bytes_sent += bytes;
    sh.in_flight.push(InFlight{now + delay, next_order_.fetch_add(1),
                               std::move(p)});
  }
  sh.cv.notify_one();
}

void Fabric::kill(EndpointId id) {
  Endpoint& ep = endpoint(id);
  ep.alive_.store(false, std::memory_order_release);
  // Queued-but-unconsumed packets are volatile state of the crashed node.
  ep.inbox_.poison();
}

void Fabric::revive(EndpointId id) {
  Endpoint& ep = endpoint(id);
  ep.inbox_.revive();
  ep.alive_.store(true, std::memory_order_release);
}

void Fabric::shutdown() {
  if (shutdown_.exchange(true)) return;
  for (auto& shard : shards_) {
    {
      std::scoped_lock lock(shard->mu);
      shard->stopping = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& ep : eps_) ep->inbox_.poison();
}

FabricStats Fabric::stats() const {
  FabricStats merged;
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    merged.merge(shard->stats);
  }
  return merged;
}

void Fabric::scheduler_loop(Shard& sh) {
  std::vector<Packet> batch;
  std::unique_lock lock(sh.mu);
  while (true) {
    if (sh.stopping) return;
    if (sh.in_flight.empty()) {
      sh.cv.wait(lock, [&] { return sh.stopping || !sh.in_flight.empty(); });
      continue;
    }
    const auto deadline = sh.in_flight.top().deliver_at;
    const auto now = std::chrono::steady_clock::now();
    if (now < deadline) {
      sh.cv.wait_until(lock, deadline,
                       [&] { return sh.stopping ||
                                    (!sh.in_flight.empty() &&
                                     sh.in_flight.top().deliver_at <
                                         deadline); });
      continue;
    }
    // Batch drain: pop every deadline-expired packet in one critical
    // section, then deliver the whole batch outside the lock so a slow or
    // full inbox never stalls senders targeting this shard.
    batch.clear();
    while (!sh.in_flight.empty() && sh.in_flight.top().deliver_at <= now) {
      batch.push_back(std::move(const_cast<InFlight&>(sh.in_flight.top())
                                    .packet));
      sh.in_flight.pop();
    }
    lock.unlock();
    // The drop-accounting invariant rides on the inbox push result: only
    // packets the inbox actually accepted count as delivered — a kill()
    // racing this delivery poisons the inbox and the packet books under
    // packets_dropped_dead instead of vanishing behind a stale alive()
    // read.
    FabricStats delta;
    FaultSchedule* chaos = chaos_.load(std::memory_order_acquire);
    if (chaos) {
      // Chaos pins delivery to per-packet granularity: a "kill on the Kth
      // delivery" trigger must poison the inbox before packet K+1 lands,
      // so the victim can never consume past the kill point.  The handler
      // runs with no shard lock held — it may re-enter kill(), revive(),
      // or stats().
      for (Packet& p : batch) {
        const int src = p.src;
        const int dst_id = p.dst;
        const std::uint16_t kind = p.kind;
        Endpoint& dst = *eps_[static_cast<std::size_t>(dst_id)];
        if (dst.alive() && dst.inbox_.push(std::move(p))) {
          ++delta.packets_delivered;
          chaos->on_deliver(src, dst_id, kind);
        } else {
          ++delta.packets_dropped_dead;
        }
      }
    } else {
      // Fast path: consecutive packets for the same destination land with
      // one inbox lock/notify (push_batch).  A batch is accepted whole or
      // dropped whole — push_batch is atomic against poisoning.
      std::size_t i = 0;
      while (i < batch.size()) {
        const int dst_id = batch[i].dst;
        std::size_t j = i + 1;
        while (j < batch.size() && batch[j].dst == dst_id) ++j;
        Endpoint& dst = *eps_[static_cast<std::size_t>(dst_id)];
        std::size_t accepted = 0;
        if (dst.alive()) {
          if (j - i == 1) {
            accepted = dst.inbox_.push(std::move(batch[i])) ? 1 : 0;
          } else {
            std::vector<Packet> run;
            run.reserve(j - i);
            for (std::size_t k = i; k < j; ++k) {
              run.push_back(std::move(batch[k]));
            }
            accepted = dst.inbox_.push_batch(std::move(run));
          }
        }
        delta.packets_delivered += accepted;
        delta.packets_dropped_dead += (j - i) - accepted;
        i = j;
      }
    }
    lock.lock();
    sh.stats.packets_delivered += delta.packets_delivered;
    sh.stats.packets_dropped_dead += delta.packets_dropped_dead;
  }
}

}  // namespace windar::net
