#include "net/fabric.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace windar::net {

namespace {
// How long a cut-through sender parks on a full destination ring before
// re-routing the packet through the shard scheduler.  Long enough that the
// consumer's batch drain usually ends the episode (one scheduling quantum),
// short enough that a chain of mutually-bursting ranks makes progress.
constexpr std::chrono::milliseconds kCutThroughPatience{2};

// Cut-through is a small-message optimization: above this wire size the
// workload is memory-bandwidth-bound and the pipelined shard path measures
// faster (bench/msg_path --contend: 64 B-1 KiB payloads gain 2-4x from
// cut-through, 2 KiB+ lose ~35%), so bulk packets keep the shard hop.  The
// bound covers a 1 KiB payload plus headers and a piggyback block — the
// protocol's hot shapes.
constexpr std::size_t kCutThroughMaxWire = 1152;
}  // namespace

int Fabric::default_shards() {
  if (const char* env = std::getenv("WINDAR_FABRIC_SHARDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::min(4u, hw == 0 ? 1u : hw));
}

Fabric::Fabric(int endpoints, LatencyModel model, std::uint64_t seed,
               int num_shards, std::optional<InboxConfig> inbox)
    : model_(model) {
  WINDAR_CHECK_GT(endpoints, 0) << "fabric needs at least one endpoint";
  if (num_shards <= 0) num_shards = default_shards();
  num_shards = std::min(num_shards, endpoints);
  const InboxConfig inbox_cfg =
      inbox.has_value() ? *inbox : resolve_inbox_config(endpoints);
  eps_.reserve(static_cast<std::size_t>(endpoints));
  for (int i = 0; i < endpoints; ++i) {
    eps_.push_back(std::make_unique<Endpoint>(inbox_cfg));
  }
  util::Rng seeder(seed);
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Split per shard so adding shards never re-correlates jitter streams;
    // one shard reproduces the seed's original stream behaviourally (same
    // generator family, deterministic in the seed).
    shard->rng = seeder.split(static_cast<std::uint64_t>(s));
    shards_.push_back(std::move(shard));
  }
  // Zero-latency cut-through: when the model has no delay to enforce, the
  // sender thread can deliver straight into the destination inbox — no shard
  // hop, no scheduler wakeup.  WINDAR_FABRIC_CUTTHROUGH=0|off forces every
  // packet through the shard schedulers (A/B runs, bisects).
  if (model_.is_zero()) {
    cut_through_ = true;
    if (const char* env = std::getenv("WINDAR_FABRIC_CUTTHROUGH")) {
      if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) {
        cut_through_ = false;
      }
    }
  }
  if (cut_through_) {
    shard_pending_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        static_cast<std::size_t>(endpoints));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread([this, sh = shard.get()] {
      scheduler_loop(*sh);
    });
  }
}

Fabric::~Fabric() { shutdown(); }

Endpoint& Fabric::endpoint(EndpointId id) {
  WINDAR_CHECK(id >= 0 && id < endpoint_count()) << "bad endpoint " << id;
  return *eps_[static_cast<std::size_t>(id)];
}

void Fabric::send(Packet p) {
  WINDAR_CHECK(p.dst >= 0 && p.dst < endpoint_count())
      << "send to bad endpoint " << p.dst;
  const int dst_id = p.dst;
  FaultSchedule* chaos = chaos_.load(std::memory_order_acquire);
  // Zero-latency cut-through: with no delay to model and no chaos installed,
  // deliver from the sender thread — no shard enqueue, no scheduler wakeup,
  // no heap op.  Gated on shard_pending_ so a packet that previously fell
  // back to the shard (full ring) is never overtaken on its own channel:
  // same-channel sends are serialized at the sender, so seeing pending == 0
  // (acquire, against the scheduler's release decrement) means every earlier
  // shard-routed packet for this destination already landed.  offer() parks
  // at most kCutThroughPatience on a full ring — never indefinitely (two
  // mutually-bursting ranks would deadlock) — then re-routes through the
  // shard, whose queue is the buffering a bounded ring refuses.
  const std::size_t wire_bytes = p.wire_size();
  if (cut_through_ && chaos == nullptr && wire_bytes <= kCutThroughMaxWire &&
      shard_pending_[static_cast<std::size_t>(dst_id)].load(
          std::memory_order_acquire) == 0) {
    const std::size_t bytes = wire_bytes;
    Endpoint& dst = *eps_[static_cast<std::size_t>(dst_id)];
    if (!dst.alive()) {
      direct_.sent.fetch_add(1, std::memory_order_relaxed);
      direct_.bytes.fetch_add(bytes, std::memory_order_relaxed);
      direct_.dropped_dead.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    switch (dst.inbox_.offer(p, kCutThroughPatience)) {
      case Inbox::PushOutcome::kAccepted:
        direct_.sent.fetch_add(1, std::memory_order_relaxed);
        direct_.bytes.fetch_add(bytes, std::memory_order_relaxed);
        direct_.delivered.fetch_add(1, std::memory_order_relaxed);
        return;
      case Inbox::PushOutcome::kDead:
        direct_.sent.fetch_add(1, std::memory_order_relaxed);
        direct_.bytes.fetch_add(bytes, std::memory_order_relaxed);
        direct_.dropped_dead.fetch_add(1, std::memory_order_relaxed);
        return;
      case Inbox::PushOutcome::kFull:
        break;  // fall through to the buffered shard path, p still intact
    }
  }
  // Chaos triggers run before enqueue and outside any shard lock: a kill
  // fired here may re-enter the fabric (kill()).  A kill targeting the
  // sender itself drops the triggering packet (the crash interrupted the
  // send); kills of other endpoints leave it in flight (packets survive
  // their sender's death).
  FaultSchedule::SendEffects fx;
  if (chaos != nullptr) {
    fx = chaos->on_send(p);
    if (fx.drop) {
      // The send was attempted, so it counts toward packets_sent — the
      // dedicated chaos counter keeps the dead-destination signal
      // (packets_dropped_dead) clean for the chaos soaks.  No wire bytes:
      // the packet never left the crashing sender.
      Shard& sh = shard_for(dst_id);
      std::scoped_lock lock(sh.mu);
      ++sh.stats.packets_sent;
      ++sh.stats.packets_dropped_chaos;
      return;
    }
  }
  const std::size_t bytes = wire_bytes;
  Shard& sh = shard_for(dst_id);
  bool wake;
  {
    std::scoped_lock lock(sh.mu);
    if (sh.stopping) return;
    const bool was_empty = sh.in_flight.empty();
    const auto old_top = was_empty ? std::chrono::steady_clock::time_point{}
                                   : sh.in_flight.top().deliver_at;
    if (cut_through_) {
      // Bump before the packet becomes visible to the scheduler, under the
      // shard lock, so the count never reads below the true in-shard total.
      shard_pending_[static_cast<std::size_t>(dst_id)].fetch_add(
          fx.duplicate ? 2 : 1, std::memory_order_release);
    }
    const auto now = std::chrono::steady_clock::now();
    if (fx.duplicate) {
      // Independent latency draw: the duplicate frequently overtakes the
      // original, exercising the receiver's duplicate filter both ways.
      const auto dup_delay = model_.delay(bytes, sh.rng) + fx.extra_delay;
      ++sh.stats.packets_sent;
      sh.stats.bytes_sent += bytes;
      sh.in_flight.push(InFlight{now + dup_delay,
                                 next_order_.fetch_add(1), p});
    }
    const auto delay = model_.delay(bytes, sh.rng) + fx.extra_delay;
    ++sh.stats.packets_sent;
    sh.stats.bytes_sent += bytes;
    sh.in_flight.push(InFlight{now + delay, next_order_.fetch_add(1),
                               std::move(p)});
    // Wake the scheduler only when this send changed what it is waiting
    // for: an empty→non-empty transition, or a new earliest deadline.  A
    // packet behind the current top needs no notify — the scheduler's
    // wait_until(top) fires in time for it regardless — and skipping the
    // syscall keeps a hot sender from paying a futex wake per message.
    wake = was_empty || sh.in_flight.top().deliver_at < old_top;
  }
  if (wake) sh.cv.notify_one();
}

void Fabric::kill(EndpointId id) {
  Endpoint& ep = endpoint(id);
  ep.alive_.store(false, std::memory_order_release);
  // Queued-but-unconsumed packets are volatile state of the crashed node.
  ep.inbox_.poison();
}

void Fabric::revive(EndpointId id) {
  Endpoint& ep = endpoint(id);
  ep.inbox_.revive();
  ep.alive_.store(true, std::memory_order_release);
}

void Fabric::shutdown() {
  if (shutdown_.exchange(true)) return;
  // Poison inboxes BEFORE joining the shard threads: a scheduler blocked
  // pushing into a full bounded ring (whose consumer already exited) can
  // only observe `stopping` after the push returns, and poison is what makes
  // it return.  The dropped packets book as dropped_dead, which shutdown's
  // "undelivered packets are discarded" contract already allows.
  for (auto& ep : eps_) ep->inbox_.poison();
  for (auto& shard : shards_) {
    {
      std::scoped_lock lock(shard->mu);
      shard->stopping = true;
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

FabricStats Fabric::stats() const {
  FabricStats merged;
  // Cut-through deliveries book in the lock-free direct slab.
  merged.packets_sent = direct_.sent.load(std::memory_order_relaxed);
  merged.packets_delivered = direct_.delivered.load(std::memory_order_relaxed);
  merged.packets_dropped_dead =
      direct_.dropped_dead.load(std::memory_order_relaxed);
  merged.bytes_sent = direct_.bytes.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mu);
    merged.merge(shard->stats);
  }
  return merged;
}

void Fabric::scheduler_loop(Shard& sh) {
  std::vector<Packet> batch;
  std::unique_lock lock(sh.mu);
  while (true) {
    if (sh.stopping) return;
    if (sh.in_flight.empty()) {
      sh.cv.wait(lock, [&] { return sh.stopping || !sh.in_flight.empty(); });
      continue;
    }
    const auto deadline = sh.in_flight.top().deliver_at;
    const auto now = std::chrono::steady_clock::now();
    if (now < deadline) {
      sh.cv.wait_until(lock, deadline,
                       [&] { return sh.stopping ||
                                    (!sh.in_flight.empty() &&
                                     sh.in_flight.top().deliver_at <
                                         deadline); });
      continue;
    }
    // Batch drain: pop every deadline-expired packet in one critical
    // section, then deliver the whole batch outside the lock so a slow or
    // full inbox never stalls senders targeting this shard.
    batch.clear();
    while (!sh.in_flight.empty() && sh.in_flight.top().deliver_at <= now) {
      batch.push_back(std::move(const_cast<InFlight&>(sh.in_flight.top())
                                    .packet));
      sh.in_flight.pop();
    }
    lock.unlock();
    // The drop-accounting invariant rides on the inbox push result: only
    // packets the inbox actually accepted count as delivered — a kill()
    // racing this delivery poisons the inbox and the packet books under
    // packets_dropped_dead instead of vanishing behind a stale alive()
    // read.
    FabricStats delta;
    FaultSchedule* chaos = chaos_.load(std::memory_order_acquire);
    if (chaos) {
      // Chaos pins delivery to per-packet granularity: a "kill on the Kth
      // delivery" trigger must poison the inbox before packet K+1 lands,
      // so the victim can never consume past the kill point.  The handler
      // runs with no shard lock held — it may re-enter kill(), revive(),
      // or stats().
      for (Packet& p : batch) {
        const int src = p.src;
        const int dst_id = p.dst;
        const std::uint16_t kind = p.kind;
        Endpoint& dst = *eps_[static_cast<std::size_t>(dst_id)];
        if (dst.alive() && dst.inbox_.push(std::move(p))) {
          ++delta.packets_delivered;
          chaos->on_deliver(src, dst_id, kind);
        } else {
          ++delta.packets_dropped_dead;
        }
        if (cut_through_) {
          // Release so a sender that reads pending == 0 (acquire) is
          // ordered after this packet's inbox push — cut-through can never
          // overtake a shard-routed packet on the same channel.
          shard_pending_[static_cast<std::size_t>(dst_id)].fetch_sub(
              1, std::memory_order_release);
        }
      }
    } else {
      // Fast path: consecutive packets for the same destination land with
      // one inbox lock/notify (push_batch).  A batch is accepted whole or
      // dropped whole — push_batch is atomic against poisoning.
      std::size_t i = 0;
      while (i < batch.size()) {
        const int dst_id = batch[i].dst;
        std::size_t j = i + 1;
        while (j < batch.size() && batch[j].dst == dst_id) ++j;
        Endpoint& dst = *eps_[static_cast<std::size_t>(dst_id)];
        std::size_t accepted = 0;
        if (dst.alive()) {
          if (j - i == 1) {
            accepted = dst.inbox_.push(std::move(batch[i])) ? 1 : 0;
          } else {
            std::vector<Packet> run;
            run.reserve(j - i);
            for (std::size_t k = i; k < j; ++k) {
              run.push_back(std::move(batch[k]));
            }
            accepted = dst.inbox_.push_batch(std::move(run));
          }
        }
        delta.packets_delivered += accepted;
        delta.packets_dropped_dead += (j - i) - accepted;
        if (cut_through_) {
          shard_pending_[static_cast<std::size_t>(dst_id)].fetch_sub(
              static_cast<std::uint32_t>(j - i), std::memory_order_release);
        }
        i = j;
      }
    }
    lock.lock();
    sh.stats.packets_delivered += delta.packets_delivered;
    sh.stats.packets_dropped_dead += delta.packets_dropped_dead;
  }
}

}  // namespace windar::net
