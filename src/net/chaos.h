// Scripted, event-keyed fault injection for the simulated fabric.
//
// Wall-clock fault schedules ("kill rank 1 at t=8ms") drift whenever the
// host is slow (TSan, CI load): the kill lands at a different protocol point
// every run.  A ChaosEvent instead keys a fault to fabric-observable protocol
// progress — "kill endpoint 1 when it receives its 8th application packet",
// "kill endpoint 2 when it sends its first RESPONSE" — so a schedule
// replays the same protocol-relative scenario regardless of host speed.
//
// The fabric stays protocol-agnostic: events match on the opaque packet
// `kind` word, and the layer above (windar) supplies its own kind values.
// Kill actions are not executed by the fabric itself — a fired kill is
// reported through the FaultSchedule's kill handler so the job runtime can
// poison the rank's Process before the endpoint dies (the same ordering the
// wall-clock injector must respect; see runtime.cc).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "net/packet.h"

namespace windar::net {

struct ChaosEvent {
  enum class When {
    kDeliver,  // fires when a matching packet reaches a live endpoint
    kSend,     // fires when a matching packet enters the fabric
  };
  enum class Action {
    kKill,       // report the matched endpoint (or `target`) to the handler
    kDuplicate,  // enqueue the matched packet twice (independent jitter)
    kDelay,      // add `delay` to the matched packet's latency draw
  };

  When when = When::kDeliver;
  Action action = Action::kKill;
  int endpoint = -1;       // match dst (kDeliver) / src (kSend); -1 = any
  std::uint16_t kind = 0;  // packet kind filter; 0 = any kind
  std::uint64_t nth = 1;   // fire on the nth matching packet (1-based)
  int target = -1;         // kKill: endpoint to kill; -1 = matched endpoint

  // kDelay: extra latency added to the matched packet.
  std::chrono::microseconds delay{0};

  // kKill hint for the runtime: hold the incarnation's restart until this
  // many further packets were delivered fabric-wide (0 = default restart
  // delay).  Models recovery racing ongoing traffic deterministically.
  std::uint64_t revive_after_packets = 0;

  // kKill / kDuplicate / kDelay all keep counting after firing only if
  // `repeat` is set; by default an event is one-shot.
  bool repeat = false;
};

/// Thread-safe trigger table consulted by the fabric on every send and
/// delivery.  Matching is cheap (a short vector scan) and runs outside the
/// fabric's shard locks; the kill handler is invoked with no FaultSchedule
/// or fabric lock held.  Sends and deliveries arrive concurrently from rank
/// threads and every shard scheduler thread — `mu_` serializes the nth-match
/// counting so each event still fires exactly once per matching sequence.
class FaultSchedule {
 public:
  using KillHandler = std::function<void(const ChaosEvent&)>;

  FaultSchedule() = default;
  explicit FaultSchedule(std::vector<ChaosEvent> events) {
    for (auto& ev : events) add(std::move(ev));
  }

  void add(ChaosEvent ev);

  /// Invoked (outside all schedule/fabric locks) for every fired kKill
  /// event; receives the event with `target` resolved to a real endpoint.
  void set_kill_handler(KillHandler handler);

  /// Packet-shaping effects of kSend triggers, applied by Fabric::send.
  struct SendEffects {
    bool duplicate = false;
    // A kill fired by this very send, targeting the sender: the crash
    // interrupted the send, so the triggering packet is lost ("kill on the
    // first RESPONSE" means that RESPONSE never arrives and the peer must
    // fall back to the sender's next incarnation).
    bool drop = false;
    std::chrono::nanoseconds extra_delay{0};
  };

  /// Matches kSend triggers against an outgoing packet; fires kill
  /// handlers for matched kills.  Called by Fabric::send before enqueue.
  SendEffects on_send(const Packet& p);

  /// Matches kDeliver triggers after a packet reached a live endpoint;
  /// fires kill handlers for matched kills.  Called by the delivering
  /// shard's scheduler thread with its lock released; with an attached
  /// schedule the fabric delivers per-packet (never batched), so a fired
  /// kill poisons the inbox before the next packet for that endpoint lands.
  void on_deliver(int src, int dst, std::uint16_t kind);

  /// Events whose trigger fired at least once (diagnostics / soak asserts).
  std::size_t fired() const;

 private:
  struct Armed {
    ChaosEvent ev;
    std::uint64_t seen = 0;   // matching packets observed so far
    bool done = false;        // one-shot already fired
  };

  // Returns the fired events (with kill targets resolved) to run handlers
  // outside the lock.
  template <typename Match>
  void scan(ChaosEvent::When when, const Match& matches,
            SendEffects* effects, std::vector<ChaosEvent>& kills);

  mutable std::mutex mu_;
  std::vector<Armed> events_;
  KillHandler on_kill_;
  std::size_t fired_ = 0;
};

}  // namespace windar::net
