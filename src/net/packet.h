// Wire unit moved by the simulated fabric.
//
// The fabric treats `kind`, `tag`, `meta` and `payload` as opaque: framing is
// defined by the layers above (mp::RawComm for the plain transport, the
// windar recovery layer for fault-tolerant jobs).  `meta` carries piggybacked
// protocol metadata separately from the application payload so overhead
// accounting (paper Fig. 6) can distinguish the two.
#pragma once

#include <cstdint>

#include "util/buffer.h"

namespace windar::net {

using EndpointId = int;

// Byte sections are immutable shared buffers: copying a packet (the chaos
// duplicate path) or handing the same payload to the sender log costs a
// refcount bump, not a byte copy.
struct Packet {
  EndpointId src = -1;
  EndpointId dst = -1;
  std::uint16_t kind = 0;   // layer-defined message kind
  std::int32_t tag = 0;     // application tag (MPI-style)
  std::uint64_t seq = 0;    // layer-defined sequence number
  util::Buffer meta;        // piggybacked protocol metadata
  util::Buffer payload;     // application bytes

  /// Bytes this packet occupies on the simulated wire: a fixed header plus
  /// both byte sections.  Drives the latency model and bandwidth accounting.
  std::size_t wire_size() const {
    // src + dst + kind + tag + seq + two u32 length prefixes.
    constexpr std::size_t kHeader = 4 + 4 + 2 + 4 + 8 + 4 + 4;
    return kHeader + meta.size() + payload.size();
  }
};

/// The one place a packet header is assembled.  Every layer above (the raw
/// transport's framing, the recovery layer's app/control messages) builds on
/// this instead of hand-initialising field by field.
inline Packet make_packet(EndpointId src, EndpointId dst, std::uint16_t kind,
                          std::int32_t tag, std::uint64_t seq,
                          util::Buffer meta = {}, util::Buffer payload = {}) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.kind = kind;
  p.tag = tag;
  p.seq = seq;
  p.meta = std::move(meta);
  p.payload = std::move(payload);
  return p;
}

}  // namespace windar::net
