#include "net/transport.h"

#include <cstdlib>

namespace windar::net {

bool parse_transport(const std::string& s, TransportKind* out) {
  if (s == "sim") {
    *out = TransportKind::kSim;
    return true;
  }
  if (s == "socket") {
    *out = TransportKind::kSocket;
    return true;
  }
  return false;
}

TransportKind default_transport() {
  if (const char* env = std::getenv("WINDAR_TRANSPORT")) {
    TransportKind k;
    if (parse_transport(env, &k)) return k;
  }
  return TransportKind::kSim;
}

}  // namespace windar::net
