// Real-process Transport backend over Unix-domain sockets.
//
// One SocketTransport lives in each OS process and *hosts* exactly one
// endpoint (its own inbox + listener socket) while *addressing* the whole
// job: `send` to any endpoint id connects to that peer's socket file under
// the shared job directory.  The windar protocol stack above is unchanged —
// it sees the same Transport interface the simulated fabric implements.
//
// Data plane:
//   * one listener socket per endpoint (`<dir>/ep<id>.sock`), a nonblocking
//     poll()-driven reader thread that accepts connections and reassembles
//     length-prefixed frames (net/frame.h) into Packets pushed onto the
//     hosted endpoint's inbox.  The reader recv()s straight into the frame
//     decoder's single body allocation, so a received packet costs one
//     allocation and zero re-copies (meta/payload are Buffer views into it).
//   * one writer thread per peer, each draining its own queue and handing
//     frames to sendmsg() as a scatter-gather iovec over {header, meta,
//     payload} — the sections are the packet's refcounted Buffer bytes,
//     never re-copied (the PR 4 copy-once invariant crosses the syscall
//     boundary intact).  Partial writes advance the iovec and continue;
//     EPIPE/ECONNRESET mean the peer vanished and the packet books as
//     packets_dropped_dead, mirroring the fabric's in-flight-loss model.
//
// Connection handshake: the first frame on every connection is a hello
// (kHelloKind) carrying the sender's incarnation; the receiver records it
// (peer_incarnation()) so a respawned rank's new connection is
// distinguishable from its predecessor's.
//
// Stats parity with the fabric (tests/test_fabric.cc runs the invariant
// against both backends): packets_sent is booked at send(), delivered at the
// receiver's successful inbox push, drops split between dropped_dead
// (dead/vanished peer) and dropped_chaos (scripted sender-side kill).  The
// invariant holds over the *merged* stats of every process's transport once
// traffic quiesces; bytes_sent counts wire bytes including the frame header.
//
// Fault plane: kill()/revive() act on this process's local view (poisoning
// the hosted inbox / marking a peer unreachable) — the real fault in a
// multi-process job is a SIGKILL delivered by windar::ProcessLauncher.
// Chaos: kSend kill/duplicate triggers shape traffic exactly like the
// fabric; kDelay is ignored (latency is real here, not modelled).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/chaos.h"
#include "net/frame.h"
#include "net/inbox.h"
#include "net/packet.h"
#include "net/transport.h"
#include "util/queue.h"

namespace windar::net {

struct SocketTransportOptions {
  int endpoints = 0;     // job-wide endpoint count (ranks + auxiliaries)
  EndpointId self = -1;  // the one endpoint this process hosts
  std::string dir;       // job directory holding every endpoint's socket
  std::uint32_t incarnation = 0;  // stamped on every outgoing frame
  std::size_t max_section_bytes = kDefaultMaxSectionBytes;
  // Connect retry window (covers a peer that is mid-respawn).  After a full
  // window fails the peer is fast-failed for a short period so a dead peer
  // costs one attempt per packet, not a window.
  int connect_attempts = 25;
  std::chrono::milliseconds connect_retry{2};
  int sndbuf_bytes = 0;  // 0 = kernel default; tests shrink it to force
                         // partial writes
  // Per-peer writer-queue bounds (backpressure).  A producer whose packet
  // would push a LIVE peer's queue past either cap blocks in send() until
  // the writer drains; queues to down peers drain by dropping, so no one
  // blocks on a dead rank.  Tests shrink these to force the blocking path.
  std::size_t writer_queue_max_packets = 4096;
  std::size_t writer_queue_max_bytes = 8u << 20;
  // Hosted-endpoint inbox backend.  nullopt resolves WINDAR_INBOX /
  // WINDAR_INBOX_CAP (default: bounded MPSC ring).  The launcher pins its
  // control-plane transports to kQueue — barrier traffic must never exert
  // ring backpressure on the data plane.
  std::optional<InboxConfig> inbox;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions opts);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// The socket file endpoint `id` listens on under `dir` — the one naming
  /// rule launcher, workers, and tests share.
  static std::string socket_path(const std::string& dir, EndpointId id);

  int endpoint_count() const override { return opts_.endpoints; }

  /// Only the hosted endpoint has an inbox in this process.
  Endpoint& endpoint(EndpointId id) override;

  void send(Packet p) override;
  void kill(EndpointId id) override;
  void revive(EndpointId id) override;
  void set_chaos(FaultSchedule* chaos) override {
    chaos_.store(chaos, std::memory_order_release);
  }
  void shutdown() override;
  FabricStats stats() const override;

  /// Blocks until every packet accepted by send() has been handed to the
  /// kernel or dropped (writer queues empty), or the timeout passes.
  /// Returns true on full drain.  shutdown() discards queued packets, so
  /// callers that must not lose a final message flush first.
  bool flush(std::chrono::milliseconds timeout);

  std::uint32_t incarnation() const { return opts_.incarnation; }

  /// Incarnation announced by the most recent hello from `id` (0 before any
  /// connection from that peer).
  std::uint32_t peer_incarnation(EndpointId id) const;

 private:
  // One outgoing lane per peer: a queue the send path enqueues to and a
  // thread that owns the connection fd.  All connection state is private to
  // the writer thread.
  struct PeerWriter {
    util::BlockingQueue<Packet> queue;
    std::thread thread;
    int fd = -1;
    std::chrono::steady_clock::time_point fast_fail_until{};
    // Flow control: producers reserve depth under bp_mu before pushing and
    // block while both caps are hit; the writer releases depth as it pops.
    std::mutex bp_mu;
    std::condition_variable bp_cv;
    std::size_t queued_packets = 0;
    std::size_t queued_bytes = 0;
  };

  enum class WriteResult { kOk, kPeerGone, kAborted };

  void reserve_writer_depth(EndpointId peer, PeerWriter& w, std::size_t packets,
                            std::size_t bytes);
  void release_writer_depth(PeerWriter& w, std::size_t packets,
                            std::size_t bytes);
  void writer_loop(EndpointId peer, PeerWriter& w);
  bool connect_peer(EndpointId peer, PeerWriter& w);
  WriteResult write_frame(int fd, const Packet& p);
  void reader_loop();
  // Drains one readable connection; returns false when it should close.
  bool service_connection(int fd, FrameDecoder& dec);
  void deliver_local(Packet p);

  SocketTransportOptions opts_;
  std::unique_ptr<Endpoint> self_ep_;
  std::vector<std::unique_ptr<PeerWriter>> writers_;  // [endpoint id]; self null
  std::unique_ptr<std::atomic<bool>[]> peer_down_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> peer_incarnation_;
  std::atomic<FaultSchedule*> chaos_{nullptr};
  std::atomic<std::uint64_t> inflight_{0};  // enqueued, not yet written/dropped
  std::atomic<bool> shutdown_{false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread reader_;
  mutable std::mutex stats_mu_;
  FabricStats stats_;
};

}  // namespace windar::net
