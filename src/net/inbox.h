// Per-endpoint inbox: the bounded MPSC ring (default) or the legacy
// mutexed BlockingQueue, selected per endpoint at construction.
//
// The ring is the data-plane fast path — lock-free producers (fabric shard
// schedulers, the socket reader) and a serialized consumer, with bounded
// capacity acting as backpressure instead of unbounded deque growth.  The
// queue remains for control-plane endpoints (the launcher's JOIN/GO/DONE
// channel must never exert backpressure on workers mid-barrier) and as the
// WINDAR_INBOX=queue escape hatch for A/B runs and bisects.
//
// Both backends share one contract (tests run the fabric invariant against
// each): push returns true iff accepted; poison discards queued packets,
// wakes every waiter, and fails future pushes; revive re-arms an empty
// inbox.  All waits are WaitSet-based, so consumers may be OS threads or
// cooperative fibers.
#pragma once

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "util/queue.h"
#include "util/ring.h"

namespace windar::net {

enum class InboxKind { kRing, kQueue };

inline const char* to_string(InboxKind k) {
  return k == InboxKind::kRing ? "ring" : "queue";
}

struct InboxConfig {
  InboxKind kind = InboxKind::kRing;
  std::size_t capacity = 1024;  // ring slots; ignored by the queue backend
};

/// Resolves the inbox configuration for a transport hosting
/// `endpoints_hint` endpoints.  WINDAR_INBOX=ring|queue selects the backend
/// (default ring); WINDAR_INBOX_CAP overrides the ring capacity, which
/// otherwise scales down with the endpoint count so a 4096-rank job does
/// not pre-reserve gigabytes of slots.
inline InboxConfig resolve_inbox_config(int endpoints_hint) {
  InboxConfig cfg;
  if (const char* env = std::getenv("WINDAR_INBOX")) {
    if (std::strcmp(env, "queue") == 0) cfg.kind = InboxKind::kQueue;
    // anything else (incl. "ring") keeps the default
  }
  if (endpoints_hint > 1024) {
    cfg.capacity = 64;
  } else if (endpoints_hint > 64) {
    cfg.capacity = 256;
  }
  if (const char* env = std::getenv("WINDAR_INBOX_CAP")) {
    const long v = std::atol(env);
    if (v > 0) cfg.capacity = static_cast<std::size_t>(v);
  }
  return cfg;
}

/// Facade over the two inbox backends with the exact call surface the
/// stack's consumers use.  One branch per call; the backends themselves do
/// the real work.
class Inbox {
 public:
  using Clock = std::chrono::steady_clock;

  explicit Inbox(const InboxConfig& cfg) {
    if (cfg.kind == InboxKind::kRing) {
      ring_ = std::make_unique<util::MpscRing<Packet>>(cfg.capacity);
    } else {
      queue_ = std::make_unique<util::BlockingQueue<Packet>>();
    }
  }

  InboxKind kind() const {
    return ring_ ? InboxKind::kRing : InboxKind::kQueue;
  }

  [[nodiscard]] bool push(Packet p) {
    return ring_ ? ring_->push(std::move(p)) : queue_->push(std::move(p));
  }

  /// Outcome of a non-blocking offer().  kFull leaves the packet with the
  /// caller (only the bounded ring can be full; the queue backend never is).
  enum class PushOutcome { kAccepted, kFull, kDead };

  /// Bounded-patience push attempt — the fabric's zero-latency cut-through
  /// uses this so a sender thread never blocks indefinitely on a peer's full
  /// ring (which could deadlock two mutually-bursting ranks): a brief park
  /// usually outlives the full-ring episode, and a kFull result after the
  /// patience expires re-routes the packet through the shard scheduler.
  [[nodiscard]] PushOutcome offer(Packet& p, Clock::duration patience) {
    if (ring_) {
      switch (ring_->offer_for(p, patience)) {
        case util::MpscRing<Packet>::Offer::kAccepted:
          return PushOutcome::kAccepted;
        case util::MpscRing<Packet>::Offer::kFull:
          return PushOutcome::kFull;
        case util::MpscRing<Packet>::Offer::kDead:
          return PushOutcome::kDead;
      }
    }
    return queue_->push(std::move(p)) ? PushOutcome::kAccepted
                                      : PushOutcome::kDead;
  }

  [[nodiscard]] std::size_t push_batch(std::vector<Packet> batch) {
    return ring_ ? ring_->push_batch(std::move(batch))
                 : queue_->push_batch(std::move(batch));
  }

  std::optional<Packet> pop() { return ring_ ? ring_->pop() : queue_->pop(); }

  std::optional<Packet> pop_until(Clock::time_point deadline) {
    return ring_ ? ring_->pop_until(deadline) : queue_->pop_until(deadline);
  }

  std::optional<Packet> pop_for(Clock::duration d) {
    return ring_ ? ring_->pop_for(d) : queue_->pop_for(d);
  }

  std::optional<Packet> try_pop() {
    return ring_ ? ring_->try_pop() : queue_->try_pop();
  }

  /// Drains up to `max` ready packets into `out` (appended, FIFO) without
  /// blocking; returns how many were taken.
  std::size_t try_pop_batch(std::vector<Packet>* out, std::size_t max) {
    if (ring_) return ring_->try_pop_batch(out, max);
    std::size_t taken = 0;
    while (taken < max) {
      auto p = queue_->try_pop();
      if (!p) break;
      out->push_back(std::move(*p));
      ++taken;
    }
    return taken;
  }

  void poison() { ring_ ? ring_->poison() : queue_->poison(); }
  void revive() { ring_ ? ring_->revive() : queue_->revive(); }
  bool poisoned() const {
    return ring_ ? ring_->poisoned() : queue_->poisoned();
  }

  std::size_t size() const { return ring_ ? ring_->size() : queue_->size(); }
  bool empty() const { return ring_ ? ring_->empty() : queue_->empty(); }

 private:
  // Exactly one is non-null for the Inbox's lifetime.
  std::unique_ptr<util::MpscRing<Packet>> ring_;
  std::unique_ptr<util::BlockingQueue<Packet>> queue_;
};

}  // namespace windar::net
