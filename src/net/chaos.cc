#include "net/chaos.h"

#include "util/check.h"

namespace windar::net {

void FaultSchedule::add(ChaosEvent ev) {
  WINDAR_CHECK_GE(ev.nth, 1u) << "chaos events count 1-based packets";
  std::scoped_lock lock(mu_);
  events_.push_back(Armed{std::move(ev), 0, false});
}

void FaultSchedule::set_kill_handler(KillHandler handler) {
  std::scoped_lock lock(mu_);
  on_kill_ = std::move(handler);
}

template <typename Match>
void FaultSchedule::scan(ChaosEvent::When when, const Match& matches,
                         SendEffects* effects,
                         std::vector<ChaosEvent>& kills) {
  std::scoped_lock lock(mu_);
  for (Armed& a : events_) {
    if (a.ev.when != when || a.done || !matches(a.ev)) continue;
    ++a.seen;
    if (a.seen < a.ev.nth) continue;
    if (!a.ev.repeat) a.done = true;
    ++fired_;
    switch (a.ev.action) {
      case ChaosEvent::Action::kKill:
        kills.push_back(a.ev);
        break;
      case ChaosEvent::Action::kDuplicate:
        if (effects) effects->duplicate = true;
        break;
      case ChaosEvent::Action::kDelay:
        if (effects) effects->extra_delay += a.ev.delay;
        break;
    }
  }
}

FaultSchedule::SendEffects FaultSchedule::on_send(const Packet& p) {
  SendEffects effects;
  std::vector<ChaosEvent> kills;
  scan(
      ChaosEvent::When::kSend,
      [&](const ChaosEvent& ev) {
        return (ev.endpoint < 0 || ev.endpoint == p.src) &&
               (ev.kind == 0 || ev.kind == p.kind);
      },
      &effects, kills);
  KillHandler handler;
  if (!kills.empty()) {
    std::scoped_lock lock(mu_);
    handler = on_kill_;
  }
  for (ChaosEvent& ev : kills) {
    if (ev.target < 0) ev.target = p.src;
    // The sender died in the act of sending: this packet never left.
    if (ev.target == p.src) effects.drop = true;
    if (handler) handler(ev);
  }
  return effects;
}

void FaultSchedule::on_deliver(int src, int dst, std::uint16_t kind) {
  (void)src;
  std::vector<ChaosEvent> kills;
  scan(
      ChaosEvent::When::kDeliver,
      [&](const ChaosEvent& ev) {
        return (ev.endpoint < 0 || ev.endpoint == dst) &&
               (ev.kind == 0 || ev.kind == kind);
      },
      nullptr, kills);
  KillHandler handler;
  if (!kills.empty()) {
    std::scoped_lock lock(mu_);
    handler = on_kill_;
  }
  for (ChaosEvent& ev : kills) {
    if (ev.target < 0) ev.target = dst;
    if (handler) handler(ev);
  }
}

std::size_t FaultSchedule::fired() const {
  std::scoped_lock lock(mu_);
  return fired_;
}

}  // namespace windar::net
