// Plain (non-fault-tolerant) transport over the simulated fabric.
//
// Restores per-pair FIFO on top of the fabric's jittered reordering using a
// per-sender sequence number, but adds no logging, no piggyback, and no
// recovery — this is the baseline substrate used for overhead-free reference
// runs and for unit-testing the fabric and collectives.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "mp/comm.h"
#include "net/transport.h"

namespace windar::mp {

class RawComm final : public Comm {
 public:
  RawComm(net::Transport& transport, int rank, int size);

  int rank() const override { return rank_; }
  int size() const override { return size_; }
  void send(int dst, int tag, std::span<const std::uint8_t> payload) override;
  Message recv(int src, int tag) override;
  bool probe(int src, int tag) override;

 private:
  /// Pulls at least one packet from the inbox (blocking for the first, then
  /// draining whatever else is ready in one batch) into the ready/pending
  /// structures.  Returns false if the endpoint was poisoned.
  bool pump();
  /// Files one arrived packet: straight to ready_ when it is the next
  /// expected seq from its sender (the overwhelmingly common case — the
  /// fabric keeps per-pair FIFO), else parked in out_of_order_.
  void admit(net::Packet&& pkt);
  void promote(int src);

  net::Transport& transport_;
  int rank_;
  int size_;
  std::vector<std::uint64_t> next_send_;   // per-destination next seq
  std::vector<std::uint64_t> next_recv_;   // per-source expected seq
  std::map<std::pair<int, std::uint64_t>, net::Packet> out_of_order_;
  std::deque<Message> ready_;              // FIFO-restored, arrival order
  std::vector<net::Packet> batch_;         // pump() scratch (reused capacity)
};

}  // namespace windar::mp
