#include "mp/collectives.h"

#include <cstring>

#include "util/check.h"

namespace windar::mp {

namespace {
// Collective tags live in a reserved band far above application tags.
constexpr int kTagBase = 1 << 24;
}  // namespace

int Coll::op_tag() {
  // One tag per collective invocation; wraps far later than any run lasts.
  return kTagBase + static_cast<int>(op_seq_++ % (1u << 22));
}

util::Buffer Coll::bcast(util::Buffer data, int root) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  // Rotate so the root is virtual rank 0.
  const int vrank = (me - root + n) % n;
  // Receive from parent (unless root), then forward to children.
  if (vrank != 0) {
    const int vparent = (vrank - 1) / 2;
    const int parent = (vparent + root) % n;
    Message m = comm_.recv(parent, tag);
    data = std::move(m.payload);
  }
  for (int vchild : {2 * vrank + 1, 2 * vrank + 2}) {
    if (vchild < n) {
      comm_.send((vchild + root) % n, tag, data);
    }
  }
  return data;
}

std::vector<double> Coll::reduce_sum(std::span<const double> contrib,
                                     int root) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  const int vrank = (me - root + n) % n;

  std::vector<double> acc(contrib.begin(), contrib.end());
  // Children first (deterministic order: left then right), then report up.
  for (int vchild : {2 * vrank + 1, 2 * vrank + 2}) {
    if (vchild < n) {
      auto part = recv_vec<double>(comm_, (vchild + root) % n, tag);
      WINDAR_CHECK_EQ(part.size(), acc.size()) << "reduce width mismatch";
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += part[i];
    }
  }
  if (vrank != 0) {
    const int parent = ((vrank - 1) / 2 + root) % n;
    send_vec<double>(comm_, parent, tag, acc);
    return {};
  }
  return acc;
}

std::vector<double> Coll::allreduce_sum(std::span<const double> contrib) {
  std::vector<double> total = reduce_sum(contrib, 0);
  util::Buffer wire;
  if (comm_.rank() == 0) {
    wire = util::Buffer::copy_of(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(total.data()),
        total.size() * sizeof(double)));
  }
  wire = bcast(std::move(wire), 0);
  std::vector<double> out(wire.size() / sizeof(double));
  std::memcpy(out.data(), wire.data(), wire.size());
  return out;
}

void Coll::barrier() {
  // Dissemination barrier: log2(n) rounds; in round k, rank i signals
  // (i + 2^k) mod n and waits for (i - 2^k) mod n.
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  const std::uint8_t token = 1;
  for (int dist = 1; dist < n; dist *= 2) {
    comm_.send((me + dist) % n, tag, std::span(&token, 1));
    (void)comm_.recv((me - dist + n) % n, tag);
  }
}

namespace {

void apply_op(Coll::Op op, std::vector<double>& acc,
              std::span<const double> part) {
  WINDAR_CHECK_EQ(part.size(), acc.size()) << "reduction width mismatch";
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case Coll::Op::kSum: acc[i] += part[i]; break;
      case Coll::Op::kMin: acc[i] = std::min(acc[i], part[i]); break;
      case Coll::Op::kMax: acc[i] = std::max(acc[i], part[i]); break;
    }
  }
}

}  // namespace

std::vector<double> Coll::reduce(std::span<const double> contrib, Op op,
                                 int root) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  const int vrank = (me - root + n) % n;
  std::vector<double> acc(contrib.begin(), contrib.end());
  for (int vchild : {2 * vrank + 1, 2 * vrank + 2}) {
    if (vchild < n) {
      auto part = recv_vec<double>(comm_, (vchild + root) % n, tag);
      apply_op(op, acc, part);
    }
  }
  if (vrank != 0) {
    send_vec<double>(comm_, ((vrank - 1) / 2 + root) % n, tag, acc);
    return {};
  }
  return acc;
}

std::vector<double> Coll::allreduce(std::span<const double> contrib, Op op) {
  std::vector<double> total = reduce(contrib, op, 0);
  util::Buffer wire;
  if (comm_.rank() == 0) {
    wire = util::Buffer::copy_of(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(total.data()),
        total.size() * sizeof(double)));
  }
  wire = bcast(std::move(wire), 0);
  std::vector<double> out(wire.size() / sizeof(double));
  std::memcpy(out.data(), wire.data(), wire.size());
  return out;
}

std::vector<std::vector<double>> Coll::allgather(
    std::span<const double> contrib) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  std::vector<std::vector<double>> all(static_cast<std::size_t>(n));
  all[static_cast<std::size_t>(me)].assign(contrib.begin(), contrib.end());
  // Ring: in step s, forward the block that originated at (me - s) to the
  // right neighbour; after n-1 steps everyone has everything.
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  for (int step = 0; step < n - 1; ++step) {
    const int outgoing = (me - step + n) % n;
    send_vec<double>(comm_, right, tag,
                     all[static_cast<std::size_t>(outgoing)]);
    const int incoming = (me - step - 1 + n) % n;
    all[static_cast<std::size_t>(incoming)] =
        recv_vec<double>(comm_, left, tag);
  }
  return all;
}

std::vector<std::vector<double>> Coll::alltoall(
    const std::vector<std::vector<double>>& blocks) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  WINDAR_CHECK_EQ(blocks.size(), static_cast<std::size_t>(n))
      << "alltoall needs one block per rank";
  std::vector<std::vector<double>> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(me)] = blocks[static_cast<std::size_t>(me)];
  // Shifted pairing: in round r every rank ships the block for (me + r) and
  // collects the block from (me - r) — a uniform schedule that works for
  // any n and keeps per-pair traffic strictly ordered.
  for (int round = 1; round < n; ++round) {
    const int to = (me + round) % n;
    const int from = (me - round + n) % n;
    send_vec<double>(comm_, to, tag, blocks[static_cast<std::size_t>(to)]);
    out[static_cast<std::size_t>(from)] = recv_vec<double>(comm_, from, tag);
  }
  return out;
}

std::vector<double> Coll::scan_sum(std::span<const double> contrib) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  std::vector<double> acc(contrib.begin(), contrib.end());
  if (me > 0) {
    auto prefix = recv_vec<double>(comm_, me - 1, tag);
    WINDAR_CHECK_EQ(prefix.size(), acc.size()) << "scan width mismatch";
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += prefix[i];
  }
  if (me + 1 < n) send_vec<double>(comm_, me + 1, tag, acc);
  return acc;
}

std::vector<double> Coll::scatter(
    const std::vector<std::vector<double>>& blocks, int root) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  if (me == root) {
    WINDAR_CHECK_EQ(blocks.size(), static_cast<std::size_t>(n))
        << "scatter needs one block per rank";
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      send_vec<double>(comm_, r, tag, blocks[static_cast<std::size_t>(r)]);
    }
    return blocks[static_cast<std::size_t>(root)];
  }
  return recv_vec<double>(comm_, root, tag);
}

std::vector<util::Buffer> Coll::gather(std::span<const std::uint8_t> contrib,
                                       int root) {
  const int n = comm_.size();
  const int me = comm_.rank();
  const int tag = op_tag();
  if (me == root) {
    std::vector<util::Buffer> out(static_cast<std::size_t>(n));
    out[static_cast<std::size_t>(me)] = util::Buffer::copy_of(contrib);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      Message m = comm_.recv(r, tag);
      out[static_cast<std::size_t>(r)] = std::move(m.payload);
    }
    return out;
  }
  comm_.send(root, tag, contrib);
  return {};
}

}  // namespace windar::mp
