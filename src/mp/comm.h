// MPI-shaped communication interface.
//
// Applications (the NPB skeletons, the examples) are written against this
// interface and run unchanged on either the plain transport (mp::RawComm) or
// the fault-tolerant recovery layer (windar::Ctx) — mirroring the paper's
// layering where WINDAR slots beneath the MPI API (paper Fig. 5).
//
// Matching semantics: `recv(src, tag)` blocks for a message matching the
// filters; ANY_SOURCE / ANY_TAG wildcard them.  Like the paper's Algorithm 1,
// delivery from a given sender is FIFO: a process must consume messages from
// one peer in the order they were sent.  ANY_SOURCE introduces exactly the
// non-determinism the paper's §II.C discusses — the delivery order *between*
// senders is unconstrained and must not affect application correctness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/check.h"

namespace windar::mp {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

// The payload is an immutable shared buffer that aliases the delivered
// packet's bytes (and, on the fault-tolerant transport, the sender's log
// entry): delivery hands the application a view, not a fresh vector.  The
// typed helpers below copy out into application-owned containers.
struct Message {
  int src = -1;
  int tag = 0;
  util::Buffer payload;
};

class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Sends `payload` to `dst` with `tag`.  Whether this blocks until the
  /// receiver accepts the message depends on the transport (the paper's
  /// blocking vs non-blocking send paths).
  virtual void send(int dst, int tag, std::span<const std::uint8_t> payload) = 0;

  /// Blocks until a message matching (src, tag) is deliverable, then
  /// delivers it.
  virtual Message recv(int src = kAnySource, int tag = kAnyTag) = 0;

  /// Non-blocking probe: true if a matching message could be delivered
  /// right now (a recv with the same filters would not block).  Drains any
  /// already-arrived traffic opportunistically but never waits.
  virtual bool probe(int src = kAnySource, int tag = kAnyTag) = 0;
};

// ---- typed convenience wrappers ----

template <typename T>
  requires std::is_trivially_copyable_v<T>
void send_value(Comm& c, int dst, int tag, const T& v) {
  c.send(dst, tag, util::to_bytes(v));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T recv_value(Comm& c, int src = kAnySource, int tag = kAnyTag) {
  Message m = c.recv(src, tag);
  return util::from_bytes<T>(m.payload);
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
void send_vec(Comm& c, int dst, int tag, std::span<const T> v) {
  c.send(dst, tag,
         std::span<const std::uint8_t>(
             reinterpret_cast<const std::uint8_t*>(v.data()),
             v.size() * sizeof(T)));
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
std::vector<T> recv_vec(Comm& c, int src = kAnySource, int tag = kAnyTag) {
  Message m = c.recv(src, tag);
  WINDAR_CHECK_EQ(m.payload.size() % sizeof(T), 0u) << "recv_vec misaligned";
  std::vector<T> out(m.payload.size() / sizeof(T));
  std::memcpy(out.data(), m.payload.data(), m.payload.size());
  return out;
}

}  // namespace windar::mp
