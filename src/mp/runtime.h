// Plain (no fault tolerance) job runner: one thread per rank over a shared
// fabric, RawComm transport.  Used by tests and by reference runs that
// establish the zero-overhead baseline the protocol overheads are measured
// against.
#pragma once

#include <cstdint>
#include <functional>

#include "exec/scheduler.h"
#include "mp/comm.h"
#include "net/latency.h"

namespace windar::mp {

using RankFn = std::function<void(Comm&)>;

struct RawJobResult {
  double wall_ms = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Runs `fn` on `n` ranks; rethrows the first rank exception after joining
/// everyone.  `fabric_shards` selects the fabric's scheduler shard count
/// (0: WINDAR_FABRIC_SHARDS env, else min(4, hardware_concurrency)).
/// Under ExecModel::kCoop the ranks run as cooperative tasks on a fixed
/// exec::Scheduler pool (`exec_workers` threads; 0 = default), so n can far
/// exceed the thread budget of the host.
RawJobResult run_raw(int n, const RankFn& fn,
                     net::LatencyModel model = net::LatencyModel{},
                     std::uint64_t seed = 1, int fabric_shards = 0,
                     exec::ExecModel exec_model = exec::ExecModel::kAuto,
                     int exec_workers = 0);

}  // namespace windar::mp
