// Collective operations built from point-to-point messages.
//
// Collectives are implemented *above* the Comm interface so that, when run on
// the fault-tolerant transport, every constituent message is logged, tracked
// and replayed like any other — the paper's protocols see collectives as
// ordinary traffic.  All algorithms use deterministic sources (no
// ANY_SOURCE), so they are trivially correct under the relaxed execution
// model.
//
// Each Coll instance carries a per-rank operation counter mixed into the
// message tags, so back-to-back collectives on the same communicator never
// cross-match.  All ranks must invoke the same sequence of operations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mp/comm.h"

namespace windar::mp {

class Coll {
 public:
  explicit Coll(Comm& comm) : comm_(comm) {}

  /// Binomial-tree broadcast from `root`; returns the broadcast bytes.
  /// Forwarding ranks re-send the shared buffer they received (no re-copy
  /// between tree levels beyond the transport's own single materialisation).
  util::Buffer bcast(util::Buffer data, int root);

  /// Reduces per-rank vectors element-wise (sum) onto `root`; every rank
  /// passes its contribution, only `root` receives the full result (others
  /// get an empty vector).
  std::vector<double> reduce_sum(std::span<const double> contrib, int root);

  /// reduce + bcast.
  std::vector<double> allreduce_sum(std::span<const double> contrib);

  /// Dissemination barrier.
  void barrier();

  /// Gathers per-rank byte blobs to `root` (rank order); empty elsewhere.
  /// Each element aliases the delivered message's buffer.
  std::vector<util::Buffer> gather(std::span<const std::uint8_t> contrib,
                                   int root);

  /// Element-wise reduction operators.
  enum class Op { kSum, kMin, kMax };

  /// Generic-op variants of reduce/allreduce.
  std::vector<double> reduce(std::span<const double> contrib, Op op, int root);
  std::vector<double> allreduce(std::span<const double> contrib, Op op);

  /// Ring allgather: every rank contributes `contrib`; returns all n
  /// contributions in rank order (n-1 ring steps, bandwidth-optimal).
  std::vector<std::vector<double>> allgather(std::span<const double> contrib);

  /// Pairwise-exchange all-to-all: element i of the result is what rank i
  /// sent to this rank.  All per-pair blocks must have equal width.
  std::vector<std::vector<double>> alltoall(
      const std::vector<std::vector<double>>& blocks);

  /// Inclusive prefix sum over rank order: rank r receives the element-wise
  /// sum of contributions from ranks 0..r (linear chain).
  std::vector<double> scan_sum(std::span<const double> contrib);

  /// Binomial-tree scatter from `root`: block r of `blocks` (only read at
  /// the root) lands on rank r.
  std::vector<double> scatter(const std::vector<std::vector<double>>& blocks,
                              int root);

  /// Operation counter accessors: applications that checkpoint mid-run must
  /// save/restore this so re-executed collectives reuse the original tags.
  std::uint32_t seq() const { return op_seq_; }
  void reset_seq(std::uint32_t seq) { op_seq_ = seq; }

 private:
  int op_tag();

  Comm& comm_;
  std::uint32_t op_seq_ = 0;
};

}  // namespace windar::mp
