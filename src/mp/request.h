// Non-blocking receive requests over the Comm interface.
//
// The simulated transports complete sends asynchronously already (buffered
// in the recovery layer / fabric), so only the receive side needs request
// objects: irecv registers interest, test() polls via Comm::probe, wait()
// blocks.  wait_any polls a set of requests — the idiom MPI codes use to
// overlap halo exchanges with compute.
#pragma once

#include <optional>
#include <vector>

#include "mp/comm.h"
#include "util/check.h"
#include "util/wait.h"

namespace windar::mp {

class RecvRequest {
 public:
  RecvRequest() = default;
  RecvRequest(Comm& comm, int src, int tag)
      : comm_(&comm), src_(src), tag_(tag) {}

  /// True once the message is available; never blocks.  Idempotent.
  bool test() {
    if (done_) return true;
    WINDAR_CHECK(comm_ != nullptr) << "empty request";
    if (comm_->probe(src_, tag_)) {
      done_ = comm_->recv(src_, tag_);
    }
    return done_.has_value();
  }

  /// Blocks until completion and returns the message.  Single-shot: the
  /// message is moved out.
  Message wait() {
    WINDAR_CHECK(comm_ != nullptr) << "empty request";
    if (!done_) done_ = comm_->recv(src_, tag_);
    Message out = std::move(*done_);
    done_.reset();
    completed_ = true;
    return out;
  }

  bool completed() const { return completed_; }

 private:
  friend std::size_t wait_any(std::vector<RecvRequest>& reqs);
  Comm* comm_ = nullptr;
  int src_ = kAnySource;
  int tag_ = kAnyTag;
  std::optional<Message> done_;
  bool completed_ = false;  // wait() consumed the message
};

inline RecvRequest irecv(Comm& comm, int src = kAnySource,
                         int tag = kAnyTag) {
  return RecvRequest(comm, src, tag);
}

/// Blocks until at least one not-yet-consumed request can complete; returns
/// its index.  Requests already consumed by wait() are skipped.
inline std::size_t wait_any(std::vector<RecvRequest>& reqs) {
  WINDAR_CHECK(!reqs.empty()) << "wait_any on empty set";
  while (true) {
    bool any_pending = false;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].completed_) continue;
      any_pending = true;
      if (reqs[i].test()) return i;
    }
    WINDAR_CHECK(any_pending) << "wait_any: every request already consumed";
    util::coop_yield();  // poll loop: must let sibling fibers run
  }
}

}  // namespace windar::mp
