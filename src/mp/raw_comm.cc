#include "mp/raw_comm.h"

#include "util/check.h"

namespace windar::mp {

namespace {
constexpr std::uint16_t kRawKind = 0x7fff;
constexpr std::size_t kPumpBatch = 64;
}

RawComm::RawComm(net::Transport& transport, int rank, int size)
    : transport_(transport),
      rank_(rank),
      size_(size),
      next_send_(static_cast<std::size_t>(size), 1),
      next_recv_(static_cast<std::size_t>(size), 1) {
  WINDAR_CHECK_LE(size, transport.endpoint_count());
}

void RawComm::send(int dst, int tag, std::span<const std::uint8_t> payload) {
  WINDAR_CHECK(dst >= 0 && dst < size_) << "send to bad rank " << dst;
  transport_.send(net::make_packet(
      rank_, dst, kRawKind, tag, next_send_[static_cast<std::size_t>(dst)]++,
      {}, util::Buffer::copy_of(payload)));
}

bool RawComm::pump() {
  net::Inbox& inbox = transport_.endpoint(rank_).inbox();
  // One blocking pop for the first packet, then drain whatever else already
  // arrived under a single consumer-lock acquisition — a high-rate sender
  // costs one lock round-trip per burst, not per message.
  batch_.clear();
  if (inbox.try_pop_batch(&batch_, kPumpBatch) == 0) {
    auto pkt = inbox.pop();
    if (!pkt) {
      // Poisoned endpoint: the job is being torn down (peer failure or
      // shutdown).  Throw instead of aborting so the runner can unwind.
      throw std::runtime_error("raw transport torn down while in recv");
    }
    batch_.push_back(std::move(*pkt));
    inbox.try_pop_batch(&batch_, kPumpBatch - 1);
  }
  for (net::Packet& pkt : batch_) admit(std::move(pkt));
  batch_.clear();
  return true;
}

void RawComm::admit(net::Packet&& pkt) {
  WINDAR_CHECK_EQ(pkt.kind, kRawKind) << "raw comm got foreign packet";
  const int src = pkt.src;
  auto& expected = next_recv_[static_cast<std::size_t>(src)];
  if (pkt.seq == expected) {
    // In-order arrival (the fabric preserves per-pair FIFO, so this is the
    // steady state): straight to the ready queue, no map node allocated.
    ++expected;
    Message m;
    m.src = src;
    m.tag = pkt.tag;
    m.payload = std::move(pkt.payload);
    ready_.push_back(std::move(m));
    if (!out_of_order_.empty()) promote(src);
    return;
  }
  out_of_order_.emplace(std::make_pair(src, pkt.seq), std::move(pkt));
}

void RawComm::promote(int src) {
  // Move the contiguous run of packets from `src` into the ready queue.
  while (true) {
    auto it = out_of_order_.find({src, next_recv_[static_cast<std::size_t>(src)]});
    if (it == out_of_order_.end()) return;
    ++next_recv_[static_cast<std::size_t>(src)];
    Message m;
    m.src = it->second.src;
    m.tag = it->second.tag;
    m.payload = std::move(it->second.payload);
    ready_.push_back(std::move(m));
    out_of_order_.erase(it);
  }
}

bool RawComm::probe(int src, int tag) {
  // Drain everything that has already arrived, then scan the ready queue.
  while (auto pkt = transport_.endpoint(rank_).inbox().try_pop()) {
    admit(std::move(*pkt));
  }
  for (const auto& m : ready_) {
    if ((src == kAnySource || m.src == src) &&
        (tag == kAnyTag || m.tag == tag)) {
      return true;
    }
  }
  return false;
}

Message RawComm::recv(int src, int tag) {
  while (true) {
    for (auto it = ready_.begin(); it != ready_.end(); ++it) {
      if ((src == kAnySource || it->src == src) &&
          (tag == kAnyTag || it->tag == tag)) {
        Message m = std::move(*it);
        ready_.erase(it);
        return m;
      }
    }
    (void)pump();
  }
}

}  // namespace windar::mp
