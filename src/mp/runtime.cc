#include "mp/runtime.h"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/scheduler.h"
#include "mp/raw_comm.h"
#include "net/fabric.h"
#include "util/clock.h"

namespace windar::mp {

RawJobResult run_raw(int n, const RankFn& fn, net::LatencyModel model,
                     std::uint64_t seed, int fabric_shards,
                     exec::ExecModel exec_model, int exec_workers) {
  net::Fabric fabric(n, model, seed, fabric_shards);
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto rank_body = [&](int r) {
    try {
      RawComm comm(fabric, r, n);
      fn(comm);
    } catch (...) {
      std::scoped_lock lock(error_mu);
      if (!first_error) first_error = std::current_exception();
      // A failed rank leaves peers blocked in recv; tear the job down so
      // the error surfaces instead of hanging.
      fabric.shutdown();
    }
  };

  const double t0 = util::now_ms();
  if (exec::resolve_exec_model(exec_model) == exec::ExecModel::kCoop) {
    exec::Scheduler sched(exec_workers);
    for (int r = 0; r < n; ++r) {
      sched.spawn([&rank_body, r] { rank_body(r); });
    }
    sched.join_all();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      threads.emplace_back([&rank_body, r] { rank_body(r); });
    }
    for (auto& t : threads) t.join();
  }
  const double t1 = util::now_ms();

  if (first_error) std::rethrow_exception(first_error);

  RawJobResult result;
  result.wall_ms = t1 - t0;
  auto stats = fabric.stats();
  result.packets = stats.packets_sent;
  result.bytes = stats.bytes_sent;
  return result;
}

}  // namespace windar::mp
