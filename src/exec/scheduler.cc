#include "exec/scheduler.h"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"

// Sanitizer fiber hooks.  ASan tracks a fake stack per fiber and must be told
// around every swapcontext which stack is becoming live; TSan models each
// fiber as its own logical thread so happens-before edges survive the switch.
// Without these, both sanitizers see one OS thread hopping between disjoint
// stack ranges and report garbage.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WINDAR_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define WINDAR_TSAN_FIBERS 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define WINDAR_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define WINDAR_TSAN_FIBERS 1
#endif

#ifdef WINDAR_ASAN_FIBERS
#include <pthread.h>
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef WINDAR_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace windar::exec {

namespace detail {

using Clock = std::chrono::steady_clock;

/// One switchable execution context: either a worker thread's scheduling
/// context or a task's fiber.
struct FiberCtx {
  ucontext_t uc{};
  void* stack_bottom = nullptr;  // fiber stack (null for a worker context)
  std::size_t stack_size = 0;
  void* fake_stack = nullptr;  // ASan fake-stack save slot
  void* tsan_fiber = nullptr;
};

enum class State : int {
  kReady,     // in the ready queue, waiting for a worker
  kRunning,   // live on a worker
  kParking,   // called park, not yet switched out
  kParked,    // switched out, waiting for a timer or an unpark
  kNotified,  // unpark permit pending (consumed by the next park)
  kDone,
};

struct Task;

struct TimerEntry {
  Clock::time_point deadline;
  std::uint64_t seq;  // park generation the entry belongs to
  std::shared_ptr<Task> task;
};
struct TimerLater {
  bool operator()(const TimerEntry& a, const TimerEntry& b) const {
    return a.deadline > b.deadline;
  }
};

struct Core {
  std::mutex mu;
  std::condition_variable cv;       // workers wait here
  std::condition_variable done_cv;  // join_all waits here
  std::deque<std::shared_ptr<Task>> ready;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timers;
  bool stopping = false;
  std::size_t started = 0;
  std::size_t finished = 0;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;

  void push_ready(std::shared_ptr<Task> t) {
    {
      std::scoped_lock lock(mu);
      ready.push_back(std::move(t));
    }
    cv.notify_one();
  }
};

struct Task final : util::ParkHandle, std::enable_shared_from_this<Task> {
  std::shared_ptr<Core> core;
  std::function<void()> fn;
  FiberCtx ctx;
  void* stack_base = nullptr;  // mmap base (guard page + usable stack)
  std::size_t stack_total = 0;

  std::atomic<State> state{State::kReady};
  std::atomic<std::uint64_t> park_seq{0};
  Clock::time_point park_deadline{};
  bool finished = false;  // set on the fiber, read by the worker after switch

  // done/joiners: WaitSet so a joiner may be a thread or another task.
  std::mutex jmu;
  util::WaitSet jcv;
  bool done = false;

  ~Task() override { release_stack(); }

  void release_stack() {
    if (stack_base != nullptr) {
      ::munmap(stack_base, stack_total);
      stack_base = nullptr;
    }
#ifdef WINDAR_TSAN_FIBERS
    if (ctx.tsan_fiber != nullptr) {
      __tsan_destroy_fiber(ctx.tsan_fiber);
      ctx.tsan_fiber = nullptr;
    }
#endif
  }

  /// Wake the task from any thread, any time.  After completion this is a
  /// benign no-op, which is what makes ParkRefs safe to cache in WaitSets.
  void unpark() override {
    for (;;) {
      State s = state.load(std::memory_order_acquire);
      switch (s) {
        case State::kRunning:
        case State::kParking:
          if (state.compare_exchange_weak(s, State::kNotified,
                                          std::memory_order_acq_rel)) {
            return;  // permit stored; the (in-flight) park consumes it
          }
          break;
        case State::kParked:
          if (state.compare_exchange_weak(s, State::kReady,
                                          std::memory_order_acq_rel)) {
            core->push_ready(shared_from_this());
            return;
          }
          break;
        case State::kReady:
        case State::kNotified:
        case State::kDone:
          return;
      }
    }
  }
};

namespace {

// Thread-local worker identity.  Set for the lifetime of a worker thread;
// g_current_task is non-null exactly while a fiber is live on this thread.
thread_local Scheduler* t_sched = nullptr;
thread_local FiberCtx* t_worker_ctx = nullptr;
thread_local Task* t_current = nullptr;

std::size_t page_size() {
  static const std::size_t ps =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

constexpr std::size_t kDefaultStack = 256 * 1024;

#ifndef MAP_STACK
#define MAP_STACK 0
#endif

/// Switches from `from` to `to`, keeping the sanitizers in the loop.
/// `from_dying` releases the outgoing fiber's ASan fake stack (final exit).
void switch_ctx(FiberCtx* from, FiberCtx* to, bool from_dying) {
#ifdef WINDAR_ASAN_FIBERS
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &from->fake_stack,
                                 to->stack_bottom, to->stack_size);
#else
  (void)from_dying;
#endif
#ifdef WINDAR_TSAN_FIBERS
  __tsan_switch_to_fiber(to->tsan_fiber, 0);
#endif
  ::swapcontext(&from->uc, &to->uc);
  // Resumed (possibly much later, possibly on a different worker for tasks).
#ifdef WINDAR_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(from->fake_stack, nullptr, nullptr);
#endif
}

void fiber_trampoline(unsigned hi, unsigned lo) {
  auto* task = reinterpret_cast<Task*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
#ifdef WINDAR_ASAN_FIBERS
  // First entry: no prior fake stack for this fiber.
  __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
  try {
    task->fn();
  } catch (...) {
    std::scoped_lock lock(task->core->mu);
    if (!task->core->first_error) {
      task->core->first_error = std::current_exception();
    }
  }
  task->fn = nullptr;  // drop captures on the fiber, not at ~Task
  task->finished = true;
  // Final switch out; never returns.  The worker completes the bookkeeping.
  switch_ctx(&task->ctx, t_worker_ctx, /*from_dying=*/true);
  std::abort();  // resumed a finished fiber — scheduler bug
}

}  // namespace
}  // namespace detail

using detail::Clock;
using detail::Core;
using detail::State;
using detail::Task;

// ---------------------------------------------------------------------------
// ExecModel plumbing

bool parse_exec_model(const std::string& s, ExecModel* out) {
  if (s == "threads") {
    *out = ExecModel::kThreads;
  } else if (s == "coop") {
    *out = ExecModel::kCoop;
  } else if (s == "auto") {
    *out = ExecModel::kAuto;
  } else {
    return false;
  }
  return true;
}

ExecModel resolve_exec_model(ExecModel m) {
  if (m != ExecModel::kAuto) return m;
  if (const char* env = std::getenv("WINDAR_EXEC")) {
    ExecModel parsed;
    if (parse_exec_model(env, &parsed) && parsed != ExecModel::kAuto) {
      return parsed;
    }
    std::fprintf(stderr, "windar: ignoring unrecognized WINDAR_EXEC=%s\n", env);
  }
  return ExecModel::kThreads;
}

// ---------------------------------------------------------------------------
// TaskHandle

bool TaskHandle::done() const {
  WINDAR_CHECK(task_ != nullptr) << "join of empty TaskHandle";
  std::scoped_lock lock(task_->jmu);
  return task_->done;
}

void TaskHandle::join() {
  WINDAR_CHECK(task_ != nullptr) << "join of empty TaskHandle";
  std::unique_lock lock(task_->jmu);
  task_->jcv.wait(lock, [&] { return task_->done; });
}

// ---------------------------------------------------------------------------
// Scheduler

namespace {

// CoopRuntime entries dispatch on the thread-locals, so the single global
// table (installed once, never removed) serves every scheduler instance.
bool rt_on_task() { return detail::t_current != nullptr; }

util::ParkRef rt_self() {
  WINDAR_CHECK(detail::t_current != nullptr) << "coop self() off-task";
  return detail::t_current->shared_from_this();
}

void rt_park_until(std::chrono::steady_clock::time_point deadline) {
  Scheduler::park_until(deadline);
}

constexpr util::CoopRuntime kRuntime{rt_on_task, rt_self, rt_park_until};

void install_runtime_once() {
  static const bool installed = [] {
    util::set_coop_runtime(&kRuntime);
    return true;
  }();
  (void)installed;
}

}  // namespace

int Scheduler::default_workers() {
  if (const char* env = std::getenv("WINDAR_EXEC_WORKERS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<int>(std::min(4u, hw));
}

Scheduler* Scheduler::current() { return detail::t_sched; }
bool Scheduler::on_task() { return detail::t_current != nullptr; }

Scheduler::Scheduler(int workers) : core_(std::make_shared<Core>()) {
  install_runtime_once();
  if (workers <= 0) workers = default_workers();
  core_->threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    core_->threads.emplace_back([this, core = core_] {
      detail::t_sched = this;
      detail::FiberCtx worker_ctx;
#ifdef WINDAR_TSAN_FIBERS
      worker_ctx.tsan_fiber = __tsan_get_current_fiber();
#endif
#ifdef WINDAR_ASAN_FIBERS
      {
        // ASan needs the real bounds of this thread's stack when a fiber
        // switches back to the scheduling context.
        pthread_attr_t attr;
        if (pthread_getattr_np(pthread_self(), &attr) == 0) {
          void* addr = nullptr;
          std::size_t sz = 0;
          if (pthread_attr_getstack(&attr, &addr, &sz) == 0) {
            worker_ctx.stack_bottom = addr;
            worker_ctx.stack_size = sz;
          }
          pthread_attr_destroy(&attr);
        }
      }
#endif
      detail::t_worker_ctx = &worker_ctx;

      std::unique_lock lock(core->mu);
      for (;;) {
        const auto now = Clock::now();
        // Promote expired timers.  A stale generation (task re-parked since
        // the entry was queued) or a lost CAS (unpark got there first) is
        // skipped; at most one waker wins the kParked -> kReady transition.
        while (!core->timers.empty() && core->timers.top().deadline <= now) {
          detail::TimerEntry e = core->timers.top();
          core->timers.pop();
          if (e.task->park_seq.load(std::memory_order_acquire) != e.seq) {
            continue;
          }
          State expected = State::kParked;
          if (e.task->state.compare_exchange_strong(
                  expected, State::kReady, std::memory_order_acq_rel)) {
            core->ready.push_back(std::move(e.task));
          }
        }
        if (!core->ready.empty()) {
          std::shared_ptr<Task> task = std::move(core->ready.front());
          core->ready.pop_front();
          lock.unlock();
          run_task_on_worker(core.get(), &worker_ctx, std::move(task));
          lock.lock();
          continue;
        }
        if (core->stopping) break;
        if (core->timers.empty()) {
          core->cv.wait(lock);
        } else {
          core->cv.wait_until(lock, core->timers.top().deadline);
        }
      }
      detail::t_worker_ctx = nullptr;
      detail::t_sched = nullptr;
    });
  }
}

void Scheduler::run_task_on_worker(detail::Core* core, detail::FiberCtx* wctx,
                                   std::shared_ptr<detail::Task> task) {
  task->state.store(State::kRunning, std::memory_order_release);
  detail::t_current = task.get();
  detail::switch_ctx(wctx, &task->ctx, /*from_dying=*/false);
  detail::t_current = nullptr;

  if (task->finished) {
    task->release_stack();
    {
      std::scoped_lock lock(task->jmu);
      task->done = true;
    }
    task->jcv.notify_all();
    task->state.store(State::kDone, std::memory_order_release);
    bool all_done = false;
    {
      std::scoped_lock lock(core->mu);
      ++core->finished;
      all_done = core->finished == core->started;
    }
    if (all_done) core->done_cv.notify_all();
    return;
  }

  // The task switched out through park_until and is in kParking (or already
  // kNotified if an unpark raced it).
  State expected = State::kParking;
  if (task->state.compare_exchange_strong(expected, State::kParked,
                                          std::memory_order_acq_rel)) {
    const auto deadline = task->park_deadline;
    if (deadline <= Clock::now()) {
      // yield / already-expired wait: requeue without touching the timers.
      State parked = State::kParked;
      if (task->state.compare_exchange_strong(parked, State::kReady,
                                              std::memory_order_acq_rel)) {
        core->push_ready(std::move(task));
      }
    } else if (deadline != Clock::time_point::max()) {
      const std::uint64_t seq = task->park_seq.load(std::memory_order_acquire);
      {
        std::scoped_lock lock(core->mu);
        core->timers.push(detail::TimerEntry{deadline, seq, std::move(task)});
      }
      core->cv.notify_one();  // the timer horizon may have moved closer
    }
    // deadline == max: the task sleeps until some unpark finds it.
  } else {
    // Unpark landed while the task was mid-switch: it is kNotified.  Requeue.
    task->state.store(State::kReady, std::memory_order_release);
    core->push_ready(std::move(task));
  }
}

Scheduler::~Scheduler() {
  {
    std::scoped_lock lock(core_->mu);
    if (core_->finished != core_->started) {
      std::fprintf(stderr,
                   "exec::Scheduler destroyed with %zu live task(s); "
                   "call join_all() first\n",
                   core_->started - core_->finished);
      std::abort();
    }
    core_->stopping = true;
  }
  core_->cv.notify_all();
  for (std::thread& t : core_->threads) t.join();
}

TaskHandle Scheduler::spawn(std::function<void()> fn, std::size_t stack_bytes) {
  WINDAR_CHECK(fn != nullptr) << "spawn of empty task";
  if (stack_bytes == 0) stack_bytes = detail::kDefaultStack;
  const std::size_t ps = detail::page_size();
  stack_bytes = (stack_bytes + ps - 1) / ps * ps;

  auto task = std::make_shared<Task>();
  task->core = core_;
  task->fn = std::move(fn);

  task->stack_total = stack_bytes + ps;  // low guard page
  void* base = ::mmap(nullptr, task->stack_total, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  WINDAR_CHECK(base != MAP_FAILED) << "task stack mmap failed";
  task->stack_base = base;
  WINDAR_CHECK(::mprotect(base, ps, PROT_NONE) == 0) << "stack guard mprotect";
  task->ctx.stack_bottom = static_cast<char*>(base) + ps;
  task->ctx.stack_size = stack_bytes;
#ifdef WINDAR_TSAN_FIBERS
  task->ctx.tsan_fiber = __tsan_create_fiber(0);
#endif

  WINDAR_CHECK(::getcontext(&task->ctx.uc) == 0) << "getcontext failed";
  task->ctx.uc.uc_stack.ss_sp = task->ctx.stack_bottom;
  task->ctx.uc.uc_stack.ss_size = task->ctx.stack_size;
  task->ctx.uc.uc_link = nullptr;  // fibers exit via switch_ctx, never return
  const auto addr = reinterpret_cast<std::uintptr_t>(task.get());
  ::makecontext(&task->ctx.uc,
                reinterpret_cast<void (*)()>(detail::fiber_trampoline), 2,
                static_cast<unsigned>(addr >> 32),
                static_cast<unsigned>(addr & 0xffffffffu));

  {
    std::scoped_lock lock(core_->mu);
    WINDAR_CHECK(!core_->stopping) << "spawn on a stopping scheduler";
    ++core_->started;
    core_->ready.push_back(task);
  }
  core_->cv.notify_one();
  return TaskHandle(std::move(task));
}

void Scheduler::join_all() {
  WINDAR_CHECK(!on_task()) << "join_all from inside a task";
  std::exception_ptr err;
  {
    std::unique_lock lock(core_->mu);
    core_->done_cv.wait(lock,
                        [&] { return core_->finished == core_->started; });
    err = core_->first_error;
    core_->first_error = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

int Scheduler::workers() const {
  return static_cast<int>(core_->threads.size());
}

std::size_t Scheduler::tasks_started() const {
  std::scoped_lock lock(core_->mu);
  return core_->started;
}

void Scheduler::yield() { park_until(Clock::now()); }

void Scheduler::park_until(std::chrono::steady_clock::time_point deadline) {
  Task* task = detail::t_current;
  WINDAR_CHECK(task != nullptr) << "park_until off-task";
  State s = task->state.load(std::memory_order_acquire);
  if (s == State::kNotified) {
    // Consume the pending permit instead of sleeping (the unpark we would
    // otherwise have waited for already happened).
    task->state.store(State::kRunning, std::memory_order_release);
    return;
  }
  task->park_deadline = deadline;
  task->park_seq.fetch_add(1, std::memory_order_release);
  State expected = State::kRunning;
  if (!task->state.compare_exchange_strong(expected, State::kParking,
                                           std::memory_order_acq_rel)) {
    // An unpark slid in after the load above; take the permit and stay.
    task->state.store(State::kRunning, std::memory_order_release);
    return;
  }
  detail::switch_ctx(&task->ctx, detail::t_worker_ctx, /*from_dying=*/false);
  // Resumed by some worker, possibly a different one: refresh nothing here —
  // run_task_on_worker already reset the thread-locals and our state.
}

util::ParkRef Scheduler::self() {
  WINDAR_CHECK(detail::t_current != nullptr) << "self() off-task";
  return detail::t_current->shared_from_this();
}

}  // namespace windar::exec
