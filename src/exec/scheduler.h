// Cooperative rank scheduler: a fixed pool of worker threads multiplexing
// stackful tasks (fibers), so a job's thread count is bounded by the pool
// size instead of by n.
//
// Thread-per-rank falls over long before 1024 ranks on a small host — each
// rank costs an OS thread (plus helper threads in the non-blocking engine),
// and the kernel scheduler thrashes on thousands of mostly-blocked threads.
// Under exec::Scheduler a rank is a Task: a ucontext fiber with its own
// mmap'd stack (guard page at the low end), run by whichever worker picks it
// off the ready queue.  Every blocking point in the stack — BlockingQueue
// pops, DeliveryQueue waits, restart-delay sleeps, collectives (which bottom
// out in the former two) — routes through util::WaitSet / util::coop_*,
// which park the task (switch back to the worker's scheduling context)
// instead of blocking the worker.  4096 ranks then run on 4 workers.
//
// Park/unpark protocol (lock-free, per task):
//
//   kRunning --park_until--> kParking --worker--> kParked --timer/unpark-->
//   kReady --worker--> kRunning; an unpark that catches the task kRunning or
//   kParking stores kNotified, which the next park consumes (permit
//   semantics, so an early wakeup is never lost).  Timer entries carry the
//   park generation, so an expired entry from an earlier park cannot wake a
//   later one; spurious wakeups remain possible (and allowed — every caller
//   re-checks its predicate under its own lock).
//
// Interop invariants with the rest of the stack (DESIGN.md §3g):
//   * The fabric's shard scheduler threads, the TEL event-logger thread, and
//     the socket transport's reader/writer threads stay plain OS threads;
//     they wake tasks exclusively through WaitSet::notify (ParkHandle is
//     safe from any thread, any time).
//   * A task must not hold any engine lock across a park; WaitSet releases
//     the predicate mutex before parking, mirroring condition_variable.
//   * Scheduler::current() is thread-local to worker threads: code that
//     spawns helpers (SendPath) picks fibers on a worker, threads elsewhere,
//     with no configuration plumbing.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>

#include "util/wait.h"

namespace windar::exec {

namespace detail {
struct Core;
struct FiberCtx;
struct Task;
}  // namespace detail

/// Execution model selector shared by the runtimes and drivers.
///   kThreads — one OS thread per rank (the seed model; default).
///   kCoop    — rank tasks multiplexed on an exec::Scheduler worker pool.
///   kAuto    — WINDAR_EXEC environment variable ("coop"/"threads") if set,
///              else kThreads.
enum class ExecModel { kAuto, kThreads, kCoop };

/// Resolves kAuto against WINDAR_EXEC.
ExecModel resolve_exec_model(ExecModel m);

inline const char* to_string(ExecModel m) {
  switch (m) {
    case ExecModel::kAuto: return "auto";
    case ExecModel::kThreads: return "threads";
    case ExecModel::kCoop: return "coop";
  }
  return "?";
}

/// Parses "threads" / "coop" / "auto"; anything else returns false.
bool parse_exec_model(const std::string& s, ExecModel* out);

/// Joinable handle to a spawned task.  join() parks when called from another
/// task, blocks the OS thread otherwise; both rethrow nothing (task errors
/// surface through Scheduler::join_all, mirroring thread-mode supervisors
/// that catch everything themselves).
class TaskHandle {
 public:
  TaskHandle() = default;
  bool valid() const { return task_ != nullptr; }
  bool done() const;
  void join();

 private:
  friend class Scheduler;
  explicit TaskHandle(std::shared_ptr<detail::Task> t) : task_(std::move(t)) {}
  std::shared_ptr<detail::Task> task_;
};

class Scheduler {
 public:
  /// `workers` OS threads; 0 resolves the default — WINDAR_EXEC_WORKERS if
  /// set and positive, else min(4, hardware_concurrency).  The pool size is
  /// independent of how many tasks are spawned.
  explicit Scheduler(int workers = 0);

  /// Joins the workers.  Every spawned task must have finished (join_all);
  /// aborts otherwise — a live fiber's stack cannot be safely discarded.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Schedules `fn` as a new task.  Callable from any thread, including from
  /// inside a task (helper fibers).  `stack_bytes` 0 picks the default
  /// (256 KiB of lazily-committed address space + guard page).
  TaskHandle spawn(std::function<void()> fn, std::size_t stack_bytes = 0);

  /// Blocks the calling OS thread (not a worker) until every task spawned so
  /// far has finished, then rethrows the first task exception, if any.
  void join_all();

  int workers() const;
  std::size_t tasks_started() const;

  static int default_workers();

  /// The scheduler driving the calling thread, if it is a worker; null on
  /// ordinary threads.  Non-null inside any task.
  static Scheduler* current();

  /// True when the calling thread is executing inside a task.
  static bool on_task();

  /// Cooperatively reschedules the current task at the back of the ready
  /// queue (on_task() must be true).
  static void yield();

  /// Parks the current task until `deadline` or an unpark, whichever first.
  static void park_until(std::chrono::steady_clock::time_point deadline);

  /// Park handle for the current task (feeds util::WaitSet registration).
  static util::ParkRef self();

 private:
  static void run_task_on_worker(detail::Core* core, detail::FiberCtx* wctx,
                                 std::shared_ptr<detail::Task> task);

  std::shared_ptr<detail::Core> core_;
};

}  // namespace windar::exec
