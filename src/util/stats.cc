#include "util/stats.h"

#include <cstdio>

#include "util/check.h"

namespace windar::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
  ++total_;
  // Uniform thinning: once full, keep every `stride_`-th sample.  This keeps
  // percentiles approximately right for stationary streams while bounding
  // memory on long benchmark runs.
  if (total_ % stride_ != 0) return;
  if (xs_.size() >= limit_) {
    std::vector<double> kept;
    kept.reserve(xs_.size() / 2);
    for (std::size_t i = 0; i < xs_.size(); i += 2) kept.push_back(xs_[i]);
    xs_ = std::move(kept);
    stride_ *= 2;
    if (total_ % stride_ != 0) return;
  }
  xs_.push_back(x);
  sorted_ = false;
}

double Samples::percentile(double q) const {
  WINDAR_CHECK(q >= 0.0 && q <= 1.0) << "bad quantile " << q;
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

std::string fmt_double(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace windar::util
