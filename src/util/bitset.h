// Dynamic rank bitset — a set over process ranks sized by the job, with a
// fast fixed-width path for the common case.
//
// TAG's per-determinant knowledge mask was a bare uint64_t, which hard-capped
// jobs at 64 ranks (and with them the fig6/fig7 sweeps).  RankBitset keeps
// ranks 0..63 in one inline word — at n <= 64 no allocation ever happens and
// set/test/merge compile down to the same single-word ops — and spills ranks
// >= 64 into a vector of words grown on demand.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace windar::util {

class RankBitset {
 public:
  RankBitset() = default;

  void set(int r) {
    if (r < 64) {
      lo_ |= word_bit(r);
      return;
    }
    const std::size_t w = hi_word(r);
    if (w >= hi_.size()) hi_.resize(w + 1, 0);
    hi_[w] |= word_bit(r & 63);
  }

  bool test(int r) const {
    if (r < 64) return (lo_ & word_bit(r)) != 0;
    const std::size_t w = hi_word(r);
    return w < hi_.size() && (hi_[w] & word_bit(r & 63)) != 0;
  }

  /// Set union (the knowledge-merge operation).
  void merge(const RankBitset& o) {
    lo_ |= o.lo_;
    if (o.hi_.empty()) return;
    if (hi_.size() < o.hi_.size()) hi_.resize(o.hi_.size(), 0);
    for (std::size_t w = 0; w < o.hi_.size(); ++w) hi_[w] |= o.hi_[w];
  }

  bool empty() const {
    if (lo_ != 0) return false;
    for (std::uint64_t w : hi_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Serialized as the inline word plus a length-prefixed spill vector, so
  /// n <= 64 jobs cost exactly the old u64 plus one count word on disk.
  void save(ByteWriter& w) const {
    w.u64(lo_);
    w.u64_vec(hi_);
  }

  static RankBitset load(ByteReader& r) {
    RankBitset b;
    b.lo_ = r.u64();
    b.hi_ = r.u64_vec();
    return b;
  }

  /// The set containing only `r`.
  static RankBitset of(int r) {
    RankBitset b;
    b.set(r);
    return b;
  }

  /// The set {a, b}.
  static RankBitset of(int a, int b) {
    RankBitset s;
    s.set(a);
    s.set(b);
    return s;
  }

 private:
  static std::uint64_t word_bit(int r) { return std::uint64_t{1} << (r & 63); }
  static std::size_t hi_word(int r) {
    return static_cast<std::size_t>(r / 64) - 1;
  }

  std::uint64_t lo_ = 0;                // ranks 0..63 (never allocates)
  std::vector<std::uint64_t> hi_;       // ranks >= 64, grown on demand
};

}  // namespace windar::util
