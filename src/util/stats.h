// Small statistics helpers used by the metrics plane and bench harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace windar::util {

/// Streaming mean/variance/min/max (Welford).  Thread-compatible: callers
/// synchronize externally or keep one per thread and merge.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Reservoir of raw samples with percentile queries; bounded memory via
/// uniform thinning once `limit` samples are held.
class Samples {
 public:
  explicit Samples(std::size_t limit = 1 << 20) : limit_(limit) {}

  void add(double x);
  /// q in [0, 1]; linear interpolation between order statistics.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  std::size_t count() const { return total_; }
  const std::vector<double>& raw() const { return xs_; }

 private:
  std::size_t limit_;
  std::size_t total_ = 0;
  std::size_t stride_ = 1;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Formats `x` with `digits` significant decimals, trimming trailing zeros.
std::string fmt_double(double x, int digits = 3);

}  // namespace windar::util
