// Console table printer: the bench harnesses emit the paper's figure data as
// aligned rows so "who wins, by what factor" is readable straight off the
// terminal and trivially greppable/plottable.
#pragma once

#include <string>
#include <vector>

namespace windar::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& row(std::vector<std::string> cells);

  /// Writes the table to stdout with a title line and column alignment.
  void print(const std::string& title = "") const;

  /// CSV form (for machine consumption / replotting).
  std::string csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace windar::util
