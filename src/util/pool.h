// Slab recycling for hot-path byte blocks and fixed-shape objects.
//
// The message path allocates the same shapes over and over: one payload
// block per send (util::Buffer::copy_of), one reassembly block per received
// frame (net::FrameDecoder), one 32-entry chunk per burst of sender-log
// appends.  BlockPool/Pool return those shapes to size-classed free lists
// instead of the allocator, so steady-state traffic costs zero heap calls —
// the lever behind the ≤2 allocs/msg target in bench/msg_path.
//
// Two pieces:
//
//  * BlockPool — process-wide, size-classed byte slabs with an *intrusive*
//    refcount (BlockRef).  A shared_ptr custom deleter would re-introduce a
//    control-block allocation per acquire, defeating the point; the refcount
//    lives in the block's own header, so acquire-from-freelist is zero
//    allocations.  Oversize requests (beyond the largest class) still work —
//    they are plain one-shot allocations released straight back to the
//    allocator, exactly the pre-pool behaviour.
//
//  * Pool<T> — a typed free list for fixed-shape helper objects (sender-log
//    chunks).  Objects come back constructed; the caller resets state.
//
// ASan cleanliness across kill/revive storms: a free-listed block's data
// region is poisoned while it sits in the pool and unpoisoned on reuse, so a
// stale util::Buffer view into a recycled block is a *reported*
// use-after-poison, not silent corruption.  The refcount keeps correctly
// shared views alive — a block only reaches the free list when the last
// Buffer aliasing it is gone.
//
// WINDAR_POOL=off (or 0) disables recycling process-wide: every acquire is a
// fresh allocation and every release frees, which is the bisect lever when a
// lifetime bug is suspected.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "util/check.h"

#if defined(__SANITIZE_ADDRESS__)
#define WINDAR_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WINDAR_POOL_ASAN 1
#endif
#endif

#ifdef WINDAR_POOL_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace windar::util {

namespace detail {

/// Header of every pooled byte block; the data region follows in the same
/// allocation.  `refs` is the intrusive refcount BlockRef manipulates.
struct BlockNode {
  std::atomic<std::uint32_t> refs{1};
  std::uint32_t size_class = 0;  // kNumClasses means oversize (never pooled)
  std::size_t capacity = 0;
  BlockNode* next = nullptr;  // freelist link, only while pooled
  bool recycled = false;      // this acquisition came off a freelist

  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
};

}  // namespace detail

class BlockPool;

/// RAII handle to a pooled block: copy bumps the intrusive refcount, the
/// last release returns the block to its size class's free list.  Cheap to
/// pass by value (one pointer).
class BlockRef {
 public:
  BlockRef() = default;
  explicit BlockRef(detail::BlockNode* node) : node_(node) {}

  BlockRef(const BlockRef& o) : node_(o.node_) {
    if (node_) node_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  BlockRef(BlockRef&& o) noexcept : node_(o.node_) { o.node_ = nullptr; }
  BlockRef& operator=(const BlockRef& o) {
    if (this != &o) {
      reset();
      node_ = o.node_;
      if (node_) node_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  BlockRef& operator=(BlockRef&& o) noexcept {
    if (this != &o) {
      reset();
      node_ = o.node_;
      o.node_ = nullptr;
    }
    return *this;
  }
  ~BlockRef() { reset(); }

  void reset();  // defined after BlockPool

  std::uint8_t* data() const { return node_ ? node_->data() : nullptr; }
  std::size_t capacity() const { return node_ ? node_->capacity : 0; }
  /// True when this acquisition reused a free-listed block instead of
  /// allocating a fresh one (drives Metrics::packets_recycled).
  bool recycled() const { return node_ != nullptr && node_->recycled; }
  explicit operator bool() const { return node_ != nullptr; }

  /// Identity of the underlying block (shares-storage checks).
  const void* id() const { return node_; }

 private:
  detail::BlockNode* node_ = nullptr;
};

class BlockPool {
 public:
  /// Size classes cover the message path's real shapes: small piggybacks,
  /// 1-4 KiB payloads, and the NPB/bench 16-64 KiB bulk sizes.
  static constexpr std::size_t kClassSizes[] = {256, 1024, 4096, 16384, 65536};
  static constexpr std::size_t kNumClasses =
      sizeof(kClassSizes) / sizeof(kClassSizes[0]);
  /// Free-list bound per class, expressed in bytes so small classes keep
  /// proportionally more blocks (1 MiB of 256 B blocks is 4096 entries; the
  /// same budget holds only 16 of the 64 KiB blocks).  This matters for the
  /// sender log, which releases thousands of small payload blocks in one
  /// checkpoint-advance burst: a flat count cap would discard most of the
  /// burst and force fresh allocations on the very next send wave.  Worst
  /// case pinned memory is kNumClasses * 1 MiB.
  static constexpr std::size_t kMaxFreeBytesPerClass = std::size_t{1} << 20;
  static constexpr std::size_t max_free_for_class(std::size_t cls) {
    return kMaxFreeBytesPerClass / kClassSizes[cls];
  }

  /// The process-wide pool.  Intentionally leaked: blocks released during
  /// static destruction (a Buffer outliving main) must still have a live
  /// free list to land on.
  static BlockPool& global() {
    static BlockPool* pool = new BlockPool();
    return *pool;
  }

  /// A block with capacity >= n; refcount 1.  Recycles from the matching
  /// size class when possible; oversize requests get a one-shot allocation.
  BlockRef acquire(std::size_t n) {
    const std::size_t cls = class_for(n);
    if (cls < kNumClasses && enabled_.load(std::memory_order_relaxed)) {
      ClassList& list = classes_[cls];
      detail::BlockNode* node = nullptr;
      {
        std::scoped_lock lock(list.mu);
        if (list.head != nullptr) {
          node = list.head;
          list.head = node->next;
          --list.count;
        }
      }
      if (node != nullptr) {
#ifdef WINDAR_POOL_ASAN
        __asan_unpoison_memory_region(node->data(), node->capacity);
#endif
        node->refs.store(1, std::memory_order_relaxed);
        node->next = nullptr;
        node->recycled = true;
        recycled_.fetch_add(1, std::memory_order_relaxed);
        return BlockRef(node);
      }
    }
    const std::size_t cap = cls < kNumClasses ? kClassSizes[cls] : n;
    void* raw = ::operator new(sizeof(detail::BlockNode) + cap);
    auto* node = new (raw) detail::BlockNode();
    node->size_class = static_cast<std::uint32_t>(cls);
    node->capacity = cap;
    created_.fetch_add(1, std::memory_order_relaxed);
    return BlockRef(node);
  }

  /// Last reference gone: back to the free list, or to the allocator when
  /// the class is full / oversize / recycling is disabled.
  static void release(detail::BlockNode* node) {
    BlockPool& pool = global();
    const std::size_t cls = node->size_class;
    if (cls < kNumClasses && pool.enabled_.load(std::memory_order_relaxed)) {
      ClassList& list = pool.classes_[cls];
      std::unique_lock lock(list.mu);
      if (list.count < max_free_for_class(cls)) {
#ifdef WINDAR_POOL_ASAN
        __asan_poison_memory_region(node->data(), node->capacity);
#endif
        node->next = list.head;
        list.head = node;
        ++list.count;
        return;
      }
    }
    node->~BlockNode();
    ::operator delete(node);
  }

  /// Frees every free-listed block (tests isolating alloc counts).
  void trim() {
    for (ClassList& list : classes_) {
      detail::BlockNode* head;
      {
        std::scoped_lock lock(list.mu);
        head = list.head;
        list.head = nullptr;
        list.count = 0;
      }
      while (head != nullptr) {
        detail::BlockNode* next = head->next;
#ifdef WINDAR_POOL_ASAN
        __asan_unpoison_memory_region(head->data(), head->capacity);
#endif
        head->~BlockNode();
        ::operator delete(head);
        head = next;
      }
    }
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Test hook; production code uses the WINDAR_POOL environment gate.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
    if (!on) trim();
  }

  std::size_t free_blocks() const {
    std::size_t total = 0;
    for (const ClassList& list : classes_) {
      std::scoped_lock lock(list.mu);
      total += list.count;
    }
    return total;
  }

  // ---- process-wide accounting (bench/msg_path, tests) ----
  static std::uint64_t blocks_created() {
    return global().created_.load(std::memory_order_relaxed);
  }
  static std::uint64_t blocks_recycled() {
    return global().recycled_.load(std::memory_order_relaxed);
  }

 private:
  BlockPool() {
    if (const char* env = std::getenv("WINDAR_POOL")) {
      if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
        enabled_.store(false, std::memory_order_relaxed);
      }
    }
  }

  static std::size_t class_for(std::size_t n) {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      if (n <= kClassSizes[c]) return c;
    }
    return kNumClasses;
  }

  struct ClassList {
    mutable std::mutex mu;
    detail::BlockNode* head = nullptr;
    std::size_t count = 0;
  };

  ClassList classes_[kNumClasses];
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> recycled_{0};
};

inline void BlockRef::reset() {
  if (node_ == nullptr) return;
  if (node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    BlockPool::release(node_);
  }
  node_ = nullptr;
}

/// Typed free list for fixed-shape helper objects (sender-log chunks).
/// Objects are handed back *constructed*; acquire() returns either a
/// recycled object (caller resets its state) or a default-constructed fresh
/// one.  Internally synchronized; a leaf lock.
template <typename T>
class Pool {
 public:
  explicit Pool(std::size_t max_free = 64) : max_free_(max_free) {}

  std::unique_ptr<T> acquire() {
    {
      std::scoped_lock lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        ++recycled_;
        return obj;
      }
      ++created_;
    }
    return std::make_unique<T>();
  }

  void release(std::unique_ptr<T> obj) {
    if (obj == nullptr) return;
    std::scoped_lock lock(mu_);
    if (free_.size() < max_free_) free_.push_back(std::move(obj));
    // else: unique_ptr frees on scope exit — the pool stays bounded.
  }

  std::size_t free_count() const {
    std::scoped_lock lock(mu_);
    return free_.size();
  }
  std::uint64_t created() const {
    std::scoped_lock lock(mu_);
    return created_;
  }
  std::uint64_t recycled() const {
    std::scoped_lock lock(mu_);
    return recycled_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<T>> free_;
  std::size_t max_free_;
  std::uint64_t created_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace windar::util
