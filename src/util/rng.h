// Deterministic, splittable pseudo-random numbers.
//
// Every stochastic component (fabric jitter, workload generators, fault
// schedules) takes an explicit seed so experiments are reproducible; streams
// are split per rank / per channel so adding one consumer does not perturb
// the others.
#pragma once

#include <cstdint>
#include <limits>

namespace windar::util {

/// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free variant is overkill here; a
    // simple 128-bit multiply keeps the distribution unbiased enough for
    // simulation jitter.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent stream; `label` distinguishes consumers.
  Rng split(std::uint64_t label) {
    return Rng(next_u64() ^ (label * 0xD1B54A32D192ED03ull));
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace windar::util
