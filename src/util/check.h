// Lightweight invariant checking.
//
// WINDAR_CHECK is always on (including release builds): the protocols in this
// library defend distributed invariants whose violation must never be
// silently ignored.  WINDAR_DCHECK compiles out in NDEBUG builds and is meant
// for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace windar::util {

/// Terminates the program with a formatted message.  Marked noreturn so
/// callers may use it as the tail of a non-void function.
[[noreturn]] void panic(const char* file, int line, const std::string& msg);

namespace detail {

/// Stream-style message builder used by the check macros:
/// `WINDAR_CHECK(x) << "context " << y;`
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr)
      : file_(file), line_(line) {
    stream_ << "CHECK failed: " << expr;
  }

  [[noreturn]] ~CheckFailure() noexcept(false) {
    panic(file_, line_, stream_.str());
  }

  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace windar::util

#define WINDAR_CHECK(cond)                                             \
  if (cond) {                                                          \
  } else /* NOLINT */                                                  \
    ::windar::util::detail::CheckFailure(__FILE__, __LINE__, #cond) << ": "

#define WINDAR_CHECK_EQ(a, b) WINDAR_CHECK((a) == (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define WINDAR_CHECK_NE(a, b) WINDAR_CHECK((a) != (b)) << #a "=" << (a) << " "
#define WINDAR_CHECK_LE(a, b) WINDAR_CHECK((a) <= (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define WINDAR_CHECK_LT(a, b) WINDAR_CHECK((a) < (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define WINDAR_CHECK_GE(a, b) WINDAR_CHECK((a) >= (b)) << #a "=" << (a) << " " #b "=" << (b) << " "
#define WINDAR_CHECK_GT(a, b) WINDAR_CHECK((a) > (b)) << #a "=" << (a) << " " #b "=" << (b) << " "

#ifdef NDEBUG
#define WINDAR_DCHECK(cond) WINDAR_CHECK(true)
#else
#define WINDAR_DCHECK(cond) WINDAR_CHECK(cond)
#endif
