// Refcounted immutable byte buffer — the unit of ownership on the message
// path.
//
// A Buffer is a shared, immutable byte region: copying one is a refcount
// bump (or an inline byte copy for small regions), never a heap copy of the
// payload.  This is what lets the send path hand the *same* payload bytes to
// the wire packet and the sender-log entry (copy-once), lets the fabric
// duplicate packets for free, and lets a log entry outlive the packet it was
// created with.
//
// Storage comes in three shapes, invisible to readers:
//   * empty       — size() == 0;
//   * inline      — up to kInlineCapacity bytes stored in the Buffer object
//                   itself (no heap block, no refcount; copies duplicate the
//                   few bytes inline);
//   * shared heap — one refcounted block; `view()` slices alias it without
//                   copying, and the block lives until the last view dies.
//                   copy_of/from_block draw the block from util::BlockPool
//                   (intrusive refcount, slab-recycled when the last view
//                   dies); Buffer(Bytes&&) adoption keeps a shared_ptr owner.
//
// Construction is copy-once by design:
//   * Buffer(Bytes&&)   adopts an existing vector (the ByteWriter emission
//                       path: `Buffer(w.take())` moves the encoded bytes in
//                       without touching them);
//   * Buffer::copy_of   performs the one explicit copy from caller-owned
//                       memory (an application send buffer) into a single
//                       shared allocation.
//
// Buffers are immutable after construction and safe to share across threads;
// the refcount is atomic.  A Buffer models a contiguous range of const
// bytes, so it converts implicitly wherever a std::span<const std::uint8_t>
// is expected (ByteReader, codec helpers, protocol on_deliver).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <span>

#include "util/bytes.h"
#include "util/check.h"
#include "util/pool.h"

namespace windar::util {

class Buffer {
 public:
  /// Regions at or below this many bytes are stored inline (acks, control
  /// seqs, small piggybacks): no heap block, no refcount traffic.
  static constexpr std::size_t kInlineCapacity = 24;

  Buffer() = default;

  /// Adopts `owned` without copying its bytes (small vectors collapse into
  /// inline storage and free the heap block immediately).  Implicit on
  /// purpose: `w.take()` emits straight into any Buffer-typed slot.
  Buffer(Bytes&& owned) {  // NOLINT(google-explicit-constructor)
    if (owned.size() <= kInlineCapacity) {
      set_inline(owned.data(), owned.size());
      return;
    }
    auto block = std::make_shared<const Bytes>(std::move(owned));
    ptr_ = block->data();
    len_ = block->size();
    owner_ = std::move(block);
    heap_blocks_.fetch_add(1, std::memory_order_relaxed);
  }

  Buffer(std::initializer_list<std::uint8_t> init)
      : Buffer(copy_of(std::span<const std::uint8_t>(init.begin(),
                                                     init.size()))) {}

  /// The one deliberate copy on the message path: duplicates caller-owned
  /// bytes into this buffer (inline if small, else one shared block drawn
  /// from the slab pool — steady-state sends recycle a drained packet's
  /// block instead of touching the allocator).
  static Buffer copy_of(std::span<const std::uint8_t> src) {
    Buffer b;
    if (src.size() <= kInlineCapacity) {
      b.set_inline(src.data(), src.size());
      return b;
    }
    BlockRef blk = BlockPool::global().acquire(src.size());
    std::memcpy(blk.data(), src.data(), src.size());
    if (!blk.recycled()) {
      heap_blocks_.fetch_add(1, std::memory_order_relaxed);
    }
    bytes_copied_.fetch_add(src.size(), std::memory_order_relaxed);
    b.ptr_ = blk.data();
    b.len_ = src.size();
    b.block_ = std::move(blk);
    return b;
  }

  /// Adopts a pool block the caller already filled (the frame decoder's
  /// receive path: the kernel wrote the bytes straight into `blk`).  Small
  /// regions collapse inline and return the block to the pool immediately.
  static Buffer from_block(BlockRef blk, std::size_t len) {
    Buffer b;
    if (len == 0) return b;
    WINDAR_CHECK(blk && len <= blk.capacity())
        << "Buffer::from_block length exceeds block capacity";
    if (len <= kInlineCapacity) {
      b.set_inline(blk.data(), len);
      return b;
    }
    if (!blk.recycled()) {
      heap_blocks_.fetch_add(1, std::memory_order_relaxed);
    }
    b.ptr_ = blk.data();
    b.len_ = len;
    b.block_ = std::move(blk);
    return b;
  }

  const std::uint8_t* data() const {
    return owner_ || block_ ? ptr_ : sbo_.data();
  }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  std::span<const std::uint8_t> span() const { return {data(), len_}; }
  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  /// A sub-region [offset, offset + len).  Heap-backed buffers share the
  /// parent's block (no copy, extends its lifetime); inline buffers copy the
  /// few bytes inline.
  Buffer view(std::size_t offset, std::size_t len) const {
    WINDAR_CHECK_LE(offset + len, len_) << "Buffer::view out of range";
    Buffer b;
    if (!owner_ && !block_) {
      // Inline buffers never exceed the SBO array; restating that here also
      // lets the compiler's bounds analysis see it.
      WINDAR_CHECK_LE(offset + len, kInlineCapacity);
      b.set_inline(sbo_.data() + offset, len);
      return b;
    }
    b.owner_ = owner_;
    b.block_ = block_;
    b.ptr_ = ptr_ + offset;
    b.len_ = len;
    return b;
  }

  /// True when both buffers alias the same heap block (the copy-once
  /// invariant tests assert this for packet vs. log entry).
  bool shares_storage_with(const Buffer& other) const {
    if (owner_ != nullptr && owner_ == other.owner_) return true;
    return block_ && block_.id() == other.block_.id();
  }

  /// True when the bytes live inside this object (no shared heap block).
  bool inline_storage() const { return owner_ == nullptr && !block_; }

  /// True when the backing storage is a recycled pool block (no fresh heap
  /// allocation happened for this buffer) — drives Metrics accounting so
  /// recycled packets are not double-counted as fresh allocations.
  bool recycled() const { return block_ && block_.recycled(); }

  /// Explicit copy out, for callers that need mutable/owned bytes.
  Bytes to_vector() const { return Bytes(begin(), end()); }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.len_ == b.len_ && std::memcmp(a.data(), b.data(), a.len_) == 0;
  }
  friend bool operator==(const Buffer& a, std::span<const std::uint8_t> b) {
    return a.len_ == b.size() &&
           std::memcmp(a.data(), b.data(), a.len_) == 0;
  }

  // ---- process-wide accounting (bench/msg_path, Metrics) ----

  /// Fresh shared heap blocks created since process start (adopt + copy_of
  /// + from_block); recycled pool blocks are deliberately excluded — see
  /// blocks_recycled().
  static std::uint64_t heap_blocks_created() {
    return heap_blocks_.load(std::memory_order_relaxed);
  }
  /// Pool blocks reused instead of freshly allocated (process-wide; counts
  /// every BlockPool acquire that hit a free list, Buffer-backed or not).
  static std::uint64_t blocks_recycled() {
    return BlockPool::blocks_recycled();
  }
  /// Bytes duplicated through copy_of since process start.
  static std::uint64_t total_bytes_copied() {
    return bytes_copied_.load(std::memory_order_relaxed);
  }

 private:
  void set_inline(const std::uint8_t* src, std::size_t n) {
    if (n > 0) std::memcpy(sbo_.data(), src, n);
    len_ = n;
  }

  inline static std::atomic<std::uint64_t> heap_blocks_{0};
  inline static std::atomic<std::uint64_t> bytes_copied_{0};

  std::shared_ptr<const void> owner_;   // adoption path (Bytes&&); else null
  BlockRef block_;                      // pool path (copy_of / from_block)
  const std::uint8_t* ptr_ = nullptr;   // heap view; unused when inline
  std::size_t len_ = 0;
  std::array<std::uint8_t, kInlineCapacity> sbo_{};
};

/// Emits a ByteWriter's accumulated bytes as an immutable Buffer without
/// copying them (small encodings collapse into inline storage).  This is the
/// builder path every packet-body encoder goes through.
inline Buffer take_buffer(ByteWriter& w) { return Buffer(w.take()); }

}  // namespace windar::util
