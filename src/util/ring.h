// Bounded multi-producer/single-consumer ring — the endpoint-inbox fast
// path.
//
// Producers (fabric shard schedulers, the socket reader, loopback sends) are
// lock-free: a CAS claims a slot, per-slot sequence numbers publish the
// element (Vyukov's bounded-queue discipline), and no producer ever takes a
// mutex on the happy path.  The consumer side (one rank thread or fiber per
// endpoint, by construction) is serialized behind a small consumer mutex so
// pop / batch-pop / poison / revive can't interleave — that mutex is
// uncontended in steady state and is what makes poison's drain race-free.
//
// Blocking follows the repo-wide wait contract (util/wait.h): waits go
// through util::WaitSet, so a consumer may be an OS thread or a cooperative
// fiber, and every wait is tick-bounded — a notify that races a registering
// waiter costs one 1 ms tick, never a hang.  Notifies are skipped entirely
// while no waiter is registered (the steady-state case), so a push is CAS +
// store + one atomic load.
//
// Capacity is a backpressure bound, not a drop policy: push() to a full ring
// blocks until the consumer frees a slot or the ring is poisoned.  Poison
// semantics mirror BlockingQueue exactly — queued items are discarded (a
// crashed rank's volatile state), all blocked producers and consumers wake,
// subsequent pushes return false, and revive() re-arms an empty ring for the
// next incarnation.  The accounting contract the fabric's drop invariant
// rides on is the same: push() returns true iff the element was accepted.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "util/wait.h"

namespace windar::util {

template <typename T>
class MpscRing {
 public:
  using Clock = std::chrono::steady_clock;

  /// Capacity is rounded up to a power of two (minimum 2).
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  ~MpscRing() { drain(); }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Accepts `item`, blocking while the ring is full (bounded backpressure).
  /// Returns false — dropping the item — only when the ring is poisoned.
  [[nodiscard]] bool push(T item) {
    for (;;) {
      if (poisoned_.load(std::memory_order_acquire)) return false;
      if (try_push(item)) {
        wake_consumer();
        return true;
      }
      // Full: wait a bounded slice for the consumer to free a slot.  The
      // tick bound (missed-wakeup contract, util/wait.h) also caps how long
      // a poison() that raced our waiter registration can strand us.
      std::unique_lock lock(wmu_);
      prod_waiting_.fetch_add(1, std::memory_order_release);
      prod_cv_.wait_until(lock, Clock::now() + kTick, [&] {
        return poisoned_.load(std::memory_order_acquire) || !full_estimate();
      });
      prod_waiting_.fetch_sub(1, std::memory_order_release);
    }
  }

  /// Outcome of a non-blocking offer(): accepted, ring full (item left
  /// intact in the caller's hands), or ring poisoned (item dropped).
  enum class Offer { kAccepted, kFull, kDead };

  /// Non-blocking push attempt.  On kFull the item is NOT consumed — the
  /// caller still owns it and typically re-routes it (the fabric falls back
  /// to the shard scheduler, which provides the buffering a full ring
  /// refuses).  On kDead the item is dropped, same as push() returning
  /// false.
  [[nodiscard]] Offer offer(T& item) {
    if (poisoned_.load(std::memory_order_acquire)) return Offer::kDead;
    if (try_push(item)) {
      wake_consumer();
      return Offer::kAccepted;
    }
    return Offer::kFull;
  }

  /// offer() with bounded patience: on a full ring, waits up to `patience`
  /// for the consumer to free a slot before giving up with kFull (item still
  /// intact).  This is the cut-through sender's primitive — a brief park
  /// usually outlives the full-ring episode (the consumer drains in batches),
  /// while the bound keeps a chain of mutually-bursting ranks deadlock-free:
  /// worst case each hop stalls `patience`, then re-routes via the shard.
  [[nodiscard]] Offer offer_for(T& item, Clock::duration patience) {
    if (poisoned_.load(std::memory_order_acquire)) return Offer::kDead;
    if (try_push(item)) {
      wake_consumer();
      return Offer::kAccepted;
    }
    const auto deadline = Clock::now() + patience;
    for (;;) {
      {
        std::unique_lock lock(wmu_);
        prod_waiting_.fetch_add(1, std::memory_order_release);
        prod_cv_.wait_until(lock, std::min(deadline, Clock::now() + kTick),
                            [&] {
                              return poisoned_.load(
                                         std::memory_order_acquire) ||
                                     !full_estimate();
                            });
        prod_waiting_.fetch_sub(1, std::memory_order_release);
      }
      if (poisoned_.load(std::memory_order_acquire)) return Offer::kDead;
      if (try_push(item)) {
        wake_consumer();
        return Offer::kAccepted;
      }
      if (Clock::now() >= deadline) return Offer::kFull;
    }
  }

  /// Pushes items in order, blocking on a full ring like push().  Stops at
  /// the first poisoned push; returns how many items were accepted, so drop
  /// accounting stays exact when a kill lands mid-batch (the remainder books
  /// as dropped, exactly like BlockingQueue's all-or-nothing batch would —
  /// the accepted prefix was genuinely delivered before the crash).
  [[nodiscard]] std::size_t push_batch(std::vector<T> batch) {
    std::size_t accepted = 0;
    for (T& item : batch) {
      if (!push(std::move(item))) break;
      ++accepted;
    }
    return accepted;
  }

  /// Blocks until an item is available or the ring is poisoned; nullopt only
  /// when poisoned.
  std::optional<T> pop() {
    return pop_until(Clock::time_point::max());
  }

  /// Blocks until an item, the deadline, or poison.  Returns nullopt on
  /// timeout or poison; use poisoned() to distinguish.
  std::optional<T> pop_until(Clock::time_point deadline) {
    for (;;) {
      {
        std::scoped_lock lock(cmu_);
        if (poisoned_.load(std::memory_order_acquire)) return std::nullopt;
        if (auto v = take_locked()) return v;
      }
      const auto now = Clock::now();
      if (now >= deadline) {
        // Deadline passed: one final take under the consumer lock, so a push
        // that raced the timeout is never misreported as empty.
        std::scoped_lock lock(cmu_);
        if (poisoned_.load(std::memory_order_acquire)) return std::nullopt;
        return take_locked();
      }
      const auto slice = deadline < now + kTick ? deadline : now + kTick;
      std::unique_lock lock(wmu_);
      cons_waiting_.fetch_add(1, std::memory_order_release);
      cons_cv_.wait_until(lock, slice, [&] {
        return poisoned_.load(std::memory_order_acquire) || !empty_estimate();
      });
      cons_waiting_.fetch_sub(1, std::memory_order_release);
    }
  }

  std::optional<T> pop_for(Clock::duration d) {
    return pop_until(Clock::now() + d);
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(cmu_);
    if (poisoned_.load(std::memory_order_acquire)) return std::nullopt;
    return take_locked();
  }

  /// Drains up to `max` ready items into `out` (appended) in FIFO order
  /// under one consumer-lock acquisition.  Returns the number taken.
  std::size_t try_pop_batch(std::vector<T>* out, std::size_t max) {
    std::scoped_lock lock(cmu_);
    if (poisoned_.load(std::memory_order_acquire)) return 0;
    std::size_t taken = 0;
    while (taken < max) {
      auto v = take_locked();
      if (!v) break;
      out->push_back(std::move(*v));
      ++taken;
    }
    return taken;
  }

  /// Marks the ring dead: queued items are discarded, all blocked producers
  /// and consumers wake, future pushes return false and pops nullopt.
  void poison() {
    poisoned_.store(true, std::memory_order_release);
    drain();
    prod_cv_.notify_all();
    cons_cv_.notify_all();
  }

  /// Re-arms a poisoned ring for an incarnation.  Items a racing producer
  /// managed to land after poison's drain are discarded here — a revived
  /// endpoint starts with an empty inbox, like BlockingQueue::revive after
  /// poison's clear.  On a ring that was never poisoned this is a no-op:
  /// callers revive defensively on every incarnation (including the first),
  /// and packets that legitimately arrived before the consumer came up must
  /// survive.
  void revive() {
    if (!poisoned_.load(std::memory_order_acquire)) return;
    drain();
    poisoned_.store(false, std::memory_order_release);
  }

  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  /// Approximate (producers race it); exact when quiescent.
  std::size_t size() const {
    const std::size_t head = head_pub_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  static constexpr std::chrono::milliseconds kTick{1};
  /// wake_consumer() notifies only when the queued depth is at most this —
  /// a blocked consumer implies a (near-)empty ring, so deeper pushes are
  /// waking a thread that is already on its way.
  static constexpr std::size_t kConsWakeDepth = 8;

  struct Slot {
    std::atomic<std::size_t> seq;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  T* slot_item(Slot& s) { return std::launder(reinterpret_cast<T*>(s.storage)); }

  /// Lock-free producer step: claim a slot via CAS on tail, construct,
  /// publish via the slot sequence.  False means the ring is full.
  bool try_push(T& item) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          new (s.storage) T(std::move(item));
          s.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with it.
      } else if (diff < 0) {
        return false;  // full: slot still holds an unconsumed element
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer step; caller holds cmu_.  nullopt when empty (or the next
  /// slot's producer hasn't published yet — it will within its store).
  std::optional<T> take_locked() {
    Slot& s = slots_[head_ & mask_];
    const std::size_t seq = s.seq.load(std::memory_order_acquire);
    if (seq != head_ + 1) return std::nullopt;
    T* item = slot_item(s);
    std::optional<T> out(std::move(*item));
    item->~T();
    s.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    head_pub_.store(head_, std::memory_order_release);
    wake_producers();
    return out;
  }

  /// Discards every queued item (poison/revive/destruction).  Spins briefly
  /// on a slot whose producer has claimed it but not yet published — the gap
  /// is one move-construction wide.
  void drain() {
    std::scoped_lock lock(cmu_);
    while (head_ != tail_.load(std::memory_order_acquire)) {
      Slot& s = slots_[head_ & mask_];
      while (s.seq.load(std::memory_order_acquire) != head_ + 1) {
        coop_yield();
      }
      slot_item(s)->~T();
      s.seq.store(head_ + mask_ + 1, std::memory_order_release);
      ++head_;
    }
    head_pub_.store(head_, std::memory_order_release);
    // Unconditional (no hysteresis/latch): a drain frees the whole ring at
    // once — poison/revive/destruction must wake every blocked producer now.
    if (prod_waiting_.load(std::memory_order_acquire) > 0) {
      prod_cv_.notify_all();
    }
  }

  // Estimates for wait predicates: racy by design, corrected by the tick
  // bound and the final locked re-check in the pop/push loops.
  bool empty_estimate() const {
    return tail_.load(std::memory_order_acquire) ==
           head_pub_.load(std::memory_order_acquire);
  }
  bool full_estimate() const {
    return tail_.load(std::memory_order_acquire) -
               head_pub_.load(std::memory_order_acquire) >
           mask_;
  }

  void wake_consumer() {
    if (cons_waiting_.load(std::memory_order_acquire) == 0) return;
    // The consumer can only be *blocked* while the ring is empty (its wait
    // predicate re-checks before sleeping), so the push that matters is the
    // one landing in a near-empty ring.  cons_waiting_ stays raised while a
    // woken consumer sits in the run queue, though — without the depth
    // gate every push in that window would pay a futex syscall for a
    // thread that no longer needs waking.  The small threshold covers the
    // registration race around the first few pushes; anything the gate
    // skips is caught by the consumer's 1 ms tick.
    if (tail_.load(std::memory_order_acquire) -
            head_pub_.load(std::memory_order_acquire) <=
        kConsWakeDepth) {
      cons_cv_.notify_all();
    }
  }
  /// Caller holds cmu_ (single consumer side: take_locked / drain).
  void wake_producers() {
    if (prod_waiting_.load(std::memory_order_acquire) == 0) return;
    // Hysteresis + rate latch: during a full-ring drain episode, blocked
    // producers are woken once a quarter of the capacity is free, and then
    // at most once per quarter-revolution of the head — not once per freed
    // slot.  prod_waiting_ stays raised while a woken producer sits in the
    // run queue, so a per-pop notify would cost the consumer a futex
    // syscall per message for the rest of the drain.  The 1 ms tick bounds
    // the extra latency exactly like every other wait in this file;
    // drain() resets the latch and poison() wakes unconditionally.
    const std::size_t cap = mask_ + 1;
    const std::size_t used = tail_.load(std::memory_order_acquire) - head_;
    if (cap - std::min(used, cap) < cap / 4) return;
    // Reaching quarter-free from a full ring implies the head advanced at
    // least cap/4 since the previous wake, so this latch never starves an
    // episode — it only dedups wakes within one.
    if (head_ - last_prod_wake_head_ < cap / 4) return;
    last_prod_wake_head_ = head_;
    prod_cv_.notify_all();
  }

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;

  // Producer line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  // Consumer line: head_ is guarded by cmu_; head_pub_ mirrors it for the
  // producers' full/size estimates.
  alignas(64) mutable std::mutex cmu_;
  std::size_t head_ = 0;
  std::size_t last_prod_wake_head_ = 0;  // guarded by cmu_ (wake rate latch)
  std::atomic<std::size_t> head_pub_{0};

  std::atomic<bool> poisoned_{false};

  // Wait plumbing (cold path only).
  std::mutex wmu_;
  WaitSet prod_cv_;
  WaitSet cons_cv_;
  std::atomic<int> prod_waiting_{0};
  std::atomic<int> cons_waiting_{0};
};

}  // namespace windar::util
