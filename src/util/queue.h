// Blocking MPMC queue with poisoning and deadline waits.
//
// Endpoint inboxes and the non-blocking send path (paper Fig. 4(b), queues A
// and B) are built on this.  `poison()` wakes all waiters and makes further
// pops fail fast — it is how a fault-injected rank thread is torn down while
// blocked on its inbox.
//
// Waits go through util::WaitSet, so a consumer may be either an OS thread
// (blocks on the internal condition variable) or a cooperative task on the
// exec scheduler (parks its fiber; a push from any thread — rank task,
// fabric shard scheduler, socket reader — unparks it).  Every timed pop is
// poison-aware: poisoning the queue wakes both kinds of waiter immediately.
#pragma once

#include <chrono>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/wait.h"

namespace windar::util {

template <typename T>
class BlockingQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// Pushes an item; wakes one waiter.  Pushing to a poisoned queue drops the
  /// item (the consumer is gone by definition) and returns false, so callers
  /// that must not lose work silently can account for the drop.
  [[nodiscard]] bool push(T item) {
    {
      std::scoped_lock lock(mu_);
      if (poisoned_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Pushes every item in `batch` in order under one lock acquisition with
  /// one wakeup (notify_all when more than one item lands, so several
  /// blocked consumers can drain the batch in parallel).  Atomic against
  /// poisoning: the batch is accepted whole or dropped whole — returns the
  /// number of items accepted, which is `batch.size()` or 0.
  [[nodiscard]] std::size_t push_batch(std::vector<T> batch) {
    if (batch.empty()) return 0;
    const std::size_t n = batch.size();
    {
      std::scoped_lock lock(mu_);
      if (poisoned_) return 0;
      for (T& item : batch) items_.push_back(std::move(item));
    }
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
    return n;
  }

  /// Blocks until an item is available or the queue is poisoned.
  /// Returns nullopt only when poisoned.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return poisoned_ || !items_.empty(); });
    return take_locked();
  }

  /// Blocks until an item is available, the deadline passes, or the queue is
  /// poisoned.  Returns nullopt on timeout or poison; use `poisoned()` to
  /// distinguish.  This is the cooperative layer's workhorse wait: a fiber
  /// calling it parks instead of blocking its worker, and wakes on push,
  /// poison, or deadline — whichever lands first.
  std::optional<T> pop_until(Clock::time_point deadline) {
    std::unique_lock lock(mu_);
    // Loop, not a single predicate wait: a WaitSet slice can return
    // spuriously before the deadline with the predicate still false (the
    // cooperative backend trades exactness for tick-bounded parks).  Only a
    // deadline observed *under the lock* with the queue still empty is a
    // real timeout — otherwise an item pushed between the wake and the
    // return would be reported as a timeout to a caller that then sleeps.
    while (!poisoned_ && items_.empty()) {
      if (Clock::now() >= deadline) break;
      cv_.wait_until(lock, deadline,
                     [&] { return poisoned_ || !items_.empty(); });
    }
    return take_locked();
  }

  /// Convenience relative-deadline form of pop_until.
  std::optional<T> pop_for(Clock::duration d) {
    return pop_until(Clock::now() + d);
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    return take_locked();
  }

  /// Marks the queue dead: pending and future pops return nullopt, future
  /// pushes are dropped.
  void poison() {
    {
      std::scoped_lock lock(mu_);
      poisoned_ = true;
      items_.clear();
    }
    cv_.notify_all();
  }

  /// Re-arms a poisoned queue (used when an incarnation reclaims a rank's
  /// endpoint slot).
  void revive() {
    std::scoped_lock lock(mu_);
    poisoned_ = false;
  }

  bool poisoned() const {
    std::scoped_lock lock(mu_);
    return poisoned_;
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  std::optional<T> take_locked() {
    if (poisoned_ || items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable std::mutex mu_;
  WaitSet cv_;
  std::deque<T> items_;
  bool poisoned_ = false;
};

}  // namespace windar::util
