// Cooperative wait plumbing shared by every blocking point in the stack.
//
// The execution model is pluggable (exec/scheduler.h): rank tasks may run as
// plain OS threads (the seed model) or as stackful cooperative tasks
// multiplexed onto a fixed worker pool.  A cooperative task must never block
// its worker thread — a `BlockingQueue::pop`, a `DeliveryQueue` wait, or a
// restart-delay sleep has to *park the task* (switch back to the scheduler)
// instead of parking the OS thread.
//
// Two pieces live here:
//
//  * CoopRuntime — the function table the exec layer installs at start-up.
//    util stays below exec in the layering; everything in util (and net,
//    which only depends on util) reaches the scheduler exclusively through
//    this table.  When no runtime is installed, or the calling thread is not
//    running a cooperative task, every primitive falls back to the plain
//    std:: blocking behaviour — a binary that never touches exec pays one
//    predictable branch.
//
//  * WaitSet — a condition-variable replacement that can wake BOTH kinds of
//    waiter: native threads (internal std::condition_variable) and parked
//    cooperative tasks (ParkRef list, unparked on notify).  It is the wait
//    primitive behind BlockingQueue and the DeliveryQueue, which is how the
//    fabric's shard threads (always OS threads) wake rank tasks of either
//    kind when they push into an endpoint inbox.
//
// Missed-wakeup contract: a cooperative waiter registers its ParkRef while
// still holding the predicate mutex, so any notifier that mutates the
// predicate under that mutex is guaranteed to observe the registration.
// Notifiers that signal state changed *outside* the mutex (e.g. the recovery
// gate atomic) can race a registering waiter exactly like they can race a
// thread entering condition_variable::wait — which is why every wait in the
// engine is deadline-bounded: a lost wakeup costs one tick, never a hang.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace windar::util {

/// Stable handle to a parked cooperative task.  `unpark` is safe to call
/// from any thread, at any time — including after the task finished or its
/// scheduler shut down (it degrades to a no-op); the shared_ptr keeps the
/// handle's storage alive across those races.
class ParkHandle {
 public:
  virtual ~ParkHandle() = default;
  virtual void unpark() = 0;
};
using ParkRef = std::shared_ptr<ParkHandle>;

/// Function table installed once by the exec layer (process lifetime).
/// All entries dispatch on thread-local state, so one global table serves
/// any number of schedulers.
struct CoopRuntime {
  /// True when the calling thread is currently executing a cooperative task.
  bool (*on_task)();
  /// Park handle of the current task (on_task() must be true).
  ParkRef (*self)();
  /// Parks the current task until `deadline` or until its handle is
  /// unparked, whichever is first.  Spurious returns are allowed.
  void (*park_until)(std::chrono::steady_clock::time_point deadline);
};

void set_coop_runtime(const CoopRuntime* rt);
const CoopRuntime* coop_runtime();

inline bool on_coop_task() {
  const CoopRuntime* rt = coop_runtime();
  return rt != nullptr && rt->on_task();
}

/// Sleep that parks the cooperative task instead of blocking the worker
/// thread; plain this_thread::sleep_for elsewhere.  May return a little
/// early only if some stray unpark targets the task — callers that need the
/// full duration must loop on a clock, like with any condition wait.
void coop_sleep_for(std::chrono::nanoseconds d);

/// Yield that reschedules the cooperative task (letting sibling fibers on
/// the same worker run) instead of yielding the OS thread; plain
/// this_thread::yield elsewhere.  Spin loops in rank code must use this —
/// an OS-thread yield inside a fiber never lets the fibers it is waiting
/// on make progress.
void coop_yield();

/// Hybrid condition variable: pairs with an external std::mutex exactly like
/// std::condition_variable, but can additionally wake cooperative tasks.
class WaitSet {
 public:
  using Clock = std::chrono::steady_clock;

  /// Blocks until `pred()` (caller holds `lock`, which guards the predicate).
  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& lock, Pred pred) {
    const CoopRuntime* rt = coop_runtime();
    if (rt == nullptr || !rt->on_task()) {
      cv_.wait(lock, pred);
      return;
    }
    while (!pred()) {
      coop_wait_step(*rt, lock, Clock::time_point::max());
    }
  }

  /// Blocks until `pred()` or `deadline`; returns pred() like
  /// condition_variable::wait_until.
  template <typename Pred>
  bool wait_until(std::unique_lock<std::mutex>& lock, Clock::time_point deadline,
                  Pred pred) {
    const CoopRuntime* rt = coop_runtime();
    if (rt == nullptr || !rt->on_task()) {
      return cv_.wait_until(lock, deadline, pred);
    }
    while (!pred()) {
      if (Clock::now() >= deadline) return pred();
      coop_wait_step(*rt, lock, deadline);
    }
    return true;
  }

  /// Predicate-free bounded wait (returns on notify, timeout, or spuriously;
  /// the caller re-checks its condition, like condition_variable::wait_for).
  void wait_for(std::unique_lock<std::mutex>& lock, Clock::duration d) {
    const CoopRuntime* rt = coop_runtime();
    if (rt == nullptr || !rt->on_task()) {
      cv_.wait_for(lock, d);
      return;
    }
    coop_wait_step(*rt, lock, Clock::now() + d);
  }

  /// Wakes one waiter of either kind.  (Both a thread and a task may wake —
  /// an acceptable spurious wakeup, never a lost one.)
  void notify_one() {
    cv_.notify_one();
    ParkRef victim;
    {
      std::scoped_lock lock(pmu_);
      if (!parked_.empty()) {
        victim = std::move(parked_.back());
        parked_.pop_back();
      }
    }
    if (victim) victim->unpark();
  }

  void notify_all() {
    cv_.notify_all();
    std::vector<ParkRef> all;
    {
      std::scoped_lock lock(pmu_);
      all.swap(parked_);
    }
    for (ParkRef& p : all) p->unpark();
  }

 private:
  /// One registered park: register under the predicate lock, drop it, park,
  /// deregister, re-acquire.  Equivalent to one condition_variable wait slice.
  void coop_wait_step(const CoopRuntime& rt, std::unique_lock<std::mutex>& lock,
                      Clock::time_point deadline) {
    ParkRef self = rt.self();
    {
      std::scoped_lock plock(pmu_);
      parked_.push_back(self);
    }
    lock.unlock();
    rt.park_until(deadline);
    {
      // Timed out or woken by an unrelated unpark: withdraw the
      // registration so a later notify does not chase a stale handle.  (If a
      // notify already consumed it, the unpark raced our park — that is the
      // wakeup we return with.)
      std::scoped_lock plock(pmu_);
      for (std::size_t i = 0; i < parked_.size(); ++i) {
        if (parked_[i] == self) {
          parked_[i] = std::move(parked_.back());
          parked_.pop_back();
          break;
        }
      }
    }
    lock.lock();
  }

  std::condition_variable cv_;
  std::mutex pmu_;  // leaf lock: guards parked_ only
  std::vector<ParkRef> parked_;
};

}  // namespace windar::util
