#include "util/wait.h"

#include <thread>

namespace windar::util {

namespace {
std::atomic<const CoopRuntime*> g_runtime{nullptr};
}  // namespace

void set_coop_runtime(const CoopRuntime* rt) {
  g_runtime.store(rt, std::memory_order_release);
}

const CoopRuntime* coop_runtime() {
  return g_runtime.load(std::memory_order_acquire);
}

void coop_yield() {
  const CoopRuntime* rt = coop_runtime();
  if (rt == nullptr || !rt->on_task()) {
    std::this_thread::yield();
    return;
  }
  rt->park_until(std::chrono::steady_clock::now());
}

void coop_sleep_for(std::chrono::nanoseconds d) {
  const CoopRuntime* rt = coop_runtime();
  if (rt == nullptr || !rt->on_task()) {
    std::this_thread::sleep_for(d);
    return;
  }
  // Parking can return early on a stray unpark; keep sleeping until the
  // deadline so this has sleep_for semantics, not yield semantics.
  const auto deadline = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < deadline) {
    rt->park_until(deadline);
  }
}

}  // namespace windar::util
