// Minimal command-line option parser for benchmark and example binaries.
//
// Syntax: --name=value or --name value; --flag for booleans.  Unknown
// options abort with a usage listing, so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace windar::util {

class Options {
 public:
  Options(int argc, char** argv);

  /// Declares an option with a default; returns the parsed value.  Also
  /// registers the option for usage/unknown-option reporting, so declare all
  /// options before calling `finish()`.
  std::string str(const std::string& name, const std::string& def,
                  const std::string& help = "");
  std::int64_t integer(const std::string& name, std::int64_t def,
                       const std::string& help = "");
  double real(const std::string& name, double def, const std::string& help = "");
  bool flag(const std::string& name, bool def, const std::string& help = "");

  /// Parses a comma-separated integer list, e.g. --ranks=4,8,16,32.
  std::vector<int> int_list(const std::string& name,
                            const std::vector<int>& def,
                            const std::string& help = "");

  /// Call after declaring all options: aborts on unknown or `--help`.
  void finish();

 private:
  struct Decl {
    std::string name;
    std::string def;
    std::string help;
  };

  const std::string* find(const std::string& name) const;

  std::string prog_;
  std::map<std::string, std::string> given_;
  std::vector<Decl> decls_;
  bool help_requested_ = false;
};

}  // namespace windar::util
