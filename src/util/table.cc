#include "util/table.h"

#include <cstdio>

#include "util/check.h"

namespace windar::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row(std::vector<std::string> cells) {
  WINDAR_CHECK_EQ(cells.size(), header_.size()) << "row width mismatch";
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(width[c]), r[c].c_str(),
                  c + 1 == r.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  std::string rule(total > 2 ? total - 2 : 0, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& r : rows_) print_row(r);
  std::fflush(stdout);
}

std::string Table::csv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) out += ",";
      out += r[c];
    }
    out += "\n";
  };
  append_row(header_);
  for (const auto& r : rows_) append_row(r);
  return out;
}

}  // namespace windar::util
