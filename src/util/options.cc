#include "util/options.h"

#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace windar::util {

Options::Options(int argc, char** argv) : prog_(argc > 0 ? argv[0] : "?") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    WINDAR_CHECK(arg.rfind("--", 0) == 0) << "expected --option, got " << arg;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      given_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      given_[arg] = argv[++i];
    } else {
      given_[arg] = "true";  // bare flag
    }
  }
}

const std::string* Options::find(const std::string& name) const {
  auto it = given_.find(name);
  return it == given_.end() ? nullptr : &it->second;
}

std::string Options::str(const std::string& name, const std::string& def,
                         const std::string& help) {
  decls_.push_back({name, def, help});
  const std::string* v = find(name);
  return v ? *v : def;
}

std::int64_t Options::integer(const std::string& name, std::int64_t def,
                              const std::string& help) {
  decls_.push_back({name, std::to_string(def), help});
  const std::string* v = find(name);
  return v ? std::strtoll(v->c_str(), nullptr, 10) : def;
}

double Options::real(const std::string& name, double def,
                     const std::string& help) {
  decls_.push_back({name, std::to_string(def), help});
  const std::string* v = find(name);
  return v ? std::strtod(v->c_str(), nullptr) : def;
}

bool Options::flag(const std::string& name, bool def, const std::string& help) {
  decls_.push_back({name, def ? "true" : "false", help});
  const std::string* v = find(name);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

std::vector<int> Options::int_list(const std::string& name,
                                   const std::vector<int>& def,
                                   const std::string& help) {
  std::string d;
  for (std::size_t i = 0; i < def.size(); ++i) {
    if (i) d += ",";
    d += std::to_string(def[i]);
  }
  decls_.push_back({name, d, help});
  const std::string* v = find(name);
  if (!v) return def;
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < v->size()) {
    auto comma = v->find(',', pos);
    if (comma == std::string::npos) comma = v->size();
    out.push_back(std::atoi(v->substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

void Options::finish() {
  bool bad = false;
  for (const auto& [name, value] : given_) {
    (void)value;
    bool known = false;
    for (const auto& d : decls_) {
      if (d.name == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "unknown option --%s\n", name.c_str());
      bad = true;
    }
  }
  if (bad || help_requested_) {
    std::fprintf(stderr, "usage: %s [options]\n", prog_.c_str());
    for (const auto& d : decls_) {
      std::fprintf(stderr, "  --%-20s (default: %s)  %s\n", d.name.c_str(),
                   d.def.c_str(), d.help.c_str());
    }
    std::exit(bad ? 2 : 0);
  }
}

}  // namespace windar::util
