#include "util/check.h"

namespace windar::util {

[[noreturn]] void panic(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[windar panic] %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace windar::util
