// Binary serialization primitives.
//
// All wire formats in this library (piggybacked metadata, checkpoint images,
// packet payloads) are little-endian, fixed-width encodings written through
// ByteWriter and read back through ByteReader.  The encoding is deliberately
// simple: the simulated fabric moves bytes inside one address space, but the
// piggyback *sizes* feed directly into the paper's Fig. 6/7 overhead
// measurements, so every field is encoded exactly as it would be on a real
// wire.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace windar::util {

using Bytes = std::vector<std::uint8_t>;

/// Appends little-endian fixed-width values to a byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buf_(std::move(initial)) {}

  void u8(std::uint8_t v) {
    ensure(1);
    buf_.push_back(v);
  }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Length-prefixed raw bytes.
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    raw(data);
  }

  /// Raw bytes without a length prefix (caller knows the framing).
  void raw(std::span<const std::uint8_t> data) {
    ensure(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    ensure(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed vector of u32 (the shape of a depend_interval vector).
  void u32_vec(std::span<const std::uint32_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (auto x : v) u32(x);
  }

  void u64_vec(std::span<const std::uint64_t> v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (auto x : v) u64(x);
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& view() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    ensure(sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// Grows straight to a useful capacity instead of letting the vector
  /// double through 1/2/4/8-byte steps — a fresh writer encoding a small
  /// piggyback or header costs one allocation, not five.
  void ensure(std::size_t extra) {
    const std::size_t need = buf_.size() + extra;
    if (need > buf_.capacity()) {
      buf_.reserve(std::max({std::size_t{48}, need, 2 * buf_.capacity()}));
    }
  }

  Bytes buf_;
};

/// Reads values written by ByteWriter, bounds-checked.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    WINDAR_CHECK_LE(pos_ + 1, data_.size()) << "ByteReader underflow";
    return data_[pos_++];
  }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(get_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  double f64() {
    std::uint64_t bits = get_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  Bytes bytes() {
    std::uint32_t n = u32();
    WINDAR_CHECK_LE(n, remaining()) << "ByteReader underflow";
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    std::uint32_t n = u32();
    WINDAR_CHECK_LE(n, remaining()) << "ByteReader underflow";
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return out;
  }

  std::vector<std::uint32_t> u32_vec() {
    std::uint32_t n = u32();
    // Validate the whole section against remaining() BEFORE reserving: a
    // corrupt length prefix must die on the bounds check, not first attempt
    // a multi-gigabyte reserve.
    WINDAR_CHECK_LE(std::size_t{n} * sizeof(std::uint32_t), remaining())
        << "ByteReader underflow";
    std::vector<std::uint32_t> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(u32());
    return out;
  }

  std::vector<std::uint64_t> u64_vec() {
    std::uint32_t n = u32();
    WINDAR_CHECK_LE(std::size_t{n} * sizeof(std::uint64_t), remaining())
        << "ByteReader underflow";
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(u64());
    return out;
  }

  /// Consumes `n` raw bytes and returns a view into the underlying data
  /// (valid as long as the span the reader was built over).
  std::span<const std::uint8_t> raw(std::size_t n) {
    WINDAR_CHECK_LE(n, remaining()) << "ByteReader underflow";
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  template <typename T>
  T get_le() {
    WINDAR_CHECK_LE(pos_ + sizeof(T), data_.size()) << "ByteReader underflow";
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: serialize a trivially-copyable struct as raw bytes.  Used for
/// fixed-layout application state snapshots in tests and examples.
template <typename T>
  requires std::is_trivially_copyable_v<T>
Bytes to_bytes(const T& v) {
  Bytes out(sizeof(T));
  std::memcpy(out.data(), &v, sizeof(T));
  return out;
}

template <typename T>
  requires std::is_trivially_copyable_v<T>
T from_bytes(std::span<const std::uint8_t> data) {
  WINDAR_CHECK_EQ(data.size(), sizeof(T)) << "from_bytes size mismatch";
  T v;
  std::memcpy(&v, data.data(), sizeof(T));
  return v;
}

}  // namespace windar::util
