// Monotonic timing helpers.
#pragma once

#include <chrono>
#include <cstdint>

namespace windar::util {

inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline double now_us() { return static_cast<double>(now_ns()) / 1e3; }
inline double now_ms() { return static_cast<double>(now_ns()) / 1e6; }

/// Accumulating stopwatch: time spent between start()/stop() pairs.  Used to
/// attribute CPU time to protocol tracking code (paper Fig. 7).
class Stopwatch {
 public:
  void start() { t0_ = now_ns(); }
  void stop() { total_ns_ += now_ns() - t0_; ++laps_; }
  std::int64_t total_ns() const { return total_ns_; }
  double total_us() const { return static_cast<double>(total_ns_) / 1e3; }
  std::uint64_t laps() const { return laps_; }
  void reset() { total_ns_ = 0; laps_ = 0; }

 private:
  std::int64_t t0_ = 0;
  std::int64_t total_ns_ = 0;
  std::uint64_t laps_ = 0;
};

/// RAII lap over a Stopwatch.
class ScopedLap {
 public:
  explicit ScopedLap(Stopwatch& sw) : sw_(sw) { sw_.start(); }
  ~ScopedLap() { sw_.stop(); }
  ScopedLap(const ScopedLap&) = delete;
  ScopedLap& operator=(const ScopedLap&) = delete;

 private:
  Stopwatch& sw_;
};

}  // namespace windar::util
