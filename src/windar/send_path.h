// Transmission plane of the recovery engine (paper §III.E, Fig. 4).
//
//   kBlocking     — the app thread transmits and then waits for the
//                   receiver's acceptance ack, pumping its own inbox while
//                   it waits (single-threaded MPICH-style sync sends).
//   kNonBlocking  — sends are optionally buffered in queue A and transmitted
//                   by a sender thread; a receiver thread drains the endpoint
//                   inbox and dispatches packets; the app thread never blocks
//                   on a peer, dead or alive.
//
// SendPath owns both helper threads and the outgoing queue A, and carries
// the full application send: index allocation, piggyback, sender logging,
// rolling-forward suppression, and the blocking-mode ack wait.  Packet
// handling itself stays above (the Callbacks::dispatch hook) so exactly one
// thread per engine dispatches — the receiver thread in non-blocking mode,
// the application thread in blocking mode.
//
// No lock of its own: per-call state lives in the components it composes
// (ChannelState, ProtocolHost, SenderLog, metrics — each internally
// synchronized) and `closing_` is an atomic.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "exec/scheduler.h"
#include "net/transport.h"
#include "windar/channel_state.h"
#include "windar/fault.h"
#include "windar/metrics.h"
#include "windar/params.h"
#include "windar/protocol.h"
#include "windar/sender_log.h"

namespace windar::ft {

class SendPath {
 public:
  using Clock = std::chrono::steady_clock;

  struct Callbacks {
    /// Routes one packet; returns true if application-thread-visible state
    /// changed (queue B, acks, gather) and a wakeup should follow.
    std::function<bool(net::Packet&&)> dispatch;
    /// Timed engine work (rollback re-broadcast, TEL flush).
    std::function<void()> periodic;
    /// Wakes the application thread (DeliveryQueue::notify).
    std::function<void()> wake;
    /// True while timed work is urgent (a determinant gather in flight) and
    /// the receiver thread should poll on a short tick.
    std::function<bool()> urgent;
    /// The endpoint inbox was poisoned without a local kill: job teardown.
    std::function<void()> transport_closed;
  };

  SendPath(net::Transport& transport, const ProcessParams& params, LifeFlags& life,
           ChannelState& channels, ProtocolHost& tracker, SenderLog& log,
           SharedMetrics& metrics);
  ~SendPath();

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }

  /// Spawns the receiver (and optional sender) helper in non-blocking mode.
  /// Called once the whole engine is wired; no-op for blocking mode.  When
  /// the caller is itself a cooperative task (a rank supervisor under
  /// ExecModel::kCoop), the helpers are spawned as fibers on the same
  /// scheduler instead of OS threads, so per-rank thread cost stays zero.
  void start();

  /// Stops and joins the helper threads/fibers (destructor path).
  void stop();

  /// Fault injection: releases a sender thread blocked on queue A.
  void poison();

  /// The full application-facing send (application thread only).
  void send_app(int dst, int tag, std::span<const std::uint8_t> payload);

  /// Control-plane message: counted and sent straight to the fabric — it
  /// must flow even while the sender thread is being torn down.
  void send_control(int dst, Kind kind, std::uint64_t seq,
                    util::Buffer payload);

  /// Survivor non-stop recovery: while `dst` replays, new application sends
  /// to it park in a bounded holdback queue instead of racing the replay
  /// stream (or blocking on the recovering rank's backpressure).
  /// resume_channel flushes the queue in order, re-checking suppression —
  /// the replay's RESPONSE may have raised the watermark past held packets.
  /// Non-blocking mode only; blocking mode waits for per-send acks, so a
  /// held packet would deadlock the application thread.
  void pause_channel(int dst);
  void resume_channel(int dst);

  /// Blocking-mode event pump: pops at most one packet (bounded by
  /// `deadline`), dispatches it, runs periodic work.  Throws Killed /
  /// JobAborted as appropriate.
  void pump_once(Clock::time_point deadline);

 private:
  void transmit(net::Packet p);  // queue A (sender thread) or direct
  bool maybe_holdback(int dst, net::Packet& p);
  void recv_loop();
  void send_loop();

  net::Transport& transport_;
  const ProcessParams& params_;
  LifeFlags& life_;
  ChannelState& channels_;
  ProtocolHost& tracker_;
  SenderLog& log_;
  SharedMetrics& metrics_;
  Callbacks cb_;

  std::atomic<bool> closing_{false};
  util::BlockingQueue<net::Packet> queue_a_;  // outgoing (paper's queue A)
  // Holdback plane (survivor non-stop recovery).  The paused flags are read
  // on every send without a lock; hb_mu_ guards the queues themselves and is
  // a leaf (taken from the app thread in send_app and the dispatch thread in
  // resume_channel, never while holding another engine lock on this side).
  std::vector<std::atomic<bool>> paused_;
  std::mutex hb_mu_;
  std::vector<std::deque<net::Packet>> holdback_;
  std::thread recv_thread_;
  std::thread send_thread_;
  exec::TaskHandle recv_task_;  // fiber-mode counterparts of the threads
  exec::TaskHandle send_task_;

  static constexpr std::chrono::microseconds kTick{2000};
};

}  // namespace windar::ft
