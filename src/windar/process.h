// The per-rank rollback-recovery layer (the paper's WINDAR component,
// Fig. 4/5): embedded between the application and the simulated transport.
//
// Responsibilities (protocol-independent, Algorithm 1):
//   * per-pair send/deliver counters (last_send_index / last_deliver_index)
//   * sender-based message logging and CHECKPOINT_ADVANCE log release
//   * duplicate filtering (send_index <= last_deliver_index -> discard)
//   * send suppression during rolling forward (rollback_last_send_index)
//   * ROLLBACK / RESPONSE recovery choreography, with periodic re-broadcast
//     so simultaneous multi-rank failures converge
//   * the receiving queue and the delivery gate (per-pair FIFO + the
//     protocol's LoggingProtocol::deliverable constraint)
//
// Send paths (paper §III.E, Fig. 4):
//   kBlocking     — the app thread transmits and then waits for the
//                   receiver's acceptance ack, pumping its own inbox while
//                   it waits (single-threaded MPICH-style sync sends).
//                   Small messages are acked on arrival (eager); payloads
//                   above eager_threshold are acked only when the receiver
//                   application actually consumes them (rendezvous).
//   kNonBlocking  — sends are buffered in queue A and transmitted by a
//                   sender thread; a receiver thread drains the endpoint
//                   inbox into queue B; the app thread never blocks on a
//                   peer, dead or alive.
//
// Thread-safety: every member below is guarded by mu_ unless noted.  The
// application thread is the only caller of send/recv/checkpoint.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "mp/comm.h"
#include "net/fabric.h"
#include "windar/checkpoint.h"
#include "windar/metrics.h"
#include "windar/protocol.h"
#include "windar/sender_log.h"
#include "windar/seqset.h"
#include "windar/trace.h"
#include "windar/wire.h"

namespace windar::ft {

/// Thrown into the application thread when this rank is fault-injected.
struct Killed {};

/// Thrown when the job is being torn down abnormally (another rank raised an
/// application error); unwinds the rank function without triggering recovery.
struct JobAborted {};

struct ProcessParams {
  int rank = 0;
  int n = 0;
  ProtocolKind protocol = ProtocolKind::kTdi;
  SendMode mode = SendMode::kNonBlocking;
  std::size_t eager_threshold = 8 * 1024;
  std::chrono::milliseconds rollback_retry{25};
  int logger_endpoint = -1;  // >= 0 when the protocol uses the event logger
  std::size_t tel_batch = 32;
  std::chrono::microseconds tel_flush_interval{50};
  // Paper Fig. 4(b) uses a dedicated sending thread because real transports
  // block in send().  The simulated fabric's send never blocks, so by
  // default the application thread hands packets to the fabric directly and
  // the sending thread is opt-in (it only adds a scheduling hop here).
  bool sender_thread = false;
  // Optional causal-event recorder (owned by the caller, shared by ranks).
  TraceSink* trace = nullptr;
  std::uint32_t incarnation = 0;  // 0 = original process
};

class Process {
 public:
  /// `recovering` marks an incarnation: state is restored from the last
  /// checkpoint (or from scratch if none) and a ROLLBACK is broadcast before
  /// the application re-enters.
  Process(net::Fabric& fabric, CheckpointStore& store, ProcessParams params,
          bool recovering);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  // ---- application-facing (application thread only) ----

  int rank() const { return params_.rank; }
  int size() const { return params_.n; }

  void send(int dst, int tag, std::span<const std::uint8_t> payload);
  mp::Message recv(int src, int tag);

  /// Non-blocking probe: true if recv(src, tag) would find a deliverable
  /// message without waiting for new arrivals.
  bool probe(int src, int tag);

  /// Takes an independent checkpoint (Algorithm 1 lines 32-37): saves the
  /// image to stable storage and notifies peers to release log entries.
  void checkpoint(std::span<const std::uint8_t> app_state);

  /// Application state from the restored checkpoint, if this incarnation had
  /// one; nullopt on fresh start or restart-from-scratch.
  const std::optional<util::Bytes>& restored_app_state() const {
    return restored_app_;
  }

  // ---- runtime-facing ----

  /// Fault injection: marks the incarnation dead and wakes every wait so the
  /// application thread unwinds with Killed.  The caller also invokes
  /// fabric.kill(rank) to drop volatile network state.  Thread-safe.
  void poison();

  /// After the rank function returns, keep serving control traffic
  /// (rollbacks from recovering peers, log releases) until the whole job is
  /// done.  Called on the application thread.
  void park(const std::atomic<bool>& all_done);

  Metrics metrics() const;
  SeqNo delivered_total() const;
  const LoggingProtocol& protocol_for_test() const { return *proto_; }
  std::size_t log_entries() const;
  std::size_t receive_queue_depth() const;

  /// One-line diagnostic snapshot (recovery state, queue depths, counters)
  /// for the runtime's stall watchdog.
  std::string debug_state() const;

 private:
  using Clock = std::chrono::steady_clock;

  // ---- setup / recovery ----
  void restore_from_checkpoint();   // ctor helper (recovering)
  void broadcast_rollback_locked();
  void update_gather_done_locked();

  // ---- event handling ----
  /// Returns true if the packet changed state the application thread may be
  /// waiting on (queue B, acks, responses) — i.e. whether to signal cv_.
  bool handle_packet_locked(net::Packet&& p);
  void handle_app_locked(net::Packet&& p);
  void handle_rollback_locked(int from, std::uint32_t peer_epoch,
                              const std::vector<SeqNo>& ldi);
  void handle_response_locked(int from, net::Packet&& p);
  void periodic_locked();
  void flush_tel_locked(bool force);

  /// Blocking-mode event pump: pops at most one packet (bounded by
  /// `deadline`), dispatches it, runs periodic work.  Throws Killed /
  /// JobAborted as appropriate.
  void pump_once(Clock::time_point deadline);

  // ---- delivery ----
  /// Index into queue_b_ of the first message passing filters + FIFO +
  /// protocol gate, or npos.
  std::size_t find_deliverable_locked(int src, int tag) const;
  mp::Message deliver_locked(std::size_t at);

  // ---- transmission ----
  void transmit(net::Packet p);  // queue A (non-blocking) or direct
  net::Packet make_app_packet(int dst, int tag, SeqNo idx,
                              const util::Bytes& meta,
                              std::span<const std::uint8_t> payload) const;
  void send_control(int dst, Kind kind, std::uint64_t seq,
                    util::Bytes payload);
  void send_ack_locked(int dst, SeqNo idx);
  bool is_acked_locked(int dst, SeqNo idx) const;

  void throw_if_dead();
  static bool debug_breadcrumbs();

  // ---- helper threads (non-blocking mode) ----
  void recv_loop();
  void send_loop();

  net::Fabric& fabric_;
  CheckpointStore& store_;
  ProcessParams params_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // app-thread wakeups: queue B, acks, gather
  std::atomic<bool> killed_{false};
  std::atomic<bool> aborted_{false};  // job teardown without fault semantics
  bool closing_ = false;              // destructor in progress

  std::unique_ptr<LoggingProtocol> proto_;
  SenderLog log_;
  Metrics metrics_;

  // Algorithm 1 counters (all per-pair, 1-based)
  std::vector<SeqNo> last_send_;
  std::vector<SeqNo> last_deliver_;
  std::vector<SeqNo> last_ckpt_deliver_;
  std::vector<SeqNo> rollback_last_send_;
  SeqNo delivered_total_ = 0;
  std::uint64_t ckpt_seq_ = 0;

  std::deque<QueuedMsg> queue_b_;     // receiving queue (paper's queue B)
  std::vector<SeqSet> acked_;         // per-destination accepted send indices

  // recovery state
  bool recovering_ = false;
  bool gather_done_ = true;  // false while a PWD protocol gathers determinants
  std::vector<std::uint32_t> peer_epoch_;  // highest incarnation seen per peer
  std::vector<char> response_seen_;
  int responses_pending_ = 0;
  bool logger_reply_pending_ = false;
  Clock::time_point last_rollback_bcast_{};
  std::optional<util::Bytes> restored_app_;

  Clock::time_point last_tel_flush_{};
  std::string last_api_;  // watchdog breadcrumb: current app-thread call

  // non-blocking mode plumbing
  util::BlockingQueue<net::Packet> queue_a_;  // outgoing (paper's queue A)
  std::thread recv_thread_;
  std::thread send_thread_;

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::chrono::microseconds kTick{2000};
};

}  // namespace windar::ft
