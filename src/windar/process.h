// The per-rank rollback-recovery layer (the paper's WINDAR component,
// Fig. 4/5): embedded between the application and the simulated transport.
//
// Process is a thin façade over the recovery engine's components:
//
//   ChannelState     per-pair counters, ack/suppression watermarks
//   SenderLog        sender-based message log (internally locked)
//   ProtocolHost     the LoggingProtocol behind its own lock
//   SendPath         transmit paths, queue A, helper threads, event pump
//   RecoveryManager  checkpoint/restore + ROLLBACK/RESPONSE choreography
//   DeliveryQueue    queue B, delivery gate, app-thread waits
//
// Process itself only wires them together, routes incoming packets
// (`dispatch`), and runs timed work (`periodic`).  The application thread is
// the only caller of send/recv/probe/checkpoint; exactly one thread per
// engine dispatches packets (the receiver thread in non-blocking mode, the
// application thread in blocking mode).  See DESIGN.md "Engine architecture"
// for the component graph and lock order.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>

#include "mp/comm.h"
#include "net/transport.h"
#include "windar/channel_state.h"
#include "windar/checkpoint.h"
#include "windar/delivery_queue.h"
#include "windar/fault.h"
#include "windar/metrics.h"
#include "windar/params.h"
#include "windar/protocol.h"
#include "windar/recovery_manager.h"
#include "windar/send_path.h"
#include "windar/sender_log.h"
#include "windar/trace.h"
#include "windar/wire.h"

namespace windar::ft {

class Process {
 public:
  /// `recovering` marks an incarnation: state is restored from the last
  /// checkpoint (or from scratch if none) and a ROLLBACK is broadcast before
  /// the application re-enters.
  Process(net::Transport& transport, CheckpointStore& store, ProcessParams params,
          bool recovering);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  // ---- application-facing (application thread only) ----

  int rank() const { return params_.rank; }
  int size() const { return params_.n; }

  void send(int dst, int tag, std::span<const std::uint8_t> payload);
  mp::Message recv(int src, int tag);

  /// Non-blocking probe: true if recv(src, tag) would find a deliverable
  /// message without waiting for new arrivals.
  bool probe(int src, int tag);

  /// Takes an independent checkpoint (Algorithm 1 lines 32-37): saves the
  /// image to stable storage and notifies peers to release log entries.
  void checkpoint(std::span<const std::uint8_t> app_state);

  /// Application state from the restored checkpoint, if this incarnation had
  /// one; nullopt on fresh start or restart-from-scratch.
  const std::optional<util::Bytes>& restored_app_state() const {
    return recovery_.restored_app();
  }

  // ---- runtime-facing ----

  /// Fault injection: marks the incarnation dead and wakes every wait so the
  /// application thread unwinds with Killed.  The caller also invokes
  /// fabric.kill(rank) to drop volatile network state.  Thread-safe.
  void poison();

  /// After the rank function returns, keep serving control traffic
  /// (rollbacks from recovering peers, log releases) until the whole job is
  /// done.  Called on the application thread.
  void park(const std::atomic<bool>& all_done);

  /// Blocks until every queued checkpoint is durably committed (no-op when
  /// the background writer is off).  Callers that snapshot metrics or store
  /// stats at end-of-job call this first, so in-flight commits are counted.
  void drain_checkpoints() { recovery_.flush_checkpoints(); }

  Metrics metrics() const { return metrics_.snapshot(); }
  SeqNo delivered_total() const { return channels_.delivered_total(); }
  const LoggingProtocol& protocol_for_test() const { return tracker_.raw(); }
  std::size_t log_entries() const { return log_.entries(); }
  std::size_t receive_queue_depth() const { return delivery_.depth(); }

  /// One-line diagnostic snapshot (recovery state, queue depths, counters)
  /// for the runtime's stall watchdog.
  std::string debug_state() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Routes one incoming packet to its component.  Returns true if the
  /// packet changed state the application thread may be waiting on (queue B,
  /// acks, responses) — i.e. whether to wake it.
  bool dispatch(net::Packet&& p);

  /// Timed work: ROLLBACK re-broadcast, TEL determinant flush.
  void periodic();
  void flush_tel(bool force);

  void breadcrumb(const char* api, int a, int b);
  static bool debug_breadcrumbs();

  net::Transport& transport_;
  CheckpointStore& store_;
  ProcessParams params_;

  LifeFlags life_;
  SharedMetrics metrics_;
  ChannelState channels_;
  SenderLog log_;
  ProtocolHost tracker_;
  SendPath send_path_;
  RecoveryManager recovery_;
  DeliveryQueue delivery_;

  std::mutex tel_mu_;  // guards the flush timer (handler + app threads)
  Clock::time_point last_tel_flush_{};

  mutable std::mutex dbg_mu_;
  std::string last_api_;  // watchdog breadcrumb: current app-thread call
};

}  // namespace windar::ft
