#include "windar/tag_protocol.h"

#include <limits>

#include "util/check.h"
#include "windar/codec.h"

namespace windar::ft {

TagProtocol::TagProtocol(int rank, int n)
    : LoggingProtocol(rank, n), unsent_(static_cast<std::size_t>(n)) {}

std::uint32_t TagProtocol::add_det(const Determinant& d,
                                   const util::RankBitset& known) {
  auto [it, inserted] = index_.try_emplace(
      d.key(), static_cast<std::uint32_t>(entries_.size()));
  if (!inserted) {
    Entry& e = entries_[it->second];
    e.known.merge(known);
    return it->second;
  }
  util::RankBitset with_self = known;
  with_self.set(rank_);
  entries_.push_back(Entry{d, std::move(with_self), false});
  ++live_entries_;
  const auto id = static_cast<std::uint32_t>(entries_.size() - 1);
  // Queue for piggybacking to every destination that may lack it; the mask
  // check at drain time skips ones that became known in the meantime.
  for (int dst = 0; dst < n_; ++dst) {
    if (dst != rank_) unsent_[static_cast<std::size_t>(dst)].push_back(id);
  }
  return id;
}

Piggyback TagProtocol::on_send(int dst, SeqNo send_index) {
  (void)send_index;
  // Drain the incremental part of the antecedence graph for this
  // destination: everything discovered since the last send that the
  // destination is not already believed to hold.
  auto& pending = unsent_[static_cast<std::size_t>(dst)];
  DeterminantBlockWriter block;
  for (std::uint32_t id : pending) {
    Entry& e = entries_[id];
    if (e.dead || e.known.test(dst)) continue;
    e.known.set(dst);  // optimistic: the message will carry it
    block.add(e.det);
  }
  pending.clear();
  util::ByteWriter w;
  block.finish(w);
  return Piggyback{w.take(), block.count() * kIdentsPerDeterminant};
}

void TagProtocol::on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                             std::span<const std::uint8_t> meta) {
  util::ByteReader r(meta);
  read_determinant_block(r, [&](const Determinant& d) {
    // The sender held it, and now so do we.
    add_det(d, util::RankBitset::of(src, rank_));
  });
  // Our own delivery becomes a new non-deterministic event determinant.
  // The sender does not know our delivery order, so only we hold it.
  add_det(Determinant{static_cast<SeqNo>(src), static_cast<SeqNo>(rank_),
                      send_index, deliver_seq},
          util::RankBitset::of(rank_));
  replay_.on_deliver(deliver_seq);
}

bool TagProtocol::deliverable(const QueuedMsg& m,
                              SeqNo delivered_total) const {
  return replay_.deliverable(m.src, m.send_index, delivered_total);
}

void TagProtocol::begin_replay(SeqNo delivered_total) {
  replay_.begin(delivered_total);
}

void TagProtocol::add_replay_determinants(std::span<const Determinant> ds) {
  for (const auto& d : ds) replay_.add(d, rank_);
}

std::vector<Determinant> TagProtocol::determinants_for(int peer) const {
  std::vector<Determinant> out;
  for (const Entry& e : entries_) {
    if (!e.dead && static_cast<int>(e.det.receiver) == peer) {
      out.push_back(e.det);
    }
  }
  return out;
}

void TagProtocol::on_peer_checkpoint(int peer, SeqNo peer_delivered_total) {
  // Deliveries the peer has checkpointed past can never be replayed; their
  // determinants are garbage.  Entries are tombstoned (ids stay stable for
  // the unsent lists) and skipped everywhere.
  for (Entry& e : entries_) {
    if (!e.dead && static_cast<int>(e.det.receiver) == peer &&
        e.det.deliver_seq <= peer_delivered_total) {
      e.dead = true;
      index_.erase(e.det.key());
      --live_entries_;
    }
  }
  maybe_compact();
}

void TagProtocol::maybe_compact() {
  if (entries_.size() < 1024 || live_entries_ * 2 > entries_.size()) return;
  std::vector<std::uint32_t> remap(entries_.size(),
                                   std::numeric_limits<std::uint32_t>::max());
  std::vector<Entry> kept;
  kept.reserve(live_entries_);
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].dead) continue;
    remap[id] = static_cast<std::uint32_t>(kept.size());
    kept.push_back(std::move(entries_[id]));
  }
  entries_ = std::move(kept);
  index_.clear();
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    index_.emplace(entries_[id].det.key(), id);
  }
  for (auto& pending : unsent_) {
    std::vector<std::uint32_t> fresh;
    fresh.reserve(pending.size());
    for (std::uint32_t old_id : pending) {
      const std::uint32_t new_id = remap[old_id];
      if (new_id != std::numeric_limits<std::uint32_t>::max()) {
        fresh.push_back(new_id);
      }
    }
    pending = std::move(fresh);
  }
}

void TagProtocol::save(util::ByteWriter& w) const {
  std::uint32_t live = 0;
  for (const Entry& e : entries_) {
    if (!e.dead) ++live;
  }
  w.u32(live);
  for (const Entry& e : entries_) {
    if (e.dead) continue;
    e.det.write(w);
    e.known.save(w);
  }
}

void TagProtocol::restore(util::ByteReader& r) {
  entries_.clear();
  index_.clear();
  live_entries_ = 0;
  for (auto& q : unsent_) q.clear();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const Determinant d = Determinant::read(r);
    const util::RankBitset mask = util::RankBitset::load(r);
    // add_det rebuilds the unsent lists; then narrow them back down using
    // the saved mask (peers that already held the determinant keep it —
    // knowledge is never lost by *our* failure).
    add_det(d, mask);
  }
}

}  // namespace windar::ft
