// Rollback-recovery and checkpoint choreography (Algorithm 1 lines 32-51).
//
// On the recovering side: restore the last checkpoint image, broadcast
// ROLLBACK (with periodic re-broadcast so simultaneous failures converge),
// collect RESPONSEs — and, for PWD protocols, determinants — until the
// delivery gate may open.  On the survivor side: answer a peer's ROLLBACK
// with log-driven resends followed by a RESPONSE, and apply peers'
// CHECKPOINT_ADVANCE notifications to the sender log.  Also owns the
// independent-checkpoint path (image assembly and log-release fan-out).
//
// The internal mutex guards only the gather bookkeeping (who has responded,
// broadcast timing); `gather_done_` is additionally exported as an atomic so
// the DeliveryQueue's gate check never takes a recovery lock.  Lock order:
// the recovery mutex may be held while taking ChannelState / ProtocolHost /
// log / metrics locks, never the reverse, and is never held together with
// the DeliveryQueue's lock.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/transport.h"
#include "windar/channel_state.h"
#include "windar/checkpoint.h"
#include "windar/metrics.h"
#include "windar/params.h"
#include "windar/protocol.h"
#include "windar/send_path.h"
#include "windar/sender_log.h"

namespace windar::ft {

class RecoveryManager {
 public:
  using Clock = std::chrono::steady_clock;

  RecoveryManager(net::Transport& transport, CheckpointStore& store,
                  const ProcessParams& params, ChannelState& channels,
                  SenderLog& log, ProtocolHost& tracker, SendPath& send_path,
                  SharedMetrics& metrics);

  // ---- recovering side ----

  /// Restores counters, protocol state and sender log from the last
  /// checkpoint (scratch if none), re-injects undelivered self-channel
  /// messages, and closes the delivery gate if the protocol must gather
  /// determinants.  Runs on the constructing thread, before helper threads.
  void restore_from_checkpoint();

  /// First ROLLBACK broadcast; called once the engine is fully wired (so
  /// responses racing back are dispatchable).
  void announce_rollback();

  const std::optional<util::Bytes>& restored_app() const {
    return restored_app_;
  }

  /// Delivery gate: false while a PWD protocol's determinant gather is
  /// incomplete.  Referenced by the DeliveryQueue.
  const std::atomic<bool>& gate() const { return gather_done_; }

  /// True while ROLLBACK re-broadcasts may still be needed (handler thread
  /// should poll on a short tick).
  bool retry_pending() const;

  // ---- packet handlers (single dispatch thread) ----

  void handle_rollback(int from, std::uint32_t peer_epoch,
                       const std::vector<SeqNo>& ldi);
  void handle_response(int from, net::Packet&& p);
  void handle_tel_query_reply(net::Packet&& p);
  void handle_checkpoint_advance(net::Packet&& p);

  /// Timed work: ROLLBACK re-broadcast while responses are outstanding.
  void periodic();

  // ---- checkpoint plane (application thread) ----

  void checkpoint(std::span<const std::uint8_t> app_state);

  std::string debug_string() const;

 private:
  void broadcast_rollback_locked();
  void update_gather_done_locked();

  net::Transport& transport_;
  CheckpointStore& store_;
  const ProcessParams& params_;
  ChannelState& channels_;
  SenderLog& log_;
  ProtocolHost& tracker_;
  SendPath& send_path_;
  SharedMetrics& metrics_;
  const bool needs_gather_;
  const bool uses_event_logger_;

  std::atomic<bool> gather_done_{true};

  mutable std::mutex mu_;
  bool recovering_ = false;
  std::vector<char> response_seen_;
  int responses_pending_ = 0;
  bool logger_reply_pending_ = false;
  Clock::time_point last_rollback_bcast_{};
  // Current re-broadcast wait: starts at params.rollback_retry, doubles per
  // retry round up to params.rollback_retry_cap (capped exponential backoff).
  Clock::duration retry_interval_;

  std::optional<util::Bytes> restored_app_;  // set pre-threads, then const
  std::uint64_t ckpt_seq_ = 0;               // application thread only
};

}  // namespace windar::ft
