// Rollback-recovery and checkpoint choreography (Algorithm 1 lines 32-51).
//
// On the recovering side: restore the last checkpoint image, broadcast
// ROLLBACK (with periodic re-broadcast so simultaneous failures converge),
// collect RESPONSEs — and, for PWD protocols, determinants — until the
// delivery gate may open.  On the survivor side: answer a peer's ROLLBACK
// with log-driven resends followed by a RESPONSE, and apply peers'
// CHECKPOINT_ADVANCE notifications to the sender log.  Also owns the
// independent-checkpoint path (image assembly and log-release fan-out).
//
// Checkpoint plane (paper §III.D, ROADMAP item 3).  checkpoint() only
// *seals* a snapshot on the application thread: the app bytes are copied
// once into a shared buffer, the protocol/channel/log state is captured
// under their own short locks, and the pending advances are collected.  No
// disk I/O and no full-image serialization happen under any hot-path lock.
// When the background writer is running (start_writer; non-blocking mode
// with params.ckpt_async), the sealed snapshot is queued and the writer
// serializes + durably commits it; CHECKPOINT_ADVANCE fan-out — the
// message that lets peers discard log entries forever — happens strictly
// AFTER the store reports durability.  Without a writer the same commit
// runs inline (blocking mode, unit tests, WINDAR_CKPT=sync).
//
// Survivor non-stop recovery.  A ROLLBACK answer resends at most
// params.replay_burst logged messages inline; a longer replay becomes a
// ReplaySession drained in bursts from periodic(), so the survivor's
// dispatch thread keeps serving its own sends and deliveries while a peer
// rebuilds (and never parks on transport backpressure to the recovering
// rank for an unbounded stream).  While a session is draining, new
// application sends to that rank park in SendPath's holdback queue; the
// RESPONSE goes out only when the session drains, and the channel resumes
// right after.
//
// The internal mutex guards the gather bookkeeping and replay sessions;
// `gather_done_` is additionally exported as an atomic so the
// DeliveryQueue's gate check never takes a recovery lock.  Lock order: the
// recovery mutex may be held while taking ChannelState / ProtocolHost /
// log / metrics locks, never the reverse, and is never held together with
// the DeliveryQueue's lock.  The writer queue has its own leaf mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/scheduler.h"
#include "net/transport.h"
#include "util/wait.h"
#include "windar/channel_state.h"
#include "windar/checkpoint.h"
#include "windar/metrics.h"
#include "windar/params.h"
#include "windar/protocol.h"
#include "windar/send_path.h"
#include "windar/sender_log.h"

namespace windar::ft {

class RecoveryManager {
 public:
  using Clock = std::chrono::steady_clock;

  RecoveryManager(net::Transport& transport, CheckpointStore& store,
                  const ProcessParams& params, ChannelState& channels,
                  SenderLog& log, ProtocolHost& tracker, SendPath& send_path,
                  SharedMetrics& metrics);
  ~RecoveryManager();

  // ---- recovering side ----

  /// Restores counters, protocol state and sender log from the last
  /// checkpoint (scratch if none), re-injects undelivered self-channel
  /// messages, and closes the delivery gate if the protocol must gather
  /// determinants.  Runs on the constructing thread, before helper threads.
  void restore_from_checkpoint();

  /// First ROLLBACK broadcast; called once the engine is fully wired (so
  /// responses racing back are dispatchable).
  void announce_rollback();

  const std::optional<util::Bytes>& restored_app() const {
    return restored_app_;
  }

  /// Delivery gate: false while a PWD protocol's determinant gather is
  /// incomplete.  Referenced by the DeliveryQueue.
  const std::atomic<bool>& gate() const { return gather_done_; }

  /// True while ROLLBACK re-broadcasts may still be needed (handler thread
  /// should poll on a short tick).
  bool retry_pending() const;

  /// retry_pending() plus "a replay session is draining" — the receiver
  /// thread's urgent() hook, so paced replays pump on the 1ms tick.
  bool work_pending() const;

  // ---- packet handlers (single dispatch thread) ----

  void handle_rollback(int from, std::uint32_t peer_epoch,
                       const std::vector<SeqNo>& ldi);
  void handle_response(int from, net::Packet&& p);
  void handle_tel_query_reply(net::Packet&& p);
  void handle_checkpoint_advance(net::Packet&& p);

  /// Timed work: ROLLBACK re-broadcast while responses are outstanding, and
  /// burst-pumping of in-flight replay sessions.
  void periodic();

  // ---- checkpoint plane ----

  /// Seals a snapshot (application thread, cheap) and either queues it for
  /// the background writer or commits it inline when no writer is running.
  void checkpoint(std::span<const std::uint8_t> app_state);

  /// Spawns the background checkpoint writer (thread, or sibling fiber when
  /// constructed on a cooperative task).  Idempotent.
  void start_writer();
  /// Stops the writer.  drain=true commits everything still queued first
  /// (clean teardown must not lose checkpoints the app was promised);
  /// drain=false discards the queue (fault injection: an uncommitted
  /// snapshot died with the process, which is protocol-safe — no advance
  /// went out, so peers kept their logs).
  void stop_writer(bool drain);
  /// Blocks until every queued snapshot is durably committed (tests,
  /// pre-teardown barriers).  Returns immediately when no writer runs.
  void flush_checkpoints();

  std::string debug_string() const;

 private:
  struct PendingCheckpoint {
    SealedCheckpoint image;
    // Sender log sealed as entry vectors (Buffer refbumps); serialized to
    // image.log by the committer, off the application thread.
    std::vector<std::vector<LogEntry>> log;
    std::vector<std::pair<int, SeqNo>> advances;
  };

  struct ReplaySession {
    // Incarnation this stream serves; a ROLLBACK from an older epoch is a
    // stale retransmit and must not restart (rewind) the stream.
    std::uint32_t epoch = 0;
    std::vector<LogEntry> entries;  // snapshot of the log tail to resend
    std::size_t next = 0;
  };

  void broadcast_rollback_locked();
  void update_gather_done_locked();
  /// Sends up to replay_burst entries of `s`; on drain sends the RESPONSE,
  /// resumes the held-back channel, and returns true (session done).
  bool pump_replay_locked(int from, ReplaySession& s);
  /// Serializes, durably saves, and — only then — fans out the advances.
  /// Returns false iff the store's pre-commit hook dropped the commit.
  bool commit_checkpoint(PendingCheckpoint& pc);
  void writer_loop();

  net::Transport& transport_;
  CheckpointStore& store_;
  const ProcessParams& params_;
  ChannelState& channels_;
  SenderLog& log_;
  ProtocolHost& tracker_;
  SendPath& send_path_;
  SharedMetrics& metrics_;
  const bool needs_gather_;
  const bool uses_event_logger_;

  std::atomic<bool> gather_done_{true};

  mutable std::mutex mu_;
  bool recovering_ = false;
  std::vector<char> response_seen_;
  int responses_pending_ = 0;
  bool logger_reply_pending_ = false;
  Clock::time_point last_rollback_bcast_{};
  // Current re-broadcast wait: starts at params.rollback_retry, doubles per
  // retry round up to params.rollback_retry_cap (capped exponential backoff).
  Clock::duration retry_interval_;
  std::map<int, ReplaySession> replays_;       // guarded by mu_
  std::atomic<bool> replay_pending_{false};    // mirrors !replays_.empty()

  // Background checkpoint writer.  wq_mu_ is a leaf (never held while
  // taking mu_ or any component lock); commit_checkpoint runs with it
  // released.
  mutable std::mutex wq_mu_;
  mutable util::WaitSet wq_cv_;
  std::deque<PendingCheckpoint> wq_;
  bool writer_running_ = false;
  bool writer_stop_ = false;
  bool committing_ = false;
  std::thread writer_thread_;
  exec::TaskHandle writer_task_;

  std::optional<util::Bytes> restored_app_;  // set pre-threads, then const
  std::uint64_t ckpt_seq_ = 0;               // application thread only
};

}  // namespace windar::ft
