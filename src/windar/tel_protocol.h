// TEL — causal logging with a stable-storage event logger (Bouteiller et
// al. [5] style baseline).
//
// Determinants are pushed asynchronously to a dedicated event-logger node;
// a determinant stops being piggybacked as soon as the logger acknowledges
// it as stable.  Until then, the *owner's* copies travel on its outgoing
// messages together with its stability-watermark vector; receivers retain
// (but do not re-forward) foreign determinants until the watermark covers
// them, which with the stable logger gives single-failure coverage as in
// [5].
//
// Piggyback accounting: n identifiers for the watermark vector plus 4 per
// unstable determinant.  The asynchronous logger traffic (kTelLog / kTelAck)
// is counted as control messages, matching the paper's remark that TEL
// introduces "extra notification messages".
//
// Recovery is strict PWD like TAG, except stable determinants are fetched
// from the event logger (kTelQuery) while survivors supply only the
// still-unstable tail.
#pragma once

#include <map>
#include <vector>

#include "windar/protocol.h"
#include "windar/pwd_replay.h"

namespace windar::ft {

class TelProtocol final : public LoggingProtocol {
 public:
  TelProtocol(int rank, int n);

  ProtocolKind kind() const override { return ProtocolKind::kTel; }

  Piggyback on_send(int dst, SeqNo send_index) override;
  void on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                  std::span<const std::uint8_t> meta) override;
  bool deliverable(const QueuedMsg& m, SeqNo delivered_total) const override;

  void save(util::ByteWriter& w) const override;
  void restore(util::ByteReader& r) override;

  bool needs_determinant_gather() const override { return true; }
  bool uses_event_logger() const override { return true; }
  void begin_replay(SeqNo delivered_total) override;
  void add_replay_determinants(std::span<const Determinant> ds) override;
  std::vector<Determinant> determinants_for(int peer) const override;
  void on_peer_checkpoint(int peer, SeqNo peer_delivered_total) override;

  std::vector<Determinant> take_unlogged(std::size_t max_batch) override;
  void on_logger_ack(SeqNo watermark) override;

  std::size_t tracked_entries() const override;
  std::string debug_string() const override {
    std::string out = replay_.debug_string() + " wm=";
    for (SeqNo v : stable_wm_) out += std::to_string(v) + ",";
    return out;
  }
  SeqNo stable_watermark(int owner) const {
    return stable_wm_[static_cast<std::size_t>(owner)];
  }

 private:
  void prune(int owner);

  // Unstable determinants, keyed by the owning (receiving) process and its
  // delivery order.  Stable ones live at the event logger.
  std::vector<std::map<SeqNo, Determinant>> by_owner_;
  std::vector<SeqNo> stable_wm_;  // highest known-stable deliver_seq per owner
  SeqNo flushed_upto_ = 0;        // own dets handed to the logger so far
  PwdReplayGate replay_;
};

}  // namespace windar::ft
