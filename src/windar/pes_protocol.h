// PES — pessimistic (synchronous) receiver-side event logging baseline.
//
// The classic alternative the rollback-recovery survey [4] contrasts causal
// logging against: every delivery determinant is committed to stable storage
// *before* the delivery is allowed to complete, so no process ever depends
// on an unlogged non-deterministic event.  Consequently nothing needs to be
// piggybacked at all — the cost moves from bandwidth (causal piggyback) to
// latency (a stable-storage round trip on every delivery).
//
// Implementation: reuses TEL's determinant plumbing and event logger, but
//   * piggybacks nothing (kIdentsPerMessage == 0),
//   * reports pessimistic() so the Process holds each delivery until the
//     logger's stability watermark covers it,
//   * recovers like TEL (logger query; survivors hold no useful extras).
#pragma once

#include "windar/tel_protocol.h"

namespace windar::ft {

class PesProtocol final : public LoggingProtocol {
 public:
  PesProtocol(int rank, int n);

  ProtocolKind kind() const override { return ProtocolKind::kPes; }

  Piggyback on_send(int dst, SeqNo send_index) override;
  void on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                  std::span<const std::uint8_t> meta) override;
  bool deliverable(const QueuedMsg& m, SeqNo delivered_total) const override;

  void save(util::ByteWriter& w) const override;
  void restore(util::ByteReader& r) override;

  bool needs_determinant_gather() const override { return true; }
  bool uses_event_logger() const override { return true; }
  bool pessimistic() const override { return true; }
  SeqNo stable_watermark() const { return stable_wm_; }
  bool stable_upto(SeqNo deliver_seq) const override {
    return stable_wm_ >= deliver_seq;
  }

  void begin_replay(SeqNo delivered_total) override;
  void add_replay_determinants(std::span<const Determinant> ds) override;
  std::vector<Determinant> determinants_for(int peer) const override;
  void on_peer_checkpoint(int peer, SeqNo peer_delivered_total) override;

  std::vector<Determinant> take_unlogged(std::size_t max_batch) override;
  void on_logger_ack(SeqNo watermark) override;

  std::size_t tracked_entries() const override { return pending_.size(); }
  std::string debug_string() const override { return replay_.debug_string(); }

 private:
  // Own determinants not yet confirmed stable (deliver_seq order).
  std::map<SeqNo, Determinant> pending_;
  SeqNo stable_wm_ = 0;
  SeqNo flushed_upto_ = 0;
  PwdReplayGate replay_;
};

}  // namespace windar::ft
