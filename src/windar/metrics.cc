#include "windar/metrics.h"

#include <algorithm>
#include <cstdio>

namespace windar::ft {

void Metrics::merge(const Metrics& o) {
  app_sent += o.app_sent;
  app_transmitted += o.app_transmitted;
  app_delivered += o.app_delivered;
  control_msgs += o.control_msgs;
  resent_msgs += o.resent_msgs;
  dup_dropped += o.dup_dropped;
  suppressed_sends += o.suppressed_sends;
  bad_packets += o.bad_packets;
  held_sends += o.held_sends;
  piggyback_idents += o.piggyback_idents;
  piggyback_bytes += o.piggyback_bytes;
  piggyback_bytes_dense += o.piggyback_bytes_dense;
  piggyback_bytes_sent += o.piggyback_bytes_sent;
  piggyback_resyncs += o.piggyback_resyncs;
  payload_bytes += o.payload_bytes;
  bytes_copied += o.bytes_copied;
  buffer_allocs += o.buffer_allocs;
  packets_recycled += o.packets_recycled;
  track_send_ns += o.track_send_ns;
  track_deliver_ns += o.track_deliver_ns;
  send_block_ns += o.send_block_ns;
  log_peak_bytes = std::max(log_peak_bytes, o.log_peak_bytes);
  log_peak_entries = std::max(log_peak_entries, o.log_peak_entries);
  log_released_entries += o.log_released_entries;
  checkpoints += o.checkpoints;
  ckpt_committed += o.ckpt_committed;
  ckpt_stall_ns += o.ckpt_stall_ns;
  ckpt_commit_ns += o.ckpt_commit_ns;
  recoveries += o.recoveries;
  rollback_broadcasts += o.rollback_broadcasts;
}

std::string Metrics::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "sent=%llu delivered=%llu ctrl=%llu dup=%llu resent=%llu "
                "suppressed=%llu pb_idents/msg=%.2f pb_ratio=%.3f "
                "track_us/msg=%.3f ckpt=%llu recov=%llu",
                static_cast<unsigned long long>(app_sent),
                static_cast<unsigned long long>(app_delivered),
                static_cast<unsigned long long>(control_msgs),
                static_cast<unsigned long long>(dup_dropped),
                static_cast<unsigned long long>(resent_msgs),
                static_cast<unsigned long long>(suppressed_sends),
                avg_piggyback_idents(), piggyback_compression(),
                avg_track_us(),
                static_cast<unsigned long long>(checkpoints),
                static_cast<unsigned long long>(recoveries));
  return buf;
}

}  // namespace windar::ft
