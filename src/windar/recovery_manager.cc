#include "windar/recovery_manager.h"

#include <algorithm>

#include "util/check.h"
#include "windar/codec.h"

namespace windar::ft {

RecoveryManager::RecoveryManager(net::Transport& transport, CheckpointStore& store,
                                 const ProcessParams& params,
                                 ChannelState& channels, SenderLog& log,
                                 ProtocolHost& tracker, SendPath& send_path,
                                 SharedMetrics& metrics)
    : transport_(transport),
      store_(store),
      params_(params),
      channels_(channels),
      log_(log),
      tracker_(tracker),
      send_path_(send_path),
      metrics_(metrics),
      needs_gather_(tracker.needs_determinant_gather()),
      uses_event_logger_(tracker.uses_event_logger()),
      response_seen_(static_cast<std::size_t>(params.n), 0),
      retry_interval_(params.rollback_retry) {}

// ---------------------------------------------------------------------------
// recovering side
// ---------------------------------------------------------------------------

void RecoveryManager::restore_from_checkpoint() {
  std::scoped_lock lock(mu_);
  recovering_ = true;
  metrics_.update([](Metrics& m) { ++m.recoveries; });
  auto image = store_.load(params_.rank);
  if (image) {
    restored_app_ = std::move(image->app);
    util::ByteReader pr(image->proto);
    tracker_.with([&](LoggingProtocol& proto) { proto.restore(pr); });
    channels_.restore(std::move(image->last_send),
                      std::move(image->last_deliver),
                      image->delivered_total);
    util::ByteReader lr(image->log);
    log_.restore(lr);
    ckpt_seq_ = image->ckpt_seq;
  }
  // No RESPONSE will come from ourselves; suppress re-sends we know our own
  // pre-checkpoint state already covers.
  response_seen_[static_cast<std::size_t>(params_.rank)] = 1;
  responses_pending_ = params_.n - 1;
  logger_reply_pending_ = uses_event_logger_;
  const auto [last_deliver, delivered_total] = channels_.deliver_snapshot();
  if (needs_gather_) {
    tracker_.with(
        [&](LoggingProtocol& proto) { proto.begin_replay(delivered_total); });
    gather_done_.store(false, std::memory_order_release);
  }
  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kRecover;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.deliver_seq = delivered_total;
    ev.restored_deliver = last_deliver;
    params_.trace->record(std::move(ev));
  }

  channels_.set_self_rollback_watermark();
  // Self-channel recovery: logged self-sends that were not yet delivered
  // must be re-injected locally (no peer will resend them for us).
  const auto me = static_cast<std::size_t>(params_.rank);
  log_.for_each_from(params_.rank, last_deliver[me], [&](const LogEntry& e) {
    metrics_.update([](Metrics& m) { ++m.resent_msgs; });
    transport_.send(app_packet(params_.rank, params_.rank, e.tag, e.send_index,
                            e.meta, e.payload));
  });
}

void RecoveryManager::announce_rollback() {
  std::scoped_lock lock(mu_);
  broadcast_rollback_locked();
}

void RecoveryManager::broadcast_rollback_locked() {
  const auto [last_deliver, delivered_total] = channels_.deliver_snapshot();
  (void)delivered_total;
  const util::Buffer payload = encode_rollback_body(last_deliver);
  for (int j = 0; j < params_.n; ++j) {
    if (response_seen_[static_cast<std::size_t>(j)]) continue;
    send_path_.send_control(j, Kind::kRollback, params_.incarnation, payload);
  }
  if (logger_reply_pending_) {
    send_path_.send_control(params_.logger_endpoint, Kind::kTelQuery, 0, {});
  }
  metrics_.update([](Metrics& m) { ++m.rollback_broadcasts; });
  last_rollback_bcast_ = Clock::now();
}

void RecoveryManager::update_gather_done_locked() {
  if (!needs_gather_) {
    gather_done_.store(true, std::memory_order_release);
    return;
  }
  gather_done_.store(responses_pending_ == 0 && !logger_reply_pending_,
                     std::memory_order_release);
}

bool RecoveryManager::retry_pending() const {
  std::scoped_lock lock(mu_);
  return recovering_ && (responses_pending_ > 0 || logger_reply_pending_);
}

// ---------------------------------------------------------------------------
// packet handlers
// ---------------------------------------------------------------------------

void RecoveryManager::handle_rollback(int from, std::uint32_t peer_epoch,
                                      const std::vector<SeqNo>& ldi) {
  WINDAR_CHECK_EQ(ldi.size(), static_cast<std::size_t>(params_.n))
      << "bad rollback vector";
  const auto me = static_cast<std::size_t>(params_.rank);
  channels_.observe_rollback(from, peer_epoch, ldi[me]);

  // Algorithm 1 lines 47-51 — but resends go out BEFORE the response.  A
  // RESPONSE therefore certifies that every logged message the peer needs
  // is already in flight; if we crash mid-resend the peer never sees our
  // response, keeps retrying its ROLLBACK, and our incarnation serves it.
  log_.for_each_from(from, ldi[me], [&](const LogEntry& e) {
    metrics_.update([](Metrics& m) { ++m.resent_msgs; });
    transport_.send(app_packet(params_.rank, from, e.tag, e.send_index, e.meta,
                            e.payload));
  });

  ResponseBody body;
  body.their_deliver_of_mine = channels_.last_deliver_of(from);
  body.determinants = tracker_.with(
      [&](const LoggingProtocol& proto) { return proto.determinants_for(from); });
  send_path_.send_control(from, Kind::kResponse, params_.incarnation,
                          body.encode());

  // A ROLLBACK proves the peer's (new) incarnation is up and listening.  If
  // our own gather is still waiting on that peer — overlapping failures —
  // our earlier broadcast likely died with its old incarnation; answer with
  // our pending ROLLBACK now instead of waiting out the backoff interval.
  std::scoped_lock lock(mu_);
  if (recovering_ && !response_seen_[static_cast<std::size_t>(from)]) {
    const auto [our_ldi, delivered_total] = channels_.deliver_snapshot();
    (void)delivered_total;
    send_path_.send_control(from, Kind::kRollback, params_.incarnation,
                            encode_rollback_body(our_ldi));
  }
}

void RecoveryManager::handle_response(int from, net::Packet&& p) {
  const ResponseBody body = ResponseBody::decode(p.payload);
  const auto resp_epoch = static_cast<std::uint32_t>(p.seq);
  channels_.observe_response(from, resp_epoch, body.their_deliver_of_mine);
  // A response from an older incarnation still carries valid determinants
  // (they are facts about past deliveries), just a stale watermark.
  tracker_.with([&](LoggingProtocol& proto) {
    proto.add_replay_determinants(body.determinants);
  });
  std::scoped_lock lock(mu_);
  if (recovering_ && !response_seen_[static_cast<std::size_t>(from)]) {
    response_seen_[static_cast<std::size_t>(from)] = 1;
    --responses_pending_;
    update_gather_done_locked();
  }
}

void RecoveryManager::handle_tel_query_reply(net::Packet&& p) {
  util::ByteReader r(p.payload);
  const auto dets = read_determinants(r);
  tracker_.with([&](LoggingProtocol& proto) {
    proto.add_replay_determinants(dets);
  });
  std::scoped_lock lock(mu_);
  logger_reply_pending_ = false;
  update_gather_done_locked();
}

void RecoveryManager::handle_checkpoint_advance(net::Packet&& p) {
  const std::size_t released =
      log_.release_upto(p.src, static_cast<SeqNo>(p.seq));
  metrics_.update([&](Metrics& m) { m.log_released_entries += released; });
  util::ByteReader r(p.payload);
  const SeqNo peer_delivered_total = r.u32();
  tracker_.with([&](LoggingProtocol& proto) {
    proto.on_peer_checkpoint(p.src, peer_delivered_total);
  });
}

void RecoveryManager::periodic() {
  std::scoped_lock lock(mu_);
  if (recovering_ && (responses_pending_ > 0 || logger_reply_pending_) &&
      Clock::now() - last_rollback_bcast_ >= retry_interval_) {
    // Peers that were down when we broadcast (simultaneous failures) never
    // saw the ROLLBACK; retry until everyone answered, backing off so a
    // long outage does not turn the gather window into a broadcast storm.
    // No reset on progress: a peer that comes back announces its own
    // ROLLBACK, which handle_rollback answers immediately, so the growing
    // interval does not delay convergence.
    broadcast_rollback_locked();
    retry_interval_ =
        std::min<Clock::duration>(retry_interval_ * 2,
                                  params_.rollback_retry_cap);
  }
}

// ---------------------------------------------------------------------------
// checkpoint plane
// ---------------------------------------------------------------------------

void RecoveryManager::checkpoint(std::span<const std::uint8_t> app_state) {
  CheckpointImage image;
  image.ckpt_seq = ++ckpt_seq_;
  image.app.assign(app_state.begin(), app_state.end());
  util::ByteWriter pw;
  tracker_.with([&](const LoggingProtocol& proto) { proto.save(pw); });
  image.proto = pw.take();
  ChannelState::Snapshot snap = channels_.snapshot();
  image.last_send = std::move(snap.last_send);
  image.last_deliver = std::move(snap.last_deliver);
  image.delivered_total = snap.delivered_total;
  util::ByteWriter lw;
  log_.save(lw);
  image.log = lw.take();
  store_.save(params_.rank, image);
  metrics_.update([](Metrics& m) { ++m.checkpoints; });
  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kCheckpoint;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.deliver_seq = snap.delivered_total;
    params_.trace->record(std::move(ev));
  }

  // Algorithm 1 lines 34-37: let peers release logs we can never replay.
  for (const auto& [peer, upto] : channels_.take_checkpoint_advances()) {
    if (peer == params_.rank) {
      // Self channel: release locally.
      const std::size_t released = log_.release_upto(peer, upto);
      metrics_.update([&](Metrics& m) { m.log_released_entries += released; });
      tracker_.with([&](LoggingProtocol& proto) {
        proto.on_peer_checkpoint(peer, snap.delivered_total);
      });
    } else {
      util::ByteWriter w;
      w.u32(snap.delivered_total);
      send_path_.send_control(peer, Kind::kCheckpointAdvance, upto, w.take());
    }
  }
  if (uses_event_logger_) {
    // The logger can discard determinants the checkpoint now covers.
    send_path_.send_control(params_.logger_endpoint, Kind::kCheckpointAdvance,
                            snap.delivered_total, {});
  }
}

std::string RecoveryManager::debug_string() const {
  std::scoped_lock lock(mu_);
  std::string out;
  if (recovering_) out += " RECOVERING";
  if (!gather_done_.load(std::memory_order_acquire)) out += " gather-pending";
  out += " resp_pending=" + std::to_string(responses_pending_);
  return out;
}

}  // namespace windar::ft
