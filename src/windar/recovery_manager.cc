#include "windar/recovery_manager.h"

#include <algorithm>

#include "util/check.h"
#include "util/clock.h"
#include "windar/codec.h"

namespace windar::ft {

RecoveryManager::RecoveryManager(net::Transport& transport, CheckpointStore& store,
                                 const ProcessParams& params,
                                 ChannelState& channels, SenderLog& log,
                                 ProtocolHost& tracker, SendPath& send_path,
                                 SharedMetrics& metrics)
    : transport_(transport),
      store_(store),
      params_(params),
      channels_(channels),
      log_(log),
      tracker_(tracker),
      send_path_(send_path),
      metrics_(metrics),
      needs_gather_(tracker.needs_determinant_gather()),
      uses_event_logger_(tracker.uses_event_logger()),
      response_seen_(static_cast<std::size_t>(params.n), 0),
      retry_interval_(params.rollback_retry) {}

RecoveryManager::~RecoveryManager() { stop_writer(true); }

// ---------------------------------------------------------------------------
// recovering side
// ---------------------------------------------------------------------------

void RecoveryManager::restore_from_checkpoint() {
  std::scoped_lock lock(mu_);
  recovering_ = true;
  metrics_.update([](Metrics& m) { ++m.recoveries; });
  auto image = store_.load(params_.rank);
  if (image) {
    restored_app_ = std::move(image->app);
    util::ByteReader pr(image->proto);
    tracker_.with([&](LoggingProtocol& proto) { proto.restore(pr); });
    channels_.restore(std::move(image->last_send),
                      std::move(image->last_deliver),
                      image->delivered_total);
    util::ByteReader lr(image->log);
    log_.restore(lr);
    ckpt_seq_ = image->ckpt_seq;
  }
  // No RESPONSE will come from ourselves; suppress re-sends we know our own
  // pre-checkpoint state already covers.
  response_seen_[static_cast<std::size_t>(params_.rank)] = 1;
  responses_pending_ = params_.n - 1;
  logger_reply_pending_ = uses_event_logger_;
  const auto [last_deliver, delivered_total] = channels_.deliver_snapshot();
  if (needs_gather_) {
    tracker_.with(
        [&](LoggingProtocol& proto) { proto.begin_replay(delivered_total); });
    gather_done_.store(false, std::memory_order_release);
  }
  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kRecover;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.deliver_seq = delivered_total;
    ev.restored_deliver = last_deliver;
    params_.trace->record(std::move(ev));
  }

  channels_.set_self_rollback_watermark();
  // Self-channel recovery: logged self-sends that were not yet delivered
  // must be re-injected locally (no peer will resend them for us).
  const auto me = static_cast<std::size_t>(params_.rank);
  log_.for_each_from(params_.rank, last_deliver[me], [&](const LogEntry& e) {
    metrics_.update([](Metrics& m) { ++m.resent_msgs; });
    transport_.send(app_packet(params_.rank, params_.rank, e.tag, e.send_index,
                            e.meta, e.payload));
  });
}

void RecoveryManager::announce_rollback() {
  std::scoped_lock lock(mu_);
  broadcast_rollback_locked();
}

void RecoveryManager::broadcast_rollback_locked() {
  const auto [last_deliver, delivered_total] = channels_.deliver_snapshot();
  (void)delivered_total;
  const util::Buffer payload = encode_rollback_body(last_deliver);
  for (int j = 0; j < params_.n; ++j) {
    if (response_seen_[static_cast<std::size_t>(j)]) continue;
    send_path_.send_control(j, Kind::kRollback, params_.incarnation, payload);
  }
  if (logger_reply_pending_) {
    send_path_.send_control(params_.logger_endpoint, Kind::kTelQuery, 0, {});
  }
  metrics_.update([](Metrics& m) { ++m.rollback_broadcasts; });
  last_rollback_bcast_ = Clock::now();
}

void RecoveryManager::update_gather_done_locked() {
  if (!needs_gather_) {
    gather_done_.store(true, std::memory_order_release);
    return;
  }
  gather_done_.store(responses_pending_ == 0 && !logger_reply_pending_,
                     std::memory_order_release);
}

bool RecoveryManager::retry_pending() const {
  std::scoped_lock lock(mu_);
  return recovering_ && (responses_pending_ > 0 || logger_reply_pending_);
}

bool RecoveryManager::work_pending() const {
  return replay_pending_.load(std::memory_order_acquire) || retry_pending();
}

// ---------------------------------------------------------------------------
// packet handlers
// ---------------------------------------------------------------------------

void RecoveryManager::handle_rollback(int from, std::uint32_t peer_epoch,
                                      const std::vector<SeqNo>& ldi) {
  WINDAR_CHECK_EQ(ldi.size(), static_cast<std::size_t>(params_.n))
      << "bad rollback vector";
  const auto me = static_cast<std::size_t>(params_.rank);
  channels_.observe_rollback(from, peer_epoch, ldi[me]);

  // Algorithm 1 lines 47-51: resends go out BEFORE the response.  The log
  // tail is snapshotted first (Buffer refbumps) because for_each_from holds
  // the log lock across the visit and a long resend stream must not run
  // under it — the actual transmission is paced in bursts below.
  std::vector<LogEntry> entries;
  log_.for_each_from(from, ldi[me],
                     [&](const LogEntry& e) { entries.push_back(e); });

  std::scoped_lock lock(mu_);
  if (auto stale = replays_.find(from);
      stale != replays_.end() && peer_epoch < stale->second.epoch) {
    // A delayed retransmit from an older incarnation must not rewind the
    // replay stream already serving the newer one — restarting it would
    // re-send from a stale watermark and re-certify with a RESPONSE the
    // dead incarnation can never consume.
    return;
  }
  // A retried ROLLBACK from the *same* incarnation (the peer never saw our
  // RESPONSE) restarts the stream; duplicates are dropped by the receiver's
  // FIFO gate.
  auto [it, inserted] = replays_.insert_or_assign(
      from, ReplaySession{peer_epoch, std::move(entries), 0});
  (void)inserted;
  if (pump_replay_locked(from, it->second)) replays_.erase(it);
  replay_pending_.store(!replays_.empty(), std::memory_order_release);

  // A ROLLBACK proves the peer's (new) incarnation is up and listening.  If
  // our own gather is still waiting on that peer — overlapping failures —
  // our earlier broadcast likely died with its old incarnation; answer with
  // our pending ROLLBACK now instead of waiting out the backoff interval.
  if (recovering_ && !response_seen_[static_cast<std::size_t>(from)]) {
    const auto [our_ldi, delivered_total] = channels_.deliver_snapshot();
    (void)delivered_total;
    send_path_.send_control(from, Kind::kRollback, params_.incarnation,
                            encode_rollback_body(our_ldi));
  }
}

bool RecoveryManager::pump_replay_locked(int from, ReplaySession& s) {
  std::size_t burst = 0;
  while (s.next < s.entries.size() && burst < params_.replay_burst) {
    const LogEntry& e = s.entries[s.next];
    metrics_.update([](Metrics& m) { ++m.resent_msgs; });
    transport_.send(app_packet(params_.rank, from, e.tag, e.send_index, e.meta,
                            e.payload));
    ++s.next;
    ++burst;
  }
  if (s.next < s.entries.size()) {
    // More to stream on later ticks.  Park fresh application sends to the
    // recovering rank meanwhile, so they neither interleave with the replay
    // under transport backpressure nor stall this (dispatch) thread.
    // Blocking mode never parks — its per-send ack wait would deadlock.
    if (params_.mode == SendMode::kNonBlocking) send_path_.pause_channel(from);
    return false;
  }
  // Drained.  The RESPONSE certifies that every logged message the peer
  // needs is already in flight; if we crash mid-replay the peer never sees
  // it, keeps retrying its ROLLBACK, and our next incarnation serves it.
  ResponseBody body;
  body.their_deliver_of_mine = channels_.last_deliver_of(from);
  body.determinants = tracker_.with(
      [&](const LoggingProtocol& proto) { return proto.determinants_for(from); });
  send_path_.send_control(from, Kind::kResponse, params_.incarnation,
                          body.encode());
  send_path_.resume_channel(from);
  return true;
}

void RecoveryManager::handle_response(int from, net::Packet&& p) {
  const ResponseBody body = ResponseBody::decode(p.payload);
  const auto resp_epoch = static_cast<std::uint32_t>(p.seq);
  channels_.observe_response(from, resp_epoch, body.their_deliver_of_mine);
  // A response from an older incarnation still carries valid determinants
  // (they are facts about past deliveries), just a stale watermark.
  tracker_.with([&](LoggingProtocol& proto) {
    proto.add_replay_determinants(body.determinants);
  });
  std::scoped_lock lock(mu_);
  if (recovering_ && !response_seen_[static_cast<std::size_t>(from)]) {
    response_seen_[static_cast<std::size_t>(from)] = 1;
    --responses_pending_;
    update_gather_done_locked();
  }
}

void RecoveryManager::handle_tel_query_reply(net::Packet&& p) {
  util::ByteReader r(p.payload);
  const auto dets = read_determinants(r);
  tracker_.with([&](LoggingProtocol& proto) {
    proto.add_replay_determinants(dets);
  });
  std::scoped_lock lock(mu_);
  logger_reply_pending_ = false;
  update_gather_done_locked();
}

void RecoveryManager::handle_checkpoint_advance(net::Packet&& p) {
  // Validate before acting: releasing log entries is irreversible, so a
  // malformed advance (truncated payload) must not free anything.
  util::ByteReader r(p.payload);
  if (r.remaining() < sizeof(std::uint32_t)) {
    metrics_.update([](Metrics& m) { ++m.bad_packets; });
    return;
  }
  const SeqNo peer_delivered_total = r.u32();
  const std::size_t released =
      log_.release_upto(p.src, static_cast<SeqNo>(p.seq));
  metrics_.update([&](Metrics& m) { m.log_released_entries += released; });
  tracker_.with([&](LoggingProtocol& proto) {
    proto.on_peer_checkpoint(p.src, peer_delivered_total);
  });
}

void RecoveryManager::periodic() {
  std::scoped_lock lock(mu_);
  for (auto it = replays_.begin(); it != replays_.end();) {
    if (pump_replay_locked(it->first, it->second)) {
      it = replays_.erase(it);
    } else {
      ++it;
    }
  }
  replay_pending_.store(!replays_.empty(), std::memory_order_release);
  if (recovering_ && (responses_pending_ > 0 || logger_reply_pending_) &&
      Clock::now() - last_rollback_bcast_ >= retry_interval_) {
    // Peers that were down when we broadcast (simultaneous failures) never
    // saw the ROLLBACK; retry until everyone answered, backing off so a
    // long outage does not turn the gather window into a broadcast storm.
    // No reset on progress: a peer that comes back announces its own
    // ROLLBACK, which handle_rollback answers immediately, so the growing
    // interval does not delay convergence.
    broadcast_rollback_locked();
    retry_interval_ =
        std::min<Clock::duration>(retry_interval_ * 2,
                                  params_.rollback_retry_cap);
  }
}

// ---------------------------------------------------------------------------
// checkpoint plane
// ---------------------------------------------------------------------------

void RecoveryManager::checkpoint(std::span<const std::uint8_t> app_state) {
  const std::int64_t t0 = util::now_ns();
  PendingCheckpoint pc;
  pc.image.ckpt_seq = ++ckpt_seq_;
  // Seal, don't serialize: one copy of the app bytes, short per-component
  // locks for the rest.  Everything heavier happens at commit time.
  pc.image.app = util::Buffer::copy_of(app_state);
  util::ByteWriter pw;
  tracker_.with([&](const LoggingProtocol& proto) { proto.save(pw); });
  pc.image.proto = util::take_buffer(pw);
  ChannelState::Snapshot snap = channels_.snapshot();
  pc.image.last_send = std::move(snap.last_send);
  pc.image.last_deliver = std::move(snap.last_deliver);
  pc.image.delivered_total = snap.delivered_total;
  pc.log = log_.seal();
  pc.advances = channels_.take_checkpoint_advances();
  metrics_.update([](Metrics& m) { ++m.checkpoints; });
  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kCheckpoint;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.deliver_seq = pc.image.delivered_total;
    params_.trace->record(std::move(ev));
  }

  bool queued = false;
  {
    std::scoped_lock lock(wq_mu_);
    if (writer_running_ && !writer_stop_) {
      wq_.push_back(std::move(pc));
      queued = true;
    }
  }
  if (queued) {
    wq_cv_.notify_all();
  } else {
    // No writer (blocking mode, WINDAR_CKPT=sync, or bare-engine tests):
    // the whole commit runs here, synchronously.
    commit_checkpoint(pc);
  }
  metrics_.update([&](Metrics& m) { m.ckpt_stall_ns += util::now_ns() - t0; });
}

bool RecoveryManager::commit_checkpoint(PendingCheckpoint& pc) {
  const std::int64_t c0 = util::now_ns();
  util::ByteWriter lw;
  SenderLog::serialize_sealed(pc.log, lw);
  pc.image.log = util::take_buffer(lw);
  const SeqNo delivered_total = pc.image.delivered_total;
  const bool durable = store_.save_sealed(params_.rank, std::move(pc.image));
  if (!durable) {
    // The pre-commit hook dropped the commit (simulated kill between seal
    // and fsync).  The image never became stable, so no CHECKPOINT_ADVANCE
    // may leave — peers must keep their log entries.
    metrics_.update(
        [&](Metrics& m) { m.ckpt_commit_ns += util::now_ns() - c0; });
    return false;
  }

  // Algorithm 1 lines 34-37: only now — after the store reported the image
  // durable — may peers release log entries we can never ask to replay.
  for (const auto& [peer, upto] : pc.advances) {
    if (peer == params_.rank) {
      // Self channel: release locally.
      const std::size_t released = log_.release_upto(peer, upto);
      metrics_.update([&](Metrics& m) { m.log_released_entries += released; });
      tracker_.with([&](LoggingProtocol& proto) {
        proto.on_peer_checkpoint(peer, delivered_total);
      });
    } else {
      util::ByteWriter w;
      w.u32(delivered_total);
      send_path_.send_control(peer, Kind::kCheckpointAdvance, upto, w.take());
    }
  }
  if (uses_event_logger_) {
    // The logger can discard determinants the checkpoint now covers.
    send_path_.send_control(params_.logger_endpoint, Kind::kCheckpointAdvance,
                            delivered_total, {});
  }
  metrics_.update([&](Metrics& m) {
    ++m.ckpt_committed;
    m.ckpt_commit_ns += util::now_ns() - c0;
  });
  return true;
}

void RecoveryManager::start_writer() {
  {
    std::scoped_lock lock(wq_mu_);
    if (writer_running_) return;
    writer_running_ = true;
    writer_stop_ = false;
  }
  if (exec::Scheduler* sched =
          exec::Scheduler::on_task() ? exec::Scheduler::current() : nullptr) {
    writer_task_ = sched->spawn([this] { writer_loop(); });
  } else {
    writer_thread_ = std::thread([this] { writer_loop(); });
  }
}

void RecoveryManager::stop_writer(bool drain) {
  {
    std::scoped_lock lock(wq_mu_);
    if (!writer_running_) return;
    if (!drain) {
      // Fault-injected teardown: sealed-but-uncommitted snapshots die with
      // the incarnation (they stay counted under Metrics::checkpoints but
      // never reach ckpt_committed).  Protocol-safe — no advance went out
      // for them, so peers kept every log entry a future incarnation could
      // need.
      wq_.clear();
    }
    writer_stop_ = true;
  }
  wq_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  if (writer_task_.valid()) writer_task_.join();
  writer_task_ = exec::TaskHandle{};
  writer_thread_ = std::thread{};
  std::scoped_lock lock(wq_mu_);
  writer_running_ = false;
  writer_stop_ = false;
}

void RecoveryManager::flush_checkpoints() {
  std::unique_lock lock(wq_mu_);
  wq_cv_.wait(lock, [&] {
    return (wq_.empty() && !committing_) || !writer_running_;
  });
}

void RecoveryManager::writer_loop() {
  std::unique_lock lock(wq_mu_);
  while (true) {
    // Bounded wait: a notify racing task-park costs one tick, never a hang.
    wq_cv_.wait_until(lock, Clock::now() + std::chrono::milliseconds(50),
                      [&] { return writer_stop_ || !wq_.empty(); });
    if (wq_.empty()) {
      if (writer_stop_) return;  // drain semantics: exit only when empty
      continue;
    }
    PendingCheckpoint pc = std::move(wq_.front());
    wq_.pop_front();
    committing_ = true;
    lock.unlock();
    commit_checkpoint(pc);
    lock.lock();
    committing_ = false;
    wq_cv_.notify_all();  // flush_checkpoints waiters
  }
}

std::string RecoveryManager::debug_string() const {
  std::scoped_lock lock(mu_);
  std::string out;
  if (recovering_) out += " RECOVERING";
  if (!gather_done_.load(std::memory_order_acquire)) out += " gather-pending";
  out += " resp_pending=" + std::to_string(responses_pending_);
  return out;
}

}  // namespace windar::ft
