#include "windar/channel_state.h"

#include <algorithm>

namespace windar::ft {

ChannelState::ChannelState(int n, int rank)
    : n_(n),
      rank_(rank),
      last_send_(static_cast<std::size_t>(n), 0),
      last_deliver_(static_cast<std::size_t>(n), 0),
      last_ckpt_deliver_(static_cast<std::size_t>(n), 0),
      rollback_last_send_(static_cast<std::size_t>(n), 0),
      peer_epoch_(static_cast<std::size_t>(n), 0),
      acked_(static_cast<std::size_t>(n)) {}

SeqNo ChannelState::next_send_index(int dst) {
  std::scoped_lock lock(mu_);
  return ++last_send_[static_cast<std::size_t>(dst)];
}

bool ChannelState::should_suppress(int dst, SeqNo idx) const {
  std::scoped_lock lock(mu_);
  return idx <= rollback_last_send_[static_cast<std::size_t>(dst)];
}

void ChannelState::record_ack(int from, SeqNo idx) {
  std::scoped_lock lock(mu_);
  acked_[static_cast<std::size_t>(from)].add(idx);
}

bool ChannelState::is_acked(int dst, SeqNo idx) const {
  std::scoped_lock lock(mu_);
  return acked_[static_cast<std::size_t>(dst)].contains(idx) ||
         rollback_last_send_[static_cast<std::size_t>(dst)] >= idx;
}

bool ChannelState::already_delivered(int src, SeqNo idx) const {
  std::scoped_lock lock(mu_);
  return idx <= last_deliver_[static_cast<std::size_t>(src)];
}

SeqNo ChannelState::advance_deliver(int src) {
  std::scoped_lock lock(mu_);
  ++last_deliver_[static_cast<std::size_t>(src)];
  return ++delivered_total_;
}

SeqNo ChannelState::delivered_total() const {
  std::scoped_lock lock(mu_);
  return delivered_total_;
}

SeqNo ChannelState::last_deliver_of(int peer) const {
  std::scoped_lock lock(mu_);
  return last_deliver_[static_cast<std::size_t>(peer)];
}

std::pair<std::vector<SeqNo>, SeqNo> ChannelState::deliver_snapshot() const {
  std::scoped_lock lock(mu_);
  return {last_deliver_, delivered_total_};
}

SeqNo ChannelState::deliver_snapshot_into(std::vector<SeqNo>& out) const {
  std::scoped_lock lock(mu_);
  out.assign(last_deliver_.begin(), last_deliver_.end());
  return delivered_total_;
}

void ChannelState::observe_rollback(int from, std::uint32_t epoch,
                                    SeqNo their_deliver_of_mine) {
  std::scoped_lock lock(mu_);
  auto& seen = peer_epoch_[static_cast<std::size_t>(from)];
  if (epoch >= seen) {
    seen = epoch;
    // The peer rolled back: any suppression watermark learned from an
    // earlier incarnation overstates what it has delivered.  Reset to the
    // restored value it just announced so rolling-forward re-sends reach it.
    rollback_last_send_[static_cast<std::size_t>(from)] =
        their_deliver_of_mine;
  }
}

void ChannelState::observe_response(int from, std::uint32_t epoch,
                                    SeqNo their_deliver_of_mine) {
  std::scoped_lock lock(mu_);
  auto& seen = peer_epoch_[static_cast<std::size_t>(from)];
  auto& watermark = rollback_last_send_[static_cast<std::size_t>(from)];
  if (epoch > seen) {
    // First contact with a newer incarnation of the peer.
    seen = epoch;
    watermark = their_deliver_of_mine;
  } else if (epoch == seen) {
    watermark = std::max(watermark, their_deliver_of_mine);
  }
  // An older incarnation's watermark is stale: ignore it.
}

void ChannelState::set_self_rollback_watermark() {
  std::scoped_lock lock(mu_);
  const auto me = static_cast<std::size_t>(rank_);
  rollback_last_send_[me] = last_deliver_[me];
}

ChannelState::Snapshot ChannelState::snapshot() const {
  std::scoped_lock lock(mu_);
  return Snapshot{last_send_, last_deliver_, delivered_total_};
}

void ChannelState::restore(std::vector<SeqNo> last_send,
                           std::vector<SeqNo> last_deliver,
                           SeqNo delivered_total) {
  std::scoped_lock lock(mu_);
  last_send_ = std::move(last_send);
  last_deliver_ = std::move(last_deliver);
  delivered_total_ = delivered_total;
  last_ckpt_deliver_ = last_deliver_;
}

std::vector<std::pair<int, SeqNo>> ChannelState::take_checkpoint_advances() {
  std::scoped_lock lock(mu_);
  std::vector<std::pair<int, SeqNo>> out;
  for (int k = 0; k < n_; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    if (last_deliver_[ks] <= last_ckpt_deliver_[ks]) continue;
    out.emplace_back(k, last_deliver_[ks]);
    last_ckpt_deliver_[ks] = last_deliver_[ks];
  }
  return out;
}

std::string ChannelState::debug_string() const {
  std::scoped_lock lock(mu_);
  std::string out = "last_deliver=";
  for (SeqNo v : last_deliver_) out += std::to_string(v) + ",";
  out += " last_send=";
  for (SeqNo v : last_send_) out += std::to_string(v) + ",";
  out += " rb_last_send=";
  for (SeqNo v : rollback_last_send_) out += std::to_string(v) + ",";
  return out;
}

}  // namespace windar::ft
