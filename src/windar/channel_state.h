// Per-pair channel bookkeeping (Algorithm 1's counter plane).
//
// One instance per rank tracks, for every peer:
//   * last_send_index / last_deliver_index   (per-pair, 1-based)
//   * the checkpoint watermark last_ckpt_deliver_index (what the last local
//     checkpoint already covers, for CHECKPOINT_ADVANCE notifications)
//   * the rolling-forward suppression watermark rollback_last_send_index
//     (Algorithm 1 line 10) together with the peer-incarnation epoch that
//     guards it, and
//   * the set of send indices each peer has acknowledged (blocking sends).
//
// This is the ground truth that duplicate filtering, FIFO delivery, send
// suppression and checkpoint log release all consult.  Internally
// synchronized by one mutex; a leaf in the engine's lock order (methods take
// no other locks).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "windar/seqset.h"
#include "windar/wire.h"

namespace windar::ft {

class ChannelState {
 public:
  ChannelState(int n, int rank);

  // ---- send side ----

  /// Allocates the next send index for the (me -> dst) pair.
  SeqNo next_send_index(int dst);

  /// Algorithm 1 line 10: true if `idx` is at or below the suppression
  /// watermark the destination announced (it already delivered the message
  /// before it failed, or confirmed it by RESPONSE).
  bool should_suppress(int dst, SeqNo idx) const;

  /// Records the destination's acceptance of send index `idx`.
  void record_ack(int from, SeqNo idx);

  /// True once a blocking send of (dst, idx) may complete: either the
  /// receiver acked it or its suppression watermark already covers it.
  bool is_acked(int dst, SeqNo idx) const;

  // ---- deliver side ----

  /// True if `idx` from `src` was already delivered (repetitive message).
  bool already_delivered(int src, SeqNo idx) const;

  /// Marks one delivery from `src`: advances the pair counter and the global
  /// delivery counter, returning the new receiver-global deliver_seq.
  SeqNo advance_deliver(int src);

  SeqNo delivered_total() const;
  SeqNo last_deliver_of(int peer) const;

  /// Consistent snapshot of (last_deliver vector, delivered_total) — one
  /// lock acquisition, used by the delivery scan and the ROLLBACK broadcast.
  std::pair<std::vector<SeqNo>, SeqNo> deliver_snapshot() const;

  /// Same snapshot assigned into a caller-owned vector (steady-state reuse
  /// keeps the per-recv delivery scan allocation-free).  Returns
  /// delivered_total.
  SeqNo deliver_snapshot_into(std::vector<SeqNo>& out) const;

  // ---- recovery choreography ----

  /// A ROLLBACK from incarnation `epoch` of `from` announced it restored to
  /// `their_deliver_of_mine` deliveries from us.  Overwrites the suppression
  /// watermark on `epoch >=` current: a re-broadcast from the same
  /// incarnation restates the same restored value, a newer incarnation
  /// invalidates anything learned from an older one.
  void observe_rollback(int from, std::uint32_t epoch,
                        SeqNo their_deliver_of_mine);

  /// A RESPONSE from incarnation `epoch` of `from` certified it delivered
  /// `their_deliver_of_mine` messages from us.  First contact with a newer
  /// incarnation replaces the watermark; the same incarnation only advances
  /// it (max); an older incarnation's value is stale and ignored.
  void observe_response(int from, std::uint32_t epoch,
                        SeqNo their_deliver_of_mine);

  /// Incarnation restore: suppress re-sends to ourselves that the restored
  /// state already covers (no RESPONSE will come from us).
  void set_self_rollback_watermark();

  // ---- checkpoint plane ----

  struct Snapshot {
    std::vector<SeqNo> last_send;
    std::vector<SeqNo> last_deliver;
    SeqNo delivered_total = 0;
  };
  Snapshot snapshot() const;

  /// Restores the counters from a checkpoint image; the checkpoint watermark
  /// starts at the restored deliver vector (the image covers exactly it).
  void restore(std::vector<SeqNo> last_send, std::vector<SeqNo> last_deliver,
               SeqNo delivered_total);

  /// Algorithm 1 lines 34-37: per peer whose deliveries advanced past the
  /// last checkpoint, returns (peer, new watermark) and moves the checkpoint
  /// watermark forward.
  std::vector<std::pair<int, SeqNo>> take_checkpoint_advances();

  std::string debug_string() const;

 private:
  const int n_;
  const int rank_;

  mutable std::mutex mu_;
  std::vector<SeqNo> last_send_;
  std::vector<SeqNo> last_deliver_;
  std::vector<SeqNo> last_ckpt_deliver_;
  std::vector<SeqNo> rollback_last_send_;
  std::vector<std::uint32_t> peer_epoch_;  // highest incarnation seen per peer
  std::vector<SeqSet> acked_;  // per-destination accepted send indices
  SeqNo delivered_total_ = 0;
};

}  // namespace windar::ft
