// Strict-PWD replay gate shared by the TAG, TEL and PES baselines.
//
// Under the piecewise-deterministic execution model, a recovering process
// must re-deliver logged messages in exactly the delivery order recorded in
// its determinants.  The gate holds the recorded order table (built from
// determinants gathered from survivors and/or the event logger) and admits a
// message only when it is the exact next delivery.
//
// Gap handling: with multiple simultaneous failures the gathered set can
// contain determinant k+1 but not k (e.g. the logger stored an out-of-order
// batch whose predecessor died in flight with both its carriers).  The gate
// honours only the *contiguous prefix* of the recorded history.  This is
// sound because determinant knowledge is prefix-closed at every single
// holder: piggybacks carry the owner's whole unstable (contiguous) suffix
// and the logger acknowledges stability contiguously, so any surviving
// process that causally depends on delivery k+1 necessarily also held
// determinant k.  A gap therefore proves that no survivor depends on any
// delivery at or beyond it, and those messages may be replayed in arrival
// order — the same argument that frees entirely unrecorded suffix events.
#pragma once

#include <map>
#include <string>
#include <unordered_map>

#include "windar/determinant.h"
#include "windar/wire.h"

namespace windar::ft {

class PwdReplayGate {
 public:
  /// Arms the gate on an incarnation that restored `delivered_total`.
  void begin(SeqNo delivered_total) {
    active_ = true;
    base_ = delivered_total;
    table_.clear();
    by_seq_.clear();
    limit_dirty_ = true;
  }

  /// Records a determinant about our own past delivery.
  void add(const Determinant& d, int my_rank) {
    if (!active_) return;
    if (static_cast<int>(d.receiver) != my_rank) return;
    if (d.deliver_seq <= base_) return;  // already covered by the checkpoint
    auto [it, inserted] =
        table_.emplace(pair_key(d.sender, d.send_index), d.deliver_seq);
    (void)it;
    if (inserted) {
      by_seq_.emplace(d.deliver_seq, pair_key(d.sender, d.send_index));
      limit_dirty_ = true;
    }
  }

  /// May message (src, send_index) be delivered as delivery number
  /// `delivered_total` + 1?
  bool deliverable(int src, SeqNo send_index, SeqNo delivered_total) const {
    if (!active_) return true;
    const SeqNo limit = contiguous_end();
    auto it = table_.find(pair_key(static_cast<SeqNo>(src), send_index));
    if (it != table_.end() && it->second <= limit) {
      return it->second == delivered_total + 1;
    }
    // Unrecorded (or beyond a determinant gap): free order, but only after
    // the whole recorded prefix has been replayed.
    return delivered_total >= limit;
  }

  /// Call after each delivery; disarms the gate once the recorded prefix is
  /// fully replayed.
  void on_deliver(SeqNo delivered_total) {
    if (active_ && delivered_total >= contiguous_end()) {
      active_ = false;
      table_.clear();
      by_seq_.clear();
    }
  }

  bool active() const { return active_; }
  std::size_t pending() const { return table_.size(); }

  /// Largest m such that every delivery in (base, m] has a determinant.
  SeqNo contiguous_end() const {
    if (!limit_dirty_) return limit_;
    SeqNo end = base_;
    for (const auto& [seq, key] : by_seq_) {
      (void)key;
      if (seq != end + 1) break;
      end = seq;
    }
    limit_ = end;
    limit_dirty_ = false;
    return limit_;
  }

  /// Diagnostic rendering of the recorded order table.
  std::string debug_string() const {
    if (!active_) return "gate=off";
    std::string out = "gate=on base=" + std::to_string(base_) +
                      " cend=" + std::to_string(contiguous_end()) + " [";
    for (const auto& [seq, key] : by_seq_) {
      out += " " + std::to_string(seq) + ":(" +
             std::to_string(key >> 32) + "#" +
             std::to_string(key & 0xFFFFFFFF) + ")";
      if (out.size() > 400) {
        out += " ...";
        break;
      }
    }
    return out + " ]";
  }

 private:
  static std::uint64_t pair_key(SeqNo src, SeqNo send_index) {
    return (static_cast<std::uint64_t>(src) << 32) | send_index;
  }

  bool active_ = false;
  SeqNo base_ = 0;
  std::unordered_map<std::uint64_t, SeqNo> table_;  // message -> deliver_seq
  std::map<SeqNo, std::uint64_t> by_seq_;           // sorted for gap scan
  mutable SeqNo limit_ = 0;
  mutable bool limit_dirty_ = true;
};

}  // namespace windar::ft
