#include "windar/event_logger.h"

#include "util/check.h"

namespace windar::ft {

EventLogger::EventLogger(net::Transport& transport, Params params)
    : transport_(transport),
      params_(params),
      store_(static_cast<std::size_t>(params.ranks)),
      seen_(static_cast<std::size_t>(params.ranks)) {
  WINDAR_CHECK_GE(params_.endpoint, 0) << "logger needs an endpoint";
  thread_ = std::thread([this] { serve(); });
}

EventLogger::~EventLogger() { stop(); }

void EventLogger::stop() {
  transport_.endpoint(params_.endpoint).inbox().poison();
  if (thread_.joinable()) thread_.join();
}

void EventLogger::serve() {
  auto& inbox = transport_.endpoint(params_.endpoint).inbox();
  while (auto p = inbox.pop()) {
    handle(std::move(*p));
  }
}

void EventLogger::handle(net::Packet&& p) {
  const int owner = p.src;
  WINDAR_CHECK(owner >= 0 && owner < params_.ranks) << "bad logger client";
  switch (static_cast<Kind>(p.kind)) {
    case Kind::kTelLog: {
      // Stable-storage commit: serialize the whole batch behind one delay.
      if (params_.storage_delay.count() > 0) {
        std::this_thread::sleep_for(params_.storage_delay);
      }
      util::ByteReader r(p.payload);
      const auto dets = read_determinants(r);
      SeqNo watermark;
      {
        std::scoped_lock lock(mu_);
        ++batches_;
        auto& per_owner = store_[static_cast<std::size_t>(owner)];
        auto& seen = seen_[static_cast<std::size_t>(owner)];
        for (const auto& d : dets) {
          WINDAR_CHECK_EQ(static_cast<int>(d.receiver), owner)
              << "logger: rank logging a foreign determinant";
          per_owner.emplace(d.deliver_seq, d);
          seen.add(d.deliver_seq);
        }
        watermark = seen.watermark();
      }
      transport_.send(
          control_packet(params_.endpoint, owner, Kind::kTelAck, watermark));
      break;
    }
    case Kind::kTelQuery: {
      // An incarnation asks for every stored determinant about its own
      // deliveries.
      std::vector<Determinant> dets;
      {
        std::scoped_lock lock(mu_);
        for (const auto& [seq, det] :
             store_[static_cast<std::size_t>(owner)]) {
          (void)seq;
          dets.push_back(det);
        }
      }
      util::ByteWriter w;
      write_determinants(w, dets);
      transport_.send(control_packet(params_.endpoint, owner,
                                  Kind::kTelQueryReply, 0, w.take()));
      break;
    }
    case Kind::kCheckpointAdvance: {
      // The owner checkpointed after `seq` deliveries; earlier determinants
      // can never be replayed again.
      std::scoped_lock lock(mu_);
      auto& per_owner = store_[static_cast<std::size_t>(owner)];
      while (!per_owner.empty() &&
             per_owner.begin()->first <= static_cast<SeqNo>(p.seq)) {
        per_owner.erase(per_owner.begin());
      }
      break;
    }
    default:
      WINDAR_CHECK(false) << "logger got unexpected kind " << p.kind;
  }
}

std::size_t EventLogger::stored_determinants() const {
  std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& per_owner : store_) total += per_owner.size();
  return total;
}

std::uint64_t EventLogger::batches() const {
  std::scoped_lock lock(mu_);
  return batches_;
}

}  // namespace windar::ft
