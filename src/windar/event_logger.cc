#include "windar/event_logger.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>

#include "util/check.h"

namespace windar::ft {

int resolve_logger_shards(int configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("WINDAR_LOGGER_SHARDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 1;
}

EventLogger::EventLogger(net::Transport& transport, Params params)
    : transport_(transport),
      params_(params),
      store_(static_cast<std::size_t>(params.ranks)),
      seen_(static_cast<std::size_t>(params.ranks)) {
  WINDAR_CHECK_GE(params_.endpoint, 0) << "logger needs an endpoint";
  WINDAR_CHECK_GT(params_.shards, 0) << "logger needs a shard count";
  WINDAR_CHECK(params_.shard_index >= 0 && params_.shard_index < params_.shards)
      << "bad logger shard index";
  commit_thread_ = std::thread([this] { commit_loop(); });
  serve_thread_ = std::thread([this] { serve(); });
}

EventLogger::~EventLogger() { stop(); }

void EventLogger::stop() {
  transport_.endpoint(params_.endpoint).inbox().poison();
  if (serve_thread_.joinable()) serve_thread_.join();
  {
    std::scoped_lock lock(pending_mu_);
    stopping_ = true;
  }
  pending_cv_.notify_all();
  if (commit_thread_.joinable()) commit_thread_.join();
}

void EventLogger::serve() {
  auto& inbox = transport_.endpoint(params_.endpoint).inbox();
  while (auto p = inbox.pop()) {
    handle(std::move(*p));
  }
}

void EventLogger::handle(net::Packet&& p) {
  const int owner = p.src;
  WINDAR_CHECK(owner >= 0 && owner < params_.ranks) << "bad logger client";
  WINDAR_CHECK_EQ(owner % params_.shards, params_.shard_index)
      << "rank " << owner << " routed to the wrong logger shard";
  switch (static_cast<Kind>(p.kind)) {
    case Kind::kTelLog: {
      // Queue for the commit thread; the ack follows the commit round.
      {
        std::scoped_lock lock(pending_mu_);
        pending_.push_back(std::move(p));
      }
      pending_cv_.notify_one();
      break;
    }
    case Kind::kTelQuery: {
      // An incarnation asks for every stored determinant about its own
      // deliveries.  A batch still queued (or in flight) was never acked —
      // its determinants were unstable, survivors hold copies — so replying
      // from the committed store alone is complete for recovery.
      std::vector<Determinant> dets;
      {
        std::scoped_lock lock(mu_);
        for (const auto& [seq, det] :
             store_[static_cast<std::size_t>(owner)]) {
          (void)seq;
          dets.push_back(det);
        }
      }
      util::ByteWriter w;
      write_determinants(w, dets);
      transport_.send(control_packet(params_.endpoint, owner,
                                  Kind::kTelQueryReply, 0, w.take()));
      break;
    }
    case Kind::kCheckpointAdvance: {
      // The owner checkpointed after `seq` deliveries; earlier determinants
      // can never be replayed again.  (A pre-checkpoint batch committed
      // after this advance is released by the owner's next advance.)
      std::scoped_lock lock(mu_);
      auto& per_owner = store_[static_cast<std::size_t>(owner)];
      while (!per_owner.empty() &&
             per_owner.begin()->first <= static_cast<SeqNo>(p.seq)) {
        per_owner.erase(per_owner.begin());
      }
      break;
    }
    default:
      WINDAR_CHECK(false) << "logger got unexpected kind " << p.kind;
  }
}

void EventLogger::commit_loop() {
  for (;;) {
    std::vector<net::Packet> batch;
    {
      std::unique_lock lock(pending_mu_);
      pending_cv_.wait(lock, [&] {
        return stopping_ || (!pending_.empty() && !paused_);
      });
      if (stopping_) return;
      batch.assign(std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.end()));
      pending_.clear();
    }
    // Stable-storage commit: one delay per round, however many kTelLog
    // packets the round drained — this is the sharded logger's second lever
    // against the seed's per-packet serialization.
    if (params_.storage_delay.count() > 0) {
      std::this_thread::sleep_for(params_.storage_delay);
    }
    commit_round(std::move(batch));
  }
}

void EventLogger::commit_round(std::vector<net::Packet> batch) {
  std::vector<int> owners;  // arrival order, deduped
  std::vector<SeqNo> watermarks;
  {
    std::scoped_lock lock(mu_);
    for (const auto& p : batch) {
      const int owner = p.src;
      ++batches_;
      auto& per_owner = store_[static_cast<std::size_t>(owner)];
      auto& seen = seen_[static_cast<std::size_t>(owner)];
      util::ByteReader r(p.payload);
      const auto dets = read_determinants(r);
      for (const auto& d : dets) {
        WINDAR_CHECK_EQ(static_cast<int>(d.receiver), owner)
            << "logger: rank logging a foreign determinant";
        per_owner.emplace(d.deliver_seq, d);
        seen.add(d.deliver_seq);
      }
      if (std::find(owners.begin(), owners.end(), owner) == owners.end()) {
        owners.push_back(owner);
      }
    }
    ++commit_rounds_;
    for (int o : owners) {
      watermarks.push_back(seen_[static_cast<std::size_t>(o)].watermark());
    }
    acks_sent_ += owners.size();
  }
  // One ack per affected rank: the contiguous watermark retires every
  // determinant this round (and any earlier round) covered for that owner.
  for (std::size_t i = 0; i < owners.size(); ++i) {
    transport_.send(control_packet(params_.endpoint, owners[i],
                                   Kind::kTelAck, watermarks[i]));
  }
}

std::size_t EventLogger::pending_for_test() const {
  std::scoped_lock lock(pending_mu_);
  return pending_.size();
}

void EventLogger::pause_commits() {
  std::scoped_lock lock(pending_mu_);
  paused_ = true;
}

void EventLogger::resume_commits() {
  {
    std::scoped_lock lock(pending_mu_);
    paused_ = false;
  }
  pending_cv_.notify_all();
}

std::size_t EventLogger::stored_determinants() const {
  std::scoped_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& per_owner : store_) total += per_owner.size();
  return total;
}

std::uint64_t EventLogger::batches() const {
  std::scoped_lock lock(mu_);
  return batches_;
}

std::uint64_t EventLogger::commit_rounds() const {
  std::scoped_lock lock(mu_);
  return commit_rounds_;
}

std::uint64_t EventLogger::acks_sent() const {
  std::scoped_lock lock(mu_);
  return acks_sent_;
}

}  // namespace windar::ft
