#include "windar/pes_protocol.h"

#include "util/check.h"

namespace windar::ft {

PesProtocol::PesProtocol(int rank, int n) : LoggingProtocol(rank, n) {}

Piggyback PesProtocol::on_send(int dst, SeqNo send_index) {
  (void)dst;
  (void)send_index;
  // Nothing travels: by the time anyone could causally depend on one of our
  // deliveries, its determinant is already stable.
  return Piggyback{{}, 0};
}

void PesProtocol::on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                             std::span<const std::uint8_t> meta) {
  (void)meta;
  pending_.emplace(deliver_seq,
                   Determinant{static_cast<SeqNo>(src),
                               static_cast<SeqNo>(rank_), send_index,
                               deliver_seq});
  replay_.on_deliver(deliver_seq);
}

bool PesProtocol::deliverable(const QueuedMsg& m,
                              SeqNo delivered_total) const {
  return replay_.deliverable(m.src, m.send_index, delivered_total);
}

std::vector<Determinant> PesProtocol::take_unlogged(std::size_t max_batch) {
  std::vector<Determinant> out;
  for (auto it = pending_.upper_bound(flushed_upto_);
       it != pending_.end() && out.size() < max_batch; ++it) {
    out.push_back(it->second);
  }
  if (!out.empty()) flushed_upto_ = out.back().deliver_seq;
  return out;
}

void PesProtocol::on_logger_ack(SeqNo watermark) {
  if (watermark > stable_wm_) {
    stable_wm_ = watermark;
    while (!pending_.empty() && pending_.begin()->first <= stable_wm_) {
      pending_.erase(pending_.begin());
    }
  }
}

void PesProtocol::begin_replay(SeqNo delivered_total) {
  replay_.begin(delivered_total);
}

void PesProtocol::add_replay_determinants(std::span<const Determinant> ds) {
  for (const auto& d : ds) replay_.add(d, rank_);
}

std::vector<Determinant> PesProtocol::determinants_for(int peer) const {
  // Pessimistic logging keeps no foreign determinants; survivors contribute
  // nothing and recovery relies on the logger (which, by construction,
  // holds every determinant the failed process could have exposed).
  (void)peer;
  return {};
}

void PesProtocol::on_peer_checkpoint(int peer, SeqNo peer_delivered_total) {
  (void)peer;
  (void)peer_delivered_total;
}

void PesProtocol::save(util::ByteWriter& w) const {
  w.u32(stable_wm_);
  w.u32(flushed_upto_);
  w.u32(static_cast<std::uint32_t>(pending_.size()));
  for (const auto& [seq, det] : pending_) {
    (void)seq;
    det.write(w);
  }
}

void PesProtocol::restore(util::ByteReader& r) {
  stable_wm_ = r.u32();
  flushed_upto_ = r.u32();
  pending_.clear();
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const Determinant d = Determinant::read(r);
    pending_.emplace(d.deliver_seq, d);
  }
}

}  // namespace windar::ft
