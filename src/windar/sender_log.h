// Sender-based message log (paper §III.C.1).
//
// Every application message is retained in its sender's volatile memory,
// together with the protocol metadata that was piggybacked on it, so that it
// can be retransmitted verbatim when the receiver rolls back ("every resent
// message should be piggybacked with the logged vector depend_interval").
//
// Entries are released when the receiver checkpoints past them
// (CHECKPOINT_ADVANCE, Algorithm 1 line 39), and the whole log is saved as
// part of the sender's own checkpoint (line 33) so an incarnation can still
// serve peers' rollbacks.
//
// Internally synchronized: the application thread appends while the receiver
// thread releases (CHECKPOINT_ADVANCE) or scans for resends (ROLLBACK).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "windar/wire.h"

namespace windar::ft {

// Entries alias the buffers of the original transmission (copy-once): the
// log does not duplicate payload bytes, it keeps the wire packet's buffers
// alive, and a resend puts the very same buffers back on the fabric.
struct LogEntry {
  SeqNo send_index = 0;  // per (me -> dst) pair
  std::int32_t tag = 0;
  util::Buffer meta;     // piggyback blob captured at original send
  util::Buffer payload;

  std::size_t bytes() const { return 16 + meta.size() + payload.size(); }
};

class SenderLog {
 public:
  explicit SenderLog(int n) : per_dst_(static_cast<std::size_t>(n)) {}

  /// Appends an entry for `dst`; send_index values per destination must be
  /// strictly increasing (they are per-pair counters).
  void append(int dst, LogEntry entry);

  /// Releases every entry for `dst` with send_index <= upto.  Returns how
  /// many entries were dropped.
  std::size_t release_upto(int dst, SeqNo upto);

  /// Visits entries for `dst` with send_index > from, ascending.  The log's
  /// lock is held across the visit, so `f` must not call back into the log;
  /// it may touch lock-order leaves (fabric, metrics).
  template <typename F>
  void for_each_from(int dst, SeqNo from, F&& f) const {
    std::scoped_lock lock(mu_);
    for (const LogEntry& e : per_dst_[static_cast<std::size_t>(dst)]) {
      if (e.send_index > from) f(e);
    }
  }

  std::size_t entries() const {
    std::scoped_lock lock(mu_);
    return entries_;
  }
  std::size_t bytes() const {
    std::scoped_lock lock(mu_);
    return bytes_;
  }
  std::size_t entries_for(int dst) const {
    std::scoped_lock lock(mu_);
    return per_dst_[static_cast<std::size_t>(dst)].size();
  }

  void save(util::ByteWriter& w) const;
  void restore(util::ByteReader& r);
  void clear();

 private:
  void clear_locked();

  mutable std::mutex mu_;
  std::vector<std::deque<LogEntry>> per_dst_;  // ascending send_index
  std::size_t entries_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace windar::ft
