// Sender-based message log (paper §III.C.1).
//
// Every application message is retained in its sender's volatile memory,
// together with the protocol metadata that was piggybacked on it, so that it
// can be retransmitted verbatim when the receiver rolls back ("every resent
// message should be piggybacked with the logged vector depend_interval").
//
// Entries are released when the receiver checkpoints past them
// (CHECKPOINT_ADVANCE, Algorithm 1 line 39), and the whole log is saved as
// part of the sender's own checkpoint (line 33) so an incarnation can still
// serve peers' rollbacks.
//
// Storage is chunked: each destination's entries live in 32-entry chunks
// drawn from a typed free list (util::Pool), so steady-state append traffic
// costs one pooled-chunk draw per 32 sends instead of a container
// reallocation per send, and a chunk fully drained by CHECKPOINT_ADVANCE
// goes back on the free list for the next burst.  append() returns the log's
// running totals so the send path books its metrics without re-taking the
// log lock.
//
// Internally synchronized: the application thread appends while the receiver
// thread releases (CHECKPOINT_ADVANCE) or scans for resends (ROLLBACK).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/pool.h"
#include "windar/wire.h"

namespace windar::ft {

// Entries alias the buffers of the original transmission (copy-once): the
// log does not duplicate payload bytes, it keeps the wire packet's buffers
// alive, and a resend puts the very same buffers back on the fabric.
struct LogEntry {
  SeqNo send_index = 0;  // per (me -> dst) pair
  std::int32_t tag = 0;
  util::Buffer meta;     // piggyback blob captured at original send
  util::Buffer payload;

  std::size_t bytes() const { return 16 + meta.size() + payload.size(); }
};

class SenderLog {
 public:
  /// Entries per pooled chunk — one chunk amortizes 32 appends.
  static constexpr std::size_t kChunkEntries = 32;

  /// Running totals append() hands back so callers (the send path's metrics
  /// bookkeeping) never re-take the log lock for entries()/bytes().
  struct Totals {
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  explicit SenderLog(int n) : per_dst_(static_cast<std::size_t>(n)) {}

  /// Appends an entry for `dst`; send_index values per destination must be
  /// strictly increasing (they are per-pair counters).  Returns the log's
  /// totals after the append.
  Totals append(int dst, LogEntry entry);

  /// Releases every entry for `dst` with send_index <= upto; fully drained
  /// chunks return to the free list.  Returns how many entries were dropped.
  std::size_t release_upto(int dst, SeqNo upto);

  /// Visits entries for `dst` with send_index > from, ascending.  The log's
  /// lock is held across the visit, so `f` must not call back into the log;
  /// it may touch lock-order leaves (fabric, metrics).
  template <typename F>
  void for_each_from(int dst, SeqNo from, F&& f) const {
    std::scoped_lock lock(mu_);
    for (const auto& chunk : per_dst_[static_cast<std::size_t>(dst)].chunks) {
      for (std::size_t i = chunk->begin; i < chunk->end; ++i) {
        const LogEntry& e = chunk->slots[i];
        if (e.send_index > from) f(e);
      }
    }
  }

  std::size_t entries() const {
    std::scoped_lock lock(mu_);
    return entries_;
  }
  std::size_t bytes() const {
    std::scoped_lock lock(mu_);
    return bytes_;
  }
  std::size_t entries_for(int dst) const {
    std::scoped_lock lock(mu_);
    return per_dst_[static_cast<std::size_t>(dst)].count;
  }

  // ---- chunk-pool observability (tests) ----
  std::size_t chunks_for(int dst) const {
    std::scoped_lock lock(mu_);
    return per_dst_[static_cast<std::size_t>(dst)].chunks.size();
  }
  std::uint64_t chunks_created() const { return chunk_pool_.created(); }
  std::uint64_t chunks_recycled() const { return chunk_pool_.recycled(); }
  std::size_t chunks_free() const { return chunk_pool_.free_count(); }

  void save(util::ByteWriter& w) const;
  void restore(util::ByteReader& r);
  void clear();

  /// Zero-copy snapshot for the asynchronous checkpoint seal: one entry
  /// vector per destination, each LogEntry aliasing the live entry's buffers
  /// (refcount bumps, no byte copies).  The background writer serializes the
  /// snapshot later with serialize_sealed, off the application thread and
  /// without holding the log lock.
  std::vector<std::vector<LogEntry>> seal() const;

  /// Serializes a sealed snapshot in exactly the wire form save() emits, so
  /// restore() reads either interchangeably.
  static void serialize_sealed(const std::vector<std::vector<LogEntry>>& sealed,
                               util::ByteWriter& w);

 private:
  // A chunk's live entries occupy [begin, end); release_upto advances begin
  // (resetting slots so buffer refs drop immediately), append advances the
  // back chunk's end.  Non-back chunks are always full (end == kChunkEntries).
  struct Chunk {
    std::array<LogEntry, kChunkEntries> slots;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  struct DstLog {
    std::deque<std::unique_ptr<Chunk>> chunks;  // ascending send_index
    std::size_t count = 0;                      // live entries across chunks
    SeqNo last_index = 0;  // strictly-increasing guard survives full drains
    bool has_last = false;
  };

  void append_locked(int dst, LogEntry entry);
  void recycle_locked(std::unique_ptr<Chunk> chunk);
  void clear_locked();

  mutable std::mutex mu_;
  std::vector<DstLog> per_dst_;
  mutable util::Pool<Chunk> chunk_pool_;
  std::size_t entries_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace windar::ft
