// Causal event tracing and offline invariant validation.
//
// When a TraceSink is attached to a job, every Process reports its send,
// delivery, checkpoint and recovery events.  The offline validator then
// replays the trace and checks the protocol-level obligations the paper's
// correctness argument (§III.D) rests on:
//
//   FIFO        within one incarnation, deliveries from a given sender use
//               strictly consecutive pair indices;
//   continuity  an incarnation's first delivery from each sender continues
//               exactly where the restored checkpoint left off (no lost or
//               repeated message across the failure);
//   gate        no delivery happened before the receiver had delivered the
//               number of messages the piggyback declared it depends on
//               (TDI's no-orphan condition, Algorithm 1 line 17);
//   order       the deliver_seq values per incarnation are 1..k contiguous
//               relative to the restored base.
//
// The sink is also the substrate for the paper's second motivating use
// case, parallel-program debugging: dump() renders a per-rank, causally
// annotated event log.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "windar/wire.h"

namespace windar::ft {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kSend,        // peer = destination, pair_index = send_index
    kDeliver,     // peer = source, pair_index = send_index
    kCheckpoint,  // deliver_seq = delivered_total at save time
    kRecover,     // deliver_seq = restored delivered_total
  };

  Kind kind = Kind::kSend;
  int rank = -1;
  std::uint32_t incarnation = 0;  // 0 = original process
  int peer = -1;
  SeqNo pair_index = 0;
  SeqNo deliver_seq = 0;   // receiver-global order (deliver) / totals (others)
  SeqNo depend_self = 0;   // piggybacked dependency on the receiver (deliver)
  std::vector<SeqNo> restored_deliver;  // kRecover: last_deliver vector
};

/// Thread-safe collector shared by all ranks of a job.
class TraceSink {
 public:
  void record(TraceEvent ev);

  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const;
  void clear();

  /// Human-readable per-rank event log (debugging aid).
  std::string dump() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Result of an offline validation pass: empty `violations` means the trace
/// satisfies every checked invariant.
struct TraceVerdict {
  std::vector<std::string> violations;
  std::uint64_t deliveries_checked = 0;
  std::uint64_t sends_checked = 0;
  bool ok() const { return violations.empty(); }
};

/// Validates FIFO / continuity / gate / order over a recorded trace.
/// `n` is the rank count of the traced job.
TraceVerdict validate_trace(const std::vector<TraceEvent>& events, int n);

}  // namespace windar::ft
