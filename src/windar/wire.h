// Wire-level constants and packet builders shared by the recovery layer.
//
// Every packet the recovery engine puts on the fabric — application messages
// (fresh sends and log-driven resends alike), acks, checkpoint advances, the
// ROLLBACK/RESPONSE choreography, and the TEL stability plane — is assembled
// here, so header layout lives in exactly one place.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/packet.h"
#include "util/buffer.h"
#include "util/bytes.h"

namespace windar::ft {

/// Per-pair sequence number (the paper's send_index / deliver_index values).
using SeqNo = std::uint32_t;

/// Message kinds carried in net::Packet::kind.
enum class Kind : std::uint16_t {
  kApp = 1,             // application message, meta = protocol piggyback
  kDeliverAck,          // receiver accepted message (blocking-mode sends)
  kCheckpointAdvance,   // log release notification (Algorithm 1 line 36)
  kRollback,            // incarnation broadcast (Algorithm 1 line 46)
  kResponse,            // survivor reply (Algorithm 1 line 48)
  kTelLog,              // rank -> event logger: determinant batch
  kTelAck,              // event logger -> rank: stability watermark
  kTelQuery,            // incarnation -> event logger: determinant request
  kTelQueryReply,       // event logger -> incarnation
};

inline std::uint16_t wire(Kind k) { return static_cast<std::uint16_t>(k); }

// ---- event-logger shard routing ----
// The TEL/PES stability plane is sharded by sender rank: a job with n app
// ranks and S logger shards puts shard i on fabric endpoint n + i, and every
// rank talks to exactly one shard for its whole lifetime (kTelLog, kTelQuery,
// kCheckpointAdvance all go to the same endpoint, so per-rank watermark
// semantics are unchanged by sharding).

/// Which shard commits `rank`'s determinants (shard = sender rank % shards).
inline int logger_shard_index(int rank, int shards) {
  return shards > 1 ? rank % shards : 0;
}

/// The fabric endpoint of `rank`'s logger shard in a job with `n` app ranks.
inline int logger_shard_endpoint(int n, int rank, int shards) {
  return n + logger_shard_index(rank, shards);
}

enum class ProtocolKind {
  kTdi,        // this paper: dependency-interval vectors
  kTag,        // baseline: antecedence graph (Manetho / LogOn style)
  kTel,        // baseline: event-logger causal logging (Bouteiller et al.)
  kTdiSparse,  // extension: TDI with sparse vector encoding — piggybacks
               // only non-zero entries, sub-O(n) on sparse communication
               // graphs (halo exchanges, rings)
  kPes,        // baseline: pessimistic synchronous event logging — zero
               // piggyback, a stable-storage round trip on every delivery
  kTdiDelta,   // extension: TDI with per-channel delta encoding — piggybacks
               // only the entries that changed since the last send on the
               // same (sender, receiver) channel, plus the receiver's gate
               // entry; O(churn) instead of O(n) per message
};

enum class SendMode {
  kBlocking,     // paper Fig. 4(a): app thread waits for receiver acceptance
  kNonBlocking,  // paper Fig. 4(b): buffered queues + sender/receiver threads
};

inline std::string to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kTdi: return "TDI";
    case ProtocolKind::kTag: return "TAG";
    case ProtocolKind::kTel: return "TEL";
    case ProtocolKind::kTdiSparse: return "TDI-S";
    case ProtocolKind::kPes: return "PES";
    case ProtocolKind::kTdiDelta: return "TDI-D";
  }
  return "?";
}

inline std::string to_string(SendMode m) {
  return m == SendMode::kBlocking ? "blocking" : "nonblocking";
}

// ---- packet builders ----

/// Application message: `seq` carries the per-pair send_index and `meta` the
/// protocol piggyback.  Both sections are shared immutable buffers: the
/// packet references the caller's bytes instead of copying them, so the
/// sender log, a resend, and the original transmission all alias one
/// payload.  Resends must use the same builder so a retransmitted message is
/// byte-identical to the original.
inline net::Packet app_packet(int src, int dst, std::int32_t tag,
                              SeqNo send_index, util::Buffer meta,
                              util::Buffer payload) {
  return net::make_packet(src, dst, wire(Kind::kApp), tag, send_index,
                          std::move(meta), std::move(payload));
}

/// Control message (everything that is not kApp): tag unused, `seq` and
/// `payload` are interpreted per Kind.
inline net::Packet control_packet(int src, int dst, Kind kind,
                                  std::uint64_t seq,
                                  util::Buffer payload = {}) {
  return net::make_packet(src, dst, wire(kind), 0, seq, {},
                          std::move(payload));
}

// ---- kRollback body ----
// A ROLLBACK broadcast carries the incarnation's restored last_deliver
// vector; survivor j reads element j to learn which of its messages must be
// resent (Algorithm 1 line 46).

inline util::Buffer encode_rollback_body(std::span<const SeqNo> last_deliver) {
  util::ByteWriter w;
  w.u32_vec(last_deliver);
  return util::take_buffer(w);
}

inline std::vector<SeqNo> decode_rollback_body(
    std::span<const std::uint8_t> payload) {
  util::ByteReader r(payload);
  return r.u32_vec();
}

}  // namespace windar::ft
