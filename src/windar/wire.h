// Wire-level constants shared by the recovery layer.
#pragma once

#include <cstdint>
#include <string>

namespace windar::ft {

/// Per-pair sequence number (the paper's send_index / deliver_index values).
using SeqNo = std::uint32_t;

/// Message kinds carried in net::Packet::kind.
enum class Kind : std::uint16_t {
  kApp = 1,             // application message, meta = protocol piggyback
  kDeliverAck,          // receiver accepted message (blocking-mode sends)
  kCheckpointAdvance,   // log release notification (Algorithm 1 line 36)
  kRollback,            // incarnation broadcast (Algorithm 1 line 46)
  kResponse,            // survivor reply (Algorithm 1 line 48)
  kTelLog,              // rank -> event logger: determinant batch
  kTelAck,              // event logger -> rank: stability watermark
  kTelQuery,            // incarnation -> event logger: determinant request
  kTelQueryReply,       // event logger -> incarnation
};

inline std::uint16_t wire(Kind k) { return static_cast<std::uint16_t>(k); }

enum class ProtocolKind {
  kTdi,        // this paper: dependency-interval vectors
  kTag,        // baseline: antecedence graph (Manetho / LogOn style)
  kTel,        // baseline: event-logger causal logging (Bouteiller et al.)
  kTdiSparse,  // extension: TDI with sparse vector encoding — piggybacks
               // only non-zero entries, sub-O(n) on sparse communication
               // graphs (halo exchanges, rings)
  kPes,        // baseline: pessimistic synchronous event logging — zero
               // piggyback, a stable-storage round trip on every delivery
};

enum class SendMode {
  kBlocking,     // paper Fig. 4(a): app thread waits for receiver acceptance
  kNonBlocking,  // paper Fig. 4(b): buffered queues + sender/receiver threads
};

inline std::string to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kTdi: return "TDI";
    case ProtocolKind::kTag: return "TAG";
    case ProtocolKind::kTel: return "TEL";
    case ProtocolKind::kTdiSparse: return "TDI-S";
    case ProtocolKind::kPes: return "PES";
  }
  return "?";
}

inline std::string to_string(SendMode m) {
  return m == SendMode::kBlocking ? "blocking" : "nonblocking";
}

}  // namespace windar::ft
