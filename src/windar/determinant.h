// Message delivery determinants.
//
// A determinant fixes the outcome of one non-deterministic delivery event:
// message (sender, send_index) was delivered by `receiver` as its
// `deliver_seq`-th delivery overall.  The PWD baselines (TAG, TEL) must track
// one determinant per delivery; the paper's point is that TDI replaces this
// whole structure with a single integer vector.
//
// The paper counts a determinant as 4 identifiers (§III.A); Fig. 6 overhead
// accounting uses kIdentsPerDeterminant.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "windar/wire.h"

namespace windar::ft {

inline constexpr std::uint32_t kIdentsPerDeterminant = 4;

struct Determinant {
  SeqNo sender = 0;
  SeqNo receiver = 0;
  SeqNo send_index = 0;   // per (sender -> receiver) pair index
  SeqNo deliver_seq = 0;  // receiver-global delivery order

  /// Unique message identity: (sender, receiver, send_index).  deliver_seq is
  /// a function of the identity in any single execution.
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(sender) << 48) |
           (static_cast<std::uint64_t>(receiver) << 32) | send_index;
  }

  bool operator==(const Determinant&) const = default;

  void write(util::ByteWriter& w) const {
    w.u32(sender);
    w.u32(receiver);
    w.u32(send_index);
    w.u32(deliver_seq);
  }

  static Determinant read(util::ByteReader& r) {
    Determinant d;
    d.sender = r.u32();
    d.receiver = r.u32();
    d.send_index = r.u32();
    d.deliver_seq = r.u32();
    return d;
  }
};

inline void write_determinants(util::ByteWriter& w,
                               const std::vector<Determinant>& ds) {
  w.u32(static_cast<std::uint32_t>(ds.size()));
  for (const auto& d : ds) d.write(w);
}

inline std::vector<Determinant> read_determinants(util::ByteReader& r) {
  const std::uint32_t n = r.u32();
  std::vector<Determinant> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(Determinant::read(r));
  return out;
}

}  // namespace windar::ft
