// Lifecycle signalling shared by the recovery-engine components.
//
// A rank's engine is torn down two ways: fault injection (the rank is
// "killed" and an incarnation will take over) or job teardown (another rank
// raised an application error and everyone unwinds).  Both are announced via
// lock-free flags so any component — the app-thread API surface, the receiver
// thread, a blocking-send ack wait — can observe them without taking a lock.
#pragma once

#include <atomic>

namespace windar::ft {

/// Thrown into the application thread when this rank is fault-injected.
struct Killed {};

/// Thrown when the job is being torn down abnormally (another rank raised an
/// application error); unwinds the rank function without triggering recovery.
struct JobAborted {};

/// Shared teardown flags.  `killed` is set by the fault injector via
/// Process::poison(); `aborted` is set when the transport is poisoned without
/// a kill (job teardown).  Killed wins when both are set.
struct LifeFlags {
  std::atomic<bool> killed{false};
  std::atomic<bool> aborted{false};

  bool dead() const {
    return killed.load(std::memory_order_acquire) ||
           aborted.load(std::memory_order_acquire);
  }

  void throw_if_dead() const {
    if (killed.load(std::memory_order_acquire)) throw Killed{};
    if (aborted.load(std::memory_order_acquire)) throw JobAborted{};
  }
};

}  // namespace windar::ft
