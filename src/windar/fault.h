// Fault plane of the recovery engine.
//
// Two halves live here:
//
// 1. Lifecycle signalling shared by the engine components.  A rank's engine
//    is torn down two ways: fault injection (the rank is "killed" and an
//    incarnation will take over) or job teardown (another rank raised an
//    application error and everyone unwinds).  Both are announced via
//    lock-free flags so any component — the app-thread API surface, the
//    receiver thread, a blocking-send ack wait — can observe them without
//    taking a lock.
//
// 2. The protocol-aware face of the chaos schedule (net/chaos.h): helpers
//    that phrase event-keyed faults in windar terms ("kill rank 1 on its
//    8th app delivery", "kill rank 2 mid-resend"), and the seeded random
//    plan generator behind the chaos soak drivers.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "net/chaos.h"
#include "util/rng.h"
#include "windar/wire.h"

namespace windar::ft {

/// Thrown into the application thread when this rank is fault-injected.
struct Killed {};

/// Thrown when the job is being torn down abnormally (another rank raised an
/// application error); unwinds the rank function without triggering recovery.
struct JobAborted {};

/// Shared teardown flags.  `killed` is set by the fault injector via
/// Process::poison(); `aborted` is set when the transport is poisoned without
/// a kill (job teardown).  Killed wins when both are set.
struct LifeFlags {
  std::atomic<bool> killed{false};
  std::atomic<bool> aborted{false};

  bool dead() const {
    return killed.load(std::memory_order_acquire) ||
           aborted.load(std::memory_order_acquire);
  }

  void throw_if_dead() const {
    if (killed.load(std::memory_order_acquire)) throw Killed{};
    if (aborted.load(std::memory_order_acquire)) throw JobAborted{};
  }
};

// ---------------------------------------------------------------------------
// Event-keyed fault schedule helpers (the windar face of net::ChaosEvent)
// ---------------------------------------------------------------------------

/// Kill `rank` when its endpoint receives its `nth` application packet —
/// the event-keyed replacement for "kill at t ms": it lands at the same
/// protocol-relative point however slow the host runs.  `revive_after`
/// (fabric-wide delivered packets) > 0 holds the incarnation's restart until
/// that much further traffic flowed.
inline net::ChaosEvent kill_on_delivery(int rank, std::uint64_t nth,
                                        std::uint64_t revive_after = 0) {
  net::ChaosEvent ev;
  ev.when = net::ChaosEvent::When::kDeliver;
  ev.action = net::ChaosEvent::Action::kKill;
  ev.endpoint = rank;
  ev.kind = wire(Kind::kApp);
  ev.nth = nth;
  ev.revive_after_packets = revive_after;
  return ev;
}

/// Kill `rank` as it puts its `nth` packet of `kind` on the wire.  The
/// interesting kinds:
///   kResponse          — crash mid-resend: the log-driven resends travel
///                        first, the RESPONSE certifying them fires the kill,
///                        so the recovering peer must fall back to this
///                        rank's next incarnation (DESIGN §4c).
///   kCheckpointAdvance — crash mid-checkpoint, after the image was saved
///                        but while log-release notifications fan out.
///   kRollback          — crash an incarnation inside its own gather window:
///                        the repeated-failure-of-the-same-rank case.
inline net::ChaosEvent kill_on_send(int rank, Kind kind,
                                    std::uint64_t nth = 1,
                                    std::uint64_t revive_after = 0) {
  net::ChaosEvent ev;
  ev.when = net::ChaosEvent::When::kSend;
  ev.action = net::ChaosEvent::Action::kKill;
  ev.endpoint = rank;
  ev.kind = wire(kind);
  ev.nth = nth;
  ev.revive_after_packets = revive_after;
  return ev;
}

/// Duplicate every (or the nth) packet of `kind` sent by `src` — the
/// duplicate gets an independent latency draw and frequently overtakes the
/// original, exercising the receiver-side duplicate filter in both orders.
inline net::ChaosEvent duplicate_on_send(int src, Kind kind,
                                         std::uint64_t nth = 1,
                                         bool repeat = false) {
  net::ChaosEvent ev;
  ev.when = net::ChaosEvent::When::kSend;
  ev.action = net::ChaosEvent::Action::kDuplicate;
  ev.endpoint = src;
  ev.kind = wire(kind);
  ev.nth = nth;
  ev.repeat = repeat;
  return ev;
}

/// Add `delay_us` of extra latency to packets of `kind` sent by `src`.
inline net::ChaosEvent delay_on_send(int src, Kind kind, std::uint64_t nth,
                                     std::uint64_t delay_us,
                                     bool repeat = false) {
  net::ChaosEvent ev;
  ev.when = net::ChaosEvent::When::kSend;
  ev.action = net::ChaosEvent::Action::kDelay;
  ev.endpoint = src;
  ev.kind = wire(kind);
  ev.nth = nth;
  ev.delay = std::chrono::microseconds(delay_us);
  ev.repeat = repeat;
  return ev;
}

// ---------------------------------------------------------------------------
// Seeded random chaos plans (the soak drivers' schedule grammar)
// ---------------------------------------------------------------------------

/// One randomized soak scenario: an app shape plus an event-keyed fault
/// schedule, both pure functions of the seed so any failure replays from
/// its printed seed alone.
struct ChaosPlan {
  std::uint64_t seed = 0;
  int n = 4;                 // ranks
  int iterations = 30;       // app iterations
  int checkpoint_every = 5;  // app checkpoint cadence
  std::vector<net::ChaosEvent> events;

  std::string describe() const {
    std::string out = "seed=" + std::to_string(seed) +
                      " n=" + std::to_string(n) +
                      " iters=" + std::to_string(iterations) +
                      " ckpt=" + std::to_string(checkpoint_every);
    for (const auto& ev : events) {
      out += " [";
      out += ev.action == net::ChaosEvent::Action::kKill        ? "kill"
             : ev.action == net::ChaosEvent::Action::kDuplicate ? "dup"
                                                                : "delay";
      out += ev.when == net::ChaosEvent::When::kDeliver ? " dlv" : " snd";
      out += " ep=" + std::to_string(ev.endpoint) +
             " kind=" + std::to_string(ev.kind) +
             " nth=" + std::to_string(ev.nth);
      if (ev.revive_after_packets) {
        out += " revive@+" + std::to_string(ev.revive_after_packets);
      }
      out += "]";
    }
    return out;
  }
};

/// Derives a randomized plan from `seed`: 3-5 ranks, 1-3 kills keyed to
/// delivery counts or control-plane sends (mid-resend / mid-checkpoint /
/// mid-recovery), optionally held-down incarnations, plus up to two
/// control-packet duplication/delay events.  Every scenario must converge
/// to the failure-free digest; the soak drivers assert exactly that.
inline ChaosPlan make_chaos_plan(std::uint64_t seed) {
  util::Rng rng(seed);
  ChaosPlan plan;
  plan.seed = seed;
  plan.n = 3 + static_cast<int>(rng.next_below(3));
  plan.iterations = 20 + static_cast<int>(rng.next_below(21));
  plan.checkpoint_every = 3 + static_cast<int>(rng.next_below(5));
  // Roughly one app packet arrives per rank per iteration (ring exchange),
  // so delivery counts in [2, iterations] spread kills across the run.
  const auto any_nth = [&] {
    return 2 + rng.next_below(static_cast<std::uint64_t>(plan.iterations));
  };
  const int kills = 1 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < kills; ++i) {
    const int rank = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(plan.n)));
    const std::uint64_t revive =
        rng.next_below(3) == 0 ? 20 + rng.next_below(60) : 0;
    switch (rng.next_below(5)) {
      case 0:  // crash a survivor mid-resend (fires only if a peer recovers)
        plan.events.push_back(kill_on_send(rank, Kind::kResponse, 1, revive));
        break;
      case 1:  // crash mid-checkpoint fan-out
        plan.events.push_back(kill_on_send(rank, Kind::kCheckpointAdvance,
                                           1 + rng.next_below(3), revive));
        break;
      case 2:  // crash an incarnation inside its own gather window
        plan.events.push_back(kill_on_send(rank, Kind::kRollback,
                                           1 + rng.next_below(2), revive));
        break;
      default:  // plain delivery-keyed kill
        plan.events.push_back(kill_on_delivery(rank, any_nth(), revive));
        break;
    }
  }
  const int shaping = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < shaping; ++i) {
    const int src = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(plan.n)));
    const Kind kind = rng.next_below(2) == 0 ? Kind::kRollback
                                             : Kind::kCheckpointAdvance;
    if (rng.next_below(2) == 0) {
      plan.events.push_back(duplicate_on_send(src, kind, 1, /*repeat=*/true));
    } else {
      plan.events.push_back(delay_on_send(src, kind, 1,
                                          100 + rng.next_below(2000),
                                          /*repeat=*/true));
    }
  }
  return plan;
}

}  // namespace windar::ft
