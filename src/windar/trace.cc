#include "windar/trace.h"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <unordered_map>

namespace windar::ft {

void TraceSink::record(TraceEvent ev) {
  std::scoped_lock lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::scoped_lock lock(mu_);
  return events_;
}

std::size_t TraceSink::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

void TraceSink::clear() {
  std::scoped_lock lock(mu_);
  events_.clear();
}

std::string TraceSink::dump() const {
  const auto events = snapshot();
  std::string out;
  char line[160];
  for (const auto& e : events) {
    const char* kind = nullptr;
    switch (e.kind) {
      case TraceEvent::Kind::kSend: kind = "send   "; break;
      case TraceEvent::Kind::kDeliver: kind = "deliver"; break;
      case TraceEvent::Kind::kCheckpoint: kind = "ckpt   "; break;
      case TraceEvent::Kind::kRecover: kind = "recover"; break;
    }
    std::snprintf(line, sizeof line,
                  "rank %2d.%u  %s  peer=%2d  idx=%u  seq=%u  dep=%u\n",
                  e.rank, e.incarnation, kind, e.peer, e.pair_index,
                  e.deliver_seq, e.depend_self);
    out += line;
  }
  return out;
}

namespace {

void violation(TraceVerdict& verdict, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  verdict.violations.emplace_back(buf);
}

}  // namespace

TraceVerdict validate_trace(const std::vector<TraceEvent>& events, int n) {
  TraceVerdict verdict;

  // Per (rank, incarnation) delivery state, seeded by the kRecover event's
  // restored vector (incarnation 0 starts from zero).
  struct IncState {
    bool seen = false;
    std::vector<SeqNo> next_from;  // next expected pair index per sender
    SeqNo delivered = 0;           // deliveries within this incarnation view
    SeqNo base = 0;                // restored delivered_total
  };
  std::map<std::pair<int, std::uint32_t>, IncState> incs;

  auto state_of = [&](int rank, std::uint32_t inc) -> IncState& {
    auto& st = incs[{rank, inc}];
    if (!st.seen) {
      st.seen = true;
      st.next_from.assign(static_cast<std::size_t>(n), 1);
    }
    return st;
  };

  for (const auto& e : events) {
    if (e.rank < 0 || e.rank >= n) {
      violation(verdict, "event with bad rank %d", e.rank);
      continue;
    }
    switch (e.kind) {
      case TraceEvent::Kind::kRecover: {
        IncState& st = state_of(e.rank, e.incarnation);
        if (e.restored_deliver.size() != static_cast<std::size_t>(n)) {
          violation(verdict, "rank %d inc %u: restored vector width %zu != %d",
                    e.rank, e.incarnation, e.restored_deliver.size(), n);
          break;
        }
        for (int s = 0; s < n; ++s) {
          st.next_from[static_cast<std::size_t>(s)] =
              e.restored_deliver[static_cast<std::size_t>(s)] + 1;
        }
        st.base = e.deliver_seq;
        st.delivered = e.deliver_seq;
        break;
      }
      case TraceEvent::Kind::kDeliver: {
        IncState& st = state_of(e.rank, e.incarnation);
        ++verdict.deliveries_checked;
        if (e.peer < 0 || e.peer >= n) {
          violation(verdict, "delivery with bad peer %d", e.peer);
          break;
        }
        // FIFO + continuity: exactly the next pair index from this sender.
        SeqNo& expect = st.next_from[static_cast<std::size_t>(e.peer)];
        if (e.pair_index != expect) {
          violation(verdict,
                    "rank %d inc %u: delivery from %d idx %u, expected %u "
                    "(FIFO/continuity)",
                    e.rank, e.incarnation, e.peer, e.pair_index, expect);
        }
        expect = e.pair_index + 1;
        // Order: deliver_seq contiguous.
        if (e.deliver_seq != st.delivered + 1) {
          violation(verdict,
                    "rank %d inc %u: deliver_seq %u, expected %u (order)",
                    e.rank, e.incarnation, e.deliver_seq, st.delivered + 1);
        }
        st.delivered = e.deliver_seq;
        // Gate (no orphan): dependency on self must already be satisfied.
        if (e.depend_self > e.deliver_seq - 1) {
          violation(verdict,
                    "rank %d inc %u: delivered idx %u from %d needing %u "
                    "prior deliveries but had %u (gate)",
                    e.rank, e.incarnation, e.pair_index, e.peer,
                    e.depend_self, e.deliver_seq - 1);
        }
        break;
      }
      case TraceEvent::Kind::kSend:
        ++verdict.sends_checked;
        if (e.peer < 0 || e.peer >= n) {
          violation(verdict, "send with bad peer %d", e.peer);
        }
        break;
      case TraceEvent::Kind::kCheckpoint:
        break;
    }
  }
  return verdict;
}

}  // namespace windar::ft
