// Shared codecs for determinant-bearing message bodies.
//
// Three wire formats used to be hand-rolled in multiple places and must stay
// byte-identical across them:
//
//   * the count-prefixed determinant block ("u32 count, then count
//     determinants") that TAG and TEL embed in their piggybacks and that
//     kTelLog / kTelQueryReply carry as their whole payload;
//   * the RESPONSE body (Algorithm 1 line 48): the survivor's deliver
//     watermark for the recovering rank followed by a determinant block.
//
// Lives apart from wire.h because determinant.h already includes wire.h.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "windar/determinant.h"

namespace windar::ft {

/// Streaming writer for a count-prefixed determinant block.  Protocols that
/// decide per-determinant whether to piggyback it (TAG's knowledge masks,
/// TEL's stability pruning) add entries one by one; `finish` emits the block
/// in the same framing as write_determinants.
class DeterminantBlockWriter {
 public:
  void add(const Determinant& d) {
    d.write(dets_);
    ++count_;
  }

  std::uint32_t count() const { return count_; }

  /// Appends "u32 count, determinants..." to `w`.
  void finish(util::ByteWriter& w) const {
    w.u32(count_);
    w.raw(dets_.view());
  }

 private:
  util::ByteWriter dets_;
  std::uint32_t count_ = 0;
};

/// Streaming reader counterpart: invokes `f` on each determinant of a
/// count-prefixed block without materialising a vector.
template <typename F>
void read_determinant_block(util::ByteReader& r, F&& f) {
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) f(Determinant::read(r));
}

/// RESPONSE payload: what one survivor tells a recovering peer.
struct ResponseBody {
  SeqNo their_deliver_of_mine = 0;  // survivor's last_deliver for the peer
  std::vector<Determinant> determinants;

  util::Buffer encode() const {
    util::ByteWriter w;
    w.u32(their_deliver_of_mine);
    write_determinants(w, determinants);
    return util::take_buffer(w);
  }

  static ResponseBody decode(std::span<const std::uint8_t> payload) {
    util::ByteReader r(payload);
    ResponseBody body;
    body.their_deliver_of_mine = r.u32();
    body.determinants = read_determinants(r);
    return body;
  }
};

}  // namespace windar::ft
