#include "windar/send_path.h"

#include <algorithm>

#include "util/check.h"
#include "util/clock.h"

namespace windar::ft {

SendPath::SendPath(net::Transport& transport, const ProcessParams& params,
                   LifeFlags& life, ChannelState& channels,
                   ProtocolHost& tracker, SenderLog& log,
                   SharedMetrics& metrics)
    : transport_(transport),
      params_(params),
      life_(life),
      channels_(channels),
      tracker_(tracker),
      log_(log),
      metrics_(metrics),
      paused_(static_cast<std::size_t>(params.n)),
      holdback_(static_cast<std::size_t>(params.n)) {}

SendPath::~SendPath() { stop(); }

void SendPath::start() {
  if (params_.mode != SendMode::kNonBlocking) return;
  if (exec::Scheduler* sched =
          exec::Scheduler::on_task() ? exec::Scheduler::current() : nullptr) {
    // Cooperative mode: the engine was constructed on a rank task, so its
    // helpers become sibling fibers on the same worker pool.
    recv_task_ = sched->spawn([this] { recv_loop(); });
    if (params_.sender_thread) {
      send_task_ = sched->spawn([this] { send_loop(); });
    }
    return;
  }
  recv_thread_ = std::thread([this] { recv_loop(); });
  if (params_.sender_thread) {
    send_thread_ = std::thread([this] { send_loop(); });
  }
}

void SendPath::stop() {
  closing_.store(true, std::memory_order_release);
  queue_a_.poison();
  // Wake a receiver thread blocked on the inbox.  By teardown time the rank
  // is either dead (inbox already poisoned) or the job is over.
  transport_.endpoint(params_.rank).inbox().poison();
  if (cb_.wake) cb_.wake();
  if (recv_thread_.joinable()) recv_thread_.join();
  if (send_thread_.joinable()) send_thread_.join();
  if (recv_task_.valid()) recv_task_.join();
  if (send_task_.valid()) send_task_.join();
  recv_task_ = exec::TaskHandle{};
  send_task_ = exec::TaskHandle{};
  // Held packets die with the incarnation, exactly like queue A's.
  std::scoped_lock lock(hb_mu_);
  for (auto& q : holdback_) q.clear();
}

void SendPath::poison() { queue_a_.poison(); }

void SendPath::pause_channel(int dst) {
  paused_[static_cast<std::size_t>(dst)].store(true, std::memory_order_release);
}

void SendPath::resume_channel(int dst) {
  paused_[static_cast<std::size_t>(dst)].store(false,
                                               std::memory_order_release);
  std::deque<net::Packet> flush;
  {
    std::scoped_lock lock(hb_mu_);
    flush.swap(holdback_[static_cast<std::size_t>(dst)]);
  }
  for (net::Packet& p : flush) {
    // The replay RESPONSE choreography may have raised the suppression
    // watermark past a held packet (the recovering rank already delivered
    // it before failing); re-check rather than re-send blindly.
    if (channels_.should_suppress(dst, static_cast<SeqNo>(p.seq))) {
      metrics_.update([](Metrics& m) { ++m.suppressed_sends; });
    } else {
      metrics_.update([](Metrics& m) { ++m.app_transmitted; });
      transmit(std::move(p));
    }
  }
}

bool SendPath::maybe_holdback(int dst, net::Packet& p) {
  if (params_.mode != SendMode::kNonBlocking) return false;
  if (!paused_[static_cast<std::size_t>(dst)].load(std::memory_order_acquire)) {
    return false;
  }
  std::scoped_lock lock(hb_mu_);
  // Re-check under the lock: resume_channel clears paused_ *before* taking
  // hb_mu_ to swap the queue, so a flag observed clear here means the flush
  // already ran (or will run on an empty queue) — pushing now would strand
  // the packet until some unrelated future pause/resume of this channel,
  // and the receiver's FIFO gate would park all later traffic behind the
  // missing seq.  Transmit directly instead; if the flush is still draining
  // on the other thread, the FIFO gate reorders the overtake harmlessly.
  if (!paused_[static_cast<std::size_t>(dst)].load(std::memory_order_acquire)) {
    return false;
  }
  auto& q = holdback_[static_cast<std::size_t>(dst)];
  if (q.size() >= params_.holdback_cap) {
    // Overflow valve: transmit directly.  The receiver's per-pair FIFO gate
    // parks out-of-order arrivals, so correctness is unaffected — the bound
    // only exists to cap survivor memory during a long replay.
    return false;
  }
  q.push_back(std::move(p));
  return true;
}

void SendPath::transmit(net::Packet p) {
  if (params_.mode == SendMode::kNonBlocking && params_.sender_thread) {
    if (!queue_a_.push(std::move(p))) {
      // Queue A only rejects when it was poisoned, i.e. this rank is being
      // torn down.  The send is lost with the incarnation — surface the
      // teardown to the app thread now (Killed unwinds into recovery,
      // JobAborted into job teardown) instead of letting it run on as if
      // the message had left.  On a clean stop() the app function has
      // already returned, so neither flag is set and there is no caller to
      // unwind.
      life_.throw_if_dead();
    }
  } else {
    transport_.send(std::move(p));
  }
}

void SendPath::send_control(int dst, Kind kind, std::uint64_t seq,
                            util::Buffer payload) {
  metrics_.update([](Metrics& m) { ++m.control_msgs; });
  transport_.send(control_packet(params_.rank, dst, kind, seq,
                              std::move(payload)));
}

void SendPath::send_app(int dst, int tag,
                        std::span<const std::uint8_t> payload) {
  const SeqNo idx = channels_.next_send_index(dst);

  const std::int64_t t0 = util::now_ns();
  Piggyback pb = tracker_.with(
      [&](LoggingProtocol& proto) { return proto.on_send(dst, idx); });
  const std::int64_t track_ns = util::now_ns() - t0;

  // Copy-once: the application's bytes are duplicated into exactly one
  // shared buffer, which the wire packet, the sender-log entry, and any
  // later log-driven resend all alias.
  util::Buffer body = util::Buffer::copy_of(payload);
  // buffer_allocs counts *fresh* heap sections only — a pooled block reused
  // off the free list books under packets_recycled instead, never both
  // (recycling used to double-count as an alloc).
  const std::uint64_t recycled_blocks =
      (body.recycled() ? 1u : 0u) + (pb.blob.recycled() ? 1u : 0u);
  const std::uint64_t send_allocs =
      (body.inline_storage() || body.recycled() ? 0u : 1u) +
      (pb.blob.inline_storage() || pb.blob.recycled() ? 0u : 1u);
  net::Packet p = app_packet(params_.rank, dst, tag, idx, pb.blob, body);

  LogEntry e;
  e.send_index = idx;
  e.tag = tag;
  e.meta = std::move(pb.blob);
  e.payload = std::move(body);
  // append() hands back the log's running totals, saving two more
  // lock-takes on the hot path.
  const SenderLog::Totals log_totals = log_.append(dst, std::move(e));

  metrics_.update([&](Metrics& m) {
    m.track_send_ns += track_ns;
    ++m.app_sent;
    m.piggyback_idents += pb.idents;
    m.piggyback_bytes += p.meta.size();
    m.piggyback_bytes_dense += pb.dense_bytes;
    m.piggyback_bytes_sent += p.meta.size();
    if (pb.resync) ++m.piggyback_resyncs;
    m.payload_bytes += payload.size();
    m.bytes_copied += payload.size();
    m.buffer_allocs += send_allocs;
    m.packets_recycled += recycled_blocks;
    m.log_peak_bytes =
        std::max<std::uint64_t>(m.log_peak_bytes, log_totals.bytes);
    m.log_peak_entries =
        std::max<std::uint64_t>(m.log_peak_entries, log_totals.entries);
  });

  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kSend;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.peer = dst;
    ev.pair_index = idx;
    params_.trace->record(std::move(ev));
  }

  // Algorithm 1 line 10: suppress re-sends the receiver confirmed.
  const bool suppressed = channels_.should_suppress(dst, idx);
  if (suppressed) {
    metrics_.update([](Metrics& m) { ++m.suppressed_sends; });
  } else if (maybe_holdback(dst, p)) {
    // Destination is replaying: parked until its watermark catches up
    // (counted as transmitted/suppressed when the holdback flushes).
    metrics_.update([](Metrics& m) { ++m.held_sends; });
  } else {
    metrics_.update([](Metrics& m) { ++m.app_transmitted; });
    transmit(std::move(p));
  }

  if (params_.mode == SendMode::kBlocking && !suppressed) {
    // Synchronous-send semantics: wait for the receiver to accept, serving
    // our own inbox meanwhile so recovery traffic keeps flowing.
    const std::int64_t b0 = util::now_ns();
    while (!channels_.is_acked(dst, idx)) {
      pump_once(Clock::now() + kTick);
    }
    const std::int64_t block_ns = util::now_ns() - b0;
    metrics_.update([&](Metrics& m) { m.send_block_ns += block_ns; });
  }
}

void SendPath::pump_once(Clock::time_point deadline) {
  life_.throw_if_dead();
  auto& inbox = transport_.endpoint(params_.rank).inbox();
  auto p = inbox.pop_until(deadline);
  if (!p && inbox.poisoned()) {
    // Either we were fault-injected (throw Killed) or the job is being torn
    // down around us (throw JobAborted).
    if (life_.killed.load(std::memory_order_acquire)) throw Killed{};
    throw JobAborted{};
  }
  if (p) cb_.dispatch(std::move(*p));  // same thread: no wakeup needed
  cb_.periodic();
}

void SendPath::recv_loop() {
  auto& inbox = transport_.endpoint(params_.rank).inbox();
  std::vector<net::Packet> batch;
  while (true) {
    // Idle-block unless timed work is pending (rollback retries during
    // recovery) — helper-thread wakeups are pure overhead otherwise.
    const Clock::duration tick = cb_.urgent() ? std::chrono::milliseconds(1)
                                              : std::chrono::milliseconds(100);
    auto p = inbox.pop_until(Clock::now() + tick);
    if (closing_.load(std::memory_order_acquire)) return;
    bool wake = false;
    if (p) {
      wake = cb_.dispatch(std::move(*p));
      // Under load the inbox rarely holds just one packet — drain whatever
      // else already arrived with one lock acquisition and dispatch the lot
      // before the periodic work, so a burst costs one wakeup, not N.
      batch.clear();
      if (inbox.try_pop_batch(&batch, 64) > 0) {
        for (net::Packet& q : batch) {
          wake = cb_.dispatch(std::move(q)) || wake;
        }
        batch.clear();
      }
    } else if (inbox.poisoned()) {
      cb_.transport_closed();
      return;
    }
    cb_.periodic();
    if (wake) cb_.wake();
  }
}

void SendPath::send_loop() {
  while (auto p = queue_a_.pop()) {
    transport_.send(std::move(*p));
  }
}

}  // namespace windar::ft
