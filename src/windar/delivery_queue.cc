#include "windar/delivery_queue.h"

#include "util/clock.h"

namespace windar::ft {

DeliveryQueue::DeliveryQueue(const ProcessParams& params,
                             ChannelState& channels, ProtocolHost& tracker,
                             const std::atomic<bool>& gate_open,
                             SharedMetrics& metrics)
    : params_(params),
      channels_(channels),
      tracker_(tracker),
      gate_open_(gate_open),
      metrics_(metrics),
      pessimistic_(tracker.pessimistic()),
      uses_event_logger_(tracker.uses_event_logger()) {}

void DeliveryQueue::admit(net::Packet&& p) {
  std::scoped_lock lock(mu_);
  const int src = p.src;
  const auto idx = static_cast<SeqNo>(p.seq);
  const bool ack_enabled = params_.mode == SendMode::kBlocking;

  if (channels_.already_delivered(src, idx)) {
    // Repetitive message (paper §III.C.3): already delivered — discard, but
    // re-ack so a blocked sender is released.
    metrics_.update([](Metrics& m) { ++m.dup_dropped; });
    if (ack_enabled) hooks_.send_ack(src, idx);
    return;
  }
  for (const QueuedMsg& q : queue_) {
    if (q.src == src && q.send_index == idx) {
      metrics_.update([](Metrics& m) { ++m.dup_dropped; });
      if (ack_enabled && q.eager_acked) {
        // The original's eager ack may have gone to a sender incarnation
        // that has since died; the retransmitting incarnation is blocked on
        // this ack, so repeat it (acks are idempotent).
        hooks_.send_ack(src, idx);
      }
      return;
    }
  }
  QueuedMsg m;
  m.src = src;
  m.tag = p.tag;
  m.send_index = idx;
  m.meta = std::move(p.meta);
  m.payload = std::move(p.payload);
  if (ack_enabled &&
      (m.payload.size() <= params_.eager_threshold || src == params_.rank)) {
    // Eager acceptance; self-channel messages are always eager (the sender
    // is the thread that will eventually consume them).
    hooks_.send_ack(src, idx);
    m.eager_acked = true;
  }
  queue_.push_back(std::move(m));
}

std::size_t DeliveryQueue::find_locked(int src, int tag) const {
  if (!gate_open_.load(std::memory_order_acquire)) {
    return kNpos;  // PWD protocols: determinants first
  }
  // Scratch-vector snapshot: find_locked runs on every recv attempt, so the
  // copy reuses deliver_scratch_'s capacity instead of allocating (safe:
  // callers hold mu_, which also serializes the scratch).
  const SeqNo delivered_total = channels_.deliver_snapshot_into(deliver_scratch_);
  const std::vector<SeqNo>& last_deliver = deliver_scratch_;
  return tracker_.with([&](const LoggingProtocol& proto) {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const QueuedMsg& m = queue_[i];
      if (src != mp::kAnySource && m.src != src) continue;
      if (tag != mp::kAnyTag && m.tag != tag) continue;
      // Per-pair FIFO (Algorithm 1 line 19).
      if (m.send_index !=
          last_deliver[static_cast<std::size_t>(m.src)] + 1) {
        continue;
      }
      if (!proto.deliverable(m, delivered_total)) continue;
      return i;
    }
    return kNpos;
  });
}

mp::Message DeliveryQueue::deliver_locked(std::size_t at, SeqNo& deliver_seq) {
  QueuedMsg m = std::move(queue_[at]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(at));

  deliver_seq = channels_.advance_deliver(m.src);

  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kDeliver;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.peer = m.src;
    ev.pair_index = m.send_index;
    ev.deliver_seq = deliver_seq;
    ev.depend_self = tracker_.with(
        [&](const LoggingProtocol& proto) { return proto.depend_on_receiver(m); });
    params_.trace->record(std::move(ev));
  }

  const std::int64_t t0 = util::now_ns();
  tracker_.with([&](LoggingProtocol& proto) {
    proto.on_deliver(m.src, m.send_index, deliver_seq, m.meta);
  });
  const std::int64_t dt = util::now_ns() - t0;
  metrics_.update([&](Metrics& mm) {
    mm.track_deliver_ns += dt;
    ++mm.app_delivered;
  });

  if (uses_event_logger_) {
    // Ship the fresh determinant to stable storage immediately ([5] logs
    // each event as it happens); batching folds bursts together.
    hooks_.flush_determinants();
  }

  if (params_.mode == SendMode::kBlocking && !m.eager_acked) {
    // Rendezvous completion: the sender is released only now that the
    // application has actually consumed the large payload.
    hooks_.send_ack(m.src, m.send_index);
  }

  mp::Message out;
  out.src = m.src;
  out.tag = m.tag;
  out.payload = std::move(m.payload);
  return out;
}

mp::Message DeliveryQueue::recv_wait(int src, int tag, const LifeFlags& life) {
  std::unique_lock lock(mu_);
  while (true) {
    const std::size_t at = find_locked(src, tag);
    if (at != kNpos) {
      SeqNo seq = 0;
      mp::Message msg = deliver_locked(at, seq);
      // Pessimistic logging: hold the delivery until its determinant is
      // confirmed stable (the synchronous-logging latency cost).
      while (pessimistic_ && !tracker_.with([&](const LoggingProtocol& p) {
               return p.stable_upto(seq);
             })) {
        cv_.wait_for(lock, kTick);
        life.throw_if_dead();
      }
      return msg;
    }
    cv_.wait_for(lock, kTick);
    life.throw_if_dead();
  }
}

std::optional<DeliveryQueue::Delivered> DeliveryQueue::try_deliver(int src,
                                                                   int tag) {
  std::scoped_lock lock(mu_);
  const std::size_t at = find_locked(src, tag);
  if (at == kNpos) return std::nullopt;
  Delivered d;
  d.msg = deliver_locked(at, d.deliver_seq);
  return d;
}

bool DeliveryQueue::has_deliverable(int src, int tag) const {
  std::scoped_lock lock(mu_);
  return find_locked(src, tag) != kNpos;
}

void DeliveryQueue::notify() { cv_.notify_all(); }

std::size_t DeliveryQueue::depth() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

std::string DeliveryQueue::debug_string() const {
  std::scoped_lock lock(mu_);
  std::string out = "queueB=" + std::to_string(queue_.size()) + " [";
  for (const QueuedMsg& m : queue_) {
    out += " (" + std::to_string(m.src) + "#" +
           std::to_string(m.send_index) + " t" + std::to_string(m.tag) + ")";
    if (out.size() > 300) {
      out += " ...";
      break;
    }
  }
  out += " ]";
  return out;
}

}  // namespace windar::ft
