#include "windar/runtime.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "exec/scheduler.h"
#include "net/fabric.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/wait.h"
#include "windar/event_logger.h"

namespace windar::ft {

namespace {

struct Slot {
  std::mutex mu;                      // guards proc + fn_done transitions
  std::shared_ptr<Process> proc;
  bool fn_done = false;
  // A kill that fired while this rank's Process was mid-construction (the
  // injector sees no proc to poison): recorded here and applied by the
  // supervisor the moment construction finishes, so event-keyed kills can
  // land inside a recovery window without being silently dropped.
  bool pending_kill = false;          // guarded by mu
  // Non-zero: hold the next restart until the fabric delivered this many
  // packets in total (ChaosEvent::revive_after_packets).
  std::atomic<std::uint64_t> revive_at_packets{0};
  Metrics acc;                        // merged across incarnations
  std::mutex acc_mu;
  std::atomic<const char*> phase{"init"};  // stall-watchdog breadcrumb
};

}  // namespace

JobResult run_job(const JobConfig& config, const FtRankFn& fn) {
  WINDAR_CHECK_GT(config.n, 0) << "need at least one rank";
  const bool uses_logger = config.protocol == ProtocolKind::kTel ||
                           config.protocol == ProtocolKind::kPes;
  const int logger_shards =
      uses_logger ? std::min(config.n, resolve_logger_shards(config.logger_shards))
                  : 0;
  const int endpoints = config.n + logger_shards;

  net::Fabric fabric(endpoints, config.latency, config.seed,
                     config.fabric_shards);
  CheckpointStore store(config.checkpoint_spill_dir,
                        config.ckpt_delta_anchor);
  std::vector<std::unique_ptr<EventLogger>> loggers;
  for (int s = 0; s < logger_shards; ++s) {
    EventLogger::Params lp;
    lp.endpoint = config.n + s;
    lp.ranks = config.n;
    lp.storage_delay = config.logger_storage_delay;
    lp.shards = logger_shards;
    lp.shard_index = s;
    loggers.push_back(std::make_unique<EventLogger>(fabric, lp));
  }

  std::vector<Slot> slots(static_cast<std::size_t>(config.n));
  std::atomic<int> done_count{0};
  std::atomic<bool> all_done{false};
  std::atomic<bool> job_failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto params_for = [&](int rank, std::uint32_t incarnation) {
    ProcessParams p;
    p.rank = rank;
    p.n = config.n;
    p.protocol = config.protocol;
    p.mode = config.mode;
    p.eager_threshold = config.eager_threshold;
    p.rollback_retry = config.rollback_retry;
    p.rollback_retry_cap = config.rollback_retry_cap;
    p.logger_endpoint =
        uses_logger ? logger_shard_endpoint(config.n, rank, logger_shards)
                    : -1;
    p.ckpt_async = resolve_ckpt_async(config.ckpt_async);
    p.replay_burst = config.replay_burst;
    p.holdback_cap = config.holdback_cap;
    p.trace = config.trace;
    p.incarnation = incarnation;
    return p;
  };

  // One kill path shared by the wall-clock injector and the event-keyed
  // chaos schedule.  Poison-before-endpoint-kill ordering is load-bearing
  // (see the injector comment below); a kill landing in the construction
  // window is deferred to the supervisor rather than dropped.
  auto kill_rank = [&](int rank, std::uint64_t revive_after_packets) {
    Slot& slot = slots[static_cast<std::size_t>(rank)];
    std::scoped_lock lock(slot.mu);
    if (slot.fn_done) return;  // finished ranks are never killed
    if (revive_after_packets > 0) {
      slot.revive_at_packets.store(
          fabric.stats().packets_delivered + revive_after_packets,
          std::memory_order_release);
    }
    if (!slot.proc) {
      slot.pending_kill = true;
      return;
    }
    // Mark the process dead BEFORE poisoning its endpoint: a thread that
    // wakes on the poisoned inbox must see killed_ == true, or it will
    // misread the fault as job teardown (JobAborted) and skip recovery.
    slot.proc->poison();
    fabric.kill(rank);
  };

  net::FaultSchedule chaos(config.chaos);
  if (!config.chaos.empty()) {
    for (const auto& ev : config.chaos) {
      if (ev.action == net::ChaosEvent::Action::kKill) {
        const int target = ev.target >= 0 ? ev.target : ev.endpoint;
        WINDAR_CHECK(target >= 0 && target < config.n)
            << "chaos kill target must be a rank, got " << target;
      }
    }
    chaos.set_kill_handler([&](const net::ChaosEvent& ev) {
      WINDAR_CHECK(ev.target >= 0 && ev.target < config.n)
          << "chaos kill fired for non-rank endpoint " << ev.target;
      kill_rank(ev.target, ev.revive_after_packets);
    });
    fabric.set_chaos(&chaos);
  }

  auto record_error = [&](std::exception_ptr e) {
    {
      std::scoped_lock lock(error_mu);
      if (!first_error) first_error = e;
    }
    job_failed.store(true, std::memory_order_release);
    all_done.store(true, std::memory_order_release);
    fabric.shutdown();  // unblocks every rank; they unwind via JobAborted
  };

  auto supervisor = [&](int rank) {
    Slot& slot = slots[static_cast<std::size_t>(rank)];
    bool recovering = false;
    std::uint32_t incarnation = 0;
    while (true) {
      std::shared_ptr<Process> proc;
      slot.phase = "ctor";
      try {
        proc = std::make_shared<Process>(
            fabric, store, params_for(rank, incarnation), recovering);
      } catch (...) {
        record_error(std::current_exception());
        return;
      }
      {
        std::scoped_lock lock(slot.mu);
        slot.proc = proc;
        if (slot.pending_kill) {
          // A chaos kill fired while we were constructing: apply it now.
          // The application function below will unwind with Killed on its
          // first engine call.
          slot.pending_kill = false;
          proc->poison();
          fabric.kill(rank);
        }
      }
      try {
        slot.phase = "fn";
        Ctx ctx(*proc);
        fn(ctx);
        // Flush the async checkpoint writer before counting this rank done:
        // its last CHECKPOINT_ADVANCE fan-out enters the fabric while every
        // peer Process is still alive (running or parked), and the commit
        // lands in this incarnation's metrics.  A chaos kill can still fire
        // here — the queued commits either complete (sends from a dead rank
        // drop harmlessly) and park() below throws the pending Killed.
        proc->drain_checkpoints();
        {
          // fn_done flips under slot.mu so the injector's check-and-kill is
          // atomic against completion: a finished rank is never killed.
          std::scoped_lock lock(slot.mu);
          slot.fn_done = true;
        }
        if (done_count.fetch_add(1) + 1 == config.n) {
          all_done.store(true, std::memory_order_release);
        }
        slot.phase = "parked";
        proc->park(all_done);
        {
          std::scoped_lock lock(slot.acc_mu);
          slot.acc.merge(proc->metrics());
        }
        {
          std::scoped_lock lock(slot.mu);
          slot.proc.reset();
        }
        return;
      } catch (const Killed&) {
        slot.phase = "killed-metrics";
        {
          std::scoped_lock lock(slot.acc_mu);
          slot.acc.merge(proc->metrics());
        }
        {
          std::scoped_lock lock(slot.mu);
          slot.proc.reset();
        }
        slot.phase = "killed-dtor";
        proc.reset();  // joins this incarnation's helper threads
        slot.phase = "killed-sleep";
        if (job_failed.load(std::memory_order_acquire)) return;
        const std::uint64_t revive_target =
            slot.revive_at_packets.exchange(0, std::memory_order_acq_rel);
        if (revive_target > 0) {
          // Event-keyed restart: stay down until the fabric delivered the
          // scheduled amount of further traffic.  If traffic quiesces (every
          // survivor is blocked on us) waiting longer is pointless — resume
          // once the delivered count stalls.
          std::uint64_t last = fabric.stats().packets_delivered;
          int stalled_polls = 0;
          while (last < revive_target && stalled_polls < 100 &&
                 !all_done.load(std::memory_order_acquire) &&
                 !job_failed.load(std::memory_order_acquire)) {
            util::coop_sleep_for(std::chrono::microseconds(200));
            const std::uint64_t now = fabric.stats().packets_delivered;
            stalled_polls = now == last ? stalled_polls + 1 : 0;
            last = now;
          }
        } else {
          // Failure detection + spare-node takeover latency.
          util::coop_sleep_for(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::duration<double, std::milli>(
                      config.restart_delay_ms)));
        }
        if (job_failed.load(std::memory_order_acquire)) return;
        recovering = true;
        ++incarnation;
        continue;
      } catch (const JobAborted&) {
        {
          std::scoped_lock lock(slot.mu);
          slot.proc.reset();
        }
        return;
      } catch (...) {
        record_error(std::current_exception());
        {
          std::scoped_lock lock(slot.mu);
          slot.proc.reset();
        }
        return;
      }
    }
  };

  const double t0 = util::now_ms();

  // Supervisors: OS threads in the seed model, cooperative tasks on a fixed
  // worker pool under kCoop.  The injector and watchdog below stay plain
  // threads in both modes — they only poke atomics, locks, and WaitSets,
  // all of which are fiber-wakeup-safe from foreign threads.
  const bool coop =
      exec::resolve_exec_model(config.exec_model) == exec::ExecModel::kCoop;
  std::optional<exec::Scheduler> sched;
  std::vector<std::thread> threads;
  if (coop) {
    sched.emplace(config.exec_workers);
    for (int r = 0; r < config.n; ++r) {
      sched->spawn([&supervisor, r] { supervisor(r); });
    }
  } else {
    threads.reserve(static_cast<std::size_t>(config.n));
    for (int r = 0; r < config.n; ++r) {
      threads.emplace_back(supervisor, r);
    }
  }

  // Stall watchdog (diagnostics): with WINDAR_STALL_DUMP_MS=<n> set, dump
  // every rank's recovery/queue state to stderr if the job runs longer than
  // n ms, then every n ms after.
  std::thread watchdog;
  std::atomic<bool> watchdog_stop{false};
  if (const char* env = std::getenv("WINDAR_STALL_DUMP_MS")) {
    const double period = std::atof(env);
    if (period > 0) {
      watchdog = std::thread([&, period] {
        double next = period;
        while (!watchdog_stop.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          if (util::now_ms() - t0 < next) continue;
          next += period;
          const net::FabricStats fs = fabric.stats();
          std::fprintf(stderr,
                       "[windar stall dump @%.0fms] fabric sent=%llu "
                       "delivered=%llu dropped_dead=%llu dropped_chaos=%llu\n",
                       util::now_ms() - t0,
                       static_cast<unsigned long long>(fs.packets_sent),
                       static_cast<unsigned long long>(fs.packets_delivered),
                       static_cast<unsigned long long>(fs.packets_dropped_dead),
                       static_cast<unsigned long long>(fs.packets_dropped_chaos));
          for (auto& slot : slots) {
            std::scoped_lock lock(slot.mu);
            if (slot.proc) {
              std::fprintf(stderr, "  %s\n", slot.proc->debug_state().c_str());
            } else {
              std::fprintf(stderr, "  (rank slot empty, fn_done=%d, phase=%s)\n",
                           slot.fn_done ? 1 : 0, slot.phase.load());
            }
          }
        }
      });
    }
  }

  // Fault injector: walks the (time-sorted) schedule on its own thread.
  std::thread injector([&] {
    auto events = config.faults;
    std::sort(events.begin(), events.end(),
              [](const FaultEvent& a, const FaultEvent& b) {
                return a.at_ms < b.at_ms;
              });
    for (const FaultEvent& ev : events) {
      WINDAR_CHECK(ev.rank >= 0 && ev.rank < config.n)
          << "fault event for bad rank " << ev.rank;
      while (util::now_ms() - t0 < ev.at_ms) {
        if (all_done.load(std::memory_order_acquire)) return;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      kill_rank(ev.rank, 0);
    }
  });

  if (coop) {
    sched->join_all();
  } else {
    for (auto& t : threads) t.join();
  }
  all_done.store(true, std::memory_order_release);
  injector.join();
  watchdog_stop.store(true, std::memory_order_release);
  if (watchdog.joinable()) watchdog.join();
  const double t1 = util::now_ms();

  JobResult result;
  result.wall_ms = t1 - t0;
  for (auto& logger : loggers) {
    logger->stop();  // stop first so in-flight commit rounds are counted
    result.logger_batches += logger->batches();
    result.logger_determinants += logger->stored_determinants();
    result.logger_commit_rounds += logger->commit_rounds();
    result.logger_acks += logger->acks_sent();
  }
  fabric.shutdown();

  if (first_error) std::rethrow_exception(first_error);

  result.per_rank.reserve(slots.size());
  for (auto& slot : slots) {
    std::scoped_lock lock(slot.acc_mu);
    result.per_rank.push_back(slot.acc);
    result.total.merge(slot.acc);
  }
  result.fabric = fabric.stats();
  result.checkpoints = store.stats();
  result.chaos_triggers_fired = chaos.fired();
  return result;
}

}  // namespace windar::ft
