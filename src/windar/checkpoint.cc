#include "windar/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace windar::ft {

util::Bytes CheckpointImage::serialize() const {
  util::ByteWriter w;
  w.u64(ckpt_seq);
  w.bytes(app);
  w.bytes(proto);
  w.u32_vec(last_send);
  w.u32_vec(last_deliver);
  w.u32(delivered_total);
  w.bytes(log);
  return w.take();
}

CheckpointImage CheckpointImage::deserialize(const util::Bytes& data) {
  util::ByteReader r(data);
  CheckpointImage img;
  img.ckpt_seq = r.u64();
  img.app = r.bytes();
  img.proto = r.bytes();
  img.last_send = r.u32_vec();
  img.last_deliver = r.u32_vec();
  img.delivered_total = r.u32();
  img.log = r.bytes();
  WINDAR_CHECK(r.exhausted()) << "trailing checkpoint bytes";
  return img;
}

CheckpointStore::CheckpointStore(std::string spill_dir)
    : spill_dir_(std::move(spill_dir)) {
  if (!spill_dir_.empty()) {
    std::filesystem::create_directories(spill_dir_);
  }
}

void CheckpointStore::save(int rank, const CheckpointImage& image) {
  util::Bytes data = image.serialize();
  std::scoped_lock lock(mu_);
  ++stats_.saves;
  stats_.bytes_written += data.size();
  if (!spill_dir_.empty()) {
    // Write-then-rename so a crash (in socket mode: a real SIGKILL) in the
    // middle of a checkpoint never leaves a truncated image where the last
    // good one was — stable storage must be stable.
    const std::string path = file_path(rank);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      WINDAR_CHECK(out.good()) << "cannot write checkpoint " << tmp;
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size()));
      WINDAR_CHECK(out.good()) << "short checkpoint write " << tmp;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    WINDAR_CHECK(!ec) << "checkpoint rename " << path << ": " << ec.message();
  }
  images_[rank] = std::move(data);
}

std::optional<CheckpointImage> CheckpointStore::load(int rank) const {
  std::scoped_lock lock(mu_);
  if (!spill_dir_.empty()) {
    // Disk is the source of truth when spilling: a respawned OS process has
    // an empty in-memory map but must still find the checkpoints its
    // predecessor (or any prior incarnation) saved.
    const std::string path = file_path(rank);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.good()) return std::nullopt;
    ++stats_.loads;
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    util::Bytes data(size);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(size));
    WINDAR_CHECK(in.good()) << "short checkpoint read " << path;
    return CheckpointImage::deserialize(data);
  }
  auto it = images_.find(rank);
  if (it == images_.end()) return std::nullopt;
  ++stats_.loads;
  return CheckpointImage::deserialize(it->second);
}

bool CheckpointStore::has(int rank) const {
  std::scoped_lock lock(mu_);
  if (images_.count(rank) > 0) return true;
  if (spill_dir_.empty()) return false;
  std::error_code ec;
  return std::filesystem::exists(file_path(rank), ec);
}

void CheckpointStore::clear() {
  std::scoped_lock lock(mu_);
  if (!spill_dir_.empty()) {
    for (const auto& [rank, data] : images_) {
      std::error_code ec;
      std::filesystem::remove(file_path(rank), ec);
    }
  }
  images_.clear();
}

CheckpointStoreStats CheckpointStore::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace windar::ft
