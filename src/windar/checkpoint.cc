#include "windar/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace windar::ft {

namespace {

// Blob header: magic + kind.  The magic doubles as a format version — bump
// it on any incompatible layout change so a stale spill dir fails loudly
// instead of deserializing garbage.
constexpr std::uint32_t kMagic = 0x31504B43;  // "CKP1"
constexpr std::uint8_t kKindFull = 0;
constexpr std::uint8_t kKindDelta = 1;

// Diff granularity.  Pages small enough that a sparse update to a large app
// state pays for roughly what it touched, large enough that the op stream
// stays a negligible fraction of the section.
constexpr std::size_t kDiffPage = 256;

// Delta section ops.
constexpr std::uint8_t kOpCopyBase = 0;
constexpr std::uint8_t kOpLiteral = 1;

/// True iff `blob` carries a plausible header for `kind` (magic + kind byte
/// + room for the seq field).  The codec proper CHECKs on bad headers —
/// correct for blobs the store itself wrote — but load() reads whatever the
/// spill directory holds, and a torn or foreign file must be skipped, not
/// panicked on.
bool header_plausible(std::span<const std::uint8_t> blob, std::uint8_t kind) {
  constexpr std::size_t kHeader = 4 + 1 + 8;  // magic + kind + ckpt_seq
  if (blob.size() < kHeader) return false;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) magic |= static_cast<std::uint32_t>(blob[i])
                                       << (8 * i);
  return magic == kMagic && blob[4] == kind;
}

void fnv_mix(std::uint64_t& h, std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
}

void fnv_mix_u64(std::uint64_t& h, std::uint64_t v) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  fnv_mix(h, le);
}

/// One piece of a diffed section: either a view into the base image
/// (unchanged pages — aliases the prior image's buffer, zero copy) or a view
/// into the new section (changed pages).
struct DeltaPiece {
  bool from_base = false;
  std::uint32_t base_off = 0;
  util::Buffer bytes;  // aliases base (from_base) or the new section
};

/// Page-wise diff of `next` against `base`.  Pieces cover `next` exactly, in
/// order; adjacent pieces of the same kind are merged.
std::vector<DeltaPiece> diff_section(const util::Buffer& base,
                                     const util::Buffer& next) {
  std::vector<DeltaPiece> pieces;
  const std::size_t overlap = std::min(base.size(), next.size());
  std::size_t off = 0;
  while (off < next.size()) {
    const std::size_t len = std::min(kDiffPage, next.size() - off);
    const bool same =
        off + len <= overlap &&
        std::memcmp(base.data() + off, next.data() + off, len) == 0;
    if (!pieces.empty() && pieces.back().from_base == same) {
      DeltaPiece& back = pieces.back();
      const std::size_t merged = back.bytes.size() + len;
      back.bytes = same ? base.view(back.base_off, merged)
                        : next.view(static_cast<std::size_t>(
                                        off + len - merged),
                                    merged);
    } else {
      DeltaPiece p;
      p.from_base = same;
      p.base_off = static_cast<std::uint32_t>(off);
      p.bytes = same ? base.view(off, len) : next.view(off, len);
      pieces.push_back(std::move(p));
    }
    off += len;
  }
  return pieces;
}

void write_delta_section(util::ByteWriter& w, const util::Buffer& base,
                         const util::Buffer& next) {
  const std::vector<DeltaPiece> pieces = diff_section(base, next);
  w.u32(static_cast<std::uint32_t>(next.size()));
  w.u32(static_cast<std::uint32_t>(pieces.size()));
  for (const DeltaPiece& p : pieces) {
    if (p.from_base) {
      w.u8(kOpCopyBase);
      w.u32(p.base_off);
      w.u32(static_cast<std::uint32_t>(p.bytes.size()));
    } else {
      w.u8(kOpLiteral);
      w.u32(static_cast<std::uint32_t>(p.bytes.size()));
      w.raw(p.bytes.span());
    }
  }
}

// Every reader below that load() reaches is fail-soft: it reports
// truncation or corruption through its return value instead of
// CHECK-aborting, because load() consumes whatever the spill directory
// holds and a torn or foreign file must be skipped, not panicked on.

util::Buffer read_delta_section(util::ByteReader& r, const util::Buffer& base,
                                bool* ok) {
  if (r.remaining() < 8) {
    *ok = false;
    return {};
  }
  const std::uint32_t new_len = r.u32();
  const std::uint32_t n_ops = r.u32();
  util::Bytes out;
  // reserve() is only a hint, so cap what an unvalidated length from the
  // file can make us pre-allocate; a lying new_len is caught by the exact
  // size check at the end.
  out.reserve(std::min<std::size_t>(new_len, base.size() + r.remaining()));
  for (std::uint32_t i = 0; i < n_ops; ++i) {
    if (r.remaining() < 1) {
      *ok = false;
      return {};
    }
    const std::uint8_t op = r.u8();
    if (op == kOpCopyBase) {
      if (r.remaining() < 8) {
        *ok = false;
        return {};
      }
      const std::uint32_t off = r.u32();
      const std::uint32_t len = r.u32();
      if (std::size_t{off} + len > base.size()) {
        *ok = false;
        return {};
      }
      out.insert(out.end(), base.data() + off, base.data() + off + len);
    } else if (op == kOpLiteral) {
      if (r.remaining() < 4) {
        *ok = false;
        return {};
      }
      const std::uint32_t len = r.u32();
      if (len > r.remaining()) {
        *ok = false;
        return {};
      }
      const auto lit = r.raw(len);
      out.insert(out.end(), lit.begin(), lit.end());
    } else {
      *ok = false;
      return {};
    }
  }
  if (out.size() != new_len) {
    *ok = false;
    return {};
  }
  return util::Buffer(std::move(out));
}

void write_counters(util::ByteWriter& w, const SealedCheckpoint& img) {
  w.u32_vec(img.last_send);
  w.u32_vec(img.last_deliver);
  w.u32(img.delivered_total);
}

bool try_u32_vec(util::ByteReader& r, std::vector<SeqNo>& out) {
  if (r.remaining() < 4) return false;
  const std::uint32_t n = r.u32();
  if (std::size_t{n} * sizeof(std::uint32_t) > r.remaining()) return false;
  out.clear();
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.u32());
  return true;
}

bool try_read_counters(util::ByteReader& r, SealedCheckpoint& img) {
  if (!try_u32_vec(r, img.last_send)) return false;
  if (!try_u32_vec(r, img.last_deliver)) return false;
  if (r.remaining() < 4) return false;
  img.delivered_total = r.u32();
  return true;
}

/// Length-prefixed section read; false on truncation.
bool try_buffer_section(util::ByteReader& r, util::Buffer& out) {
  if (r.remaining() < 4) return false;
  const std::uint32_t n = r.u32();
  if (n > r.remaining()) return false;
  out = util::Buffer::copy_of(r.raw(n));
  return true;
}

/// Full-file read; nullopt when the file does not exist.
std::optional<util::Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good()) return std::nullopt;
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  util::Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  WINDAR_CHECK(in.good()) << "short checkpoint read " << path;
  return data;
}

/// Durable write-then-rename: the tmp file is fsync'd before the rename and
/// the parent directory after it, so a host crash at any point surfaces
/// either the complete old image or the complete new one — never a torn or
/// unlinked-but-not-durable state.
void write_durable(const std::string& path,
                   std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  WINDAR_CHECK_GE(fd, 0) << "cannot write checkpoint " << tmp << ": "
                         << std::strerror(errno);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0 && errno == EINTR) continue;
    WINDAR_CHECK_GT(n, 0) << "short checkpoint write " << tmp << ": "
                          << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
  WINDAR_CHECK_EQ(::fsync(fd), 0) << "fsync " << tmp << ": "
                                  << std::strerror(errno);
  WINDAR_CHECK_EQ(::close(fd), 0) << "close " << tmp;
  WINDAR_CHECK_EQ(::rename(tmp.c_str(), path.c_str()), 0)
      << "checkpoint rename " << path << ": " << std::strerror(errno);
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    // Directory fsync makes the rename itself durable.  Failure here is not
    // fatal on filesystems that refuse it (the data blocks are synced), but
    // on any POSIX local fs it must succeed.
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Blob codec
// ---------------------------------------------------------------------------

namespace ckptwire {

std::uint64_t image_hash(const SealedCheckpoint& img) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  fnv_mix_u64(h, img.ckpt_seq);
  fnv_mix_u64(h, img.delivered_total);
  fnv_mix_u64(h, img.last_send.size());
  for (SeqNo v : img.last_send) fnv_mix_u64(h, v);
  fnv_mix_u64(h, img.last_deliver.size());
  for (SeqNo v : img.last_deliver) fnv_mix_u64(h, v);
  fnv_mix_u64(h, img.app.size());
  fnv_mix(h, img.app.span());
  fnv_mix_u64(h, img.proto.size());
  fnv_mix(h, img.proto.span());
  fnv_mix_u64(h, img.log.size());
  fnv_mix(h, img.log.span());
  return h;
}

util::Bytes encode_full(const SealedCheckpoint& img) {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u8(kKindFull);
  w.u64(img.ckpt_seq);
  w.bytes(img.app.span());
  w.bytes(img.proto.span());
  write_counters(w, img);
  w.bytes(img.log.span());
  return w.take();
}

util::Bytes encode_delta(const SealedCheckpoint& img,
                         const SealedCheckpoint& base) {
  util::ByteWriter w;
  w.u32(kMagic);
  w.u8(kKindDelta);
  w.u64(img.ckpt_seq);
  w.u64(base.ckpt_seq);
  w.u64(image_hash(base));
  write_counters(w, img);  // counters are tiny: always literal
  write_delta_section(w, base.app, img.app);
  write_delta_section(w, base.proto, img.proto);
  write_delta_section(w, base.log, img.log);
  return w.take();
}

bool is_delta(std::span<const std::uint8_t> blob) {
  util::ByteReader r(blob);
  WINDAR_CHECK_EQ(r.u32(), kMagic) << "bad checkpoint blob magic";
  return r.u8() == kKindDelta;
}

std::uint64_t blob_seq(std::span<const std::uint8_t> blob) {
  util::ByteReader r(blob);
  WINDAR_CHECK_EQ(r.u32(), kMagic) << "bad checkpoint blob magic";
  (void)r.u8();
  return r.u64();
}

std::optional<SealedCheckpoint> try_decode_full(
    std::span<const std::uint8_t> blob) {
  if (!header_plausible(blob, kKindFull)) return std::nullopt;
  util::ByteReader r(blob);
  (void)r.u32();  // magic, validated above
  (void)r.u8();   // kind, validated above
  SealedCheckpoint img;
  img.ckpt_seq = r.u64();
  if (!try_buffer_section(r, img.app)) return std::nullopt;
  if (!try_buffer_section(r, img.proto)) return std::nullopt;
  if (!try_read_counters(r, img)) return std::nullopt;
  if (!try_buffer_section(r, img.log)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;
  return img;
}

SealedCheckpoint decode_full(std::span<const std::uint8_t> blob) {
  auto img = try_decode_full(blob);
  WINDAR_CHECK(img.has_value()) << "bad or truncated full checkpoint blob";
  return std::move(*img);
}

std::optional<SealedCheckpoint> apply_delta(std::span<const std::uint8_t> blob,
                                            const SealedCheckpoint& base) {
  if (!header_plausible(blob, kKindDelta)) return std::nullopt;
  util::ByteReader r(blob);
  (void)r.u32();  // magic, validated above
  (void)r.u8();   // kind, validated above
  SealedCheckpoint img;
  img.ckpt_seq = r.u64();
  if (r.remaining() < 16) return std::nullopt;
  const std::uint64_t base_seq = r.u64();
  const std::uint64_t base_hash = r.u64();
  if (base_seq != base.ckpt_seq || base_hash != image_hash(base)) {
    return std::nullopt;  // stale lineage or foreign base
  }
  if (!try_read_counters(r, img)) return std::nullopt;
  bool ok = true;
  img.app = read_delta_section(r, base.app, &ok);
  if (ok) img.proto = read_delta_section(r, base.proto, &ok);
  if (ok) img.log = read_delta_section(r, base.log, &ok);
  if (!ok || !r.exhausted()) return std::nullopt;
  return img;
}

SealedCheckpoint to_sealed(const CheckpointImage& img) {
  SealedCheckpoint s;
  s.ckpt_seq = img.ckpt_seq;
  s.app = util::Buffer(util::Bytes(img.app));
  s.proto = util::Buffer(util::Bytes(img.proto));
  s.log = util::Buffer(util::Bytes(img.log));
  s.last_send = img.last_send;
  s.last_deliver = img.last_deliver;
  s.delivered_total = img.delivered_total;
  return s;
}

CheckpointImage to_image(const SealedCheckpoint& img) {
  CheckpointImage out;
  out.ckpt_seq = img.ckpt_seq;
  out.app = img.app.to_vector();
  out.proto = img.proto.to_vector();
  out.log = img.log.to_vector();
  out.last_send = img.last_send;
  out.last_deliver = img.last_deliver;
  out.delivered_total = img.delivered_total;
  return out;
}

}  // namespace ckptwire

util::Bytes CheckpointImage::serialize() const {
  return ckptwire::encode_full(ckptwire::to_sealed(*this));
}

CheckpointImage CheckpointImage::deserialize(
    std::span<const std::uint8_t> data) {
  return ckptwire::to_image(ckptwire::decode_full(data));
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

bool resolve_ckpt_async(int configured) {
  if (configured >= 0) return configured != 0;
  if (const char* env = std::getenv("WINDAR_CKPT")) {
    return std::strcmp(env, "sync") != 0;
  }
  return true;
}

std::size_t resolve_ckpt_anchor(std::size_t configured) {
  std::size_t k = configured;
  if (k == 0) {
    if (const char* env = std::getenv("WINDAR_CKPT_ANCHOR_K")) {
      k = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (k == 0) k = 8;
  return k;
}

CheckpointStore::CheckpointStore(std::string spill_dir,
                                 std::size_t anchor_every)
    : spill_dir_(std::move(spill_dir)),
      anchor_every_(resolve_ckpt_anchor(anchor_every)) {
  if (!spill_dir_.empty()) {
    std::filesystem::create_directories(spill_dir_);
  }
}

void CheckpointStore::set_pre_commit_hook_for_test(PreCommitHook hook) {
  pre_commit_ = std::move(hook);
}

void CheckpointStore::save(int rank, const CheckpointImage& image) {
  (void)save_sealed(rank, ckptwire::to_sealed(image));
}

bool CheckpointStore::save_sealed(int rank, SealedCheckpoint image) {
  // Phase 1 (locked, cheap): claim the per-rank in-flight slot and grab the
  // delta base.  Copying the base SealedCheckpoint is refcount bumps on its
  // section buffers plus two counter vectors — no byte copies.
  SealedCheckpoint base;
  bool use_delta = false;
  {
    std::unique_lock lock(mu_);
    RankState& st = ranks_[rank];
    cv_.wait(lock, [&] { return !st.in_flight; });
    st.in_flight = true;
    use_delta = anchor_every_ > 1 && st.committed &&
                image.ckpt_seq > st.image.ckpt_seq &&
                st.since_anchor + 1 < anchor_every_;
    if (use_delta) base = st.image;
  }

  // Phase 2 (unlocked): serialize and durably write.  Other ranks' saves and
  // every load/has/stats proceed concurrently.
  util::Bytes blob = use_delta ? ckptwire::encode_delta(image, base)
                               : ckptwire::encode_full(image);
  if (pre_commit_ && pre_commit_(rank) == CommitAction::kDrop) {
    // Simulated kill between seal and fsync: nothing was published, nothing
    // may be reported stable.
    std::scoped_lock lock(mu_);
    ++stats_.dropped_saves;
    ranks_[rank].in_flight = false;
    cv_.notify_all();
    return false;
  }
  if (!spill_dir_.empty()) {
    if (use_delta) {
      write_durable(delta_path(rank, image.ckpt_seq), blob);
    } else {
      write_durable(file_path(rank), blob);
      // The fresh anchor supersedes every delta file; remove them so the
      // directory does not accumulate one file per checkpoint forever.  A
      // crash before the removal is harmless: the loader ignores deltas
      // whose seq/base do not chain onto the new anchor.
      remove_rank_deltas(rank);
    }
  }

  // Phase 3 (locked): publish.
  {
    std::scoped_lock lock(mu_);
    RankState& st = ranks_[rank];
    ++stats_.saves;
    stats_.bytes_written += blob.size();
    if (use_delta) {
      ++stats_.delta_saves;
      stats_.delta_bytes += blob.size();
      ++st.since_anchor;
    } else {
      ++stats_.full_saves;
      st.since_anchor = 0;
    }
    st.hash = ckptwire::image_hash(image);
    st.image = std::move(image);
    st.committed = true;
    st.in_flight = false;
    cv_.notify_all();
  }
  return true;
}

std::optional<CheckpointImage> CheckpointStore::load(int rank) const {
  if (spill_dir_.empty()) {
    std::scoped_lock lock(mu_);
    auto it = ranks_.find(rank);
    if (it == ranks_.end() || !it->second.committed) return std::nullopt;
    ++stats_.loads;
    return ckptwire::to_image(it->second.image);
  }

  // Disk is the source of truth when spilling: a respawned OS process has an
  // empty in-memory map but must still find the checkpoints its predecessor
  // (or any prior incarnation) saved.  No store lock across the I/O.
  const auto anchor = read_file(file_path(rank));
  if (!anchor) return std::nullopt;
  // Fail-soft: a torn, truncated, or foreign anchor means "no checkpoint",
  // never an abort — the rank then restarts from scratch, which is safe.
  auto decoded = ckptwire::try_decode_full(*anchor);
  if (!decoded) return std::nullopt;
  SealedCheckpoint cur = std::move(*decoded);

  // Chain deltas d<seq> onto the anchor in ascending seq order; each must
  // name the reconstructed image as its base (seq + content hash), so stale
  // files from an older lineage are skipped, not applied.
  std::vector<std::pair<std::uint64_t, std::string>> deltas;
  const std::string prefix = "ckpt_rank" + std::to_string(rank) + ".d";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(spill_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() + 4 ||
        name.substr(name.size() - 4) != ".bin") {
      continue;
    }
    const std::string seq_str =
        name.substr(prefix.size(), name.size() - prefix.size() - 4);
    char* end = nullptr;
    const std::uint64_t seq = std::strtoull(seq_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;
    deltas.emplace_back(seq, entry.path().string());
  }
  std::sort(deltas.begin(), deltas.end());
  for (const auto& [seq, path] : deltas) {
    if (seq <= cur.ckpt_seq) continue;
    const auto blob = read_file(path);
    if (!blob) continue;
    // apply_delta is fail-soft end to end (header, counters, op stream):
    // anything torn or mis-chained is skipped, keeping the newest image
    // that did reconstruct.
    auto next = ckptwire::apply_delta(*blob, cur);
    if (!next) continue;  // broken chain: keep the newest applicable image
    cur = std::move(*next);
  }

  std::scoped_lock lock(mu_);
  ++stats_.loads;
  return ckptwire::to_image(cur);
}

bool CheckpointStore::has(int rank) const {
  {
    std::scoped_lock lock(mu_);
    auto it = ranks_.find(rank);
    if (it != ranks_.end() && it->second.committed) return true;
  }
  if (spill_dir_.empty()) return false;
  std::error_code ec;
  return std::filesystem::exists(file_path(rank), ec);
}

void CheckpointStore::remove_rank_deltas(int rank) const {
  const std::string prefix = "ckpt_rank" + std::to_string(rank) + ".d";
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(spill_dir_, ec)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) {
      std::error_code rec;
      std::filesystem::remove(entry.path(), rec);
    }
  }
}

void CheckpointStore::clear() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] {
    return std::none_of(ranks_.begin(), ranks_.end(),
                        [](const auto& kv) { return kv.second.in_flight; });
  });
  if (!spill_dir_.empty()) {
    // Enumerate the directory instead of the in-memory map: a respawned
    // process (empty map, disk-as-truth) must clear the files its
    // predecessors left, or a later job reusing the spill dir would wrongly
    // restore them.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(spill_dir_, ec)) {
      if (entry.path().filename().string().rfind("ckpt_rank", 0) == 0) {
        std::error_code rec;
        std::filesystem::remove(entry.path(), rec);
      }
    }
  }
  ranks_.clear();
}

CheckpointStoreStats CheckpointStore::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace windar::ft
