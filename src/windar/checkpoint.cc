#include "windar/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace windar::ft {

util::Bytes CheckpointImage::serialize() const {
  util::ByteWriter w;
  w.u64(ckpt_seq);
  w.bytes(app);
  w.bytes(proto);
  w.u32_vec(last_send);
  w.u32_vec(last_deliver);
  w.u32(delivered_total);
  w.bytes(log);
  return w.take();
}

CheckpointImage CheckpointImage::deserialize(const util::Bytes& data) {
  util::ByteReader r(data);
  CheckpointImage img;
  img.ckpt_seq = r.u64();
  img.app = r.bytes();
  img.proto = r.bytes();
  img.last_send = r.u32_vec();
  img.last_deliver = r.u32_vec();
  img.delivered_total = r.u32();
  img.log = r.bytes();
  WINDAR_CHECK(r.exhausted()) << "trailing checkpoint bytes";
  return img;
}

CheckpointStore::CheckpointStore(std::string spill_dir)
    : spill_dir_(std::move(spill_dir)) {
  if (!spill_dir_.empty()) {
    std::filesystem::create_directories(spill_dir_);
  }
}

void CheckpointStore::save(int rank, const CheckpointImage& image) {
  util::Bytes data = image.serialize();
  std::scoped_lock lock(mu_);
  ++stats_.saves;
  stats_.bytes_written += data.size();
  if (!spill_dir_.empty()) {
    const std::string path =
        spill_dir_ + "/ckpt_rank" + std::to_string(rank) + ".bin";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    WINDAR_CHECK(out.good()) << "cannot write checkpoint " << path;
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    WINDAR_CHECK(out.good()) << "short checkpoint write " << path;
  }
  images_[rank] = std::move(data);
}

std::optional<CheckpointImage> CheckpointStore::load(int rank) const {
  std::scoped_lock lock(mu_);
  auto it = images_.find(rank);
  if (it == images_.end()) return std::nullopt;
  ++stats_.loads;
  if (!spill_dir_.empty()) {
    // Exercise the on-disk round trip: read the file back, not the cache.
    const std::string path =
        spill_dir_ + "/ckpt_rank" + std::to_string(rank) + ".bin";
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    WINDAR_CHECK(in.good()) << "cannot read checkpoint " << path;
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    util::Bytes data(size);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(size));
    WINDAR_CHECK(in.good()) << "short checkpoint read " << path;
    return CheckpointImage::deserialize(data);
  }
  return CheckpointImage::deserialize(it->second);
}

bool CheckpointStore::has(int rank) const {
  std::scoped_lock lock(mu_);
  return images_.count(rank) > 0;
}

void CheckpointStore::clear() {
  std::scoped_lock lock(mu_);
  images_.clear();
}

CheckpointStoreStats CheckpointStore::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace windar::ft
