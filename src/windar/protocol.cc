#include "windar/protocol.h"

#include "util/check.h"
#include "windar/pes_protocol.h"
#include "windar/tag_protocol.h"
#include "windar/tdi_protocol.h"
#include "windar/tel_protocol.h"

namespace windar::ft {

std::unique_ptr<LoggingProtocol> make_protocol(ProtocolKind kind, int rank,
                                               int n) {
  switch (kind) {
    case ProtocolKind::kTdi:
      return std::make_unique<TdiProtocol>(rank, n);
    case ProtocolKind::kTdiSparse:
      return std::make_unique<TdiProtocol>(rank, n,
                                           TdiProtocol::Encoding::kSparse);
    case ProtocolKind::kTdiDelta:
      return std::make_unique<TdiProtocol>(rank, n,
                                           TdiProtocol::Encoding::kDelta);
    case ProtocolKind::kTag:
      return std::make_unique<TagProtocol>(rank, n);
    case ProtocolKind::kTel:
      return std::make_unique<TelProtocol>(rank, n);
    case ProtocolKind::kPes:
      return std::make_unique<PesProtocol>(rank, n);
  }
  WINDAR_CHECK(false) << "unknown protocol kind";
  return nullptr;
}

}  // namespace windar::ft
