#include "windar/sender_log.h"

#include <utility>

#include "util/check.h"

namespace windar::ft {

SenderLog::Totals SenderLog::append(int dst, LogEntry entry) {
  std::scoped_lock lock(mu_);
  append_locked(dst, std::move(entry));
  return Totals{entries_, bytes_};
}

void SenderLog::append_locked(int dst, LogEntry entry) {
  DstLog& d = per_dst_[static_cast<std::size_t>(dst)];
  WINDAR_CHECK(!d.has_last || d.last_index < entry.send_index)
      << "sender log indices must increase (dst=" << dst << ")";
  d.last_index = entry.send_index;
  d.has_last = true;
  if (d.chunks.empty() || d.chunks.back()->end == kChunkEntries) {
    d.chunks.push_back(chunk_pool_.acquire());
  }
  Chunk& c = *d.chunks.back();
  bytes_ += entry.bytes();
  ++entries_;
  ++d.count;
  c.slots[c.end++] = std::move(entry);
}

std::size_t SenderLog::release_upto(int dst, SeqNo upto) {
  std::scoped_lock lock(mu_);
  DstLog& d = per_dst_[static_cast<std::size_t>(dst)];
  std::size_t released = 0;
  while (!d.chunks.empty()) {
    Chunk& c = *d.chunks.front();
    while (c.begin < c.end && c.slots[c.begin].send_index <= upto) {
      bytes_ -= c.slots[c.begin].bytes();
      // Reset now, not at recycle time: the entry's Buffer refs (and any
      // pooled block behind them) must drop the moment the receiver's
      // checkpoint covers them, even while the chunk keeps serving newer
      // entries.
      c.slots[c.begin] = LogEntry{};
      ++c.begin;
      --entries_;
      --d.count;
      ++released;
    }
    if (c.begin < c.end) break;  // front chunk still holds newer entries
    if (c.end < kChunkEntries && d.chunks.size() == 1) {
      // The back chunk with spare slots: keep it so the next append lands
      // without a pool round-trip.
      break;
    }
    recycle_locked(std::move(d.chunks.front()));
    d.chunks.pop_front();
  }
  return released;
}

void SenderLog::recycle_locked(std::unique_ptr<Chunk> chunk) {
  // Live slots were reset as begin advanced; [end, kChunkEntries) was never
  // written this round.  Rewind the cursors and hand it back.
  chunk->begin = 0;
  chunk->end = 0;
  chunk_pool_.release(std::move(chunk));
}

void SenderLog::save(util::ByteWriter& w) const {
  std::scoped_lock lock(mu_);
  w.u32(static_cast<std::uint32_t>(per_dst_.size()));
  for (const DstLog& d : per_dst_) {
    w.u32(static_cast<std::uint32_t>(d.count));
    for (const auto& chunk : d.chunks) {
      for (std::size_t i = chunk->begin; i < chunk->end; ++i) {
        const LogEntry& e = chunk->slots[i];
        w.u32(e.send_index);
        w.i32(e.tag);
        w.bytes(e.meta.span());
        w.bytes(e.payload.span());
      }
    }
  }
}

std::vector<std::vector<LogEntry>> SenderLog::seal() const {
  std::scoped_lock lock(mu_);
  std::vector<std::vector<LogEntry>> out(per_dst_.size());
  for (std::size_t d = 0; d < per_dst_.size(); ++d) {
    const DstLog& dst = per_dst_[d];
    out[d].reserve(dst.count);
    for (const auto& chunk : dst.chunks) {
      for (std::size_t i = chunk->begin; i < chunk->end; ++i) {
        out[d].push_back(chunk->slots[i]);  // Buffer copies: refcount bumps
      }
    }
  }
  return out;
}

void SenderLog::serialize_sealed(
    const std::vector<std::vector<LogEntry>>& sealed, util::ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(sealed.size()));
  for (const auto& entries : sealed) {
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const LogEntry& e : entries) {
      w.u32(e.send_index);
      w.i32(e.tag);
      w.bytes(e.meta.span());
      w.bytes(e.payload.span());
    }
  }
}

void SenderLog::restore(util::ByteReader& r) {
  std::scoped_lock lock(mu_);
  clear_locked();
  const std::uint32_t n = r.u32();
  // The blob must describe the same job width this log was built for — a
  // truncated or foreign checkpoint silently shrinking per_dst_ would make
  // later append()/release_upto() index out of range.
  WINDAR_CHECK_EQ(n, per_dst_.size()) << "restored sender log width mismatch";
  for (std::uint32_t d = 0; d < n; ++d) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      LogEntry e;
      e.send_index = r.u32();
      e.tag = r.i32();
      e.meta = r.bytes();
      e.payload = r.bytes();
      append_locked(static_cast<int>(d), std::move(e));
    }
  }
}

void SenderLog::clear() {
  std::scoped_lock lock(mu_);
  clear_locked();
}

void SenderLog::clear_locked() {
  for (DstLog& d : per_dst_) {
    while (!d.chunks.empty()) {
      Chunk& c = *d.chunks.front();
      for (std::size_t i = c.begin; i < c.end; ++i) c.slots[i] = LogEntry{};
      recycle_locked(std::move(d.chunks.front()));
      d.chunks.pop_front();
    }
    d.count = 0;
    d.has_last = false;
    d.last_index = 0;
  }
  entries_ = 0;
  bytes_ = 0;
}

}  // namespace windar::ft
