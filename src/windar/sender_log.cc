#include "windar/sender_log.h"

#include "util/check.h"

namespace windar::ft {

void SenderLog::append(int dst, LogEntry entry) {
  std::scoped_lock lock(mu_);
  auto& q = per_dst_[static_cast<std::size_t>(dst)];
  WINDAR_CHECK(q.empty() || q.back().send_index < entry.send_index)
      << "sender log indices must increase (dst=" << dst << ")";
  bytes_ += entry.bytes();
  ++entries_;
  q.push_back(std::move(entry));
}

std::size_t SenderLog::release_upto(int dst, SeqNo upto) {
  std::scoped_lock lock(mu_);
  auto& q = per_dst_[static_cast<std::size_t>(dst)];
  std::size_t released = 0;
  while (!q.empty() && q.front().send_index <= upto) {
    bytes_ -= q.front().bytes();
    --entries_;
    ++released;
    q.pop_front();
  }
  return released;
}

void SenderLog::save(util::ByteWriter& w) const {
  std::scoped_lock lock(mu_);
  w.u32(static_cast<std::uint32_t>(per_dst_.size()));
  for (const auto& q : per_dst_) {
    w.u32(static_cast<std::uint32_t>(q.size()));
    for (const LogEntry& e : q) {
      w.u32(e.send_index);
      w.i32(e.tag);
      w.bytes(e.meta.span());
      w.bytes(e.payload.span());
    }
  }
}

void SenderLog::restore(util::ByteReader& r) {
  std::scoped_lock lock(mu_);
  clear_locked();
  const std::uint32_t n = r.u32();
  // The blob must describe the same job width this log was built for — a
  // truncated or foreign checkpoint silently shrinking per_dst_ would make
  // later append()/release_upto() index out of range.
  WINDAR_CHECK_EQ(n, per_dst_.size()) << "restored sender log width mismatch";
  for (std::uint32_t d = 0; d < n; ++d) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      LogEntry e;
      e.send_index = r.u32();
      e.tag = r.i32();
      e.meta = r.bytes();
      e.payload = r.bytes();
      bytes_ += e.bytes();
      ++entries_;
      per_dst_[d].push_back(std::move(e));
    }
  }
}

void SenderLog::clear() {
  std::scoped_lock lock(mu_);
  clear_locked();
}

void SenderLog::clear_locked() {
  for (auto& q : per_dst_) q.clear();
  entries_ = 0;
  bytes_ = 0;
}

}  // namespace windar::ft
