#include "windar/tel_protocol.h"

#include "util/check.h"
#include "windar/codec.h"

namespace windar::ft {

TelProtocol::TelProtocol(int rank, int n)
    : LoggingProtocol(rank, n),
      by_owner_(static_cast<std::size_t>(n)),
      stable_wm_(static_cast<std::size_t>(n), 0) {}

Piggyback TelProtocol::on_send(int dst, SeqNo send_index) {
  (void)dst;
  (void)send_index;
  util::ByteWriter w;
  // Stability watermark vector: lets the receiver drop its own copies of
  // determinants that have reached stable storage.
  w.u32_vec(stable_wm_);
  // Only this process's own unstable determinants travel: peers that
  // received them earlier keep their copies until stability, and the event
  // logger holds the stable prefix, so recovery can always reassemble the
  // full history (single-failure coverage, as in [5]).
  DeterminantBlockWriter block;
  for (const auto& [seq, det] : by_owner_[static_cast<std::size_t>(rank_)]) {
    (void)seq;
    block.add(det);
  }
  block.finish(w);
  return Piggyback{w.take(), static_cast<std::uint32_t>(n_) +
                                 block.count() * kIdentsPerDeterminant};
}

void TelProtocol::on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                             std::span<const std::uint8_t> meta) {
  (void)src;
  util::ByteReader r(meta);
  const std::vector<SeqNo> their_wm = r.u32_vec();
  WINDAR_CHECK_EQ(their_wm.size(), stable_wm_.size()) << "wm width mismatch";
  bool advanced = false;
  for (std::size_t k = 0; k < stable_wm_.size(); ++k) {
    if (their_wm[k] > stable_wm_[k]) {
      stable_wm_[k] = their_wm[k];
      advanced = true;
    }
  }
  read_determinant_block(r, [&](const Determinant& d) {
    if (d.deliver_seq <= stable_wm_[d.receiver]) return;  // already stable
    by_owner_[d.receiver].emplace(d.deliver_seq, d);
  });
  if (advanced) {
    for (int p = 0; p < n_; ++p) prune(p);
  }
  // Record our own delivery; it is unstable until the logger acks it.
  const Determinant mine{static_cast<SeqNo>(src), static_cast<SeqNo>(rank_),
                         send_index, deliver_seq};
  if (mine.deliver_seq > stable_wm_[static_cast<std::size_t>(rank_)]) {
    by_owner_[static_cast<std::size_t>(rank_)].emplace(deliver_seq, mine);
  }
  replay_.on_deliver(deliver_seq);
}

bool TelProtocol::deliverable(const QueuedMsg& m,
                              SeqNo delivered_total) const {
  return replay_.deliverable(m.src, m.send_index, delivered_total);
}

std::vector<Determinant> TelProtocol::take_unlogged(std::size_t max_batch) {
  std::vector<Determinant> out;
  const auto& own = by_owner_[static_cast<std::size_t>(rank_)];
  for (auto it = own.upper_bound(flushed_upto_);
       it != own.end() && out.size() < max_batch; ++it) {
    out.push_back(it->second);
  }
  if (!out.empty()) flushed_upto_ = out.back().deliver_seq;
  return out;
}

void TelProtocol::on_logger_ack(SeqNo watermark) {
  auto& wm = stable_wm_[static_cast<std::size_t>(rank_)];
  if (watermark > wm) {
    wm = watermark;
    prune(rank_);
  }
}

void TelProtocol::prune(int owner) {
  auto& per_owner = by_owner_[static_cast<std::size_t>(owner)];
  const SeqNo wm = stable_wm_[static_cast<std::size_t>(owner)];
  while (!per_owner.empty() && per_owner.begin()->first <= wm) {
    per_owner.erase(per_owner.begin());
  }
}

void TelProtocol::begin_replay(SeqNo delivered_total) {
  replay_.begin(delivered_total);
}

void TelProtocol::add_replay_determinants(std::span<const Determinant> ds) {
  for (const auto& d : ds) replay_.add(d, rank_);
}

std::vector<Determinant> TelProtocol::determinants_for(int peer) const {
  std::vector<Determinant> out;
  for (const auto& [seq, det] : by_owner_[static_cast<std::size_t>(peer)]) {
    (void)seq;
    out.push_back(det);
  }
  return out;
}

void TelProtocol::on_peer_checkpoint(int peer, SeqNo peer_delivered_total) {
  auto& per_owner = by_owner_[static_cast<std::size_t>(peer)];
  while (!per_owner.empty() &&
         per_owner.begin()->first <= peer_delivered_total) {
    per_owner.erase(per_owner.begin());
  }
}

std::size_t TelProtocol::tracked_entries() const {
  std::size_t total = 0;
  for (const auto& per_owner : by_owner_) total += per_owner.size();
  return total;
}

void TelProtocol::save(util::ByteWriter& w) const {
  w.u32_vec(stable_wm_);
  w.u32(flushed_upto_);
  for (const auto& per_owner : by_owner_) {
    w.u32(static_cast<std::uint32_t>(per_owner.size()));
    for (const auto& [seq, det] : per_owner) {
      (void)seq;
      det.write(w);
    }
  }
}

void TelProtocol::restore(util::ByteReader& r) {
  stable_wm_ = r.u32_vec();
  WINDAR_CHECK_EQ(stable_wm_.size(), static_cast<std::size_t>(n_))
      << "restored wm width mismatch";
  flushed_upto_ = r.u32();
  for (auto& per_owner : by_owner_) {
    per_owner.clear();
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const Determinant d = Determinant::read(r);
      per_owner.emplace(d.deliver_seq, d);
    }
  }
}

}  // namespace windar::ft
