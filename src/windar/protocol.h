// Causal message logging protocol interface.
//
// A LoggingProtocol owns the *dependency tracking* half of rollback
// recovery: what metadata to piggyback on each outgoing message, how to merge
// metadata on delivery, and when a queued message is allowed to be delivered
// during rolling forward.  Everything else — per-pair counters, sender log,
// duplicate suppression, ROLLBACK/RESPONSE choreography — is protocol-
// independent and lives in windar::ft::Process.
//
// Three implementations:
//   TdiProtocol  — the paper's contribution (dependency-interval vector)
//   TagProtocol  — antecedence-graph baseline (strict PWD replay)
//   TelProtocol  — event-logger baseline (strict PWD replay, async stability)
//
// Protocols need no internal synchronization: all stateful methods are
// invoked through ProtocolHost::with, which holds the host's lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "windar/determinant.h"
#include "windar/wire.h"

namespace windar::ft {

/// Metadata blob attached to one outgoing message, plus its size in
/// "identifiers" (integers) for the paper's Fig. 6 accounting.  The blob is
/// an immutable shared buffer: the wire packet and the sender-log entry both
/// alias the single encoding produced by on_send.
struct Piggyback {
  util::Buffer blob;
  std::uint32_t idents = 0;
  /// What the paper's dense encoding would have cost for this message, in
  /// bytes — the denominator of the compression ratio the delta/sparse
  /// encodings are judged by (metrics piggyback_bytes_dense vs _sent).
  std::uint32_t dense_bytes = 0;
  /// True when a delta-encoded protocol had no per-channel base for the
  /// destination (first send, or first send after restore) and emitted a
  /// full resync instead of a delta.
  bool resync = false;
};

/// A message parked in the receiving queue awaiting delivery.  Both byte
/// sections alias the buffers that arrived in the packet — admission moves
/// them here and delivery moves the payload onward to the application
/// without re-materialising vectors.
struct QueuedMsg {
  int src = -1;
  std::int32_t tag = 0;
  SeqNo send_index = 0;
  bool eager_acked = false;
  util::Buffer meta;
  util::Buffer payload;
};

class LoggingProtocol {
 public:
  LoggingProtocol(int rank, int n) : rank_(rank), n_(n) {}
  virtual ~LoggingProtocol() = default;

  LoggingProtocol(const LoggingProtocol&) = delete;
  LoggingProtocol& operator=(const LoggingProtocol&) = delete;

  virtual ProtocolKind kind() const = 0;

  // ---- normal execution ----

  /// Builds the metadata to piggyback on message (rank_ -> dst, send_index).
  virtual Piggyback on_send(int dst, SeqNo send_index) = 0;

  /// Merges the piggybacked metadata of a message being delivered.
  /// `deliver_seq` is the receiver-global delivery order (1-based) the
  /// Process just assigned to it.
  virtual void on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                          std::span<const std::uint8_t> meta) = 0;

  /// May `m` be delivered now, given `delivered_total` messages already
  /// delivered?  Per-pair FIFO is already enforced by the caller; this gate
  /// expresses only the protocol's ordering constraint (the paper's
  /// Algorithm 1 line 17, or PWD replay order for the baselines).
  virtual bool deliverable(const QueuedMsg& m, SeqNo delivered_total) const = 0;

  // ---- checkpoint / restore ----

  virtual void save(util::ByteWriter& w) const = 0;
  virtual void restore(util::ByteReader& r) = 0;

  // ---- recovery ----

  /// True if a recovering process must gather determinants from survivors
  /// (and the event logger) before delivering anything.  TDI's gate is
  /// self-contained in the piggyback — the "proactive perception of delivery
  /// order" the paper credits with lower rolling-forward overhead.
  virtual bool needs_determinant_gather() const { return false; }
  virtual bool uses_event_logger() const { return false; }

  /// Pessimistic protocols require each delivery's determinant to be stable
  /// before the message is handed to the application; the Process holds the
  /// delivery until stable_upto(deliver_seq) turns true.
  virtual bool pessimistic() const { return false; }
  virtual bool stable_upto(SeqNo deliver_seq) const {
    (void)deliver_seq;
    return true;
  }

  /// Called on the incarnation after restore, before rolling forward.
  virtual void begin_replay(SeqNo delivered_total) { (void)delivered_total; }

  /// Determinants arriving via RESPONSE / TelQueryReply during gather.
  virtual void add_replay_determinants(std::span<const Determinant> ds) {
    (void)ds;
  }

  /// Survivor side: determinants this process holds that describe `peer`'s
  /// past deliveries (sent back on RESPONSE).
  virtual std::vector<Determinant> determinants_for(int peer) const {
    (void)peer;
    return {};
  }

  /// Metadata GC: `peer` checkpointed after delivering `peer_delivered_total`
  /// messages; determinants about those deliveries may be discarded.
  virtual void on_peer_checkpoint(int peer, SeqNo peer_delivered_total) {
    (void)peer;
    (void)peer_delivered_total;
  }

  // ---- TEL async stability plane (no-ops elsewhere) ----

  /// Drains up to `max_batch` determinants that still need to reach the
  /// event logger.
  virtual std::vector<Determinant> take_unlogged(std::size_t max_batch) {
    (void)max_batch;
    return {};
  }

  /// Event logger acknowledged stability of this rank's determinants up to
  /// `watermark` (deliver_seq order).
  virtual void on_logger_ack(SeqNo watermark) { (void)watermark; }

  /// The piggybacked dependency of `m` on its *receiver* (how many local
  /// deliveries it requires), if the protocol expresses one — used by the
  /// trace validator's no-orphan check.  0 means "no constraint declared".
  virtual SeqNo depend_on_receiver(const QueuedMsg& m) const {
    (void)m;
    return 0;
  }

  // ---- introspection ----

  /// Number of tracked metadata entries (vector elements for TDI,
  /// determinants for TAG/TEL); tests and the log-memory ablation use this.
  virtual std::size_t tracked_entries() const = 0;

  /// Diagnostic snapshot for the runtime's stall watchdog.
  virtual std::string debug_string() const { return ""; }

  int rank() const { return rank_; }
  int size() const { return n_; }

 protected:
  int rank_;
  int n_;
};

std::unique_ptr<LoggingProtocol> make_protocol(ProtocolKind kind, int rank,
                                               int n);

/// Owns a LoggingProtocol plus the lock that serializes access to it — the
/// dependency-tracking component of the recovery engine.  Stateful calls go
/// through `with`; the capability queries below are constant properties of
/// the protocol kind (they read no mutable state) and need no lock.
class ProtocolHost {
 public:
  explicit ProtocolHost(std::unique_ptr<LoggingProtocol> proto)
      : proto_(std::move(proto)) {}

  template <typename F>
  auto with(F&& f) {
    std::scoped_lock lock(mu_);
    return f(*proto_);
  }

  template <typename F>
  auto with(F&& f) const {
    std::scoped_lock lock(mu_);
    return f(static_cast<const LoggingProtocol&>(*proto_));
  }

  // ---- constant capabilities (lock-free by design) ----
  ProtocolKind kind() const { return proto_->kind(); }
  bool pessimistic() const { return proto_->pessimistic(); }
  bool uses_event_logger() const { return proto_->uses_event_logger(); }
  bool needs_determinant_gather() const {
    return proto_->needs_determinant_gather();
  }

  /// Unlocked introspection for tests that examine a quiesced engine.
  const LoggingProtocol& raw() const { return *proto_; }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<LoggingProtocol> proto_;
};

}  // namespace windar::ft
