// Overhead accounting for the recovery layer.
//
// These counters feed the paper's evaluation directly:
//   Fig. 6  <- piggyback_idents / app_sent      (identifiers per message)
//   Fig. 7  <- (track_send_ns + track_deliver_ns) per message
//   Fig. 8  <- job wall time (runtime-level), send_block_ns explains the gap
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

namespace windar::ft {

struct Metrics {
  // message counts
  std::uint64_t app_sent = 0;          // application messages sent (incl. suppressed)
  std::uint64_t app_transmitted = 0;   // actually put on the wire
  std::uint64_t app_delivered = 0;
  std::uint64_t control_msgs = 0;      // acks/advances/rollbacks/responses/TEL
  std::uint64_t resent_msgs = 0;       // log-driven retransmissions
  std::uint64_t dup_dropped = 0;
  std::uint64_t suppressed_sends = 0;  // skipped during rolling forward
  std::uint64_t bad_packets = 0;       // malformed control payloads dropped
  // Survivor non-stop recovery: application sends parked in the per-channel
  // holdback queue while the destination replays (flushed on replay drain).
  std::uint64_t held_sends = 0;

  // piggyback overhead (per outgoing app message)
  std::uint64_t piggyback_idents = 0;
  std::uint64_t piggyback_bytes = 0;
  // Compression pair: what the paper's dense vector would have cost for the
  // same sends vs what actually went on the wire (== piggyback_bytes; kept
  // as its own counter so the ratio survives merges with protocols that
  // don't report a dense equivalent).  piggyback_resyncs counts delta-mode
  // sends that had no channel base (first send, or first after restore).
  std::uint64_t piggyback_bytes_dense = 0;
  std::uint64_t piggyback_bytes_sent = 0;
  std::uint64_t piggyback_resyncs = 0;
  std::uint64_t payload_bytes = 0;

  // zero-copy plane: what the send path actually materialises.  Copy-once
  // means bytes_copied == payload_bytes (each app payload duplicated into
  // exactly one shared buffer).  buffer_allocs counts *fresh* heap blocks
  // created per send (0 for inline-sized messages); a block reused off the
  // slab pool's free list books under packets_recycled instead — the two
  // never overlap, so allocs + recycled is the non-inline section count.
  std::uint64_t bytes_copied = 0;
  std::uint64_t buffer_allocs = 0;
  std::uint64_t packets_recycled = 0;

  // tracking time: CPU spent inside protocol code on the application thread
  std::int64_t track_send_ns = 0;
  std::int64_t track_deliver_ns = 0;

  // blocking behaviour
  std::int64_t send_block_ns = 0;  // app thread stalled in send (ack waits)

  // logging / checkpoint plane
  std::uint64_t log_peak_bytes = 0;
  std::uint64_t log_peak_entries = 0;
  std::uint64_t log_released_entries = 0;
  std::uint64_t checkpoints = 0;       // snapshots sealed (app thread)
  std::uint64_t ckpt_committed = 0;    // images durably written + published
  // Checkpoint stall: time the application thread spent inside checkpoint()
  // (seal only under async commit; seal + serialize + fsync when
  // synchronous).  ckpt_commit_ns is the writer-side cost of serialization
  // and durable I/O, wherever it ran.
  std::int64_t ckpt_stall_ns = 0;
  std::int64_t ckpt_commit_ns = 0;
  std::uint64_t recoveries = 0;
  // ROLLBACK broadcast rounds (first announce + backoff retries).  A
  // recovery that converges first try contributes 1; a retry storm shows up
  // as this growing linearly with outage length instead of logarithmically.
  std::uint64_t rollback_broadcasts = 0;

  void merge(const Metrics& o);

  double avg_piggyback_idents() const {
    return app_sent ? static_cast<double>(piggyback_idents) /
                          static_cast<double>(app_sent)
                    : 0.0;
  }
  /// Wire bytes as a fraction of the dense-encoding bytes for the same
  /// sends; 1.0 when nothing was saved (or nothing was sent).
  double piggyback_compression() const {
    return piggyback_bytes_dense
               ? static_cast<double>(piggyback_bytes_sent) /
                     static_cast<double>(piggyback_bytes_dense)
               : 1.0;
  }
  /// Average protocol tracking time per application message, microseconds.
  double avg_track_us() const {
    const std::uint64_t events = app_sent + app_delivered;
    return events ? static_cast<double>(track_send_ns + track_deliver_ns) /
                        1e3 / static_cast<double>(events)
                  : 0.0;
  }

  std::string summary() const;
};

/// Mutex-guarded Metrics shared by the recovery-engine components.  A leaf in
/// the engine's lock order: `update` lambdas must not take other locks.
class SharedMetrics {
 public:
  template <typename F>
  void update(F&& f) {
    std::scoped_lock lock(mu_);
    f(m_);
  }

  Metrics snapshot() const {
    std::scoped_lock lock(mu_);
    return m_;
  }

 private:
  mutable std::mutex mu_;
  Metrics m_;
};

}  // namespace windar::ft
