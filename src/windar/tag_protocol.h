// TAG — causal logging with an antecedence graph (Manetho [6] / LogOn [7]
// style baseline).
//
// Every delivery event creates a determinant; a process piggybacks, on each
// outgoing message, every determinant in its causal past that it cannot
// prove the destination already holds.  Knowledge is tracked optimistically
// with a per-determinant bitmask over ranks (piggybacking to d marks d as
// knowing; delivering from s marks s as knowing everything merged).  This is
// the "incremental part of the antecedence graph" optimization — the paper's
// §V notes its calculation is itself a source of overhead, which shows up
// here as the per-send drain of the unsent lists.
//
// Recovery is strict PWD: the incarnation gathers determinants about its own
// past deliveries from all survivors (RESPONSE messages) and replays logged
// messages in exactly the recorded order via PwdReplayGate.
#pragma once

#include <unordered_map>
#include <vector>

#include "util/bitset.h"
#include "windar/protocol.h"
#include "windar/pwd_replay.h"

namespace windar::ft {

class TagProtocol final : public LoggingProtocol {
 public:
  TagProtocol(int rank, int n);

  ProtocolKind kind() const override { return ProtocolKind::kTag; }

  Piggyback on_send(int dst, SeqNo send_index) override;
  void on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                  std::span<const std::uint8_t> meta) override;
  bool deliverable(const QueuedMsg& m, SeqNo delivered_total) const override;

  void save(util::ByteWriter& w) const override;
  void restore(util::ByteReader& r) override;

  bool needs_determinant_gather() const override { return true; }
  void begin_replay(SeqNo delivered_total) override;
  void add_replay_determinants(std::span<const Determinant> ds) override;
  std::vector<Determinant> determinants_for(int peer) const override;
  void on_peer_checkpoint(int peer, SeqNo peer_delivered_total) override;

  std::size_t tracked_entries() const override { return live_entries_; }
  std::string debug_string() const override { return replay_.debug_string(); }
  bool replay_active() const { return replay_.active(); }

 private:
  struct Entry {
    Determinant det;
    util::RankBitset known;  // ranks (believed to) hold this; sized by job
    bool dead = false;       // released by checkpoint GC
  };

  /// Adds or refreshes a determinant; returns its entry id.
  std::uint32_t add_det(const Determinant& d, const util::RankBitset& known);

  /// Rebuilds the entry store when tombstones dominate, remapping the
  /// per-destination unsent lists.
  void maybe_compact();

  std::vector<Entry> entries_;                       // discovery order
  std::unordered_map<std::uint64_t, std::uint32_t> index_;  // det key -> id
  std::vector<std::vector<std::uint32_t>> unsent_;   // per-destination ids
  std::size_t live_entries_ = 0;
  PwdReplayGate replay_;
};

}  // namespace windar::ft
