// TDI — Tracking based on Dependent Interval (the paper's protocol, §III).
//
// The only tracked state is `depend_interval[n]`: element i is the index of
// the process-state interval of process i that this process's current state
// depends on.  depend_interval[rank_] is the number of messages this process
// has delivered.  On send the whole vector is piggybacked (n identifiers); on
// delivery the piggybacked vector is merged element-wise max and
// depend_interval[rank_] advances.
//
// The delivery gate is the paper's Algorithm 1 line 17: a message may be
// delivered as soon as the receiver has delivered at least
// m.depend_interval[receiver] messages — in *any* order.  Independent
// messages therefore replay in arrival order during recovery, which is the
// source of both the piggyback reduction (vector instead of a determinant
// graph) and the rolling-forward speedup.
#pragma once

#include <vector>

#include "windar/protocol.h"

namespace windar::ft {

class TdiProtocol final : public LoggingProtocol {
 public:
  /// Wire encoding of the piggybacked vector.
  ///   kDense  — the paper's form: all n entries (n identifiers/message).
  ///   kSparse — extension: only non-zero entries as (index, value) pairs
  ///             (2 identifiers each).  On sparse communication graphs most
  ///             entries stay zero, so piggyback drops below n; semantics
  ///             are unchanged (missing entries read as zero).
  enum class Encoding { kDense, kSparse };

  TdiProtocol(int rank, int n, Encoding encoding = Encoding::kDense);

  ProtocolKind kind() const override {
    return encoding_ == Encoding::kDense ? ProtocolKind::kTdi
                                         : ProtocolKind::kTdiSparse;
  }

  Piggyback on_send(int dst, SeqNo send_index) override;
  void on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                  std::span<const std::uint8_t> meta) override;
  bool deliverable(const QueuedMsg& m, SeqNo delivered_total) const override;

  void save(util::ByteWriter& w) const override;
  void restore(util::ByteReader& r) override;

  SeqNo depend_on_receiver(const QueuedMsg& m) const override {
    return piggybacked_element(m.meta, rank_);
  }

  Encoding encoding() const { return encoding_; }

  std::size_t tracked_entries() const override { return depend_interval_.size(); }

  const std::vector<SeqNo>& depend_interval() const { return depend_interval_; }

  /// Reads depend_interval[element] out of a piggyback blob without a full
  /// parse.  Handles both encodings (the blob is self-describing).
  static SeqNo piggybacked_element(std::span<const std::uint8_t> meta,
                                   int element);

  /// Decodes a piggyback blob (either encoding) into a dense vector of
  /// width n.
  static std::vector<SeqNo> decode(std::span<const std::uint8_t> meta, int n);

 private:
  Encoding encoding_;
  std::vector<SeqNo> depend_interval_;
};

}  // namespace windar::ft
