// TDI — Tracking based on Dependent Interval (the paper's protocol, §III).
//
// The only tracked state is `depend_interval[n]`: element i is the index of
// the process-state interval of process i that this process's current state
// depends on.  depend_interval[rank_] is the number of messages this process
// has delivered.  On send the whole vector is piggybacked (n identifiers); on
// delivery the piggybacked vector is merged element-wise max and
// depend_interval[rank_] advances.
//
// The delivery gate is the paper's Algorithm 1 line 17: a message may be
// delivered as soon as the receiver has delivered at least
// m.depend_interval[receiver] messages — in *any* order.  Independent
// messages therefore replay in arrival order during recovery, which is the
// source of both the piggyback reduction (vector instead of a determinant
// graph) and the rolling-forward speedup.
#pragma once

#include <vector>

#include "windar/protocol.h"

namespace windar::ft {

class TdiProtocol final : public LoggingProtocol {
 public:
  /// Wire encoding of the piggybacked vector.
  ///   kDense  — the paper's form: all n entries (n identifiers/message).
  ///   kSparse — extension: only non-zero entries as (index, value) pairs
  ///             (2 identifiers each).  On sparse communication graphs most
  ///             entries stay zero, so piggyback drops below n; semantics
  ///             are unchanged (missing entries read as zero).
  ///   kDelta  — extension: only entries that CHANGED since the last send on
  ///             the same (sender, dst) channel, as (index, value) pairs,
  ///             plus always the receiver's gate entry (index dst).  Per-pair
  ///             FIFO delivery (Algorithm 1 line 19) guarantees the receiver
  ///             merged every omitted entry from an earlier message on the
  ///             channel, and entries are monotone outside restore, so
  ///             max-merging just the pairs present is equivalent to the
  ///             dense merge.  The first send on a channel — and every first
  ///             send after restore(), when the vector may have moved
  ///             backwards — is a full resync (all non-zero entries).  Falls
  ///             back to dense whenever the pair form would be no smaller.
  enum class Encoding { kDense, kSparse, kDelta };

  TdiProtocol(int rank, int n, Encoding encoding = Encoding::kDense);

  ProtocolKind kind() const override {
    switch (encoding_) {
      case Encoding::kDense: return ProtocolKind::kTdi;
      case Encoding::kSparse: return ProtocolKind::kTdiSparse;
      case Encoding::kDelta: return ProtocolKind::kTdiDelta;
    }
    return ProtocolKind::kTdi;
  }

  Piggyback on_send(int dst, SeqNo send_index) override;
  void on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                  std::span<const std::uint8_t> meta) override;
  bool deliverable(const QueuedMsg& m, SeqNo delivered_total) const override;

  void save(util::ByteWriter& w) const override;
  void restore(util::ByteReader& r) override;

  SeqNo depend_on_receiver(const QueuedMsg& m) const override {
    return piggybacked_element(m.meta, rank_);
  }

  Encoding encoding() const { return encoding_; }

  std::size_t tracked_entries() const override { return depend_interval_.size(); }

  const std::vector<SeqNo>& depend_interval() const { return depend_interval_; }

  /// Reads depend_interval[element] out of a piggyback blob without a full
  /// parse.  Handles both encodings (the blob is self-describing).
  static SeqNo piggybacked_element(std::span<const std::uint8_t> meta,
                                   int element);

  /// Decodes a piggyback blob (either encoding) into a dense vector of
  /// width n.
  static std::vector<SeqNo> decode(std::span<const std::uint8_t> meta, int n);

  /// Same decode assigned into a caller-owned vector (resized to n); the
  /// delivery hot path reuses a scratch member so decoding allocates nothing
  /// in steady state.
  static void decode_into(std::span<const std::uint8_t> meta, int n,
                          std::vector<SeqNo>& out);

  /// Test-only reference encoder: computes what on_send(dst) would emit with
  /// the original full O(n) change-tick scan, without advancing any channel
  /// state.  test_tdi_delta asserts the journal path is byte-identical.
  Piggyback scan_encode_for_test(int dst) const;

  /// Test-only: current change-journal length (bounded by compaction).
  std::size_t journal_size_for_test() const { return journal_.size(); }

 private:
  void touch(std::size_t entry);
  void compact_journal();

  Encoding encoding_;
  std::vector<SeqNo> depend_interval_;

  // Delta-encoding change tracking (kDelta only; empty otherwise).  `tick_`
  // is a mutation counter; every vector mutation stamps the entry with a
  // fresh tick (entry_tick_[k]); sent_tick_[dst] is the tick_ value as of
  // the last send to dst (0 = no valid base yet: nothing sent on the
  // channel, or the vector was restored since).  A send to dst carries
  // exactly the non-zero entries with entry_tick_ > sent_tick_[dst], plus
  // the receiver's gate entry.
  //
  // The changed set is found in O(churn), not O(n): `journal_` is an
  // append-only log of touched entry indices where position i holds the
  // entry touched at tick journal_base_tick_ + 1 + i, so "entries with
  // entry_tick_ > base" is exactly the deduped journal suffix past position
  // base - journal_base_tick_.  Dedupe is an epoch-stamped scratch array
  // (no clearing between sends).  The journal is compacted once it exceeds
  // max(64, 4n) entries: the prefix no live channel base pins is dropped,
  // and channels whose base lags more than half the window are forced to
  // resync on their next send so one stale channel cannot pin the journal.
  std::uint64_t tick_ = 0;
  std::vector<std::uint64_t> entry_tick_;
  std::vector<std::uint64_t> sent_tick_;
  std::vector<std::uint32_t> journal_;
  std::uint64_t journal_base_tick_ = 0;
  std::vector<std::uint64_t> entry_epoch_;
  std::uint64_t scan_epoch_ = 0;
  std::vector<std::uint32_t> changed_scratch_;
  std::vector<SeqNo> decode_scratch_;  // reused by on_deliver (host-serialized)
};

}  // namespace windar::ft
