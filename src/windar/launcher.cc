#include "windar/launcher.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>

#include "net/socket_transport.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/clock.h"
#include "windar/event_logger.h"
#include "windar/process.h"

namespace windar::ft {

namespace {

// Control-plane packet kinds (their own transport, so they never meet the
// windar Kind space or Process::dispatch).
constexpr std::uint16_t kJoin = 1;
constexpr std::uint16_t kGo = 2;
constexpr std::uint16_t kDone = 3;
constexpr std::uint16_t kAllDone = 4;
constexpr std::uint16_t kKillReq = 5;
constexpr std::uint16_t kBye = 6;

constexpr std::uint64_t kDigestMod = 1000000007ull;

bool uses_event_logger(ProtocolKind p) {
  return p == ProtocolKind::kTel || p == ProtocolKind::kPes;
}

// Lowercase argv tokens for ProtocolKind / SendMode.
const char* protocol_token(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kTdi: return "tdi";
    case ProtocolKind::kTag: return "tag";
    case ProtocolKind::kTel: return "tel";
    case ProtocolKind::kTdiSparse: return "tdi-s";
    case ProtocolKind::kTdiDelta: return "tdi-d";
    case ProtocolKind::kPes: return "pes";
  }
  return "tdi";
}

ProtocolKind parse_protocol_token(const std::string& s) {
  if (s == "tdi") return ProtocolKind::kTdi;
  if (s == "tag") return ProtocolKind::kTag;
  if (s == "tel") return ProtocolKind::kTel;
  if (s == "tdi-s" || s == "tdis") return ProtocolKind::kTdiSparse;
  if (s == "tdi-d" || s == "tdid") return ProtocolKind::kTdiDelta;
  if (s == "pes") return ProtocolKind::kPes;
  WINDAR_CHECK(false) << "unknown protocol '" << s << "'";
  return ProtocolKind::kTdi;
}

std::vector<std::uint64_t> split_u64(const std::string& s, char sep) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) next = s.size();
    out.push_back(std::strtoull(s.substr(pos, next - pos).c_str(), nullptr,
                                10));
    pos = next + 1;
  }
  return out;
}

/// Identity of a schedule entry for done-marking: everything but `target`
/// (the fired copy has it resolved to a concrete endpoint) and `delay`.
bool same_event(const net::ChaosEvent& a, const net::ChaosEvent& b) {
  return a.when == b.when && a.action == b.action &&
         a.endpoint == b.endpoint && a.kind == b.kind && a.nth == b.nth &&
         a.revive_after_packets == b.revive_after_packets &&
         a.repeat == b.repeat;
}

net::Packet ctrl_packet(int src, int dst, std::uint16_t kind,
                        std::uint64_t seq, util::Buffer payload = {}) {
  return net::make_packet(src, dst, kind, 0, seq, {}, std::move(payload));
}

}  // namespace

// ---------------------------------------------------------------------------
// Chaos spec codec
// ---------------------------------------------------------------------------

std::string encode_chaos(const std::vector<net::ChaosEvent>& events) {
  std::string out;
  for (const auto& ev : events) {
    if (!out.empty()) out += ';';
    out += std::to_string(static_cast<int>(ev.when)) + ',' +
           std::to_string(static_cast<int>(ev.action)) + ',' +
           std::to_string(ev.endpoint) + ',' + std::to_string(ev.kind) +
           ',' + std::to_string(ev.nth) + ',' + std::to_string(ev.target) +
           ',' + std::to_string(ev.delay.count()) + ',' +
           std::to_string(ev.revive_after_packets) + ',' +
           std::to_string(ev.repeat ? 1 : 0);
  }
  return out;
}

std::vector<net::ChaosEvent> decode_chaos(const std::string& spec) {
  std::vector<net::ChaosEvent> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t next = spec.find(';', pos);
    if (next == std::string::npos) next = spec.size();
    const std::string rec = spec.substr(pos, next - pos);
    pos = next + 1;
    if (rec.empty()) continue;
    // Fields are comma-separated; `target` may be negative.
    std::vector<long long> f;
    std::size_t p = 0;
    while (p < rec.size()) {
      std::size_t q = rec.find(',', p);
      if (q == std::string::npos) q = rec.size();
      f.push_back(std::strtoll(rec.substr(p, q - p).c_str(), nullptr, 10));
      p = q + 1;
    }
    WINDAR_CHECK_EQ(f.size(), 9u) << "bad chaos record '" << rec << "'";
    net::ChaosEvent ev;
    ev.when = static_cast<net::ChaosEvent::When>(f[0]);
    ev.action = static_cast<net::ChaosEvent::Action>(f[1]);
    ev.endpoint = static_cast<int>(f[2]);
    ev.kind = static_cast<std::uint16_t>(f[3]);
    ev.nth = static_cast<std::uint64_t>(f[4]);
    ev.target = static_cast<int>(f[5]);
    ev.delay = std::chrono::microseconds(f[6]);
    ev.revive_after_packets = static_cast<std::uint64_t>(f[7]);
    ev.repeat = f[8] != 0;
    out.push_back(ev);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

bool WorkerConfig::is_worker_invocation(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--windar-rank=", 14) == 0) return true;
  }
  return false;
}

WorkerConfig WorkerConfig::parse(int argc, char** argv) {
  WorkerConfig cfg;
  cfg.app_args.push_back(argc > 0 ? argv[0] : "worker");
  std::string chaos_spec, chaos_done;
  const auto val = [](const std::string& arg, const char* flag,
                      std::string* out) {
    const std::size_t len = std::strlen(flag);
    if (arg.compare(0, len, flag) != 0) return false;
    *out = arg.substr(len);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    std::string v;
    if (val(a, "--windar-rank=", &v)) {
      cfg.rank = std::atoi(v.c_str());
    } else if (val(a, "--windar-n=", &v)) {
      cfg.n = std::atoi(v.c_str());
    } else if (val(a, "--windar-dir=", &v)) {
      cfg.dir = v;
    } else if (val(a, "--windar-protocol=", &v)) {
      cfg.protocol = parse_protocol_token(v);
    } else if (val(a, "--windar-mode=", &v)) {
      cfg.mode = v == "blocking" ? SendMode::kBlocking
                                 : SendMode::kNonBlocking;
    } else if (val(a, "--windar-incarnation=", &v)) {
      cfg.incarnation = static_cast<std::uint32_t>(std::atoi(v.c_str()));
    } else if (val(a, "--windar-recovering=", &v)) {
      cfg.recovering = v == "1";
    } else if (val(a, "--windar-seed=", &v)) {
      cfg.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (val(a, "--windar-eager=", &v)) {
      cfg.eager_threshold = std::strtoull(v.c_str(), nullptr, 10);
    } else if (val(a, "--windar-logger-shards=", &v)) {
      cfg.logger_shards = std::atoi(v.c_str());
    } else if (val(a, "--windar-retry-ms=", &v)) {
      cfg.rollback_retry = std::chrono::milliseconds(std::atoi(v.c_str()));
    } else if (val(a, "--windar-retry-cap-ms=", &v)) {
      cfg.rollback_retry_cap =
          std::chrono::milliseconds(std::atoi(v.c_str()));
    } else if (val(a, "--windar-timeout-ms=", &v)) {
      cfg.timeout_ms = std::atof(v.c_str());
    } else if (val(a, "--windar-chaos=", &v)) {
      chaos_spec = v;
    } else if (val(a, "--windar-chaos-done=", &v)) {
      chaos_done = v;
    } else if (a.compare(0, 9, "--windar-") == 0) {
      WINDAR_CHECK(false) << "unknown worker flag " << a;
    } else {
      cfg.app_args.push_back(a);
    }
  }
  // Arm the schedule minus the one-shot kills that already fired in earlier
  // incarnations: a fresh process re-counting a fired delivery-keyed kill
  // would crash every incarnation at the same point, forever.
  auto events = decode_chaos(chaos_spec);
  std::vector<bool> drop(events.size(), false);
  for (std::uint64_t idx : split_u64(chaos_done, ',')) {
    if (idx < drop.size()) drop[idx] = true;
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!drop[i]) cfg.chaos.push_back(events[i]);
  }
  WINDAR_CHECK_GT(cfg.n, 0) << "worker without --windar-n";
  WINDAR_CHECK(cfg.rank >= 0 && cfg.rank < cfg.n) << "bad worker rank";
  WINDAR_CHECK(!cfg.dir.empty()) << "worker without --windar-dir";
  return cfg;
}

int run_worker(const WorkerConfig& cfg, const WorkerFn& fn) {
  const bool uses_logger = uses_event_logger(cfg.protocol);
  const int logger_shards = uses_logger ? std::max(1, cfg.logger_shards) : 0;
  const int launcher_ep = cfg.n;

  // Suicide watchdog: if the launcher died or the job wedged, don't linger
  // as an orphan serving a job nobody is running.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(
                            static_cast<long>(cfg.timeout_ms));
  auto finished = std::make_shared<std::atomic<bool>>(false);
  std::thread([deadline, finished, rank = cfg.rank] {
    while (!finished->load(std::memory_order_acquire)) {
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr, "[windar worker %d] watchdog timeout\n", rank);
        std::_Exit(43);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }).detach();

  net::SocketTransportOptions dopt;
  dopt.endpoints = cfg.n + logger_shards;
  dopt.self = cfg.rank;
  dopt.dir = cfg.dir + "/data";
  dopt.incarnation = cfg.incarnation;
  net::SocketTransport data(dopt);

  net::SocketTransportOptions copt;
  copt.endpoints = cfg.n + 1;
  copt.self = cfg.rank;
  copt.dir = cfg.dir + "/ctrl";
  copt.incarnation = cfg.incarnation;
  // Control plane stays on the unbounded queue: a barrier or exit message
  // must never block behind data-plane ring backpressure.
  copt.inbox = net::InboxConfig{net::InboxKind::kQueue, 0};
  net::SocketTransport ctrl(copt);

  CheckpointStore store(cfg.dir + "/ckpt");

  // Every kill event in a generated plan fires inside the victim's own
  // process (kSend matches at the sender, kDeliver at the receiver), so the
  // handler reports the fired event, flushes, and takes the SIGKILL itself —
  // the crash lands at the exact protocol point the event names.
  net::FaultSchedule chaos(cfg.chaos);
  if (!cfg.chaos.empty()) {
    chaos.set_kill_handler([&](const net::ChaosEvent& ev) {
      util::ByteWriter w;
      w.i32(ev.target);
      w.u64(ev.revive_after_packets);
      w.str(encode_chaos({ev}));
      ctrl.send(ctrl_packet(cfg.rank, launcher_ep, kKillReq,
                            cfg.incarnation, util::take_buffer(w)));
      (void)ctrl.flush(std::chrono::milliseconds(200));
      if (ev.target < 0 || ev.target == cfg.rank) {
        ::kill(::getpid(), SIGKILL);
      }
    });
    data.set_chaos(&chaos);
  }

  // JOIN, then hold at the barrier: our data listener is already bound (the
  // transport constructor did it), so peers released by GO can reach us even
  // if this process is slow off the mark.
  auto& inbox = ctrl.endpoint(cfg.rank).inbox();
  ctrl.send(ctrl_packet(cfg.rank, launcher_ep, kJoin, cfg.incarnation));
  for (;;) {
    auto m = inbox.pop_until(std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(100));
    if (m && m->kind == kGo) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "[windar worker %d] no GO from launcher\n",
                   cfg.rank);
      finished->store(true, std::memory_order_release);
      return 40;
    }
  }

  ProcessParams pp;
  pp.rank = cfg.rank;
  pp.n = cfg.n;
  pp.protocol = cfg.protocol;
  pp.mode = cfg.mode;
  pp.eager_threshold = cfg.eager_threshold;
  pp.rollback_retry = cfg.rollback_retry;
  pp.rollback_retry_cap = cfg.rollback_retry_cap;
  pp.logger_endpoint =
      uses_logger ? logger_shard_endpoint(cfg.n, cfg.rank, logger_shards)
                  : -1;
  // WINDAR_CKPT / WINDAR_CKPT_ANCHOR_K propagate through fork+exec, so the
  // whole job (and every respawned incarnation) resolves the same plan.
  pp.ckpt_async = resolve_ckpt_async(-1);
  pp.incarnation = cfg.incarnation;

  int rc = 0;
  std::uint64_t digest = 0;
  Metrics metrics;
  {
    Process proc(data, store, pp, cfg.recovering);
    Ctx ctx(proc);
    try {
      digest = fn(ctx);
    } catch (const JobAborted&) {
      rc = 42;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[windar worker %d] %s\n", cfg.rank, e.what());
      rc = 41;
    } catch (...) {
      rc = 41;
    }
    if (rc == 0) {
      // Flush the async checkpoint writer (and its advance fan-out) before
      // declaring done: every data-plane send must precede our kDone, so by
      // the time the launcher's kAllDone releases any peer from park, our
      // last CHECKPOINT_ADVANCE frames are already on the wire ahead of the
      // control-plane round trip — peers snapshot balanced fabric stats.
      proc.drain_checkpoints();
      (void)data.flush(std::chrono::milliseconds(1000));
      util::ByteWriter w;
      w.u64(digest);
      ctrl.send(ctrl_packet(cfg.rank, launcher_ep, kDone, cfg.incarnation,
                            util::take_buffer(w)));
      // Park until the launcher declares the job over, still serving
      // ROLLBACK/RESPONSE traffic for late-recovering peers.
      std::atomic<bool> all_done{false};
      std::thread ctrl_watch([&] {
        while (auto m = inbox.pop()) {
          if (m->kind == kAllDone) break;
        }
        all_done.store(true, std::memory_order_release);
      });
      proc.park(all_done);
      ctrl_watch.join();
      metrics = proc.metrics();
    }
  }  // Process torn down while the transports are still up

  if (rc == 0) {
    const net::FabricStats fs = data.stats();
    util::ByteWriter w;
    w.u64(fs.packets_sent);
    w.u64(fs.packets_delivered);
    w.u64(fs.packets_dropped_dead);
    w.u64(fs.packets_dropped_chaos);
    w.u64(fs.bytes_sent);
    w.u64(fs.frame_errors);
    w.u64(metrics.app_sent);
    w.u64(metrics.app_delivered);
    w.u64(metrics.checkpoints);
    w.u64(chaos.fired());
    ctrl.send(ctrl_packet(cfg.rank, launcher_ep, kBye, cfg.incarnation,
                          util::take_buffer(w)));
    // shutdown() discards queued packets; the BYE must reach the kernel
    // before we tear the writer down.
    (void)ctrl.flush(std::chrono::milliseconds(1000));
  }
  finished->store(true, std::memory_order_release);
  ctrl.shutdown();
  data.shutdown();
  return rc;
}

// ---------------------------------------------------------------------------
// Launcher side
// ---------------------------------------------------------------------------

MultiProcResult run_multiproc_job(const LaunchSpec& spec) {
  MultiProcResult res;
  const JobConfig& job = spec.job;
  const int n = job.n;
  const int launcher_ep = n;
  const bool uses_logger = uses_event_logger(job.protocol);
  const int logger_shards =
      uses_logger ? std::min(n, resolve_logger_shards(job.logger_shards)) : 0;
  WINDAR_CHECK_GT(n, 0) << "job needs ranks";

  std::string dir = spec.job_dir;
  if (dir.empty()) {
    char tmpl[] = "/tmp/windar_job_XXXXXX";
    WINDAR_CHECK(::mkdtemp(tmpl) != nullptr)
        << "mkdtemp: " << std::strerror(errno);
    dir = tmpl;
  }
  std::filesystem::create_directories(dir + "/data");
  std::filesystem::create_directories(dir + "/ctrl");
  std::filesystem::create_directories(dir + "/ckpt");
  const std::string exe = spec.exe.empty() ? "/proc/self/exe" : spec.exe;

  net::SocketTransportOptions copt;
  copt.endpoints = n + 1;
  copt.self = launcher_ep;
  copt.dir = dir + "/ctrl";
  // Control plane stays on the unbounded queue (see the worker side).
  copt.inbox = net::InboxConfig{net::InboxKind::kQueue, 0};
  net::SocketTransport ctrl(copt);

  // TEL/PES: the launcher hosts the stable-storage event-logger shards on
  // data endpoints n..n+shards-1, exactly where the simulated runtime puts
  // them (a SocketTransport hosts one endpoint, so one transport per shard).
  std::vector<std::unique_ptr<net::SocketTransport>> logger_tps;
  std::vector<std::unique_ptr<EventLogger>> loggers;
  for (int s = 0; s < logger_shards; ++s) {
    net::SocketTransportOptions lopt;
    lopt.endpoints = n + logger_shards;
    lopt.self = n + s;
    lopt.dir = dir + "/data";
    logger_tps.push_back(std::make_unique<net::SocketTransport>(lopt));
    EventLogger::Params lp;
    lp.endpoint = n + s;
    lp.ranks = n;
    lp.storage_delay = job.logger_storage_delay;
    lp.shards = logger_shards;
    lp.shard_index = s;
    loggers.push_back(std::make_unique<EventLogger>(*logger_tps.back(), lp));
  }

  const std::string chaos_spec = encode_chaos(job.chaos);
  std::vector<bool> event_done(job.chaos.size(), false);

  struct RankState {
    pid_t pid = -1;
    std::uint32_t incarnation = 0;
    bool joined = false;
    bool done_ever = false;      // digest is valid
    bool awaiting_done = false;  // respawned; ALLDONE held until re-DONE
    bool exited = false;
    bool clean_exit = false;  // exit(0): a BYE is on its way (or arrived)
    bool bye = false;
    std::uint64_t digest = 0;
    bool pending_respawn = false;
    double respawn_at_ms = 0;
    double extra_delay_ms = 0;  // revive_after_packets approximation
  };
  std::vector<RankState> ranks(static_cast<std::size_t>(n));

  bool go_sent = false;
  bool alldone_sent = false;
  bool failed = false;
  std::string error;
  std::uint64_t killreqs = 0;
  std::uint64_t bye_chaos_fired = 0;

  const auto vlog = [&](const char* fmt, auto... args) {
    if (spec.verbose) {
      std::fprintf(stderr, "[launcher] ");
      std::fprintf(stderr, fmt, args...);
      std::fprintf(stderr, "\n");
    }
  };

  const auto chaos_done_list = [&] {
    std::string out;
    for (std::size_t i = 0; i < event_done.size(); ++i) {
      if (!event_done[i]) continue;
      if (!out.empty()) out += ',';
      out += std::to_string(i);
    }
    return out;
  };

  const auto spawn = [&](int r, bool recovering) {
    RankState& rk = ranks[static_cast<std::size_t>(r)];
    std::vector<std::string> av;
    av.push_back(exe);
    for (const auto& a : spec.worker_args) av.push_back(a);
    av.push_back("--windar-rank=" + std::to_string(r));
    av.push_back("--windar-n=" + std::to_string(n));
    av.push_back("--windar-dir=" + dir);
    av.push_back("--windar-protocol=" +
                 std::string(protocol_token(job.protocol)));
    av.push_back("--windar-mode=" +
                 std::string(job.mode == SendMode::kBlocking ? "blocking"
                                                             : "nonblocking"));
    av.push_back("--windar-incarnation=" + std::to_string(rk.incarnation));
    av.push_back(std::string("--windar-recovering=") +
                 (recovering ? "1" : "0"));
    av.push_back("--windar-seed=" + std::to_string(job.seed));
    av.push_back("--windar-eager=" + std::to_string(job.eager_threshold));
    if (logger_shards > 0) {
      av.push_back("--windar-logger-shards=" + std::to_string(logger_shards));
    }
    av.push_back("--windar-retry-ms=" +
                 std::to_string(job.rollback_retry.count()));
    av.push_back("--windar-retry-cap-ms=" +
                 std::to_string(job.rollback_retry_cap.count()));
    av.push_back("--windar-timeout-ms=" + std::to_string(spec.timeout_ms));
    if (!chaos_spec.empty()) {
      av.push_back("--windar-chaos=" + chaos_spec);
      const std::string done = chaos_done_list();
      if (!done.empty()) av.push_back("--windar-chaos-done=" + done);
    }
    const pid_t pid = ::fork();
    WINDAR_CHECK_GE(pid, 0) << "fork: " << std::strerror(errno);
    if (pid == 0) {
      // Child: every transport fd is CLOEXEC, so exec starts clean.
      std::vector<char*> cav;
      cav.reserve(av.size() + 1);
      for (auto& s : av) cav.push_back(const_cast<char*>(s.c_str()));
      cav.push_back(nullptr);
      ::execv(exe.c_str(), cav.data());
      std::fprintf(stderr, "execv(%s): %s\n", exe.c_str(),
                   std::strerror(errno));
      std::_Exit(127);
    }
    rk.pid = pid;
    rk.joined = false;
    rk.exited = false;
    rk.bye = false;
    rk.pending_respawn = false;
    vlog("rank %d incarnation %u -> pid %d%s", r, rk.incarnation,
         static_cast<int>(pid), recovering ? " (recovering)" : "");
  };

  const auto fail = [&](std::string msg) {
    if (!failed) {
      failed = true;
      error = std::move(msg);
      vlog("job failed: %s", error.c_str());
    }
    for (auto& rk : ranks) {
      if (rk.pid > 0 && !rk.exited) ::kill(rk.pid, SIGKILL);
      rk.pending_respawn = false;
    }
  };

  const auto sigkill_rank = [&](int r, const char* why) {
    RankState& rk = ranks[static_cast<std::size_t>(r)];
    if (rk.exited || rk.pid <= 0) return;
    vlog("SIGKILL rank %d pid %d (%s)", r, static_cast<int>(rk.pid), why);
    ::kill(rk.pid, SIGKILL);
  };

  const auto broadcast = [&](std::uint16_t kind) {
    for (int r = 0; r < n; ++r) {
      ctrl.send(ctrl_packet(launcher_ep, r, kind, 0));
    }
  };

  const auto maybe_go = [&] {
    if (go_sent) return;
    for (const auto& rk : ranks) {
      if (!rk.joined) return;
    }
    go_sent = true;
    broadcast(kGo);
    vlog("all %d ranks joined, GO", n);
  };

  // ALLDONE only once every rank has a digest AND no recovery is in flight:
  // releasing parked workers while an incarnation still needs their
  // RESPONSEs would strand it against exited peers.
  const auto maybe_alldone = [&] {
    if (alldone_sent || failed) return;
    for (const auto& rk : ranks) {
      if (!rk.done_ever || rk.awaiting_done || rk.pending_respawn) return;
    }
    alldone_sent = true;
    broadcast(kAllDone);
    vlog("all ranks done, ALLDONE");
  };

  const auto mark_event_done = [&](const std::string& enc) {
    const auto fired = decode_chaos(enc);
    if (fired.empty()) return;
    for (std::size_t i = 0; i < job.chaos.size(); ++i) {
      if (!event_done[i] && !job.chaos[i].repeat &&
          same_event(job.chaos[i], fired[0])) {
        event_done[i] = true;
        return;
      }
    }
  };

  const auto handle = [&](net::Packet& m) {
    if (m.src < 0 || m.src >= n) return;
    RankState& rk = ranks[static_cast<std::size_t>(m.src)];
    switch (m.kind) {
      case kJoin:
        rk.joined = true;
        if (go_sent) {
          ctrl.send(ctrl_packet(launcher_ep, m.src, kGo, 0));
        } else {
          maybe_go();
        }
        break;
      case kDone: {
        util::ByteReader rd(m.payload);
        rk.digest = rd.u64();  // deterministic: a repeat DONE overwrites
        rk.done_ever = true;
        rk.awaiting_done = false;
        maybe_alldone();
        break;
      }
      case kKillReq: {
        ++killreqs;
        util::ByteReader rd(m.payload);
        int target = rd.i32();
        const std::uint64_t revive = rd.u64();
        mark_event_done(rd.str());
        if (target < 0) target = m.src;
        if (target >= n) break;
        RankState& tk = ranks[static_cast<std::size_t>(target)];
        if (revive > 0) {
          // revive_after_packets counts fabric-wide deliveries, which no
          // process can observe job-wide here; approximate the hold-down as
          // extra restart delay.
          tk.extra_delay_ms = std::min(50.0, static_cast<double>(revive) * 0.1);
          if (tk.pending_respawn) tk.respawn_at_ms += tk.extra_delay_ms;
        }
        if (target != m.src) sigkill_rank(target, "chaos killreq");
        break;
      }
      case kBye: {
        util::ByteReader rd(m.payload);
        net::FabricStats fs;
        fs.packets_sent = rd.u64();
        fs.packets_delivered = rd.u64();
        fs.packets_dropped_dead = rd.u64();
        fs.packets_dropped_chaos = rd.u64();
        fs.bytes_sent = rd.u64();
        fs.frame_errors = rd.u64();
        res.fabric.merge(fs);
        res.app_sent += rd.u64();
        res.app_delivered += rd.u64();
        res.checkpoints += rd.u64();
        bye_chaos_fired += rd.u64();
        rk.bye = true;
        break;
      }
      default:
        break;
    }
  };

  const auto reap = [&] {
    for (;;) {
      int st = 0;
      const pid_t pid = ::waitpid(-1, &st, WNOHANG);
      if (pid <= 0) return;
      int r = -1;
      for (int i = 0; i < n; ++i) {
        if (ranks[static_cast<std::size_t>(i)].pid == pid) r = i;
      }
      if (r < 0) continue;
      RankState& rk = ranks[static_cast<std::size_t>(r)];
      rk.pid = -1;
      rk.joined = false;
      if (WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL) {
        if (failed) {
          rk.exited = true;
          continue;
        }
        if (alldone_sent) {
          // A late-firing chaos kill (e.g. keyed to a rank's final delivery)
          // can land after the job completed: every digest is recorded and
          // no recovery is in flight (the ALLDONE precondition), so there is
          // nothing for a spare process to do and nobody left to serve its
          // rollback.  The death stands unreplaced.
          rk.exited = true;
          vlog("rank %d SIGKILLed after ALLDONE, no respawn", r);
          continue;
        }
        // The injected fault: schedule the spare-process incarnation.
        ++res.recoveries;
        rk.pending_respawn = true;
        rk.respawn_at_ms =
            util::now_ms() + job.restart_delay_ms + rk.extra_delay_ms;
        rk.extra_delay_ms = 0;
        rk.awaiting_done = true;
        rk.bye = false;
        vlog("rank %d SIGKILLed, respawn in %.1fms", r,
             rk.respawn_at_ms - util::now_ms());
      } else if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
        rk.exited = true;
        rk.clean_exit = true;
        if (!alldone_sent) {
          fail("rank " + std::to_string(r) + " exited before ALLDONE");
        }
      } else {
        rk.exited = true;
        fail("rank " + std::to_string(r) + " died: " +
             (WIFEXITED(st)
                  ? "exit " + std::to_string(WEXITSTATUS(st))
                  : "signal " + std::to_string(WTERMSIG(st))));
      }
    }
  };

  const double t0 = util::now_ms();
  std::vector<FaultEvent> faults = job.faults;
  std::sort(faults.begin(), faults.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return a.at_ms < b.at_ms;
            });
  std::size_t fault_idx = 0;

  for (int r = 0; r < n; ++r) spawn(r, /*recovering=*/false);

  auto& inbox = ctrl.endpoint(launcher_ep).inbox();
  for (;;) {
    bool all_exited = true;
    for (const auto& rk : ranks) all_exited &= rk.exited;
    if (all_exited && (failed || alldone_sent)) break;

    if (!failed && util::now_ms() - t0 > spec.timeout_ms) {
      fail("job timeout after " + std::to_string(spec.timeout_ms) + "ms");
    }

    auto m = inbox.pop_until(std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(2));
    while (m) {
      handle(*m);
      m = inbox.try_pop();
    }

    if (!failed && !alldone_sent) {
      while (fault_idx < faults.size() &&
             util::now_ms() - t0 >= faults[fault_idx].at_ms) {
        const int r = faults[fault_idx].rank;
        ++fault_idx;
        if (r >= 0 && r < n) sigkill_rank(r, "fault schedule");
      }
    }

    reap();

    if (!failed) {
      for (int r = 0; r < n; ++r) {
        RankState& rk = ranks[static_cast<std::size_t>(r)];
        if (rk.pending_respawn && util::now_ms() >= rk.respawn_at_ms) {
          ++rk.incarnation;
          spawn(r, /*recovering=*/true);
        }
      }
    }
    maybe_alldone();
  }

  // Workers flush their BYE before exiting, but the reader may not have
  // pushed it yet; give the stragglers a moment.
  if (!failed) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(500);
    for (;;) {
      bool all_bye = true;
      // Only clean exits owe a BYE; a rank SIGKILLed after ALLDONE took its
      // stats to the grave.
      for (const auto& rk : ranks) all_bye &= (rk.bye || !rk.clean_exit);
      if (all_bye || std::chrono::steady_clock::now() >= deadline) break;
      auto m = inbox.pop_until(std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(20));
      if (m) handle(*m);
    }
  }

  for (int s = 0; s < logger_shards; ++s) {
    loggers[static_cast<std::size_t>(s)]->stop();
    res.logger_batches += loggers[static_cast<std::size_t>(s)]->batches();
    res.logger_determinants +=
        loggers[static_cast<std::size_t>(s)]->stored_determinants();
    res.logger_commit_rounds +=
        loggers[static_cast<std::size_t>(s)]->commit_rounds();
    res.logger_acks += loggers[static_cast<std::size_t>(s)]->acks_sent();
    res.fabric.merge(logger_tps[static_cast<std::size_t>(s)]->stats());
    logger_tps[static_cast<std::size_t>(s)]->shutdown();
  }
  ctrl.shutdown();

  res.wall_ms = util::now_ms() - t0;
  res.rank_digest.resize(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    res.rank_digest[static_cast<std::size_t>(r)] =
        ranks[static_cast<std::size_t>(r)].digest;
    res.digest += res.rank_digest[static_cast<std::size_t>(r)] % kDigestMod;
  }
  res.chaos_triggers_fired = killreqs + bye_chaos_fired;
  res.ok = !failed;
  res.error = error;

  if (!spec.keep_dir) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return res;
}

}  // namespace windar::ft
