// Compact set of sequence numbers with a contiguous low watermark.
//
// Used for acknowledgement tracking (which send_index values a receiver has
// accepted) and by the event logger's stability watermark: membership is
// "idx <= watermark or in the sparse overflow".  The overflow stays small
// because sequences are near-contiguous; compaction folds it into the
// watermark whenever possible.
#pragma once

#include <set>

#include "windar/wire.h"

namespace windar::ft {

class SeqSet {
 public:
  /// Inserts idx; folds contiguous runs into the watermark.
  void add(SeqNo idx) {
    if (idx <= watermark_) return;
    if (idx == watermark_ + 1) {
      ++watermark_;
      auto it = sparse_.begin();
      while (it != sparse_.end() && *it == watermark_ + 1) {
        ++watermark_;
        it = sparse_.erase(it);
      }
      return;
    }
    sparse_.insert(idx);
  }

  bool contains(SeqNo idx) const {
    return idx <= watermark_ || sparse_.count(idx) > 0;
  }

  /// Largest idx such that every value in [1, idx] is present.
  SeqNo watermark() const { return watermark_; }

  std::size_t sparse_size() const { return sparse_.size(); }

  void reset(SeqNo watermark = 0) {
    watermark_ = watermark;
    sparse_.clear();
  }

 private:
  SeqNo watermark_ = 0;      // all of [1, watermark_] present
  std::set<SeqNo> sparse_;   // out-of-order members above the watermark
};

}  // namespace windar::ft
