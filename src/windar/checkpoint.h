// Checkpoint images and the stable store.
//
// An image is everything Algorithm 1 line 33 saves: the application state
// blob, the protocol's dependency-tracking state, the per-pair send/deliver
// counters, and the sender-based message log.  The store models stable
// storage shared by the cluster (e.g. a parallel filesystem): it survives
// any process failure.  Images can optionally be spilled to disk to exercise
// a real serialization round-trip.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "windar/wire.h"

namespace windar::ft {

struct CheckpointImage {
  std::uint64_t ckpt_seq = 0;           // how many checkpoints this rank took
  util::Bytes app;                      // application-provided state
  util::Bytes proto;                    // LoggingProtocol::save output
  std::vector<SeqNo> last_send;         // per-pair counters
  std::vector<SeqNo> last_deliver;
  SeqNo delivered_total = 0;            // current process state interval index
  util::Bytes log;                      // serialized SenderLog

  util::Bytes serialize() const;
  static CheckpointImage deserialize(const util::Bytes& data);

  std::size_t bytes() const {
    return app.size() + proto.size() + log.size() +
           (last_send.size() + last_deliver.size()) * sizeof(SeqNo) + 16;
  }
};

struct CheckpointStoreStats {
  std::uint64_t saves = 0;
  std::uint64_t loads = 0;
  std::uint64_t bytes_written = 0;
};

class CheckpointStore {
 public:
  /// In-memory store; if `spill_dir` is non-empty, images are round-tripped
  /// through files under it (one file per rank, overwritten per checkpoint).
  explicit CheckpointStore(std::string spill_dir = "");

  void save(int rank, const CheckpointImage& image);
  std::optional<CheckpointImage> load(int rank) const;
  bool has(int rank) const;
  void clear();

  CheckpointStoreStats stats() const;

 private:
  std::string file_path(int rank) const {
    return spill_dir_ + "/ckpt_rank" + std::to_string(rank) + ".bin";
  }

  std::string spill_dir_;
  mutable std::mutex mu_;
  std::unordered_map<int, util::Bytes> images_;  // serialized form
  mutable CheckpointStoreStats stats_;
};

}  // namespace windar::ft
