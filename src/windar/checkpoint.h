// Checkpoint images and the stable store.
//
// An image is everything Algorithm 1 line 33 saves: the application state
// blob, the protocol's dependency-tracking state, the per-pair send/deliver
// counters, and the sender-based message log.  The store models stable
// storage shared by the cluster (e.g. a parallel filesystem): it survives
// any process failure.  Images can optionally be spilled to disk to exercise
// a real serialization round-trip.
//
// Two things make the store cheap enough to sit behind a per-interval
// checkpoint cadence (FTPregel's 60s -> 2s split, ROADMAP item 3):
//
//  * Delta form.  Blobs are self-describing (magic + kind header): a FULL
//    blob carries every section verbatim; a DELTA blob diffs the app/proto/
//    log sections against the previously committed image at page
//    granularity, emitting copy-from-base ops for unchanged pages and
//    literal bytes for changed ones.  The in-memory diff is copy-on-write:
//    unchanged regions are `util::Buffer` views aliasing the prior image's
//    sections, so nothing is duplicated until the blob is encoded.  Every
//    `anchor_every` commits a full image is written as a compaction anchor
//    (and the superseded delta files are removed); a loader reconstructs
//    anchor -> delta chain, verifying each delta's base seq + content hash
//    so a stale delta from an unrelated lineage can never be applied.
//
//  * Durability done right, off every other caller's lock.  save goes
//    write-tmp -> fsync(tmp) -> rename -> fsync(parent dir) — only then is
//    the save reported complete (the protocol releases peers' logs on that
//    report, so "stable storage" must actually be stable).  Serialization
//    and file I/O run outside the store mutex behind a per-rank in-flight
//    guard: a slow spill of one rank never blocks load/has/stats or another
//    rank's save.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/buffer.h"
#include "util/bytes.h"
#include "util/wait.h"
#include "windar/wire.h"

namespace windar::ft {

struct CheckpointImage {
  std::uint64_t ckpt_seq = 0;           // how many checkpoints this rank took
  util::Bytes app;                      // application-provided state
  util::Bytes proto;                    // LoggingProtocol::save output
  std::vector<SeqNo> last_send;         // per-pair counters
  std::vector<SeqNo> last_deliver;
  SeqNo delivered_total = 0;            // current process state interval index
  util::Bytes log;                      // serialized SenderLog

  /// Emits the self-describing FULL blob form.
  util::Bytes serialize() const;
  /// Decodes a FULL blob (delta chains are the store's business).
  static CheckpointImage deserialize(std::span<const std::uint8_t> data);

  std::size_t bytes() const {
    return app.size() + proto.size() + log.size() +
           (last_send.size() + last_deliver.size()) * sizeof(SeqNo) + 16;
  }
};

/// The sealed in-memory snapshot the asynchronous checkpoint path hands to
/// the background writer: sections are refcounted Buffers (the seal aliases
/// live data or copies it exactly once; no disk I/O, no full-image
/// serialization on the application thread).
struct SealedCheckpoint {
  std::uint64_t ckpt_seq = 0;
  util::Buffer app;
  util::Buffer proto;
  util::Buffer log;
  std::vector<SeqNo> last_send;
  std::vector<SeqNo> last_deliver;
  SeqNo delivered_total = 0;
};

// ---------------------------------------------------------------------------
// Blob codec (exposed for the delta-vs-full equivalence tests)
// ---------------------------------------------------------------------------

namespace ckptwire {

/// Content identity of an image (FNV-1a over every section and counter).  A
/// delta blob records its base's hash; the loader refuses to apply a delta
/// whose recorded hash does not match the image it reconstructed — a stale
/// delta file from an earlier lineage of the same spill dir must never be
/// grafted onto a fresh anchor that happens to reuse its seq numbers.
std::uint64_t image_hash(const SealedCheckpoint& img);

util::Bytes encode_full(const SealedCheckpoint& img);
util::Bytes encode_delta(const SealedCheckpoint& img,
                         const SealedCheckpoint& base);

bool is_delta(std::span<const std::uint8_t> blob);
std::uint64_t blob_seq(std::span<const std::uint8_t> blob);

/// Fail-soft decode of a full-image blob: nullopt on any header mismatch,
/// truncation, or trailing garbage.  load() uses this so a torn or foreign
/// spill file is skipped instead of aborting the process.
std::optional<SealedCheckpoint> try_decode_full(
    std::span<const std::uint8_t> blob);
/// CHECK-ing variant for blobs the process itself produced.
SealedCheckpoint decode_full(std::span<const std::uint8_t> blob);
/// Applies a delta blob to the image it was diffed against; returns nullopt
/// when the blob's base seq/hash do not match `base` (stale or foreign).
std::optional<SealedCheckpoint> apply_delta(
    std::span<const std::uint8_t> blob, const SealedCheckpoint& base);

SealedCheckpoint to_sealed(const CheckpointImage& img);
CheckpointImage to_image(const SealedCheckpoint& img);

}  // namespace ckptwire

struct CheckpointStoreStats {
  std::uint64_t saves = 0;
  std::uint64_t loads = 0;
  std::uint64_t bytes_written = 0;  // blob bytes actually committed
  std::uint64_t full_saves = 0;
  std::uint64_t delta_saves = 0;
  std::uint64_t delta_bytes = 0;    // subset of bytes_written that was deltas
  std::uint64_t dropped_saves = 0;  // pre-commit hook vetoes (crash tests)
};

/// -1 resolves the WINDAR_CKPT env var ("sync" disables the background
/// writer), defaulting to asynchronous commit.
bool resolve_ckpt_async(int configured);
/// 0 resolves WINDAR_CKPT_ANCHOR_K, defaulting to a full image every 8
/// checkpoints; 1 means every image is a full anchor (deltas disabled).
std::size_t resolve_ckpt_anchor(std::size_t configured);

class CheckpointStore {
 public:
  /// What the pre-commit test hook tells the store to do: proceed with the
  /// durable write, or abandon the commit as if the process had been killed
  /// between sealing the snapshot and fsyncing the image.
  enum class CommitAction { kProceed, kDrop };
  using PreCommitHook = std::function<CommitAction(int rank)>;

  /// In-memory store; if `spill_dir` is non-empty, images are round-tripped
  /// through files under it.  `anchor_every` = 0 resolves the environment
  /// default (see resolve_ckpt_anchor).
  explicit CheckpointStore(std::string spill_dir = "",
                           std::size_t anchor_every = 0);

  /// Commits a full image (test/legacy convenience; wraps save_sealed).
  void save(int rank, const CheckpointImage& image);

  /// Serializes (delta against the previous commit when possible), durably
  /// writes, and publishes the image.  Returns false iff the pre-commit hook
  /// dropped the commit — the caller must then NOT report the checkpoint as
  /// stable (no CHECKPOINT_ADVANCE may go out).
  bool save_sealed(int rank, SealedCheckpoint image);

  std::optional<CheckpointImage> load(int rank) const;
  bool has(int rank) const;

  /// Removes every image.  With a spill dir this enumerates the directory —
  /// a respawned process has an empty in-memory map but must still clear the
  /// files its predecessors (or an earlier job) left behind.
  void clear();

  CheckpointStoreStats stats() const;

  /// Test-only: invoked after serialization, before the durable write of
  /// every commit.  The crash-window tests block here (to observe that no
  /// advance was published yet) or return kDrop (to simulate a kill between
  /// seal and fsync).
  void set_pre_commit_hook_for_test(PreCommitHook hook);

 private:
  struct RankState {
    bool committed = false;      // at least one image committed
    SealedCheckpoint image;      // last committed image (delta base)
    std::uint64_t hash = 0;      // image_hash(image)
    std::size_t since_anchor = 0;
    bool in_flight = false;      // a save for this rank is serializing/writing
  };

  std::string file_path(int rank) const {
    return spill_dir_ + "/ckpt_rank" + std::to_string(rank) + ".bin";
  }
  std::string delta_path(int rank, std::uint64_t seq) const {
    return spill_dir_ + "/ckpt_rank" + std::to_string(rank) + ".d" +
           std::to_string(seq) + ".bin";
  }
  void remove_rank_deltas(int rank) const;

  std::string spill_dir_;
  std::size_t anchor_every_;
  mutable std::mutex mu_;
  mutable util::WaitSet cv_;  // in-flight guard handoff
  std::unordered_map<int, RankState> ranks_;
  mutable CheckpointStoreStats stats_;
  PreCommitHook pre_commit_;  // set before the job starts, then const
};

}  // namespace windar::ft
