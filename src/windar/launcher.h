// Multi-process job launcher: one real OS process per rank, SIGKILL faults.
//
// The simulated runtime (runtime.h) models a cluster inside one address
// space.  This launcher runs the same protocol stack across *real* process
// boundaries: it fork/execs one worker process per rank (re-invoking the
// embedding binary with `--windar-*` flags), wires them together over
// net::SocketTransport, and injects faults by delivering an actual SIGKILL —
// the kernel reclaims the victim mid-syscall, half-written frames and all —
// then respawns a spare process as the next incarnation, which restores from
// the checkpoint spill directory and drives the ordinary ROLLBACK/RESPONSE
// recovery against the survivors.
//
// Job directory layout (created fresh per job, removed on success):
//   <dir>/data/ep<k>.sock   data-plane sockets (ranks 0..n-1, logger at n)
//   <dir>/ctrl/ep<k>.sock   control-plane sockets (launcher at endpoint n)
//   <dir>/ckpt/             checkpoint spill — the job's stable storage
//
// The control plane is a second SocketTransport (its own socket directory)
// so launcher coordination never flows through Process::dispatch and the
// data-plane stats stay comparable with the simulated fabric's:
//   JOIN     worker -> launcher   "rank k, incarnation i, listener bound"
//   GO       launcher -> worker   start barrier (all n joined; respawned
//                                 incarnations get an immediate GO)
//   DONE     worker -> launcher   rank function returned, payload = digest
//   KILLREQ  worker -> launcher   a chaos kill fired here: which event, the
//                                 revive hint — sent just before the worker
//                                 SIGKILLs itself (or names another target)
//   ALLDONE  launcher -> worker   every rank done and no recovery in flight;
//                                 parked workers may drain and exit
//   BYE      worker -> launcher   final transport stats + app counters
//
// Event-keyed chaos in real processes: the schedule is serialized onto every
// worker's command line and armed against its local data transport.  Every
// generated kill event fires inside the victim's own process (kSend matches
// at the sender, kDeliver at the receiver), so the handler reports the fired
// event to the launcher, flushes, and SIGKILLs itself — a crash at the exact
// protocol point the event names.  Fired one-shot kills are echoed back to
// respawned incarnations as `--windar-chaos-done=` indices so a fresh
// process does not re-arm them (the in-process schedule is job-global; a
// per-process copy without this would re-kill every incarnation forever).
//
// Known deviations from the simulated runtime, by design:
//   * revive_after_packets (a fabric-wide delivered-packet count) cannot be
//     observed across processes; the launcher approximates it as extra
//     restart delay.
//   * a SIGKILLed incarnation's transport stats die with it, so the merged
//     job stats only balance for fault-free runs (see net/transport.h).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/chaos.h"
#include "net/transport.h"
#include "windar/runtime.h"

namespace windar::ft {

// ---------------------------------------------------------------------------
// Chaos schedule <-> command-line spec string
// ---------------------------------------------------------------------------

/// Encodes events as "when,action,endpoint,kind,nth,target,delay_us,revive,
/// repeat" records joined by ';' — compact enough for an argv, parseable
/// without touching the event list's meaning.
std::string encode_chaos(const std::vector<net::ChaosEvent>& events);
std::vector<net::ChaosEvent> decode_chaos(const std::string& spec);

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Everything a worker process needs, parsed from the `--windar-*` flags the
/// launcher put on its command line.
struct WorkerConfig {
  int rank = 0;
  int n = 0;
  ProtocolKind protocol = ProtocolKind::kTdi;
  SendMode mode = SendMode::kNonBlocking;
  std::string dir;  // job directory (data/, ctrl/, ckpt/ live under it)
  std::uint32_t incarnation = 0;
  bool recovering = false;
  std::uint64_t seed = 1;
  std::size_t eager_threshold = 8 * 1024;
  int logger_shards = 1;  // TEL/PES logger shards (endpoints n..n+shards-1)
  std::chrono::milliseconds rollback_retry{25};
  std::chrono::milliseconds rollback_retry_cap{200};
  double timeout_ms = 120000;  // suicide watchdog (launcher died / wedged)
  std::vector<net::ChaosEvent> chaos;  // chaos-done events already removed

  /// argv with every `--windar-*` flag stripped: what the embedding binary
  /// should feed its own option parser to recover its app arguments.
  std::vector<std::string> app_args;

  /// True iff argv carries `--windar-rank=`: this invocation is a worker,
  /// not a user-facing run.  Check this first in main().
  static bool is_worker_invocation(int argc, char** argv);
  static WorkerConfig parse(int argc, char** argv);
};

/// The worker's rank function: same Ctx surface as the simulated runtime,
/// returning this rank's result digest (any deterministic function of the
/// delivered values; the launcher folds them as sum of digest % 1000000007,
/// matching the chaos soak's combine).
using WorkerFn = std::function<std::uint64_t(Ctx&)>;

/// Runs the full worker lifecycle (JOIN, GO, rank function, DONE, park until
/// ALLDONE, BYE) and returns the process exit code.  Call from main() when
/// WorkerConfig::is_worker_invocation() is true and return its result.
int run_worker(const WorkerConfig& cfg, const WorkerFn& fn);

// ---------------------------------------------------------------------------
// Launcher side
// ---------------------------------------------------------------------------

struct LaunchSpec {
  /// Job shape.  Used: n, protocol, mode, seed, eager_threshold,
  /// rollback_retry/cap, restart_delay_ms, logger_storage_delay, chaos,
  /// faults (wall-clock SIGKILLs).  Ignored: latency (real now),
  /// fabric_shards, trace, checkpoint_spill_dir (the job directory's ckpt/
  /// is the stable store).
  JobConfig job;
  /// Forwarded verbatim to every worker before the `--windar-*` flags: the
  /// embedding binary's own app arguments.
  std::vector<std::string> worker_args;
  std::string exe;      // binary to exec; empty = /proc/self/exe
  std::string job_dir;  // empty = fresh /tmp/windar_job_XXXXXX
  bool keep_dir = false;
  double timeout_ms = 120000;  // whole-job watchdog
  bool verbose = false;        // narrate spawns/kills/respawns to stderr
};

struct MultiProcResult {
  bool ok = false;
  std::string error;  // set when !ok
  double wall_ms = 0;
  /// Sum over ranks of (rank digest % 1000000007) — the soak combine.
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> rank_digest;
  std::uint64_t recoveries = 0;  // respawned incarnations (SIGKILLs recovered)
  std::uint64_t chaos_triggers_fired = 0;
  /// Merged over every surviving process's transport (final incarnations +
  /// launcher-side logger); balances only for fault-free jobs.
  net::FabricStats fabric;
  std::uint64_t app_sent = 0;
  std::uint64_t app_delivered = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t logger_batches = 0;       // TEL/PES: kTelLog packets committed
  std::uint64_t logger_determinants = 0;  // TEL/PES (summed over shards)
  std::uint64_t logger_commit_rounds = 0;
  std::uint64_t logger_acks = 0;
};

/// Launches `job.n` worker processes, runs the job (faults and all) to
/// completion, and tears everything down.  Never throws on worker failure —
/// inspect `ok`/`error`.
MultiProcResult run_multiproc_job(const LaunchSpec& spec);

}  // namespace windar::ft
