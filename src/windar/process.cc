#include "windar/process.h"

#include <cstdlib>

#include "util/check.h"
#include "util/clock.h"

namespace windar::ft {

// Breadcrumb recording is only useful together with the stall watchdog and
// costs a small allocation per call, so it shares the same switch.
bool Process::debug_breadcrumbs() {
  static const bool enabled = std::getenv("WINDAR_STALL_DUMP_MS") != nullptr;
  return enabled;
}

Process::Process(net::Fabric& fabric, CheckpointStore& store,
                 ProcessParams params, bool recovering)
    : fabric_(fabric),
      store_(store),
      params_(params),
      proto_(make_protocol(params.protocol, params.rank, params.n)),
      log_(params.n),
      last_send_(static_cast<std::size_t>(params.n), 0),
      last_deliver_(static_cast<std::size_t>(params.n), 0),
      last_ckpt_deliver_(static_cast<std::size_t>(params.n), 0),
      rollback_last_send_(static_cast<std::size_t>(params.n), 0),
      acked_(static_cast<std::size_t>(params.n)),
      peer_epoch_(static_cast<std::size_t>(params.n), 0),
      response_seen_(static_cast<std::size_t>(params.n), 0) {
  WINDAR_CHECK(params_.rank >= 0 && params_.rank < params_.n) << "bad rank";
  if (proto_->uses_event_logger()) {
    WINDAR_CHECK_GE(params_.logger_endpoint, 0)
        << "TEL requires an event logger endpoint";
  }
  // The incarnation reclaims the failed rank's endpoint before anything is
  // broadcast, so responses and resends are not dropped.
  fabric_.revive(params_.rank);
  last_tel_flush_ = Clock::now();

  if (recovering) restore_from_checkpoint();

  if (params_.mode == SendMode::kNonBlocking) {
    recv_thread_ = std::thread([this] { recv_loop(); });
    if (params_.sender_thread) {
      send_thread_ = std::thread([this] { send_loop(); });
    }
  }

  if (recovering) {
    std::scoped_lock lock(mu_);
    metrics_.recoveries = 1;
    broadcast_rollback_locked();
  }
}

Process::~Process() {
  {
    std::scoped_lock lock(mu_);
    closing_ = true;
  }
  queue_a_.poison();
  // Wake a receiver thread blocked on the inbox.  By destruction time the
  // rank is either dead (inbox already poisoned) or the job is over.
  fabric_.endpoint(params_.rank).inbox().poison();
  cv_.notify_all();
  if (recv_thread_.joinable()) recv_thread_.join();
  if (send_thread_.joinable()) send_thread_.join();
}

// ---------------------------------------------------------------------------
// setup / recovery
// ---------------------------------------------------------------------------

void Process::restore_from_checkpoint() {
  recovering_ = true;
  auto image = store_.load(params_.rank);
  if (image) {
    restored_app_ = std::move(image->app);
    util::ByteReader pr(image->proto);
    proto_->restore(pr);
    last_send_ = std::move(image->last_send);
    last_deliver_ = std::move(image->last_deliver);
    delivered_total_ = image->delivered_total;
    last_ckpt_deliver_ = last_deliver_;
    util::ByteReader lr(image->log);
    log_.restore(lr);
    ckpt_seq_ = image->ckpt_seq;
  }
  // No RESPONSE will come from ourselves; suppress re-sends we know our own
  // pre-checkpoint state already covers.
  response_seen_[static_cast<std::size_t>(params_.rank)] = 1;
  responses_pending_ = params_.n - 1;
  logger_reply_pending_ = proto_->uses_event_logger();
  if (proto_->needs_determinant_gather()) {
    proto_->begin_replay(delivered_total_);
    gather_done_ = false;
  }
  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kRecover;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.deliver_seq = delivered_total_;
    ev.restored_deliver = last_deliver_;
    params_.trace->record(std::move(ev));
  }

  const auto me = static_cast<std::size_t>(params_.rank);
  rollback_last_send_[me] = last_deliver_[me];
  // Self-channel recovery: logged self-sends that were not yet delivered
  // must be re-injected locally (no peer will resend them for us).
  log_.for_each_from(params_.rank, last_deliver_[me], [&](const LogEntry& e) {
    net::Packet p = make_app_packet(params_.rank, e.tag, e.send_index, e.meta,
                                    e.payload);
    ++metrics_.resent_msgs;
    fabric_.send(std::move(p));
  });
}

void Process::broadcast_rollback_locked() {
  util::ByteWriter w;
  w.u32_vec(last_deliver_);
  const util::Bytes payload = w.take();
  for (int j = 0; j < params_.n; ++j) {
    if (response_seen_[static_cast<std::size_t>(j)]) continue;
    net::Packet p;
    p.src = params_.rank;
    p.dst = j;
    p.kind = wire(Kind::kRollback);
    p.seq = params_.incarnation;
    p.payload = payload;
    ++metrics_.control_msgs;
    fabric_.send(std::move(p));
  }
  if (logger_reply_pending_) {
    net::Packet q;
    q.src = params_.rank;
    q.dst = params_.logger_endpoint;
    q.kind = wire(Kind::kTelQuery);
    ++metrics_.control_msgs;
    fabric_.send(std::move(q));
  }
  last_rollback_bcast_ = Clock::now();
}

void Process::update_gather_done_locked() {
  if (!proto_->needs_determinant_gather()) {
    gather_done_ = true;
    return;
  }
  gather_done_ = (responses_pending_ == 0 && !logger_reply_pending_);
}

// ---------------------------------------------------------------------------
// transmission helpers
// ---------------------------------------------------------------------------

net::Packet Process::make_app_packet(
    int dst, int tag, SeqNo idx, const util::Bytes& meta,
    std::span<const std::uint8_t> payload) const {
  net::Packet p;
  p.src = params_.rank;
  p.dst = dst;
  p.kind = wire(Kind::kApp);
  p.tag = tag;
  p.seq = idx;
  p.meta = meta;
  p.payload.assign(payload.begin(), payload.end());
  return p;
}

void Process::transmit(net::Packet p) {
  if (params_.mode == SendMode::kNonBlocking && params_.sender_thread) {
    queue_a_.push(std::move(p));
  } else {
    fabric_.send(std::move(p));
  }
}

void Process::send_control(int dst, Kind kind, std::uint64_t seq,
                           util::Bytes payload) {
  net::Packet p;
  p.src = params_.rank;
  p.dst = dst;
  p.kind = wire(kind);
  p.seq = seq;
  p.payload = std::move(payload);
  ++metrics_.control_msgs;
  // Control traffic always goes straight to the fabric: it must flow even
  // when the sender thread is being torn down.
  fabric_.send(std::move(p));
}

void Process::send_ack_locked(int dst, SeqNo idx) {
  send_control(dst, Kind::kDeliverAck, idx, {});
}

bool Process::is_acked_locked(int dst, SeqNo idx) const {
  return acked_[static_cast<std::size_t>(dst)].contains(idx) ||
         rollback_last_send_[static_cast<std::size_t>(dst)] >= idx;
}

void Process::throw_if_dead() {
  if (killed_.load(std::memory_order_acquire)) throw Killed{};
  if (aborted_.load(std::memory_order_acquire)) throw JobAborted{};
}

// ---------------------------------------------------------------------------
// application API
// ---------------------------------------------------------------------------

void Process::send(int dst, int tag, std::span<const std::uint8_t> payload) {
  throw_if_dead();
  WINDAR_CHECK(dst >= 0 && dst < params_.n) << "send to bad rank " << dst;
  if (debug_breadcrumbs()) {
    std::scoped_lock lock(mu_);
    last_api_ = "send dst=" + std::to_string(dst) + " tag=" +
                std::to_string(tag);
  }
  SeqNo idx;
  bool suppressed;
  {
    std::scoped_lock lock(mu_);
    idx = ++last_send_[static_cast<std::size_t>(dst)];

    const std::int64_t t0 = util::now_ns();
    Piggyback pb = proto_->on_send(dst, idx);
    metrics_.track_send_ns += util::now_ns() - t0;

    ++metrics_.app_sent;
    metrics_.piggyback_idents += pb.idents;
    metrics_.piggyback_bytes += pb.blob.size();
    metrics_.payload_bytes += payload.size();

    net::Packet p = make_app_packet(dst, tag, idx, pb.blob, payload);

    LogEntry e;
    e.send_index = idx;
    e.tag = tag;
    e.meta = std::move(pb.blob);
    e.payload.assign(payload.begin(), payload.end());
    log_.append(dst, std::move(e));
    metrics_.log_peak_bytes =
        std::max<std::uint64_t>(metrics_.log_peak_bytes, log_.bytes());
    metrics_.log_peak_entries =
        std::max<std::uint64_t>(metrics_.log_peak_entries, log_.entries());

    if (params_.trace) {
      TraceEvent ev;
      ev.kind = TraceEvent::Kind::kSend;
      ev.rank = params_.rank;
      ev.incarnation = params_.incarnation;
      ev.peer = dst;
      ev.pair_index = idx;
      params_.trace->record(std::move(ev));
    }

    // Algorithm 1 line 10: suppress re-sends the receiver confirmed.
    suppressed = idx <= rollback_last_send_[static_cast<std::size_t>(dst)];
    if (suppressed) {
      ++metrics_.suppressed_sends;
    } else {
      ++metrics_.app_transmitted;
      transmit(std::move(p));
    }
  }

  if (params_.mode == SendMode::kBlocking && !suppressed) {
    // Synchronous-send semantics: wait for the receiver to accept, serving
    // our own inbox meanwhile so recovery traffic keeps flowing.
    const std::int64_t t0 = util::now_ns();
    while (true) {
      {
        std::scoped_lock lock(mu_);
        if (is_acked_locked(dst, idx)) break;
      }
      pump_once(Clock::now() + kTick);
    }
    std::scoped_lock lock(mu_);
    metrics_.send_block_ns += util::now_ns() - t0;
  }
}

mp::Message Process::recv(int src, int tag) {
  throw_if_dead();
  if (debug_breadcrumbs()) {
    std::scoped_lock lock(mu_);
    last_api_ = "recv src=" + std::to_string(src) + " tag=" +
                std::to_string(tag);
  }
  if (params_.mode == SendMode::kNonBlocking) {
    std::unique_lock lock(mu_);
    while (true) {
      const std::size_t at = find_deliverable_locked(src, tag);
      if (at != kNpos) {
        mp::Message msg = deliver_locked(at);
        // Pessimistic logging: hold the delivery until its determinant is
        // confirmed stable (the synchronous-logging latency cost).
        const SeqNo seq = delivered_total_;
        while (proto_->pessimistic() && !proto_->stable_upto(seq)) {
          cv_.wait_for(lock, kTick);
          if (killed_.load(std::memory_order_acquire)) throw Killed{};
          if (aborted_.load(std::memory_order_acquire)) throw JobAborted{};
        }
        return msg;
      }
      cv_.wait_for(lock, kTick);
      if (killed_.load(std::memory_order_acquire)) throw Killed{};
      if (aborted_.load(std::memory_order_acquire)) throw JobAborted{};
    }
  }
  // Blocking mode: single-threaded; pump the inbox ourselves.
  while (true) {
    mp::Message msg;
    bool delivered = false;
    SeqNo seq = 0;
    {
      std::scoped_lock lock(mu_);
      const std::size_t at = find_deliverable_locked(src, tag);
      if (at != kNpos) {
        msg = deliver_locked(at);
        delivered = true;
        seq = delivered_total_;
      }
    }
    if (delivered) {
      while (true) {
        {
          std::scoped_lock lock(mu_);
          if (!proto_->pessimistic() || proto_->stable_upto(seq)) break;
        }
        pump_once(Clock::now() + kTick);
      }
      return msg;
    }
    pump_once(Clock::now() + kTick);
  }
}

bool Process::probe(int src, int tag) {
  throw_if_dead();
  if (params_.mode == SendMode::kBlocking) {
    // Single-threaded: opportunistically drain already-arrived packets.
    while (auto p = fabric_.endpoint(params_.rank).inbox().try_pop()) {
      std::scoped_lock lock(mu_);
      handle_packet_locked(std::move(*p));
    }
  }
  std::scoped_lock lock(mu_);
  return find_deliverable_locked(src, tag) != kNpos;
}

void Process::checkpoint(std::span<const std::uint8_t> app_state) {
  throw_if_dead();
  std::scoped_lock lock(mu_);
  CheckpointImage image;
  image.ckpt_seq = ++ckpt_seq_;
  image.app.assign(app_state.begin(), app_state.end());
  util::ByteWriter pw;
  proto_->save(pw);
  image.proto = pw.take();
  image.last_send = last_send_;
  image.last_deliver = last_deliver_;
  image.delivered_total = delivered_total_;
  util::ByteWriter lw;
  log_.save(lw);
  image.log = lw.take();
  store_.save(params_.rank, image);
  ++metrics_.checkpoints;
  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kCheckpoint;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.deliver_seq = delivered_total_;
    params_.trace->record(std::move(ev));
  }

  // Algorithm 1 lines 34-37: let peers release logs we can never replay.
  for (int k = 0; k < params_.n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    if (last_deliver_[ks] <= last_ckpt_deliver_[ks]) continue;
    if (k == params_.rank) {
      // Self channel: release locally.
      metrics_.log_released_entries +=
          log_.release_upto(k, last_deliver_[ks]);
      proto_->on_peer_checkpoint(k, delivered_total_);
    } else {
      util::ByteWriter w;
      w.u32(delivered_total_);
      send_control(k, Kind::kCheckpointAdvance, last_deliver_[ks], w.take());
    }
    last_ckpt_deliver_[ks] = last_deliver_[ks];
  }
  if (proto_->uses_event_logger()) {
    // The logger can discard determinants the checkpoint now covers.
    send_control(params_.logger_endpoint, Kind::kCheckpointAdvance,
                 delivered_total_, {});
  }
}

// ---------------------------------------------------------------------------
// delivery
// ---------------------------------------------------------------------------

std::size_t Process::find_deliverable_locked(int src, int tag) const {
  if (!gather_done_) return kNpos;  // PWD protocols: determinants first
  for (std::size_t i = 0; i < queue_b_.size(); ++i) {
    const QueuedMsg& m = queue_b_[i];
    if (src != mp::kAnySource && m.src != src) continue;
    if (tag != mp::kAnyTag && m.tag != tag) continue;
    // Per-pair FIFO (Algorithm 1 line 19).
    if (m.send_index != last_deliver_[static_cast<std::size_t>(m.src)] + 1) {
      continue;
    }
    if (!proto_->deliverable(m, delivered_total_)) continue;
    return i;
  }
  return kNpos;
}

mp::Message Process::deliver_locked(std::size_t at) {
  QueuedMsg m = std::move(queue_b_[at]);
  queue_b_.erase(queue_b_.begin() + static_cast<std::ptrdiff_t>(at));

  ++last_deliver_[static_cast<std::size_t>(m.src)];
  ++delivered_total_;

  if (params_.trace) {
    TraceEvent ev;
    ev.kind = TraceEvent::Kind::kDeliver;
    ev.rank = params_.rank;
    ev.incarnation = params_.incarnation;
    ev.peer = m.src;
    ev.pair_index = m.send_index;
    ev.deliver_seq = delivered_total_;
    ev.depend_self = proto_->depend_on_receiver(m);
    params_.trace->record(std::move(ev));
  }

  const std::int64_t t0 = util::now_ns();
  proto_->on_deliver(m.src, m.send_index, delivered_total_, m.meta);
  metrics_.track_deliver_ns += util::now_ns() - t0;
  ++metrics_.app_delivered;

  if (proto_->uses_event_logger()) {
    // Ship the fresh determinant to stable storage immediately ([5] logs
    // each event as it happens); batching folds bursts together.
    flush_tel_locked(false);
  }

  if (params_.mode == SendMode::kBlocking && !m.eager_acked) {
    // Rendezvous completion: the sender is released only now that the
    // application has actually consumed the large payload.
    send_ack_locked(m.src, m.send_index);
  }

  mp::Message out;
  out.src = m.src;
  out.tag = m.tag;
  out.payload = std::move(m.payload);
  return out;
}

// ---------------------------------------------------------------------------
// event handling
// ---------------------------------------------------------------------------

void Process::pump_once(Clock::time_point deadline) {
  throw_if_dead();
  auto p = fabric_.endpoint(params_.rank).inbox().pop_until(deadline);
  if (!p && fabric_.endpoint(params_.rank).inbox().poisoned()) {
    // Either we were fault-injected (throw Killed) or the job is being torn
    // down around us (throw JobAborted).
    if (killed_.load(std::memory_order_acquire)) throw Killed{};
    throw JobAborted{};
  }
  std::scoped_lock lock(mu_);
  if (p) handle_packet_locked(std::move(*p));
  periodic_locked();
}

bool Process::handle_packet_locked(net::Packet&& p) {
  switch (static_cast<Kind>(p.kind)) {
    case Kind::kApp:
      handle_app_locked(std::move(p));
      return true;
    case Kind::kDeliverAck:
      acked_[static_cast<std::size_t>(p.src)].add(static_cast<SeqNo>(p.seq));
      return true;  // a blocking send may be waiting on this
    case Kind::kCheckpointAdvance: {
      metrics_.log_released_entries +=
          log_.release_upto(p.src, static_cast<SeqNo>(p.seq));
      util::ByteReader r(p.payload);
      proto_->on_peer_checkpoint(p.src, r.u32());
      return false;
    }
    case Kind::kRollback: {
      util::ByteReader r(p.payload);
      handle_rollback_locked(p.src, static_cast<std::uint32_t>(p.seq),
                             r.u32_vec());
      return false;
    }
    case Kind::kResponse:
      handle_response_locked(p.src, std::move(p));
      return true;  // may complete the determinant gather / unblock sends
    case Kind::kTelAck:
      proto_->on_logger_ack(static_cast<SeqNo>(p.seq));
      // A pessimistic delivery may be holding for this stability advance.
      return proto_->pessimistic();
    case Kind::kTelQueryReply: {
      util::ByteReader r(p.payload);
      const auto dets = read_determinants(r);
      proto_->add_replay_determinants(dets);
      logger_reply_pending_ = false;
      update_gather_done_locked();
      return true;
    }
    default:
      WINDAR_CHECK(false) << "rank " << params_.rank
                          << " got unexpected kind " << p.kind;
  }
  return false;
}

void Process::handle_app_locked(net::Packet&& p) {
  const int src = p.src;
  const auto idx = static_cast<SeqNo>(p.seq);
  const bool ack_enabled = params_.mode == SendMode::kBlocking;

  if (idx <= last_deliver_[static_cast<std::size_t>(src)]) {
    // Repetitive message (paper §III.C.3): already delivered — discard, but
    // re-ack so a blocked sender is released.
    ++metrics_.dup_dropped;
    if (ack_enabled) send_ack_locked(src, idx);
    return;
  }
  for (const QueuedMsg& q : queue_b_) {
    if (q.src == src && q.send_index == idx) {
      ++metrics_.dup_dropped;  // duplicate of a still-queued message
      if (ack_enabled && q.eager_acked) {
        // The original's eager ack may have gone to a sender incarnation
        // that has since died; the retransmitting incarnation is blocked on
        // this ack, so repeat it (acks are idempotent).
        send_ack_locked(src, idx);
      }
      return;
    }
  }
  QueuedMsg m;
  m.src = src;
  m.tag = p.tag;
  m.send_index = idx;
  m.meta = std::move(p.meta);
  m.payload = std::move(p.payload);
  if (ack_enabled &&
      (m.payload.size() <= params_.eager_threshold || src == params_.rank)) {
    // Eager acceptance; self-channel messages are always eager (the sender
    // is the thread that will eventually consume them).
    send_ack_locked(src, idx);
    m.eager_acked = true;
  }
  queue_b_.push_back(std::move(m));
}

void Process::handle_rollback_locked(int from, std::uint32_t peer_epoch,
                                     const std::vector<SeqNo>& ldi) {
  WINDAR_CHECK_EQ(ldi.size(), static_cast<std::size_t>(params_.n))
      << "bad rollback vector";
  auto& epoch = peer_epoch_[static_cast<std::size_t>(from)];
  if (peer_epoch >= epoch) {
    epoch = peer_epoch;
    // The peer rolled back: any suppression watermark learned from an
    // earlier incarnation overstates what it has delivered.  Reset to the
    // restored value it just announced so rolling-forward re-sends reach it.
    rollback_last_send_[static_cast<std::size_t>(from)] =
        ldi[static_cast<std::size_t>(params_.rank)];
  }

  // Algorithm 1 lines 47-51 — but resends go out BEFORE the response.  A
  // RESPONSE therefore certifies that every logged message the peer needs
  // is already in flight; if we crash mid-resend the peer never sees our
  // response, keeps retrying its ROLLBACK, and our incarnation serves it.
  log_.for_each_from(from, ldi[static_cast<std::size_t>(params_.rank)],
                     [&](const LogEntry& e) {
                       net::Packet p = make_app_packet(
                           from, e.tag, e.send_index, e.meta, e.payload);
                       ++metrics_.resent_msgs;
                       fabric_.send(std::move(p));
                     });

  util::ByteWriter w;
  w.u32(last_deliver_[static_cast<std::size_t>(from)]);
  write_determinants(w, proto_->determinants_for(from));
  send_control(from, Kind::kResponse, params_.incarnation, w.take());
}

void Process::handle_response_locked(int from, net::Packet&& p) {
  util::ByteReader r(p.payload);
  const SeqNo their_deliver_of_mine = r.u32();
  const auto dets = read_determinants(r);
  const auto resp_epoch = static_cast<std::uint32_t>(p.seq);
  auto& epoch = peer_epoch_[static_cast<std::size_t>(from)];
  auto& watermark = rollback_last_send_[static_cast<std::size_t>(from)];
  if (resp_epoch > epoch) {
    // First contact with a newer incarnation of the peer.
    epoch = resp_epoch;
    watermark = their_deliver_of_mine;
  } else if (resp_epoch == epoch) {
    watermark = std::max(watermark, their_deliver_of_mine);
  }
  // A response from an older incarnation still carries valid determinants
  // (they are facts about past deliveries), just a stale watermark.
  proto_->add_replay_determinants(dets);
  if (recovering_ && !response_seen_[static_cast<std::size_t>(from)]) {
    response_seen_[static_cast<std::size_t>(from)] = 1;
    --responses_pending_;
    update_gather_done_locked();
  }
}

void Process::periodic_locked() {
  const auto now = Clock::now();
  if (recovering_ && (responses_pending_ > 0 || logger_reply_pending_) &&
      now - last_rollback_bcast_ >= params_.rollback_retry) {
    // Peers that were down when we broadcast (simultaneous failures) never
    // saw the ROLLBACK; retry until everyone answered.
    broadcast_rollback_locked();
  }
  if (proto_->uses_event_logger() &&
      now - last_tel_flush_ >= params_.tel_flush_interval) {
    flush_tel_locked(false);
    last_tel_flush_ = now;
  }
}

void Process::flush_tel_locked(bool force) {
  while (true) {
    auto batch = proto_->take_unlogged(params_.tel_batch);
    if (batch.empty()) return;
    util::ByteWriter w;
    write_determinants(w, batch);
    send_control(params_.logger_endpoint, Kind::kTelLog, 0, w.take());
    if (!force && batch.size() < params_.tel_batch) return;
  }
}

// ---------------------------------------------------------------------------
// helper threads (non-blocking mode)
// ---------------------------------------------------------------------------

void Process::recv_loop() {
  auto& inbox = fabric_.endpoint(params_.rank).inbox();
  while (true) {
    // Idle-block unless timed work is pending (rollback retries during
    // recovery) — helper-thread wakeups are pure overhead otherwise.
    Clock::duration tick = std::chrono::milliseconds(100);
    {
      std::scoped_lock lock(mu_);
      if (recovering_ && (responses_pending_ > 0 || logger_reply_pending_)) {
        tick = std::chrono::milliseconds(1);
      }
    }
    auto p = inbox.pop_until(Clock::now() + tick);
    bool wake = false;
    {
      std::scoped_lock lock(mu_);
      if (closing_) return;
      if (p) {
        wake = handle_packet_locked(std::move(*p));
      } else if (inbox.poisoned()) {
        if (!killed_.load(std::memory_order_acquire)) {
          aborted_.store(true, std::memory_order_release);
        }
        cv_.notify_all();
        return;
      }
      periodic_locked();
    }
    if (wake) cv_.notify_all();
  }
}

void Process::send_loop() {
  while (auto p = queue_a_.pop()) {
    fabric_.send(std::move(*p));
  }
}

// ---------------------------------------------------------------------------
// runtime-facing
// ---------------------------------------------------------------------------

void Process::poison() {
  killed_.store(true, std::memory_order_release);
  queue_a_.poison();
  cv_.notify_all();
}

void Process::park(const std::atomic<bool>& all_done) {
  while (!all_done.load(std::memory_order_acquire)) {
    if (params_.mode == SendMode::kNonBlocking) {
      // The receiver thread keeps serving; just stay alive.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      throw_if_dead();
    } else {
      pump_once(Clock::now() + std::chrono::milliseconds(1));
    }
  }
}

Metrics Process::metrics() const {
  std::scoped_lock lock(mu_);
  return metrics_;
}

SeqNo Process::delivered_total() const {
  std::scoped_lock lock(mu_);
  return delivered_total_;
}

std::size_t Process::log_entries() const {
  std::scoped_lock lock(mu_);
  return log_.entries();
}

std::size_t Process::receive_queue_depth() const {
  std::scoped_lock lock(mu_);
  return queue_b_.size();
}

std::string Process::debug_state() const {
  std::scoped_lock lock(mu_);
  std::string out = "[" + last_api_ + "] rank " + std::to_string(params_.rank) + "." +
                    std::to_string(params_.incarnation) +
                    (recovering_ ? " RECOVERING" : "") +
                    (gather_done_ ? "" : " gather-pending") +
                    " resp_pending=" + std::to_string(responses_pending_) +
                    " delivered=" + std::to_string(delivered_total_) +
                    " queueB=" + std::to_string(queue_b_.size()) + " [";
  for (const QueuedMsg& m : queue_b_) {
    out += " (" + std::to_string(m.src) + "#" +
           std::to_string(m.send_index) + " t" + std::to_string(m.tag) + ")";
    if (out.size() > 300) {
      out += " ...";
      break;
    }
  }
  out += " ] " + proto_->debug_string() + " last_deliver=";
  for (SeqNo v : last_deliver_) out += std::to_string(v) + ",";
  out += " last_send=";
  for (SeqNo v : last_send_) out += std::to_string(v) + ",";
  out += " rb_last_send=";
  for (SeqNo v : rollback_last_send_) out += std::to_string(v) + ",";
  return out;
}

}  // namespace windar::ft
