#include "windar/process.h"

#include <cstdlib>
#include <thread>

#include "util/check.h"
#include "util/wait.h"

namespace windar::ft {

// Breadcrumb recording is only useful together with the stall watchdog and
// costs a small allocation per call, so it shares the same switch.
bool Process::debug_breadcrumbs() {
  static const bool enabled = std::getenv("WINDAR_STALL_DUMP_MS") != nullptr;
  return enabled;
}

void Process::breadcrumb(const char* api, int a, int b) {
  if (!debug_breadcrumbs()) return;
  std::scoped_lock lock(dbg_mu_);
  last_api_ = std::string(api) + "=" + std::to_string(a) + " tag=" +
              std::to_string(b);
}

Process::Process(net::Transport& transport, CheckpointStore& store,
                 ProcessParams params, bool recovering)
    : transport_(transport),
      store_(store),
      params_(params),
      channels_(params_.n, params_.rank),
      log_(params_.n),
      tracker_(make_protocol(params_.protocol, params_.rank, params_.n)),
      send_path_(transport_, params_, life_, channels_, tracker_, log_,
                 metrics_),
      recovery_(transport_, store_, params_, channels_, log_, tracker_,
                send_path_, metrics_),
      delivery_(params_, channels_, tracker_, recovery_.gate(), metrics_) {
  WINDAR_CHECK(params_.rank >= 0 && params_.rank < params_.n) << "bad rank";
  if (tracker_.uses_event_logger()) {
    WINDAR_CHECK_GE(params_.logger_endpoint, 0)
        << "TEL requires an event logger endpoint";
  }
  delivery_.set_hooks(DeliveryQueue::Hooks{
      [this](int dst, SeqNo idx) {
        send_path_.send_control(dst, Kind::kDeliverAck, idx, {});
      },
      [this] { flush_tel(false); },
  });
  send_path_.set_callbacks(SendPath::Callbacks{
      [this](net::Packet&& p) { return dispatch(std::move(p)); },
      [this] { periodic(); },
      [this] { delivery_.notify(); },
      [this] { return recovery_.work_pending(); },
      [this] {
        if (!life_.killed.load(std::memory_order_acquire)) {
          life_.aborted.store(true, std::memory_order_release);
        }
        delivery_.notify();
      },
  });

  // The incarnation reclaims the failed rank's endpoint before anything is
  // broadcast, so responses and resends are not dropped.
  transport_.revive(params_.rank);
  last_tel_flush_ = Clock::now();

  if (recovering) recovery_.restore_from_checkpoint();

  send_path_.start();
  // Background checkpoint writer: only in non-blocking mode (blocking mode
  // is single-threaded by contract) and only when asked for.  Without it,
  // checkpoint() commits inline.
  if (params_.mode == SendMode::kNonBlocking && params_.ckpt_async) {
    recovery_.start_writer();
  }

  if (recovering) recovery_.announce_rollback();
}

Process::~Process() {
  // Clean teardown drains queued checkpoints (the app was promised them); a
  // fault-injected one drops them — the snapshots died with the
  // incarnation, and since no CHECKPOINT_ADVANCE went out for them, peers
  // kept every log entry the next incarnation could need.
  recovery_.stop_writer(!life_.killed.load(std::memory_order_acquire));
  send_path_.stop();
}

// ---------------------------------------------------------------------------
// packet routing
// ---------------------------------------------------------------------------

bool Process::dispatch(net::Packet&& p) {
  switch (static_cast<Kind>(p.kind)) {
    case Kind::kApp:
      delivery_.admit(std::move(p));
      return true;
    case Kind::kDeliverAck:
      channels_.record_ack(p.src, static_cast<SeqNo>(p.seq));
      return true;  // a blocking send may be waiting on this
    case Kind::kCheckpointAdvance:
      recovery_.handle_checkpoint_advance(std::move(p));
      return false;
    case Kind::kRollback:
      recovery_.handle_rollback(p.src, static_cast<std::uint32_t>(p.seq),
                                decode_rollback_body(p.payload));
      return false;
    case Kind::kResponse:
      recovery_.handle_response(p.src, std::move(p));
      return true;  // may complete the determinant gather / unblock sends
    case Kind::kTelAck:
      tracker_.with([&](LoggingProtocol& proto) {
        proto.on_logger_ack(static_cast<SeqNo>(p.seq));
      });
      // A pessimistic delivery may be holding for this stability advance.
      return tracker_.pessimistic();
    case Kind::kTelQueryReply:
      recovery_.handle_tel_query_reply(std::move(p));
      return true;
    default:
      WINDAR_CHECK(false) << "rank " << params_.rank
                          << " got unexpected kind " << p.kind;
  }
  return false;
}

void Process::periodic() {
  recovery_.periodic();
  if (tracker_.uses_event_logger()) {
    bool due = false;
    {
      std::scoped_lock lock(tel_mu_);
      const auto now = Clock::now();
      if (now - last_tel_flush_ >= params_.tel_flush_interval) {
        last_tel_flush_ = now;
        due = true;
      }
    }
    if (due) flush_tel(false);
  }
}

void Process::flush_tel(bool force) {
  while (true) {
    auto batch = tracker_.with([&](LoggingProtocol& proto) {
      return proto.take_unlogged(params_.tel_batch);
    });
    if (batch.empty()) return;
    util::ByteWriter w;
    write_determinants(w, batch);
    send_path_.send_control(params_.logger_endpoint, Kind::kTelLog, 0,
                            w.take());
    if (!force && batch.size() < params_.tel_batch) return;
  }
}

// ---------------------------------------------------------------------------
// application API
// ---------------------------------------------------------------------------

void Process::send(int dst, int tag, std::span<const std::uint8_t> payload) {
  life_.throw_if_dead();
  WINDAR_CHECK(dst >= 0 && dst < params_.n) << "send to bad rank " << dst;
  breadcrumb("send dst", dst, tag);
  send_path_.send_app(dst, tag, payload);
}

mp::Message Process::recv(int src, int tag) {
  life_.throw_if_dead();
  breadcrumb("recv src", src, tag);
  if (params_.mode == SendMode::kNonBlocking) {
    return delivery_.recv_wait(src, tag, life_);
  }
  // Blocking mode: single-threaded; pump the inbox ourselves.
  const bool pessimistic = tracker_.pessimistic();
  while (true) {
    if (auto d = delivery_.try_deliver(src, tag)) {
      // Pessimistic logging: hold the delivery until its determinant is
      // confirmed stable (the synchronous-logging latency cost).
      while (pessimistic && !tracker_.with([&](const LoggingProtocol& p) {
               return p.stable_upto(d->deliver_seq);
             })) {
        send_path_.pump_once(Clock::now() + std::chrono::microseconds(2000));
      }
      return std::move(d->msg);
    }
    send_path_.pump_once(Clock::now() + std::chrono::microseconds(2000));
  }
}

bool Process::probe(int src, int tag) {
  life_.throw_if_dead();
  if (params_.mode == SendMode::kBlocking) {
    // Single-threaded: opportunistically drain already-arrived packets.
    while (auto p = transport_.endpoint(params_.rank).inbox().try_pop()) {
      dispatch(std::move(*p));
    }
  }
  return delivery_.has_deliverable(src, tag);
}

void Process::checkpoint(std::span<const std::uint8_t> app_state) {
  life_.throw_if_dead();
  recovery_.checkpoint(app_state);
}

// ---------------------------------------------------------------------------
// runtime-facing
// ---------------------------------------------------------------------------

void Process::poison() {
  life_.killed.store(true, std::memory_order_release);
  send_path_.poison();
  delivery_.notify();
}

void Process::park(const std::atomic<bool>& all_done) {
  // Cooperative tasks poll lazily: thousands of parked ranks spinning a 1ms
  // loop would eat the whole worker pool, and nothing here is
  // latency-sensitive (the helper fiber keeps serving recovery traffic).
  const auto tick = util::on_coop_task() ? std::chrono::milliseconds(20)
                                         : std::chrono::milliseconds(1);
  while (!all_done.load(std::memory_order_acquire)) {
    if (params_.mode == SendMode::kNonBlocking) {
      // The receiver thread keeps serving; just stay alive.
      util::coop_sleep_for(tick);
      life_.throw_if_dead();
    } else {
      send_path_.pump_once(Clock::now() + std::chrono::milliseconds(1));
    }
  }
}

std::string Process::debug_state() const {
  std::string api;
  {
    std::scoped_lock lock(dbg_mu_);
    api = last_api_;
  }
  const auto& inbox = transport_.endpoint(params_.rank).inbox();
  std::string out = "[" + api + "] rank " + std::to_string(params_.rank) +
                    "." + std::to_string(params_.incarnation) +
                    recovery_.debug_string() +
                    " inbox=" + std::to_string(inbox.size()) +
                    (inbox.poisoned() ? "P" : "") +
                    " delivered=" + std::to_string(channels_.delivered_total()) +
                    " " + delivery_.debug_string() + " " +
                    tracker_.with([](const LoggingProtocol& proto) {
                      return proto.debug_string();
                    }) +
                    " " + channels_.debug_string();
  return out;
}

}  // namespace windar::ft
