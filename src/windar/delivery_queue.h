// The receiving queue and delivery gate (the paper's queue B).
//
// Messages admitted from the wire park here until the application asks for
// them; `deliver` pops the first message that passes the source/tag filters,
// the per-pair FIFO constraint (Algorithm 1 line 19), and the protocol's
// ordering gate.  During a PWD protocol's determinant gather the external
// `gate_open` flag closes the whole queue (nothing may be delivered until
// replay knowledge is complete).
//
// Lock architecture: the queue's mutex serializes `admit` (handler thread)
// against the find/deliver path (application thread) — both the
// duplicate-of-queued scan and the pop/counter-advance must be atomic with
// respect to each other, or a racing duplicate could be parked forever.  The
// condition variable carries application-thread wakeups (new arrivals,
// gather completion, stability advances); waits are bounded by kTick so a
// missed notify costs one tick, never a hang.  Lock order: the queue mutex
// may be held while taking ChannelState, ProtocolHost, or metrics locks,
// never the reverse.
#pragma once

#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mp/comm.h"
#include "net/packet.h"
#include "windar/channel_state.h"
#include "windar/fault.h"
#include "windar/metrics.h"
#include "util/wait.h"
#include "windar/params.h"
#include "windar/protocol.h"

namespace windar::ft {

class DeliveryQueue {
 public:
  struct Hooks {
    /// Sends a kDeliverAck for (dst, send_index) — blocking-mode acceptance.
    std::function<void(int, SeqNo)> send_ack;
    /// Invoked after each delivery when the protocol uses the event logger,
    /// to ship the fresh determinant promptly.
    std::function<void()> flush_determinants;
  };

  /// `gate_open` is owned by the caller (RecoveryManager's gather-done flag,
  /// or a test-local atomic) and read without the queue lock.
  DeliveryQueue(const ProcessParams& params, ChannelState& channels,
                ProtocolHost& tracker, const std::atomic<bool>& gate_open,
                SharedMetrics& metrics);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Admits an incoming kApp packet: duplicate filtering against both the
  /// delivered watermark and the parked messages, eager-ack decision, park.
  void admit(net::Packet&& p);

  /// Blocks until a matching message is deliverable, delivers it, and (for
  /// pessimistic protocols) holds it until its determinant is stable.
  mp::Message recv_wait(int src, int tag, const LifeFlags& life);

  struct Delivered {
    mp::Message msg;
    SeqNo deliver_seq = 0;
  };

  /// Single non-waiting find+deliver step (blocking mode, which pumps the
  /// inbox between attempts itself).
  std::optional<Delivered> try_deliver(int src, int tag);

  /// Non-destructive probe: would recv(src, tag) find a message now?
  bool has_deliverable(int src, int tag) const;

  /// Wakes the application thread (new arrival, gather done, teardown).
  void notify();

  std::size_t depth() const;
  std::string debug_string() const;

 private:
  std::size_t find_locked(int src, int tag) const;
  mp::Message deliver_locked(std::size_t at, SeqNo& deliver_seq);

  const ProcessParams& params_;
  ChannelState& channels_;
  ProtocolHost& tracker_;
  const std::atomic<bool>& gate_open_;
  SharedMetrics& metrics_;
  Hooks hooks_;
  const bool pessimistic_;
  const bool uses_event_logger_;

  mutable std::mutex mu_;
  // Hybrid wakeup: the application side may be an OS thread or a cooperative
  // task; admit/notify come from handler threads or fibers — WaitSet wakes
  // either kind.  Waits stay bounded by kTick, so the missed-notify story is
  // unchanged from the condition_variable version.
  util::WaitSet cv_;
  std::deque<QueuedMsg> queue_;
  // Reused by find_locked's channel snapshot (guarded by mu_; mutable because
  // the find path is const).
  mutable std::vector<SeqNo> deliver_scratch_;

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  static constexpr std::chrono::microseconds kTick{2000};
};

}  // namespace windar::ft
