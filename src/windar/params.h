// Per-rank configuration of the recovery engine, shared by its components.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

#include "windar/trace.h"
#include "windar/wire.h"

namespace windar::ft {

struct ProcessParams {
  int rank = 0;
  int n = 0;
  ProtocolKind protocol = ProtocolKind::kTdi;
  SendMode mode = SendMode::kNonBlocking;
  std::size_t eager_threshold = 8 * 1024;
  // ROLLBACK re-broadcast: first retry after `rollback_retry`, then doubled
  // per retry up to `rollback_retry_cap` (capped exponential backoff; a
  // peer that stays down for long must not turn the gather window into a
  // fixed-interval broadcast storm).
  std::chrono::milliseconds rollback_retry{25};
  std::chrono::milliseconds rollback_retry_cap{200};
  // This rank's event-logger shard endpoint (>= 0 when the protocol uses
  // the logger).  With sharding the runtime resolves it per rank via
  // logger_shard_endpoint(n, rank, shards); a rank talks to exactly one
  // shard for logs, queries, and checkpoint advances alike.
  int logger_endpoint = -1;
  std::size_t tel_batch = 32;
  std::chrono::microseconds tel_flush_interval{50};
  // Paper Fig. 4(b) uses a dedicated sending thread because real transports
  // block in send().  The simulated fabric's send never blocks, so by
  // default the application thread hands packets to the fabric directly and
  // the sending thread is opt-in (it only adds a scheduling hop here).
  bool sender_thread = false;
  // Asynchronous checkpoint commit: checkpoint() seals a cheap in-memory
  // snapshot and a background writer serializes + durably writes it, with
  // CHECKPOINT_ADVANCE emitted strictly after durability.  Only effective in
  // non-blocking mode (blocking mode is single-threaded and stays
  // synchronous); disabled, the whole commit runs on the application thread.
  bool ckpt_async = true;
  // Survivor non-stop recovery: a ROLLBACK answer resends at most
  // `replay_burst` logged messages inline, then continues in bursts per
  // periodic tick, so a survivor's dispatch thread never stalls on a long
  // replay (or on transport backpressure to the recovering rank).  While a
  // replay is draining, new application sends to that rank park in a
  // bounded holdback queue of `holdback_cap` packets (overflow transmits
  // directly; per-pair FIFO delivery reorders at the receiver).
  std::size_t replay_burst = 128;
  std::size_t holdback_cap = 512;
  // Optional causal-event recorder (owned by the caller, shared by ranks).
  TraceSink* trace = nullptr;
  std::uint32_t incarnation = 0;  // 0 = original process
};

}  // namespace windar::ft
