// Fault-tolerant job runtime.
//
// run_job spawns one supervisor thread per rank.  The supervisor constructs
// the rank's Process (fresh, or recovering from the last checkpoint), runs
// the application function, and — when the fault injector poisons the rank —
// catches Killed, waits the restart delay (a spare node taking over), and
// relaunches an incarnation.  Ranks that finish park their Process to keep
// serving ROLLBACK/RESPONSE traffic until every rank is done, so a late
// recovery can still pull logged messages from completed peers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exec/scheduler.h"
#include "mp/comm.h"
#include "net/latency.h"
#include "windar/checkpoint.h"
#include "windar/metrics.h"
#include "windar/process.h"
#include "windar/trace.h"
#include "windar/wire.h"

namespace windar::ft {

/// Kill `rank` this many milliseconds after job start.  Events on the same
/// rank repeat (the incarnation is killed again); events at the same time on
/// different ranks model simultaneous failures (paper §III.D, Fig. 2).
///
/// Wall-clock events drift with host speed (a TSan run hits a different
/// protocol point than a release run); prefer the event-keyed `chaos`
/// schedule below for tests that must land at a protocol-relative point.
struct FaultEvent {
  int rank = 0;
  double at_ms = 0;
};

struct JobConfig {
  int n = 4;
  ProtocolKind protocol = ProtocolKind::kTdi;
  SendMode mode = SendMode::kNonBlocking;
  net::LatencyModel latency{};
  std::uint64_t seed = 1;
  // Fabric scheduler shards (dst % shards).  0 resolves the default:
  // WINDAR_FABRIC_SHARDS if set, else min(4, hardware_concurrency).  Use 1
  // for tests that need the single-scheduler global delivery order.
  int fabric_shards = 0;
  // Supervisor execution model.  kThreads: one OS thread per rank (seed
  // behaviour).  kCoop: rank supervisors run as cooperative tasks on a fixed
  // exec::Scheduler pool of `exec_workers` threads (0 = default), and the
  // engine's helper loops run as fibers too — total thread count is bounded
  // by the pool, not by n, which is what lets a 4096-rank job run on 4
  // cores.  kAuto defers to the WINDAR_EXEC environment variable.
  exec::ExecModel exec_model = exec::ExecModel::kAuto;
  int exec_workers = 0;
  std::vector<FaultEvent> faults;
  // Event-keyed fault schedule (see fault.h helpers: kill_on_delivery,
  // kill_on_send, duplicate_on_send, delay_on_send).  Kill events whose
  // endpoint is a rank go through the same poison-then-kill path as
  // `faults`; a kill landing while the rank's incarnation is still being
  // constructed is deferred and applied the moment construction finishes.
  std::vector<net::ChaosEvent> chaos;
  double restart_delay_ms = 10;  // failure detection + spare-node takeover
  // ROLLBACK re-broadcast pacing: first retry after `rollback_retry`, then
  // capped exponential backoff up to `rollback_retry_cap` (keeps a long
  // outage from turning the gather window into a broadcast storm).
  std::chrono::milliseconds rollback_retry{25};
  std::chrono::milliseconds rollback_retry_cap{200};
  std::size_t eager_threshold = 8 * 1024;
  std::chrono::microseconds logger_storage_delay{5};
  // TEL/PES event-logger shards (shard = sender rank % shards, endpoints
  // n..n+shards-1).  0 resolves the default: WINDAR_LOGGER_SHARDS if set,
  // else 1 (the seed's single-logger deployment).  Clamped to n.
  int logger_shards = 0;
  std::string checkpoint_spill_dir;  // empty: in-memory stable store
  // Checkpoint plane knobs.  ckpt_async: -1 resolves the WINDAR_CKPT env
  // var (default asynchronous background commit); 0/1 force sync/async.
  // ckpt_delta_anchor: full image every K commits, deltas between (0
  // resolves WINDAR_CKPT_ANCHOR_K, default 8; 1 disables deltas).
  int ckpt_async = -1;
  std::size_t ckpt_delta_anchor = 0;
  // Survivor non-stop recovery pacing (see ProcessParams::replay_burst /
  // holdback_cap); the defaults match ProcessParams.
  std::size_t replay_burst = 128;
  std::size_t holdback_cap = 512;
  TraceSink* trace = nullptr;        // optional causal-event recorder
};

struct JobResult {
  double wall_ms = 0;
  Metrics total;                   // merged over ranks and incarnations
  std::vector<Metrics> per_rank;   // merged over incarnations
  net::FabricStats fabric;
  CheckpointStoreStats checkpoints;
  std::uint64_t chaos_triggers_fired = 0;  // chaos events that fired
  std::uint64_t logger_batches = 0;      // TEL/PES: kTelLog packets committed
  std::uint64_t logger_determinants = 0; // TEL/PES (still stored at end)
  std::uint64_t logger_commit_rounds = 0;  // storage-delay commits taken
  std::uint64_t logger_acks = 0;           // kTelAck packets sent
};

/// The application's handle: an mp::Comm (so collectives and the NPB
/// skeletons run unchanged) plus the checkpoint/restore surface.
class Ctx final : public mp::Comm {
 public:
  explicit Ctx(Process& p) : p_(p) {}

  int rank() const override { return p_.rank(); }
  int size() const override { return p_.size(); }
  void send(int dst, int tag, std::span<const std::uint8_t> payload) override {
    p_.send(dst, tag, payload);
  }
  mp::Message recv(int src = mp::kAnySource, int tag = mp::kAnyTag) override {
    return p_.recv(src, tag);
  }
  bool probe(int src = mp::kAnySource, int tag = mp::kAnyTag) override {
    return p_.probe(src, tag);
  }

  /// Takes an independent checkpoint of `app_state` plus the recovery
  /// layer's own state.
  ///
  /// CONSISTENCY CONTRACT: `app_state` must let the application resume from
  /// exactly this logical point (e.g. the loop indices).  The recovery
  /// layer's counters are snapshotted at the same instant; an application
  /// that checkpoints here but restarts its loop from zero will re-send
  /// with mismatched indices and stall.  An empty blob is only safe for
  /// applications that never restore (fault-free runs).
  void checkpoint(std::span<const std::uint8_t> app_state) {
    p_.checkpoint(app_state);
  }

  /// Application state restored from the last checkpoint if this execution
  /// is an incarnation; nullopt on a fresh start (including
  /// restart-from-scratch after a failure before the first checkpoint).
  const std::optional<util::Bytes>& restored() const {
    return p_.restored_app_state();
  }

  Process& process() { return p_; }

 private:
  Process& p_;
};

using FtRankFn = std::function<void(Ctx&)>;

/// Runs the job to completion (all ranks' functions returned, every injected
/// fault recovered).  Rethrows the first application exception, if any.
JobResult run_job(const JobConfig& config, const FtRankFn& fn);

}  // namespace windar::ft
