#include "windar/tdi_protocol.h"

#include "util/check.h"

namespace windar::ft {

namespace {

// Sparse blobs tag the leading count word with this bit; dense blobs carry
// the plain element count (always < 2^31), so the two forms are
// distinguishable on the wire.
constexpr std::uint32_t kSparseMarker = 0x80000000u;

std::uint32_t read_u32_at(std::span<const std::uint8_t> meta,
                          std::size_t off) {
  WINDAR_CHECK_LE(off + 4, meta.size()) << "piggyback too short";
  return static_cast<std::uint32_t>(meta[off]) |
         (static_cast<std::uint32_t>(meta[off + 1]) << 8) |
         (static_cast<std::uint32_t>(meta[off + 2]) << 16) |
         (static_cast<std::uint32_t>(meta[off + 3]) << 24);
}

}  // namespace

TdiProtocol::TdiProtocol(int rank, int n, Encoding encoding)
    : LoggingProtocol(rank, n),
      encoding_(encoding),
      depend_interval_(static_cast<std::size_t>(n), 0) {}

Piggyback TdiProtocol::on_send(int dst, SeqNo send_index) {
  (void)dst;
  (void)send_index;
  // The outgoing message depends on exactly the sender's current state
  // interval, described by the whole vector (Algorithm 1 line 11).
  util::ByteWriter w;
  if (encoding_ == Encoding::kDense) {
    w.u32_vec(depend_interval_);
    // One identifier per vector element; this is the paper's example where
    // a 4-process system piggybacks 4 identifiers per message.
    return Piggyback{w.take(), static_cast<std::uint32_t>(n_)};
  }
  // Sparse: (index, value) pairs for the non-zero entries only.
  std::uint32_t nnz = 0;
  for (SeqNo v : depend_interval_) {
    if (v != 0) ++nnz;
  }
  w.u32(kSparseMarker | nnz);
  for (int k = 0; k < n_; ++k) {
    const SeqNo v = depend_interval_[static_cast<std::size_t>(k)];
    if (v != 0) {
      w.u32(static_cast<std::uint32_t>(k));
      w.u32(v);
    }
  }
  // One identifier per tracked interval entry, matching the dense path's
  // accounting (Fig. 6 compares identifier counts; the index half of each
  // pair is encoding overhead, visible in piggyback_bytes, not an extra
  // identifier).
  return Piggyback{w.take(), nnz};
}

SeqNo TdiProtocol::piggybacked_element(std::span<const std::uint8_t> meta,
                                       int element) {
  const std::uint32_t head = read_u32_at(meta, 0);
  if ((head & kSparseMarker) == 0) {
    // Dense layout: u32 count, then count u32 values.
    return read_u32_at(meta, 4 + 4 * static_cast<std::size_t>(element));
  }
  const std::uint32_t nnz = head & ~kSparseMarker;
  for (std::uint32_t i = 0; i < nnz; ++i) {
    const std::size_t off = 4 + 8 * static_cast<std::size_t>(i);
    if (read_u32_at(meta, off) == static_cast<std::uint32_t>(element)) {
      return read_u32_at(meta, off + 4);
    }
  }
  return 0;  // absent entry == zero dependency
}

std::vector<SeqNo> TdiProtocol::decode(std::span<const std::uint8_t> meta,
                                       int n) {
  util::ByteReader r(meta);
  const std::uint32_t head = r.u32();
  std::vector<SeqNo> out(static_cast<std::size_t>(n), 0);
  if ((head & kSparseMarker) == 0) {
    WINDAR_CHECK_EQ(head, static_cast<std::uint32_t>(n))
        << "depend_interval width mismatch";
    for (auto& v : out) v = r.u32();
  } else {
    const std::uint32_t nnz = head & ~kSparseMarker;
    for (std::uint32_t i = 0; i < nnz; ++i) {
      const std::uint32_t idx = r.u32();
      WINDAR_CHECK_LT(idx, static_cast<std::uint32_t>(n)) << "bad sparse idx";
      out[idx] = r.u32();
    }
  }
  return out;
}

bool TdiProtocol::deliverable(const QueuedMsg& m, SeqNo delivered_total) const {
  // Algorithm 1 line 17: depend_interval_i[i] >= m.depend_interval[i].
  return delivered_total >= piggybacked_element(m.meta, rank_);
}

void TdiProtocol::on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                             std::span<const std::uint8_t> meta) {
  (void)src;
  (void)send_index;
  const std::vector<SeqNo> piggybacked = decode(meta, n_);
  // Lines 20, 22-24: advance own interval, merge the rest element-wise max.
  depend_interval_[static_cast<std::size_t>(rank_)] = deliver_seq;
  for (int k = 0; k < n_; ++k) {
    if (k == rank_) continue;
    auto& mine = depend_interval_[static_cast<std::size_t>(k)];
    const SeqNo theirs = piggybacked[static_cast<std::size_t>(k)];
    if (theirs > mine) mine = theirs;
  }
}

void TdiProtocol::save(util::ByteWriter& w) const {
  w.u32_vec(depend_interval_);
}

void TdiProtocol::restore(util::ByteReader& r) {
  depend_interval_ = r.u32_vec();
  WINDAR_CHECK_EQ(depend_interval_.size(), static_cast<std::size_t>(n_))
      << "restored depend_interval width mismatch";
}

}  // namespace windar::ft
