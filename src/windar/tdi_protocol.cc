#include "windar/tdi_protocol.h"

#include <algorithm>

#include "util/check.h"

namespace windar::ft {

namespace {

// Non-dense blobs tag the leading count word; dense blobs carry the plain
// element count (always < 2^30), so all three forms are distinguishable on
// the wire.  Sparse and delta share the (index, value) pair layout — they
// differ only in what an absent entry means to the *tracking* merge (zero vs
// no-information), and the merge treats both as a no-op.
constexpr std::uint32_t kSparseMarker = 0x80000000u;
constexpr std::uint32_t kDeltaMarker = 0x40000000u;

std::uint32_t read_u32_at(std::span<const std::uint8_t> meta,
                          std::size_t off) {
  WINDAR_CHECK_LE(off + 4, meta.size()) << "piggyback too short";
  return static_cast<std::uint32_t>(meta[off]) |
         (static_cast<std::uint32_t>(meta[off + 1]) << 8) |
         (static_cast<std::uint32_t>(meta[off + 2]) << 16) |
         (static_cast<std::uint32_t>(meta[off + 3]) << 24);
}

}  // namespace

TdiProtocol::TdiProtocol(int rank, int n, Encoding encoding)
    : LoggingProtocol(rank, n),
      encoding_(encoding),
      depend_interval_(static_cast<std::size_t>(n), 0) {
  if (encoding_ == Encoding::kDelta) {
    entry_tick_.assign(static_cast<std::size_t>(n), 0);
    sent_tick_.assign(static_cast<std::size_t>(n), 0);
    entry_epoch_.assign(static_cast<std::size_t>(n), 0);
  }
}

void TdiProtocol::touch(std::size_t entry) {
  entry_tick_[entry] = ++tick_;
  journal_.push_back(static_cast<std::uint32_t>(entry));
  const std::size_t cap =
      std::max<std::size_t>(64, 4 * static_cast<std::size_t>(n_));
  if (journal_.size() > cap) compact_journal();
}

void TdiProtocol::compact_journal() {
  // The journal prefix up to the oldest live channel base carries no
  // information any future send needs (deltas only ever look past their
  // base).  A channel whose base lags by more than half the journal would
  // pin that prefix forever; zero its base instead — its next send becomes
  // a full resync, which is always correct.
  const std::uint64_t cutoff = tick_ - journal_.size() / 2;
  std::uint64_t min_base = tick_;
  for (auto& st : sent_tick_) {
    if (st == 0) continue;
    if (st < cutoff) {
      st = 0;
    } else {
      min_base = std::min(min_base, st);
    }
  }
  WINDAR_CHECK_GE(min_base, journal_base_tick_) << "journal trimmed past base";
  journal_.erase(journal_.begin(),
                 journal_.begin() +
                     static_cast<std::ptrdiff_t>(min_base - journal_base_tick_));
  journal_base_tick_ = min_base;
}

Piggyback TdiProtocol::on_send(int dst, SeqNo send_index) {
  (void)send_index;
  // The outgoing message depends on exactly the sender's current state
  // interval, described by the whole vector (Algorithm 1 line 11).
  util::ByteWriter w;
  const std::uint32_t dense_bytes = 4 + 4 * static_cast<std::uint32_t>(n_);
  if (encoding_ == Encoding::kDense) {
    w.u32_vec(depend_interval_);
    // One identifier per vector element; this is the paper's example where
    // a 4-process system piggybacks 4 identifiers per message.
    return Piggyback{w.take(), static_cast<std::uint32_t>(n_), dense_bytes};
  }

  if (encoding_ == Encoding::kSparse) {
    // Sparse: (index, value) pairs for the non-zero entries only.
    std::uint32_t nnz = 0;
    for (SeqNo v : depend_interval_) {
      if (v != 0) ++nnz;
    }
    w.u32(kSparseMarker | nnz);
    for (int k = 0; k < n_; ++k) {
      const SeqNo v = depend_interval_[static_cast<std::size_t>(k)];
      if (v != 0) {
        w.u32(static_cast<std::uint32_t>(k));
        w.u32(v);
      }
    }
    // One identifier per tracked interval entry, matching the dense path's
    // accounting (Fig. 6 compares identifier counts; the index half of each
    // pair is encoding overhead, visible in piggyback_bytes, not an extra
    // identifier).
    return Piggyback{w.take(), nnz, dense_bytes};
  }

  // Delta: entries that changed since the last send on this channel, plus
  // the receiver's gate entry (deliverable() reads it from this message's
  // blob alone).  Zero-valued entries are omitted even when "changed" — the
  // receiver's merge is max-only, so a zero can never carry information.
  // sent_tick_[dst] == 0 means no valid base (first send on the channel, or
  // first since restore()); entries then count as changed wholesale, which
  // makes the message a full resync.
  const std::size_t d = static_cast<std::size_t>(dst);
  const std::uint64_t base = sent_tick_[d];
  const bool resync = base == 0;
  changed_scratch_.clear();
  if (resync) {
    // No valid base: every non-zero entry counts as changed — O(n), but only
    // on the first send per channel and the first after restore().
    for (int k = 0; k < n_; ++k) {
      if (depend_interval_[static_cast<std::size_t>(k)] != 0 || k == dst) {
        changed_scratch_.push_back(static_cast<std::uint32_t>(k));
      }
    }
  } else {
    // O(churn): the deduped journal suffix past `base` is exactly the set
    // with entry_tick_ > base (compaction never trims past a live base).
    WINDAR_CHECK_GE(base, journal_base_tick_) << "delta base outlived journal";
    ++scan_epoch_;
    for (std::size_t i = static_cast<std::size_t>(base - journal_base_tick_);
         i < journal_.size(); ++i) {
      const std::uint32_t k = journal_[i];
      if (entry_epoch_[k] != scan_epoch_) {
        entry_epoch_[k] = scan_epoch_;
        changed_scratch_.push_back(k);
      }
    }
    if (entry_epoch_[d] != scan_epoch_) {
      entry_epoch_[d] = scan_epoch_;
      changed_scratch_.push_back(static_cast<std::uint32_t>(dst));
    }
    std::sort(changed_scratch_.begin(), changed_scratch_.end());
  }
  std::uint32_t npairs = 0;
  for (std::uint32_t k : changed_scratch_) {
    if (depend_interval_[k] != 0) ++npairs;
  }
  if (8u * npairs >= 4u * static_cast<std::uint32_t>(n_)) {
    // Pair form would be no smaller than the paper's dense vector: fall back
    // (the blob is self-describing, so the receiver doesn't care).
    w.u32_vec(depend_interval_);
    sent_tick_[d] = tick_;  // dense carries everything up to now
    Piggyback pb{w.take(), static_cast<std::uint32_t>(n_), dense_bytes};
    pb.resync = resync;
    return pb;
  }
  w.u32(kDeltaMarker | npairs);
  for (std::uint32_t k : changed_scratch_) {
    const SeqNo v = depend_interval_[k];
    if (v != 0) {
      w.u32(k);
      w.u32(v);
    }
  }
  // Every change up to tick_ is now conveyed on this channel (directly, or
  // by an earlier message it chains from); later touches stamp a strictly
  // greater tick.  Note tick_ stays 0 until the first mutation, so an
  // all-zero vector keeps base == 0 — harmless, since its "resync" is empty.
  sent_tick_[d] = tick_;
  Piggyback pb{w.take(), npairs, dense_bytes};
  pb.resync = resync;
  return pb;
}

SeqNo TdiProtocol::piggybacked_element(std::span<const std::uint8_t> meta,
                                       int element) {
  const std::uint32_t head = read_u32_at(meta, 0);
  if ((head & (kSparseMarker | kDeltaMarker)) == 0) {
    // Dense layout: u32 count, then count u32 values.
    return read_u32_at(meta, 4 + 4 * static_cast<std::size_t>(element));
  }
  const std::uint32_t npairs = head & ~(kSparseMarker | kDeltaMarker);
  for (std::uint32_t i = 0; i < npairs; ++i) {
    const std::size_t off = 4 + 8 * static_cast<std::size_t>(i);
    if (read_u32_at(meta, off) == static_cast<std::uint32_t>(element)) {
      return read_u32_at(meta, off + 4);
    }
  }
  // Sparse: absent == zero.  Delta: absent == unchanged-since-channel-base,
  // already merged from an earlier message — for gating and merging both
  // read as "no constraint / no news", i.e. zero.
  return 0;
}

std::vector<SeqNo> TdiProtocol::decode(std::span<const std::uint8_t> meta,
                                       int n) {
  std::vector<SeqNo> out;
  decode_into(meta, n, out);
  return out;
}

void TdiProtocol::decode_into(std::span<const std::uint8_t> meta, int n,
                              std::vector<SeqNo>& out) {
  util::ByteReader r(meta);
  const std::uint32_t head = r.u32();
  out.assign(static_cast<std::size_t>(n), 0);
  if ((head & (kSparseMarker | kDeltaMarker)) == 0) {
    WINDAR_CHECK_EQ(head, static_cast<std::uint32_t>(n))
        << "depend_interval width mismatch";
    for (auto& v : out) v = r.u32();
  } else {
    const std::uint32_t npairs = head & ~(kSparseMarker | kDeltaMarker);
    for (std::uint32_t i = 0; i < npairs; ++i) {
      const std::uint32_t idx = r.u32();
      WINDAR_CHECK_LT(idx, static_cast<std::uint32_t>(n)) << "bad pair idx";
      out[idx] = r.u32();
    }
  }
}

bool TdiProtocol::deliverable(const QueuedMsg& m, SeqNo delivered_total) const {
  // Algorithm 1 line 17: depend_interval_i[i] >= m.depend_interval[i].
  return delivered_total >= piggybacked_element(m.meta, rank_);
}

void TdiProtocol::on_deliver(int src, SeqNo send_index, SeqNo deliver_seq,
                             std::span<const std::uint8_t> meta) {
  (void)src;
  (void)send_index;
  // Decode into the member scratch: on_deliver runs once per delivered
  // message under the protocol-host lock, so the vector's capacity is reused
  // instead of reallocated every delivery.
  decode_into(meta, n_, decode_scratch_);
  const std::vector<SeqNo>& piggybacked = decode_scratch_;
  const bool delta = encoding_ == Encoding::kDelta;
  // Lines 20, 22-24: advance own interval, merge the rest element-wise max.
  // For sparse/delta metas absent entries decoded to 0, which max-merge
  // ignores — exactly the "no news" reading those encodings rely on.
  depend_interval_[static_cast<std::size_t>(rank_)] = deliver_seq;
  if (delta) touch(static_cast<std::size_t>(rank_));
  for (int k = 0; k < n_; ++k) {
    if (k == rank_) continue;
    auto& mine = depend_interval_[static_cast<std::size_t>(k)];
    const SeqNo theirs = piggybacked[static_cast<std::size_t>(k)];
    if (theirs > mine) {
      mine = theirs;
      if (delta) touch(static_cast<std::size_t>(k));
    }
  }
}

void TdiProtocol::save(util::ByteWriter& w) const {
  w.u32_vec(depend_interval_);
}

void TdiProtocol::restore(util::ByteReader& r) {
  depend_interval_ = r.u32_vec();
  WINDAR_CHECK_EQ(depend_interval_.size(), static_cast<std::size_t>(n_))
      << "restored depend_interval width mismatch";
  if (encoding_ == Encoding::kDelta) {
    // The vector may have moved BACKWARDS (rollback), so every per-channel
    // base is invalid: receivers may hold merges of values we no longer
    // have.  Mark everything changed and drop all bases — the next send on
    // each channel is a full resync, never a delta against pre-crash state.
    const std::uint64_t t = ++tick_;
    for (auto& et : entry_tick_) et = t;
    for (auto& st : sent_tick_) st = 0;
    // One tick just stamped n entries, so the position == tick mapping the
    // journal relies on is void.  Every base is 0 (resync), so no send will
    // consult pre-restore journal state: start a fresh window here.
    journal_.clear();
    journal_base_tick_ = tick_;
  }
}

Piggyback TdiProtocol::scan_encode_for_test(int dst) const {
  WINDAR_CHECK(encoding_ == Encoding::kDelta) << "scan encoder is delta-only";
  // The original full-scan delta encoder, kept verbatim as the reference the
  // journal path must match byte-for-byte.  Reads channel state, never
  // advances it.
  util::ByteWriter w;
  const std::uint32_t dense_bytes = 4 + 4 * static_cast<std::uint32_t>(n_);
  const std::size_t d = static_cast<std::size_t>(dst);
  const std::uint64_t base = sent_tick_[d];
  const bool resync = base == 0;
  std::uint32_t npairs = 0;
  for (int k = 0; k < n_; ++k) {
    const std::size_t sk = static_cast<std::size_t>(k);
    if (depend_interval_[sk] != 0 && (entry_tick_[sk] > base || k == dst)) {
      ++npairs;
    }
  }
  if (8u * npairs >= 4u * static_cast<std::uint32_t>(n_)) {
    w.u32_vec(depend_interval_);
    Piggyback pb{w.take(), static_cast<std::uint32_t>(n_), dense_bytes};
    pb.resync = resync;
    return pb;
  }
  w.u32(kDeltaMarker | npairs);
  for (int k = 0; k < n_; ++k) {
    const std::size_t sk = static_cast<std::size_t>(k);
    const SeqNo v = depend_interval_[sk];
    if (v != 0 && (entry_tick_[sk] > base || k == dst)) {
      w.u32(static_cast<std::uint32_t>(k));
      w.u32(v);
    }
  }
  Piggyback pb{w.take(), npairs, dense_bytes};
  pb.resync = resync;
  return pb;
}

}  // namespace windar::ft
