// TEL's stable-storage event logger.
//
// A dedicated node (extra fabric endpoint) that persists determinants and
// acknowledges per-rank stability watermarks.  The storage delay per batch
// models the latency of a stable-storage commit; while a commit is in
// progress other ranks' batches queue behind it — the contention the paper's
// related-work section attributes to logger-based schemes.
//
// The logger itself never fails (stable storage assumption in [5]).
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "windar/determinant.h"
#include "windar/seqset.h"
#include "windar/wire.h"

namespace windar::ft {

class EventLogger {
 public:
  struct Params {
    int endpoint = -1;   // this logger's fabric endpoint id
    int ranks = 0;       // number of application ranks
    std::chrono::microseconds storage_delay{5};
  };

  EventLogger(net::Transport& transport, Params params);
  ~EventLogger();

  EventLogger(const EventLogger&) = delete;
  EventLogger& operator=(const EventLogger&) = delete;

  /// Stops the service thread (idempotent; also called by the destructor).
  void stop();

  std::size_t stored_determinants() const;
  std::uint64_t batches() const;

 private:
  void serve();
  void handle(net::Packet&& p);

  net::Transport& transport_;
  Params params_;

  mutable std::mutex mu_;
  // Per-rank stored determinants (deliver_seq -> det) and contiguous
  // stability tracking for the ack watermark.
  std::vector<std::map<SeqNo, Determinant>> store_;
  std::vector<SeqSet> seen_;
  std::uint64_t batches_ = 0;

  std::thread thread_;
};

}  // namespace windar::ft
