// TEL's stable-storage event logger — one shard of it.
//
// The stability plane is sharded by sender rank: a job runs `shards` logger
// instances, shard i serving fabric endpoint n + i and committing
// determinants for exactly the ranks with rank % shards == i.  The seed's
// single-logger deployment is shards == 1.  Each shard runs two threads:
//
//   * a serve thread that drains the shard's inbox — kTelLog batches are
//     queued for commit, queries and checkpoint advances act on the
//     committed store directly;
//   * a commit thread that drains *all* queued kTelLog packets into one
//     commit round, pays the storage delay once for the round, and then
//     sends ONE kTelAck per affected rank carrying that rank's contiguous
//     stability watermark.
//
// The batched ack is sound because the watermark is contiguous: a single
// ack retires every determinant the round covered for that owner, so ack
// traffic scales with commit rounds, not with message rate.  A kTelLog
// batch that is queued (or in flight) when its sender dies was never acked,
// so its determinants were still being piggybacked and survivors hold
// copies — dropping or later committing it loses no stability.
//
// The logger itself never fails (stable storage assumption in [5]).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"
#include "windar/determinant.h"
#include "windar/seqset.h"
#include "windar/wire.h"

namespace windar::ft {

/// Resolves a configured logger shard count: a positive value wins, else
/// WINDAR_LOGGER_SHARDS, else 1 (the single-logger seed behaviour).
int resolve_logger_shards(int configured);

class EventLogger {
 public:
  struct Params {
    int endpoint = -1;   // this shard's fabric endpoint id
    int ranks = 0;       // number of application ranks
    std::chrono::microseconds storage_delay{5};
    // Sharded deployment: this instance commits determinants for the ranks
    // with rank % shards == shard_index.  The defaults are the seed's
    // single-logger layout.
    int shards = 1;
    int shard_index = 0;
  };

  EventLogger(net::Transport& transport, Params params);
  ~EventLogger();

  EventLogger(const EventLogger&) = delete;
  EventLogger& operator=(const EventLogger&) = delete;

  /// Stops both threads (idempotent; also called by the destructor).
  /// Queued-but-uncommitted batches are dropped — they were never acked, so
  /// nothing ever depended on their stability.
  void stop();

  std::size_t stored_determinants() const;
  /// kTelLog packets committed (the seed's per-packet "batch" count).
  std::uint64_t batches() const;
  /// Commit rounds taken — each paid one storage delay, whatever it drained.
  std::uint64_t commit_rounds() const;
  /// kTelAck packets sent (one per affected rank per commit round).
  std::uint64_t acks_sent() const;

  /// Test hooks: freeze the commit thread so several kTelLog packets pile
  /// into a single commit round, then release it.  pending_for_test() lets a
  /// test wait for the serve thread to queue an expected number of batches
  /// before releasing (delivery is asynchronous).
  void pause_commits();
  void resume_commits();
  std::size_t pending_for_test() const;

 private:
  void serve();
  void handle(net::Packet&& p);
  void commit_loop();
  void commit_round(std::vector<net::Packet> batch);

  net::Transport& transport_;
  Params params_;

  mutable std::mutex mu_;
  // Per-rank stored determinants (deliver_seq -> det) and contiguous
  // stability tracking for the ack watermark.
  std::vector<std::map<SeqNo, Determinant>> store_;
  std::vector<SeqSet> seen_;
  std::uint64_t batches_ = 0;
  std::uint64_t commit_rounds_ = 0;
  std::uint64_t acks_sent_ = 0;

  // Commit queue: serve thread produces, commit thread drains whole.
  mutable std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::deque<net::Packet> pending_;
  bool paused_ = false;
  bool stopping_ = false;

  std::thread serve_thread_;
  std::thread commit_thread_;
};

}  // namespace windar::ft
