// NPB 2.3 skeleton workload definitions.
//
// The three applications reproduce the communication *profiles* the paper
// relies on (§IV): LU has high message frequency and small messages (pencil
// exchanges in SSOR wavefront sweeps, small checkpoints), BT has large
// messages at low frequency and large checkpoints (ADI multi-partition face
// exchanges with 5 solution components), SP sits in between.  The compute
// kernels are genuine relaxation stencils whose converged checksum acts as
// the correctness oracle for recovery tests: any lost, duplicated or
// mis-ordered delivery changes the checksum.
#pragma once

#include <cstdint>
#include <string>

namespace windar::npb {

enum class App {
  kLU,  // paper evaluation set
  kBT,
  kSP,
  kCG,  // extensions: the other NPB 2.3 communication profiles
  kMG,
};

inline const char* to_string(App a) {
  switch (a) {
    case App::kLU: return "LU";
    case App::kBT: return "BT";
    case App::kSP: return "SP";
    case App::kCG: return "CG";
    case App::kMG: return "MG";
  }
  return "?";
}

/// Shape parameters for one run.  Defaults come from make_params; tests use
/// smaller `scale` values for speed.
struct Params {
  App app = App::kLU;
  int nx = 32, ny = 32, nz = 16;  // global grid
  int iterations = 24;
  int components = 1;      // solution components per cell (BT/SP: 5)
  int residual_every = 6;  // allreduce cadence
  int checkpoint_every = 0;  // iterations between checkpoints; 0 = never
  // Busy-work accompanying each communication step, standing in for the
  // full NPB numerics (the skeletons keep only a light stencil).  This sets
  // the compute:communication ratio, which the overhead measurements are
  // sensitive to.
  int compute_ns_per_step = 0;
};

/// Paper-profile parameters for `app` at `nranks` ranks.  `scale` in (0, 1]
/// shrinks iteration counts for fast test runs.
Params make_params(App app, int nranks, double scale = 1.0);

/// Deterministic busy work for ~`ns` nanoseconds (no effect on results).
void compute_spin(int ns);

}  // namespace windar::npb
