#include "npb/adi.h"

#include <cmath>

#include "mp/collectives.h"
#include "npb/state.h"
#include "npb/topology.h"

namespace windar::npb {

namespace {

constexpr int kTagXFace = 200;  // x-direction face exchange
constexpr int kTagYFace = 201;  // y-direction face exchange

constexpr double kBc = 0.9;  // physical boundary halo value

}  // namespace

double run_adi(mp::Comm& comm, const Params& params, ft::Ctx* ft,
               int exchanges_per_dir) {
  const int n = comm.size();
  const int me = comm.rank();
  const Grid2D g(me, n);
  const int lx = Grid2D::chunk(params.nx, g.px, g.cx);
  const int ly = Grid2D::chunk(params.ny, g.py, g.cy);
  const int x0 = Grid2D::offset(params.nx, g.px, g.cx);
  const int y0 = Grid2D::offset(params.ny, g.py, g.cy);
  const int nz = params.nz;
  const int nc = params.components;

  IterState st;
  mp::Coll coll(comm);
  if (ft && ft->restored()) {
    st = IterState::deserialize(*ft->restored());
    coll.reset_seq(st.coll_seq);
  } else {
    st.u.resize(static_cast<std::size_t>(lx) * ly * nz * nc);
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ly; ++j) {
        for (int i = 0; i < lx; ++i) {
          for (int c = 0; c < nc; ++c) {
            const double gx = x0 + i, gy = y0 + j, gz = k;
            st.u[static_cast<std::size_t>(
                ((k * ly + j) * lx + i) * nc + c)] =
                std::cos(0.07 * gx * (c + 1)) * std::sin(0.09 * gy) +
                0.01 * gz + 1.2;
          }
        }
      }
    }
  }

  auto at = [&](int k, int j, int i, int c) -> double& {
    return st.u[static_cast<std::size_t>(((k * ly + j) * lx + i) * nc + c)];
  };

  // Face buffers: x faces are (ly x nz x nc), y faces are (lx x nz x nc).
  const std::size_t xface = static_cast<std::size_t>(ly) * nz * nc;
  const std::size_t yface = static_cast<std::size_t>(lx) * nz * nc;
  std::vector<double> buf(std::max(xface, yface));

  auto pack_x = [&](int i) {
    std::size_t p = 0;
    for (int k = 0; k < nz; ++k)
      for (int j = 0; j < ly; ++j)
        for (int c = 0; c < nc; ++c) buf[p++] = at(k, j, i, c);
    return std::span<const double>(buf.data(), xface);
  };
  auto pack_y = [&](int j) {
    std::size_t p = 0;
    for (int k = 0; k < nz; ++k)
      for (int i = 0; i < lx; ++i)
        for (int c = 0; c < nc; ++c) buf[p++] = at(k, j, i, c);
    return std::span<const double>(buf.data(), yface);
  };

  for (int iter = st.iter; iter < params.iterations; ++iter) {
    if (ft && params.checkpoint_every > 0 && iter > 0 &&
        iter % params.checkpoint_every == 0) {
      st.iter = iter;
      st.coll_seq = coll.seq();
      ft->checkpoint(st.serialize());
    }

    for (int sweep = 0; sweep < exchanges_per_dir; ++sweep) {
      // ---- x direction: exchange faces, then relax ----
      // Order (send east, recv west, send west, recv east) is deadlock-free
      // on the open chain even with rendezvous sends: the easternmost rank
      // has no east neighbour and proceeds straight to its receive.
      std::vector<double> wx(xface, kBc), ex(xface, kBc);
      if (g.east() >= 0) mp::send_vec<double>(comm, g.east(), kTagXFace, pack_x(lx - 1));
      if (g.west() >= 0) wx = mp::recv_vec<double>(comm, g.west(), kTagXFace);
      if (g.west() >= 0) mp::send_vec<double>(comm, g.west(), kTagXFace, pack_x(0));
      if (g.east() >= 0) ex = mp::recv_vec<double>(comm, g.east(), kTagXFace);
      for (int k = 0; k < nz; ++k) {
        for (int j = 0; j < ly; ++j) {
          for (int c = 0; c < nc; ++c) {
            const std::size_t h = (static_cast<std::size_t>(k) * ly + j) * nc + c;
            for (int i = 0; i < lx; ++i) {
              const double w = i > 0 ? at(k, j, i - 1, c) : wx[h];
              const double e = i + 1 < lx ? at(k, j, i + 1, c) : ex[h];
              at(k, j, i, c) =
                  0.5 * at(k, j, i, c) + 0.23 * w + 0.23 * e +
                  1e-3 * (c + 1 + sweep);
            }
          }
        }
      }

      compute_spin(params.compute_ns_per_step);

      // ---- y direction ----
      std::vector<double> ny(yface, kBc), sy(yface, kBc);
      if (g.south() >= 0) mp::send_vec<double>(comm, g.south(), kTagYFace, pack_y(ly - 1));
      if (g.north() >= 0) ny = mp::recv_vec<double>(comm, g.north(), kTagYFace);
      if (g.north() >= 0) mp::send_vec<double>(comm, g.north(), kTagYFace, pack_y(0));
      if (g.south() >= 0) sy = mp::recv_vec<double>(comm, g.south(), kTagYFace);
      for (int k = 0; k < nz; ++k) {
        for (int i = 0; i < lx; ++i) {
          for (int c = 0; c < nc; ++c) {
            const std::size_t h = (static_cast<std::size_t>(k) * lx + i) * nc + c;
            for (int j = 0; j < ly; ++j) {
              const double no = j > 0 ? at(k, j - 1, i, c) : ny[h];
              const double so = j + 1 < ly ? at(k, j + 1, i, c) : sy[h];
              at(k, j, i, c) =
                  0.5 * at(k, j, i, c) + 0.22 * no + 0.22 * so + 5e-4;
            }
          }
        }
      }
      compute_spin(params.compute_ns_per_step);
    }

    // ---- z direction: local line sweep, no communication ----
    for (int j = 0; j < ly; ++j) {
      for (int i = 0; i < lx; ++i) {
        for (int c = 0; c < nc; ++c) {
          for (int k = 1; k < nz; ++k) {
            at(k, j, i, c) = 0.7 * at(k, j, i, c) + 0.3 * at(k - 1, j, i, c);
          }
          for (int k = nz - 2; k >= 0; --k) {
            at(k, j, i, c) = 0.8 * at(k, j, i, c) + 0.2 * at(k + 1, j, i, c);
          }
        }
      }
    }

    if ((iter + 1) % params.residual_every == 0) {
      double local = 0.0;
      for (double v : st.u) local += v * v;
      const double contrib[1] = {local};
      const auto total = coll.allreduce_sum(contrib);
      st.racc = 0.5 * st.racc + std::sqrt(total[0]);
    }
  }

  double local = 0.0;
  for (double v : st.u) local += std::abs(v);
  const double contrib[2] = {local, st.racc};
  const auto total = coll.allreduce_sum(contrib);
  return total[0] + total[1];
}

}  // namespace windar::npb
