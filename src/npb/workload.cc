#include "npb/workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace windar::npb {

Params make_params(App app, int nranks, double scale) {
  (void)nranks;
  Params p;
  p.app = app;
  auto scaled = [&](int iters) {
    return std::max(2, static_cast<int>(std::lround(iters * scale)));
  };
  switch (app) {
    case App::kLU:
      p.compute_ns_per_step = 25'000;  // per wavefront plane
      // High message frequency, small messages, small checkpoint:
      // wavefront pencils of one j-line per k plane.
      p.nx = 32;
      p.ny = 32;
      p.nz = 12;
      p.components = 1;
      p.iterations = scaled(20);
      p.residual_every = 5;
      break;
    case App::kBT:
      p.compute_ns_per_step = 200'000;  // per ADI direction sweep
      // Large messages (5-component faces), low frequency, big checkpoint.
      p.nx = 24;
      p.ny = 24;
      p.nz = 24;
      p.components = 5;
      p.iterations = scaled(10);
      p.residual_every = 5;
      break;
    case App::kSP:
      p.compute_ns_per_step = 80'000;  // per ADI half-sweep
      // Moderate on both axes.
      p.nx = 20;
      p.ny = 20;
      p.nz = 20;
      p.components = 3;
      p.iterations = scaled(16);
      p.residual_every = 4;
      break;
    case App::kCG:
      // Transpose exchanges + two dot-product allreduces per iteration:
      // medium messages, collective-heavy.  nx = unknowns per rank-row.
      p.compute_ns_per_step = 60'000;
      p.nx = 512;  // vector length per rank
      p.iterations = scaled(18);
      p.residual_every = 1;  // CG reduces every iteration by nature
      break;
    case App::kMG:
      // V-cycles with geometrically shrinking halo messages: a mix of
      // sizes no other workload produces.  nx = fine-grid points per rank.
      p.compute_ns_per_step = 40'000;
      p.nx = 256;
      p.components = 4;  // V-cycle depth (levels)
      p.iterations = scaled(12);
      p.residual_every = 3;
      break;
  }
  return p;
}

void compute_spin(int ns) {
  if (ns <= 0) return;
  // Busy wait (not sleep): models CPU-bound numerics that keep the rank from
  // servicing communication, which matters for the blocking-mode results.
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(ns);
  volatile double sink = 1.0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 64; ++i) sink = sink * 1.0000001 + 1e-9;
  }
}

}  // namespace windar::npb
