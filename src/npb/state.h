// Application-level checkpoint state shared by the NPB skeletons.
//
// The skeletons checkpoint at iteration boundaries: the blob is the loop
// index, the collective-operation counter (so re-executed collectives reuse
// their original tags), the full local grid, and the residual accumulator.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/check.h"

namespace windar::npb {

struct IterState {
  int iter = 0;
  std::uint32_t coll_seq = 0;
  std::vector<double> u;
  double racc = 0.0;

  util::Bytes serialize() const {
    util::ByteWriter w;
    w.i32(iter);
    w.u32(coll_seq);
    w.f64(racc);
    w.u32(static_cast<std::uint32_t>(u.size()));
    for (double v : u) w.f64(v);
    return w.take();
  }

  static IterState deserialize(std::span<const std::uint8_t> data) {
    util::ByteReader r(data);
    IterState s;
    s.iter = r.i32();
    s.coll_seq = r.u32();
    s.racc = r.f64();
    const std::uint32_t n = r.u32();
    s.u.resize(n);
    for (auto& v : s.u) v = r.f64();
    WINDAR_CHECK(r.exhausted()) << "trailing app-state bytes";
    return s;
  }
};

}  // namespace windar::npb
