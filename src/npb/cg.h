// CG skeleton: the NPB conjugate-gradient communication pattern (extension
// beyond the paper's LU/BT/SP evaluation set).
//
// Each iteration of the solver performs a transpose exchange of the search
// vector with a partner rank (medium-size messages), a local banded
// matrix-vector product, and two dot-product allreduces (rho and alpha) —
// collective-heavy traffic with per-iteration global synchronization, a
// profile none of the paper's three benchmarks exhibits.
#pragma once

#include "mp/comm.h"
#include "npb/workload.h"
#include "windar/runtime.h"

namespace windar::npb {

double run_cg(mp::Comm& comm, const Params& params, ft::Ctx* ft);

}  // namespace windar::npb
