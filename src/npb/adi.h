// ADI multi-partition skeleton shared by the BT and SP workloads.
//
// Per iteration, each direction (x, then y) performs face exchanges with the
// two neighbours followed by a relaxation using the received halos, and the
// z direction runs a local line sweep.  BT exchanges one large 5-component
// face per direction per neighbour (large messages, low frequency); SP runs
// two half-sweeps per direction (forward/backward substitution of the
// pentadiagonal solver), doubling the message count with smaller faces.
#pragma once

#include "mp/comm.h"
#include "npb/workload.h"
#include "windar/runtime.h"

namespace windar::npb {

double run_adi(mp::Comm& comm, const Params& params, ft::Ctx* ft,
               int exchanges_per_dir);

inline double run_bt(mp::Comm& comm, const Params& params, ft::Ctx* ft) {
  return run_adi(comm, params, ft, /*exchanges_per_dir=*/1);
}

inline double run_sp(mp::Comm& comm, const Params& params, ft::Ctx* ft) {
  return run_adi(comm, params, ft, /*exchanges_per_dir=*/2);
}

}  // namespace windar::npb
