// MG skeleton: the NPB multigrid communication pattern (extension beyond
// the paper's LU/BT/SP evaluation set).
//
// Each iteration runs a V-cycle over `components` levels of a 1-D
// decomposed grid: going down, the halo exchanged with each neighbour
// shrinks geometrically with the level (restriction), then grows back on
// the way up (prolongation).  The result is a traffic mix of message sizes
// spanning two orders of magnitude — the profile MG is known for.
#pragma once

#include "mp/comm.h"
#include "npb/workload.h"
#include "windar/runtime.h"

namespace windar::npb {

double run_mg(mp::Comm& comm, const Params& params, ft::Ctx* ft);

}  // namespace windar::npb
