// 2-D process topology helpers for the NPB skeletons.
#pragma once

#include <utility>

#include "util/check.h"

namespace windar::npb {

/// Near-square factorization px * py == n with px >= py.
inline std::pair<int, int> factor2(int n) {
  WINDAR_CHECK_GT(n, 0) << "bad process count";
  int py = 1;
  for (int d = 1; d * d <= n; ++d) {
    if (n % d == 0) py = d;
  }
  return {n / py, py};
}

/// Cartesian 2-D grid of processes, row-major rank layout.
struct Grid2D {
  int px = 1;  // columns (x direction)
  int py = 1;  // rows (y direction)
  int cx = 0;  // this process's x coordinate
  int cy = 0;  // this process's y coordinate

  Grid2D(int rank, int n) {
    auto [fx, fy] = factor2(n);
    px = fx;
    py = fy;
    cx = rank % px;
    cy = rank / px;
  }

  int rank_of(int x, int y) const { return y * px + x; }
  int west() const { return cx > 0 ? rank_of(cx - 1, cy) : -1; }
  int east() const { return cx + 1 < px ? rank_of(cx + 1, cy) : -1; }
  int north() const { return cy > 0 ? rank_of(cx, cy - 1) : -1; }
  int south() const { return cy + 1 < py ? rank_of(cx, cy + 1) : -1; }

  /// Splits `total` cells over `parts`, giving earlier parts the remainder.
  static int chunk(int total, int parts, int index) {
    return total / parts + (index < total % parts ? 1 : 0);
  }
  static int offset(int total, int parts, int index) {
    const int base = total / parts;
    const int rem = total % parts;
    return index * base + (index < rem ? index : rem);
  }
};

}  // namespace windar::npb
