// Entry point for running one NPB skeleton on any transport.
#pragma once

#include "mp/comm.h"
#include "npb/adi.h"
#include "npb/cg.h"
#include "npb/lu.h"
#include "npb/mg.h"
#include "npb/workload.h"

namespace windar::npb {

/// Dispatches to the skeleton named by params.app.  Returns the verification
/// checksum.  `ft` (nullable) enables checkpoint/restart.
double run_app(mp::Comm& comm, const Params& params, ft::Ctx* ft = nullptr);

}  // namespace windar::npb
