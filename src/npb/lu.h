// LU skeleton: SSOR wavefront sweeps (the NPB LU communication pattern).
//
// The global nx*ny*nz grid is decomposed over a 2-D process grid in (x, y);
// every SSOR iteration performs a lower-triangular sweep (dependencies from
// west/north/below, pipelined plane by plane along k) and an upper sweep in
// the reverse direction.  Each plane exchanges one-column / one-row pencils
// with the four neighbours — many small messages, the paper's "high message
// frequency" profile.
#pragma once

#include "mp/comm.h"
#include "npb/workload.h"
#include "windar/runtime.h"

namespace windar::npb {

/// Runs the skeleton and returns the verification checksum (identical across
/// failure-free and failure+recovery executions).  `ft` enables
/// checkpointing / restart; pass nullptr on the raw transport.
double run_lu(mp::Comm& comm, const Params& params, ft::Ctx* ft);

}  // namespace windar::npb
