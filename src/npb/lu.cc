#include "npb/lu.h"

#include <cmath>

#include "mp/collectives.h"
#include "npb/state.h"
#include "npb/topology.h"

namespace windar::npb {

namespace {

constexpr int kTagLowX = 100;   // west -> east pencils, lower sweep
constexpr int kTagLowY = 101;   // north -> south pencils, lower sweep
constexpr int kTagUpX = 102;    // east -> west pencils, upper sweep
constexpr int kTagUpY = 103;    // south -> north pencils, upper sweep

constexpr double kWestBc = 1.0;
constexpr double kNorthBc = 0.8;
constexpr double kEastBc = 0.6;
constexpr double kSouthBc = 0.4;

}  // namespace

double run_lu(mp::Comm& comm, const Params& params, ft::Ctx* ft) {
  const int n = comm.size();
  const int me = comm.rank();
  const Grid2D g(me, n);
  const int lx = Grid2D::chunk(params.nx, g.px, g.cx);
  const int ly = Grid2D::chunk(params.ny, g.py, g.cy);
  const int x0 = Grid2D::offset(params.nx, g.px, g.cx);
  const int y0 = Grid2D::offset(params.ny, g.py, g.cy);
  const int nz = params.nz;

  IterState st;
  mp::Coll coll(comm);
  if (ft && ft->restored()) {
    st = IterState::deserialize(*ft->restored());
    coll.reset_seq(st.coll_seq);
  } else {
    // Deterministic initial field from global coordinates.
    st.u.resize(static_cast<std::size_t>(lx) * ly * nz);
    for (int k = 0; k < nz; ++k) {
      for (int j = 0; j < ly; ++j) {
        for (int i = 0; i < lx; ++i) {
          const double gx = x0 + i, gy = y0 + j, gz = k;
          st.u[static_cast<std::size_t>((k * ly + j) * lx + i)] =
              std::sin(0.1 * gx + 0.2 * gy) * std::cos(0.15 * gz) + 1.0;
        }
      }
    }
  }

  auto at = [&](int k, int j, int i) -> double& {
    return st.u[static_cast<std::size_t>((k * ly + j) * lx + i)];
  };

  std::vector<double> col(static_cast<std::size_t>(ly));  // x-direction pencil
  std::vector<double> row(static_cast<std::size_t>(lx));  // y-direction pencil

  for (int iter = st.iter; iter < params.iterations; ++iter) {
    if (ft && params.checkpoint_every > 0 && iter > 0 &&
        iter % params.checkpoint_every == 0) {
      st.iter = iter;
      st.coll_seq = coll.seq();
      ft->checkpoint(st.serialize());
    }

    // ---- lower sweep: dependencies from west, north, below ----
    for (int k = 0; k < nz; ++k) {
      std::vector<double> west(static_cast<std::size_t>(ly), kWestBc);
      std::vector<double> north(static_cast<std::size_t>(lx), kNorthBc);
      if (g.west() >= 0) west = mp::recv_vec<double>(comm, g.west(), kTagLowX);
      if (g.north() >= 0) north = mp::recv_vec<double>(comm, g.north(), kTagLowY);
      for (int j = 0; j < ly; ++j) {
        for (int i = 0; i < lx; ++i) {
          const double w = i > 0 ? at(k, j, i - 1) : west[static_cast<std::size_t>(j)];
          const double nn = j > 0 ? at(k, j - 1, i) : north[static_cast<std::size_t>(i)];
          const double b = k > 0 ? at(k - 1, j, i) : 0.7;
          at(k, j, i) = 0.24 * at(k, j, i) + 0.28 * w + 0.28 * nn + 0.19 * b +
                        1e-3 * (1.0 + iter % 7);
        }
      }
      compute_spin(params.compute_ns_per_step);
      if (g.east() >= 0) {
        for (int j = 0; j < ly; ++j) col[static_cast<std::size_t>(j)] = at(k, j, lx - 1);
        mp::send_vec<double>(comm, g.east(), kTagLowX, col);
      }
      if (g.south() >= 0) {
        for (int i = 0; i < lx; ++i) row[static_cast<std::size_t>(i)] = at(k, ly - 1, i);
        mp::send_vec<double>(comm, g.south(), kTagLowY, row);
      }
    }

    // ---- upper sweep: dependencies from east, south, above ----
    for (int k = nz - 1; k >= 0; --k) {
      std::vector<double> east(static_cast<std::size_t>(ly), kEastBc);
      std::vector<double> south(static_cast<std::size_t>(lx), kSouthBc);
      if (g.east() >= 0) east = mp::recv_vec<double>(comm, g.east(), kTagUpX);
      if (g.south() >= 0) south = mp::recv_vec<double>(comm, g.south(), kTagUpY);
      for (int j = ly - 1; j >= 0; --j) {
        for (int i = lx - 1; i >= 0; --i) {
          const double e = i + 1 < lx ? at(k, j, i + 1) : east[static_cast<std::size_t>(j)];
          const double s = j + 1 < ly ? at(k, j + 1, i) : south[static_cast<std::size_t>(i)];
          const double a = k + 1 < nz ? at(k + 1, j, i) : 0.3;
          at(k, j, i) = 0.4 * at(k, j, i) + 0.25 * e + 0.25 * s + 0.1 * a;
        }
      }
      compute_spin(params.compute_ns_per_step);
      if (g.west() >= 0) {
        for (int j = 0; j < ly; ++j) col[static_cast<std::size_t>(j)] = at(k, j, 0);
        mp::send_vec<double>(comm, g.west(), kTagUpX, col);
      }
      if (g.north() >= 0) {
        for (int i = 0; i < lx; ++i) row[static_cast<std::size_t>(i)] = at(k, 0, i);
        mp::send_vec<double>(comm, g.north(), kTagUpY, row);
      }
    }

    // ---- residual norm (rsdnrm): fixed-shape reduction tree ----
    if ((iter + 1) % params.residual_every == 0) {
      double local = 0.0;
      for (double v : st.u) local += v * v;
      const double contrib[1] = {local};
      const auto total = coll.allreduce_sum(contrib);
      st.racc = 0.5 * st.racc + std::sqrt(total[0]);
    }
  }

  // Verification checksum: grid sum plus residual history, reduced over the
  // deterministic tree.
  double local = 0.0;
  for (double v : st.u) local += std::abs(v);
  const double contrib[2] = {local, st.racc};
  const auto total = coll.allreduce_sum(contrib);
  return total[0] + total[1];
}

}  // namespace windar::npb
