#include "npb/driver.h"

#include "util/check.h"

namespace windar::npb {

double run_app(mp::Comm& comm, const Params& params, ft::Ctx* ft) {
  switch (params.app) {
    case App::kLU: return run_lu(comm, params, ft);
    case App::kBT: return run_bt(comm, params, ft);
    case App::kSP: return run_sp(comm, params, ft);
    case App::kCG: return run_cg(comm, params, ft);
    case App::kMG: return run_mg(comm, params, ft);
  }
  WINDAR_CHECK(false) << "unknown app";
  return 0.0;
}

}  // namespace windar::npb
