#include "npb/cg.h"

#include <cmath>

#include "mp/collectives.h"
#include "npb/state.h"

namespace windar::npb {

namespace {
constexpr int kTagTranspose = 300;
}

double run_cg(mp::Comm& comm, const Params& params, ft::Ctx* ft) {
  const int n = comm.size();
  const int me = comm.rank();
  const int len = params.nx;

  // Transpose partner: bit-reversal-flavoured pairing like NPB CG's
  // reduce-exchange, degraded gracefully for odd n.
  const int partner = (n % 2 == 0) ? (me ^ 1) : ((me + 1) % n);
  const int reverse_partner = (n % 2 == 0) ? (me ^ 1) : ((me - 1 + n) % n);

  IterState st;
  mp::Coll coll(comm);
  if (ft && ft->restored()) {
    st = IterState::deserialize(*ft->restored());
    coll.reset_seq(st.coll_seq);
  } else {
    st.u.resize(static_cast<std::size_t>(2 * len));  // [x | p]
    for (int i = 0; i < len; ++i) {
      st.u[static_cast<std::size_t>(i)] = 0.0;  // x
      st.u[static_cast<std::size_t>(len + i)] =
          std::sin(0.01 * (me * len + i)) + 1.0;  // p
    }
  }
  auto x = [&](int i) -> double& { return st.u[static_cast<std::size_t>(i)]; };
  auto p = [&](int i) -> double& {
    return st.u[static_cast<std::size_t>(len + i)];
  };

  std::vector<double> q(static_cast<std::size_t>(len));
  for (int iter = st.iter; iter < params.iterations; ++iter) {
    if (ft && params.checkpoint_every > 0 && iter > 0 &&
        iter % params.checkpoint_every == 0) {
      st.iter = iter;
      st.coll_seq = coll.seq();
      ft->checkpoint(st.serialize());
    }

    // ---- transpose exchange of the search vector ----
    std::vector<double> theirs(static_cast<std::size_t>(len));
    if (n > 1) {
      std::vector<double> mine(static_cast<std::size_t>(len));
      for (int i = 0; i < len; ++i) mine[static_cast<std::size_t>(i)] = p(i);
      if (me < partner || n % 2 != 0) {
        mp::send_vec<double>(comm, partner, kTagTranspose, mine);
        theirs = mp::recv_vec<double>(comm, reverse_partner, kTagTranspose);
      } else {
        theirs = mp::recv_vec<double>(comm, reverse_partner, kTagTranspose);
        mp::send_vec<double>(comm, partner, kTagTranspose, mine);
      }
    } else {
      for (int i = 0; i < len; ++i) theirs[static_cast<std::size_t>(i)] = p(i);
    }

    // ---- local banded "matvec": q = A p  (A = tridiagonal + coupling) ----
    for (int i = 0; i < len; ++i) {
      const double left = i > 0 ? p(i - 1) : theirs[static_cast<std::size_t>(len - 1)];
      const double right = i + 1 < len ? p(i + 1) : theirs[0];
      q[static_cast<std::size_t>(i)] =
          2.5 * p(i) - 0.6 * left - 0.6 * right +
          0.1 * theirs[static_cast<std::size_t>(i)];
    }
    compute_spin(params.compute_ns_per_step);

    // ---- dot products via allreduce (rho = p.q, norm = q.q) ----
    double pq = 0.0, qq = 0.0;
    for (int i = 0; i < len; ++i) {
      pq += p(i) * q[static_cast<std::size_t>(i)];
      qq += q[static_cast<std::size_t>(i)] * q[static_cast<std::size_t>(i)];
    }
    const double contrib[2] = {pq, qq};
    const auto dots = coll.allreduce_sum(contrib);
    const double alpha = dots[1] != 0.0 ? dots[0] / dots[1] : 0.0;

    // ---- vector updates ----
    for (int i = 0; i < len; ++i) {
      x(i) += alpha * p(i);
      p(i) = q[static_cast<std::size_t>(i)] * 0.5 + p(i) * 0.5 -
             1e-3 * alpha;
    }
    st.racc = 0.5 * st.racc + alpha;
  }

  double local = 0.0;
  for (int i = 0; i < len; ++i) local += std::abs(x(i));
  const double contrib[2] = {local, st.racc};
  const auto total = coll.allreduce_sum(contrib);
  return total[0] + total[1];
}

}  // namespace windar::npb
