#include "npb/mg.h"

#include <cmath>

#include "mp/collectives.h"
#include "npb/state.h"

namespace windar::npb {

namespace {

constexpr int kTagHalo = 400;

// Width of one rank's grid at `level` (level 0 = finest).
int level_width(int fine, int level) { return fine >> level; }

}  // namespace

double run_mg(mp::Comm& comm, const Params& params, ft::Ctx* ft) {
  const int n = comm.size();
  const int me = comm.rank();
  const int fine = params.nx;
  const int levels = params.components;
  const int left = me > 0 ? me - 1 : -1;
  const int right = me + 1 < n ? me + 1 : -1;

  IterState st;
  mp::Coll coll(comm);
  // Storage: concatenated per-level grids (fine + fine/2 + ...).
  std::size_t total = 0;
  std::vector<std::size_t> offset(static_cast<std::size_t>(levels));
  for (int l = 0; l < levels; ++l) {
    offset[static_cast<std::size_t>(l)] = total;
    total += static_cast<std::size_t>(level_width(fine, l));
  }
  if (ft && ft->restored()) {
    st = IterState::deserialize(*ft->restored());
    coll.reset_seq(st.coll_seq);
  } else {
    st.u.assign(total, 0.0);
    for (int i = 0; i < fine; ++i) {
      st.u[static_cast<std::size_t>(i)] =
          std::sin(0.02 * (me * fine + i)) + 1.0;
    }
  }
  auto grid = [&](int level, int i) -> double& {
    return st.u[offset[static_cast<std::size_t>(level)] +
                static_cast<std::size_t>(i)];
  };

  // Halo exchange + red/black-ish relaxation at one level.  The exchanged
  // boundary block is a fixed fraction of the level width, so messages
  // shrink 2x per level.
  auto relax = [&](int level) {
    const int w = level_width(fine, level);
    const int halo = std::max(1, w / 8);
    double lbc = 0.25, rbc = 0.75;
    std::vector<double> edge(static_cast<std::size_t>(halo));
    if (right >= 0) {
      for (int i = 0; i < halo; ++i) {
        edge[static_cast<std::size_t>(i)] = grid(level, w - halo + i);
      }
      mp::send_vec<double>(comm, right, kTagHalo + level, edge);
    }
    if (left >= 0) {
      auto h = mp::recv_vec<double>(comm, left, kTagHalo + level);
      lbc = h.back();
      mp::send_vec<double>(comm, left, kTagHalo + level,
                           {st.u.data() + offset[static_cast<std::size_t>(level)],
                            static_cast<std::size_t>(halo)});
    }
    if (right >= 0) {
      auto h = mp::recv_vec<double>(comm, right, kTagHalo + level);
      rbc = h.front();
    }
    for (int i = 0; i < w; ++i) {
      const double l = i > 0 ? grid(level, i - 1) : lbc;
      const double r = i + 1 < w ? grid(level, i + 1) : rbc;
      grid(level, i) = 0.5 * grid(level, i) + 0.25 * (l + r);
    }
    compute_spin(params.compute_ns_per_step >> level);
  };

  for (int iter = st.iter; iter < params.iterations; ++iter) {
    if (ft && params.checkpoint_every > 0 && iter > 0 &&
        iter % params.checkpoint_every == 0) {
      st.iter = iter;
      st.coll_seq = coll.seq();
      ft->checkpoint(st.serialize());
    }

    // ---- V-cycle down: relax, then restrict (full weighting) ----
    for (int l = 0; l < levels - 1; ++l) {
      relax(l);
      const int wc = level_width(fine, l + 1);
      for (int i = 0; i < wc; ++i) {
        grid(l + 1, i) = 0.5 * grid(l, 2 * i) +
                         0.25 * (grid(l, std::max(0, 2 * i - 1)) +
                                 grid(l, std::min(level_width(fine, l) - 1,
                                                  2 * i + 1)));
      }
    }
    relax(levels - 1);  // coarsest
    // ---- V-cycle up: prolong (linear) and relax ----
    for (int l = levels - 2; l >= 0; --l) {
      const int wc = level_width(fine, l + 1);
      for (int i = 0; i < wc; ++i) {
        grid(l, 2 * i) = 0.7 * grid(l, 2 * i) + 0.3 * grid(l + 1, i);
        if (2 * i + 1 < level_width(fine, l)) {
          const double next = i + 1 < wc ? grid(l + 1, i + 1) : grid(l + 1, i);
          grid(l, 2 * i + 1) =
              0.7 * grid(l, 2 * i + 1) + 0.15 * (grid(l + 1, i) + next);
        }
      }
      relax(l);
    }

    if ((iter + 1) % params.residual_every == 0) {
      double local = 0.0;
      for (int i = 0; i < fine; ++i) local += grid(0, i) * grid(0, i);
      const double contrib[1] = {local};
      const auto tot = coll.allreduce_sum(contrib);
      st.racc = 0.5 * st.racc + std::sqrt(tot[0]);
    }
  }

  double local = 0.0;
  for (int i = 0; i < fine; ++i) local += std::abs(grid(0, i));
  const double contrib[2] = {local, st.racc};
  const auto tot = coll.allreduce_sum(contrib);
  return tot[0] + tot[1];
}

}  // namespace windar::npb
