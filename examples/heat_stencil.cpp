// Domain example: a 2-D heat-diffusion solver with halo exchange, surviving
// a node crash.
//
// This is the classic five-point Jacobi iteration decomposed over a 1-D strip
// topology — the same communication skeleton as countless production HPC
// codes.  Each rank owns a strip of rows, exchanges boundary rows with its
// neighbours every iteration, and checkpoints periodically through the
// recovery layer.  The example prints the converged field energy with and
// without an injected failure; they must match exactly.
//
//   ./heat_stencil [--ranks=4] [--nx=96] [--ny=64] [--iters=60]
//                  [--protocol=tdi|tag|tel]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <vector>

#include "mp/collectives.h"
#include "util/options.h"
#include "windar/runtime.h"

using namespace windar;

namespace {

constexpr int kTagUp = 1;
constexpr int kTagDown = 2;

struct HeatState {
  int iter = 0;
  std::uint32_t coll_seq = 0;
  std::vector<double> grid;  // (rows + 2 halo) x nx

  util::Bytes serialize() const {
    util::ByteWriter w;
    w.i32(iter);
    w.u32(coll_seq);
    w.u32(static_cast<std::uint32_t>(grid.size()));
    for (double v : grid) w.f64(v);
    return w.take();
  }
  static HeatState deserialize(const util::Bytes& data) {
    util::ByteReader r(data);
    HeatState s;
    s.iter = r.i32();
    s.coll_seq = r.u32();
    s.grid.resize(r.u32());
    for (auto& v : s.grid) v = r.f64();
    return s;
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.integer("ranks", 4, "process count"));
  const int nx = static_cast<int>(opts.integer("nx", 96, "columns"));
  const int ny = static_cast<int>(opts.integer("ny", 64, "rows (global)"));
  const int iters = static_cast<int>(opts.integer("iters", 60, "iterations"));
  const std::string proto_name = opts.str("protocol", "tdi", "tdi | tag | tel");
  opts.finish();

  ft::JobConfig cfg;
  cfg.n = ranks;
  cfg.protocol = proto_name == "tag"   ? ft::ProtocolKind::kTag
                 : proto_name == "tel" ? ft::ProtocolKind::kTel
                                       : ft::ProtocolKind::kTdi;
  cfg.latency = net::LatencyModel::turbulent();

  auto energy_out = std::make_shared<std::atomic<double>>(0.0);

  auto app = [&](ft::Ctx& ctx) {
    const int n = ctx.size();
    const int me = ctx.rank();
    const int rows = ny / n + (me < ny % n ? 1 : 0);
    const int row0 = me * (ny / n) + std::min(me, ny % n);
    const int up = me > 0 ? me - 1 : -1;
    const int down = me + 1 < n ? me + 1 : -1;

    mp::Coll coll(ctx);
    HeatState st;
    if (ctx.restored()) {
      st = HeatState::deserialize(*ctx.restored());
      coll.reset_seq(st.coll_seq);
    } else {
      st.grid.assign(static_cast<std::size_t>(rows + 2) * nx, 0.0);
      // Hot spot in the global middle, cold boundaries.
      for (int j = 0; j < rows; ++j) {
        for (int i = 0; i < nx; ++i) {
          const int gj = row0 + j;
          const double d = std::hypot(gj - ny / 2.0, i - nx / 2.0);
          st.grid[static_cast<std::size_t>(j + 1) * nx + i] =
              d < 8.0 ? 100.0 : 0.0;
        }
      }
    }
    auto row = [&](int j) { return st.grid.data() + static_cast<std::size_t>(j) * nx; };

    std::vector<double> next(st.grid.size());
    for (int it = st.iter; it < iters; ++it) {
      if (it > 0 && it % 15 == 0) {
        st.iter = it;
        st.coll_seq = coll.seq();
        ctx.checkpoint(st.serialize());
      }
      // Halo exchange: send my first/last interior rows, receive into halos.
      if (up >= 0) mp::send_vec<double>(ctx, up, kTagUp, {row(1), static_cast<std::size_t>(nx)});
      if (down >= 0) mp::send_vec<double>(ctx, down, kTagDown, {row(rows), static_cast<std::size_t>(nx)});
      if (down >= 0) {
        auto h = mp::recv_vec<double>(ctx, down, kTagUp);
        std::copy(h.begin(), h.end(), row(rows + 1));
      }
      if (up >= 0) {
        auto h = mp::recv_vec<double>(ctx, up, kTagDown);
        std::copy(h.begin(), h.end(), row(0));
      }
      // Jacobi update on interior points.
      std::copy(st.grid.begin(), st.grid.end(), next.begin());
      for (int j = 1; j <= rows; ++j) {
        const bool top_bc = (up < 0 && j == 1);
        const bool bot_bc = (down < 0 && j == rows);
        for (int i = 1; i < nx - 1; ++i) {
          if (top_bc || bot_bc) continue;  // Dirichlet boundary rows
          next[static_cast<std::size_t>(j) * nx + i] =
              0.25 * (row(j)[i - 1] + row(j)[i + 1] + row(j - 1)[i] +
                      row(j + 1)[i]);
        }
      }
      st.grid.swap(next);
    }

    double local = 0.0;
    for (int j = 1; j <= rows; ++j) {
      for (int i = 0; i < nx; ++i) local += row(j)[i];
    }
    const double contrib[1] = {local};
    const double energy = coll.allreduce_sum(contrib)[0];
    if (me == 0) energy_out->store(energy);
  };

  auto clean = ft::run_job(cfg, app);
  const double expected = energy_out->load();
  std::printf("failure-free : energy=%.6f wall=%.1fms\n", expected,
              clean.wall_ms);

  cfg.faults = {{ranks > 1 ? 1 : 0, clean.wall_ms * 0.5}};
  energy_out->store(-1);
  auto faulty = ft::run_job(cfg, app);
  std::printf("with fault   : energy=%.6f wall=%.1fms recoveries=%llu\n",
              energy_out->load(), faulty.wall_ms,
              static_cast<unsigned long long>(faulty.total.recoveries));
  if (energy_out->load() != expected) {
    std::printf("MISMATCH!\n");
    return 1;
  }
  std::printf("OK: identical energy after crash+recovery\n");
  return 0;
}
