// Domain example: master/worker task farm using ANY_SOURCE — the paper's
// §II.C motivating case for relaxing the PWD model.
//
// The master hands out integration sub-intervals and collects partial sums
// with MPI_ANY_SOURCE-style receives: the arrival order of results is
// non-deterministic, but addition is commutative, so the outcome is
// order-independent.  Under TDI this non-determinism survives recovery —
// results are re-delivered in whatever order they arrive, gated only by the
// dependency-interval vector — yet the final integral matches the
// failure-free run.
//
//   ./master_worker [--ranks=5] [--tasks=64] [--protocol=tdi]
#include <atomic>
#include <cmath>
#include <cstdio>

#include "util/options.h"
#include "windar/runtime.h"

using namespace windar;

namespace {

constexpr int kTagTask = 1;
constexpr int kTagResult = 2;
constexpr int kTagStop = 3;

// The integrand: fully deterministic, mildly expensive.
double integrate_chunk(double a, double b) {
  constexpr int kSteps = 400;
  const double h = (b - a) / kSteps;
  double sum = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double x = a + (i + 0.5) * h;
    sum += std::exp(-x * x) * std::cos(3.0 * x) * h;
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.integer("ranks", 5, "process count"));
  const int tasks = static_cast<int>(opts.integer("tasks", 64, "sub-intervals"));
  const std::string proto_name = opts.str("protocol", "tdi", "tdi | tag | tel");
  opts.finish();

  if (ranks < 2) {
    std::printf("need at least 2 ranks (1 master + workers)\n");
    return 2;
  }

  ft::JobConfig cfg;
  cfg.n = ranks;
  cfg.protocol = proto_name == "tag"   ? ft::ProtocolKind::kTag
                 : proto_name == "tel" ? ft::ProtocolKind::kTel
                                       : ft::ProtocolKind::kTdi;
  cfg.latency = net::LatencyModel::turbulent();

  auto result_out = std::make_shared<std::atomic<double>>(0.0);

  auto app = [&](ft::Ctx& ctx) {
    const int me = ctx.rank();
    if (me == 0) {
      // ---- master ----
      int next_task = 0;
      int outstanding = 0;
      double integral = 0.0;
      int done_workers = 0;
      if (ctx.restored()) {
        util::ByteReader r(*ctx.restored());
        next_task = r.i32();
        outstanding = r.i32();
        integral = r.f64();
      }
      // Seed one task per worker (on recovery, re-seeding is handled by the
      // duplicate filter: workers discard repeats).
      auto send_task = [&](int worker) {
        if (next_task < tasks) {
          mp::send_value(ctx, worker, kTagTask, next_task++);
          ++outstanding;
        } else {
          mp::send_value(ctx, worker, kTagStop, 0);
          ++done_workers;
        }
      };
      if (!ctx.restored()) {
        for (int w = 1; w < ctx.size(); ++w) send_task(w);
      }
      while (done_workers < ctx.size() - 1) {
        if (next_task % 16 == 0 && outstanding > 0) {
          util::ByteWriter w;
          w.i32(next_task);
          w.i32(outstanding);
          w.f64(integral);
          ctx.checkpoint(w.view());
        }
        // ANY_SOURCE: worker results arrive in non-deterministic order.
        mp::Message m = ctx.recv(mp::kAnySource, kTagResult);
        integral += util::from_bytes<double>(m.payload);
        --outstanding;
        send_task(m.src);
      }
      result_out->store(integral);
    } else {
      // ---- worker (stateless: restarts from scratch on failure) ----
      while (true) {
        mp::Message m = ctx.recv(0, mp::kAnyTag);
        if (m.tag == kTagStop) break;
        const int task = util::from_bytes<int>(m.payload);
        const double a = -4.0 + 8.0 * task / tasks;
        const double b = -4.0 + 8.0 * (task + 1) / tasks;
        mp::send_value(ctx, 0, kTagResult, integrate_chunk(a, b));
      }
    }
  };

  auto clean = ft::run_job(cfg, app);
  const double expected = result_out->load();
  std::printf("failure-free : integral=%.12f wall=%.1fms\n", expected,
              clean.wall_ms);

  // Crash one worker mid-farm.
  cfg.faults = {{ranks - 1, clean.wall_ms * 0.4}};
  result_out->store(0);
  auto faulty = ft::run_job(cfg, app);
  std::printf("with fault   : integral=%.12f wall=%.1fms recoveries=%llu "
              "dup_dropped=%llu\n",
              result_out->load(), faulty.wall_ms,
              static_cast<unsigned long long>(faulty.total.recoveries),
              static_cast<unsigned long long>(faulty.total.dup_dropped));

  if (std::abs(result_out->load() - expected) > 1e-12) {
    std::printf("MISMATCH!\n");
    return 1;
  }
  std::printf("OK: commutative ANY_SOURCE farm survives worker crash\n");
  return 0;
}
