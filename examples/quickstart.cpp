// Quickstart: run a small fault-tolerant job with the TDI protocol.
//
// Four ranks pass an accumulating token around a ring for a number of
// rounds, checkpointing as they go.  Midway through, rank 2 is crashed by
// the fault injector; the run completes anyway and the final token value is
// identical to the failure-free result.
//
//   ./quickstart [--ranks=4] [--rounds=40] [--protocol=tdi|tag|tel]
//                [--mode=nonblocking|blocking] [--fault-ms=-1]
#include <atomic>
#include <cstdio>

#include "util/options.h"
#include "windar/runtime.h"

using namespace windar;

namespace {

ft::ProtocolKind parse_protocol(const std::string& s) {
  if (s == "tag") return ft::ProtocolKind::kTag;
  if (s == "tel") return ft::ProtocolKind::kTel;
  return ft::ProtocolKind::kTdi;
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.integer("ranks", 4, "process count"));
  const int rounds = static_cast<int>(opts.integer("rounds", 40, "ring rounds"));
  const auto protocol = parse_protocol(
      opts.str("protocol", "tdi", "tdi | tag | tel"));
  const bool blocking = opts.str("mode", "nonblocking", "send path") == "blocking";
  const double fault_ms =
      opts.real("fault-ms", -1.0, "when to kill rank 2; <0 = auto (mid-run)");
  opts.finish();

  ft::JobConfig cfg;
  cfg.n = ranks;
  cfg.protocol = protocol;
  cfg.mode = blocking ? ft::SendMode::kBlocking : ft::SendMode::kNonBlocking;
  cfg.latency = net::LatencyModel::turbulent();

  auto final_token = std::make_shared<std::atomic<long long>>(0);

  auto app = [&](ft::Ctx& ctx) {
    const int n = ctx.size();
    const int me = ctx.rank();
    const int next = (me + 1) % n;
    const int prev = (me - 1 + n) % n;

    // Restore loop position from the last checkpoint if we are an
    // incarnation of a crashed rank.
    int start = 0;
    long long acc = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      acc = r.i64();
      std::printf("[rank %d] recovered at round %d\n", me, start);
    }

    for (int round = start; round < rounds; ++round) {
      if (round > 0 && round % 10 == 0) {
        util::ByteWriter w;
        w.i32(round);
        w.i64(acc);
        ctx.checkpoint(w.view());
      }
      if (me == 0) {
        mp::send_value(ctx, next, 0, acc + 1);
        acc = mp::recv_value<long long>(ctx, prev, 0);
      } else {
        const auto token = mp::recv_value<long long>(ctx, prev, 0);
        mp::send_value(ctx, next, 0, token + 1);
      }
      // A little "compute" so the fault window is wide enough to hit.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (me == 0) final_token->store(acc);
  };

  // Failure-free reference run.
  auto clean = ft::run_job(cfg, app);
  const long long expected = final_token->load();
  std::printf("failure-free : token=%lld wall=%.1fms\n", expected,
              clean.wall_ms);

  // Same job with rank 2 crashed mid-run.
  cfg.faults = {{ranks > 2 ? 2 : 0,
                 fault_ms > 0 ? fault_ms : clean.wall_ms * 0.5}};
  final_token->store(-1);
  auto faulty = ft::run_job(cfg, app);
  const long long recovered = final_token->load();
  std::printf("with fault   : token=%lld wall=%.1fms recoveries=%llu "
              "resent=%llu dup_dropped=%llu\n",
              recovered, faulty.wall_ms,
              static_cast<unsigned long long>(faulty.total.recoveries),
              static_cast<unsigned long long>(faulty.total.resent_msgs),
              static_cast<unsigned long long>(faulty.total.dup_dropped));

  if (expected != recovered) {
    std::printf("MISMATCH: recovery changed the result!\n");
    return 1;
  }
  std::printf("OK: recovery preserved the result (protocol piggyback: "
              "%.1f identifiers/msg)\n",
              faulty.total.avg_piggyback_idents());
  return 0;
}
