// windar_sim — full command-line driver for the recovery stack.
//
// Runs any built-in workload under any protocol / send mode / fault
// schedule, prints the overhead metrics, and (optionally) records and
// validates the causal event trace.  This is the "everything in one binary"
// surface for experimenting beyond the canned benchmarks.
//
// Examples:
//   ./windar_sim --app=lu --ranks=16 --protocol=tag
//   ./windar_sim --app=ring --ranks=8 --faults=2@10,3@25 --trace
//   ./windar_sim --app=bt --mode=blocking --ckpt-every=4 --repeat=3
#include <atomic>
#include <cstdio>

#include "mp/collectives.h"
#include "npb/driver.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "windar/runtime.h"
#include "windar/trace.h"

using namespace windar;

namespace {

ft::ProtocolKind parse_protocol(const std::string& s) {
  if (s == "tag") return ft::ProtocolKind::kTag;
  if (s == "tel") return ft::ProtocolKind::kTel;
  if (s == "pes") return ft::ProtocolKind::kPes;
  if (s == "tdi-s" || s == "tdis") return ft::ProtocolKind::kTdiSparse;
  return ft::ProtocolKind::kTdi;
}

/// Parses "rank@ms,rank@ms,..." fault schedules.
std::vector<ft::FaultEvent> parse_faults(const std::string& s) {
  std::vector<ft::FaultEvent> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    const auto at = item.find('@');
    WINDAR_CHECK(at != std::string::npos) << "fault syntax is rank@ms";
    out.push_back({std::atoi(item.substr(0, at).c_str()),
                   std::atof(item.substr(at + 1).c_str())});
    pos = comma + 1;
  }
  return out;
}

// Built-in non-NPB workloads.
void ring_workload(ft::Ctx& ctx, int rounds, int ckpt_every) {
  const int n = ctx.size();
  int start = 0;
  if (ctx.restored()) {
    util::ByteReader r(*ctx.restored());
    start = r.i32();
  }
  for (int i = start; i < rounds; ++i) {
    if (ckpt_every > 0 && i > 0 && i % ckpt_every == 0) {
      util::ByteWriter w;
      w.i32(i);
      ctx.checkpoint(w.view());
    }
    mp::send_value(ctx, (ctx.rank() + 1) % n, 0, i);
    (void)mp::recv_value<int>(ctx, (ctx.rank() + n - 1) % n, 0);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void alltoall_workload(ft::Ctx& ctx, int rounds, int ckpt_every) {
  const int n = ctx.size();
  int start = 0;
  if (ctx.restored()) {
    util::ByteReader r(*ctx.restored());
    start = r.i32();
  }
  for (int i = start; i < rounds; ++i) {
    if (ckpt_every > 0 && i > 0 && i % ckpt_every == 0) {
      util::ByteWriter w;
      w.i32(i);
      ctx.checkpoint(w.view());
    }
    for (int d = 0; d < n; ++d) {
      if (d != ctx.rank()) mp::send_value(ctx, d, i, ctx.rank());
    }
    for (int j = 0; j < n - 1; ++j) (void)ctx.recv(mp::kAnySource, i);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const std::string app =
      opts.str("app", "ring", "lu | bt | sp | ring | alltoall");
  const int ranks = static_cast<int>(opts.integer("ranks", 8, "process count"));
  const auto protocol = parse_protocol(
      opts.str("protocol", "tdi", "tdi | tdi-s | tag | tel | pes"));
  const bool blocking =
      opts.str("mode", "nonblocking", "blocking | nonblocking") == "blocking";
  const int rounds = static_cast<int>(opts.integer("rounds", 40, "workload rounds"));
  const int ckpt_every =
      static_cast<int>(opts.integer("ckpt-every", 8, "checkpoint cadence (0=off)"));
  const double scale = opts.real("scale", 1.0, "NPB iteration scale");
  const std::string fault_spec =
      opts.str("faults", "", "fault schedule, e.g. 2@10,3@25 (rank@ms)");
  const bool trace = opts.flag("trace", false, "record + validate causal trace");
  const bool dump_trace = opts.flag("dump-trace", false, "print the event log");
  const int repeat = static_cast<int>(opts.integer("repeat", 1, "repetitions"));
  const std::uint64_t seed = static_cast<std::uint64_t>(
      opts.integer("seed", 1, "network seed"));
  opts.finish();

  ft::JobConfig cfg;
  cfg.n = ranks;
  cfg.protocol = protocol;
  cfg.mode = blocking ? ft::SendMode::kBlocking : ft::SendMode::kNonBlocking;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.seed = seed;
  cfg.faults = parse_faults(fault_spec);
  ft::TraceSink sink;
  if (trace || dump_trace) cfg.trace = &sink;

  ft::FtRankFn fn;
  if (app == "ring") {
    fn = [&](ft::Ctx& ctx) { ring_workload(ctx, rounds, ckpt_every); };
  } else if (app == "alltoall") {
    fn = [&](ft::Ctx& ctx) { alltoall_workload(ctx, rounds, ckpt_every); };
  } else {
    npb::App napp = app == "bt"   ? npb::App::kBT
                    : app == "sp" ? npb::App::kSP
                                  : npb::App::kLU;
    npb::Params params = npb::make_params(napp, ranks, scale);
    params.checkpoint_every = ckpt_every;
    fn = [params](ft::Ctx& ctx) { (void)npb::run_app(ctx, params, &ctx); };
  }

  util::Table table({"run", "wall ms", "msgs", "idents/msg", "track us/msg",
                     "ctrl msgs", "recoveries", "dup", "resent"});
  for (int rep = 0; rep < repeat; ++rep) {
    cfg.seed = seed + static_cast<std::uint64_t>(rep);
    sink.clear();
    auto result = ft::run_job(cfg, fn);
    const ft::Metrics& m = result.total;
    table.row({std::to_string(rep), util::fmt_double(result.wall_ms, 1),
               std::to_string(m.app_sent),
               util::fmt_double(m.avg_piggyback_idents(), 2),
               util::fmt_double(m.avg_track_us(), 3),
               std::to_string(m.control_msgs),
               std::to_string(m.recoveries), std::to_string(m.dup_dropped),
               std::to_string(m.resent_msgs)});
    if (dump_trace) std::fputs(sink.dump().c_str(), stdout);
    if (trace) {
      const auto verdict = ft::validate_trace(sink.snapshot(), ranks);
      if (verdict.ok()) {
        std::printf("trace: OK (%llu deliveries, %llu sends validated)\n",
                    static_cast<unsigned long long>(verdict.deliveries_checked),
                    static_cast<unsigned long long>(verdict.sends_checked));
      } else {
        std::printf("trace: %zu VIOLATIONS, first: %s\n",
                    verdict.violations.size(),
                    verdict.violations[0].c_str());
        return 1;
      }
    }
  }
  table.print("windar_sim — " + app + " / " + to_string(cfg.protocol) + " / " +
              to_string(cfg.mode));
  return 0;
}
