// windar_sim — full command-line driver for the recovery stack.
//
// Runs any built-in workload under any protocol / send mode / fault
// schedule, prints the overhead metrics, and (optionally) records and
// validates the causal event trace.  This is the "everything in one binary"
// surface for experimenting beyond the canned benchmarks.
//
// Examples:
//   ./windar_sim --app=lu --ranks=16 --protocol=tag
//   ./windar_sim --app=ring --ranks=8 --faults=2@10,3@25 --trace
//   ./windar_sim --app=bt --mode=blocking --ckpt-every=4 --repeat=3
//
// --transport=socket (or WINDAR_TRANSPORT=socket) runs the job as one real
// OS process per rank over Unix-domain sockets: the binary re-execs itself
// as each worker, faults become actual SIGKILLs, and recovery restores from
// disk checkpoints (windar/launcher.h).
//
//   ./windar_sim --app=ring --ranks=8 --transport=socket --faults=2@10
#include <atomic>
#include <cstdio>

#include "mp/collectives.h"
#include "net/transport.h"
#include "npb/driver.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/wait.h"
#include "windar/launcher.h"
#include "windar/runtime.h"
#include "windar/trace.h"

using namespace windar;

namespace {

ft::ProtocolKind parse_protocol(const std::string& s) {
  if (s == "tag") return ft::ProtocolKind::kTag;
  if (s == "tel") return ft::ProtocolKind::kTel;
  if (s == "pes") return ft::ProtocolKind::kPes;
  if (s == "tdi-s" || s == "tdis") return ft::ProtocolKind::kTdiSparse;
  if (s == "tdi-d" || s == "tdid") return ft::ProtocolKind::kTdiDelta;
  return ft::ProtocolKind::kTdi;
}

/// Parses "rank@ms,rank@ms,..." fault schedules.
std::vector<ft::FaultEvent> parse_faults(const std::string& s) {
  std::vector<ft::FaultEvent> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string item = s.substr(pos, comma - pos);
    const auto at = item.find('@');
    WINDAR_CHECK(at != std::string::npos) << "fault syntax is rank@ms";
    out.push_back({std::atoi(item.substr(0, at).c_str()),
                   std::atof(item.substr(at + 1).c_str())});
    pos = comma + 1;
  }
  return out;
}

// Built-in non-NPB workloads.
void ring_workload(ft::Ctx& ctx, int rounds, int ckpt_every) {
  const int n = ctx.size();
  int start = 0;
  if (ctx.restored()) {
    util::ByteReader r(*ctx.restored());
    start = r.i32();
  }
  for (int i = start; i < rounds; ++i) {
    if (ckpt_every > 0 && i > 0 && i % ckpt_every == 0) {
      util::ByteWriter w;
      w.i32(i);
      ctx.checkpoint(w.view());
    }
    mp::send_value(ctx, (ctx.rank() + 1) % n, 0, i);
    (void)mp::recv_value<int>(ctx, (ctx.rank() + n - 1) % n, 0);
    util::coop_sleep_for(std::chrono::microseconds(200));
  }
}

void alltoall_workload(ft::Ctx& ctx, int rounds, int ckpt_every) {
  const int n = ctx.size();
  int start = 0;
  if (ctx.restored()) {
    util::ByteReader r(*ctx.restored());
    start = r.i32();
  }
  for (int i = start; i < rounds; ++i) {
    if (ckpt_every > 0 && i > 0 && i % ckpt_every == 0) {
      util::ByteWriter w;
      w.i32(i);
      ctx.checkpoint(w.view());
    }
    for (int d = 0; d < n; ++d) {
      if (d != ctx.rank()) mp::send_value(ctx, d, i, ctx.rank());
    }
    for (int j = 0; j < n - 1; ++j) (void)ctx.recv(mp::kAnySource, i);
    util::coop_sleep_for(std::chrono::microseconds(200));
  }
}

struct SimOptions {
  std::string app;
  int ranks = 8;
  ft::ProtocolKind protocol = ft::ProtocolKind::kTdi;
  bool blocking = false;
  int rounds = 40;
  int ckpt_every = 8;
  double scale = 1.0;
  std::string fault_spec;
  bool trace = false;
  bool dump_trace = false;
  int repeat = 1;
  std::uint64_t seed = 1;
  net::TransportKind transport = net::default_transport();
  exec::ExecModel exec_model = exec::ExecModel::kAuto;
  int exec_workers = 0;
  int logger_shards = 0;
};

SimOptions parse_sim_options(int argc, char** argv) {
  util::Options opts(argc, argv);
  SimOptions o;
  o.app = opts.str("app", "ring", "lu | bt | sp | ring | alltoall");
  o.ranks = static_cast<int>(opts.integer("ranks", 8, "process count"));
  o.protocol = parse_protocol(
      opts.str("protocol", "tdi", "tdi | tdi-s | tdi-d | tag | tel | pes"));
  o.blocking =
      opts.str("mode", "nonblocking", "blocking | nonblocking") == "blocking";
  o.rounds = static_cast<int>(opts.integer("rounds", 40, "workload rounds"));
  o.ckpt_every = static_cast<int>(
      opts.integer("ckpt-every", 8, "checkpoint cadence (0=off)"));
  o.scale = opts.real("scale", 1.0, "NPB iteration scale");
  o.fault_spec =
      opts.str("faults", "", "fault schedule, e.g. 2@10,3@25 (rank@ms)");
  o.trace = opts.flag("trace", false, "record + validate causal trace");
  o.dump_trace = opts.flag("dump-trace", false, "print the event log");
  o.repeat = static_cast<int>(opts.integer("repeat", 1, "repetitions"));
  o.seed =
      static_cast<std::uint64_t>(opts.integer("seed", 1, "network seed"));
  std::string tname = opts.str("transport", to_string(o.transport),
                               "sim | socket (one OS process per rank)");
  WINDAR_CHECK(net::parse_transport(tname, &o.transport))
      << "unknown transport '" << tname << "'";
  const std::string ename =
      opts.str("exec", "auto",
               "threads | coop | auto (rank execution model; coop "
               "multiplexes ranks on a fixed worker pool)");
  WINDAR_CHECK(exec::parse_exec_model(ename, &o.exec_model))
      << "unknown exec model '" << ename << "'";
  o.exec_workers = static_cast<int>(
      opts.integer("exec-workers", 0, "coop worker pool size (0=default)"));
  o.logger_shards = static_cast<int>(opts.integer(
      "logger-shards", 0,
      "TEL/PES event-logger shards, shard = rank % N (0 = "
      "WINDAR_LOGGER_SHARDS, else 1)"));
  opts.finish();
  return o;
}

std::function<void(ft::Ctx&)> make_workload(const SimOptions& o) {
  if (o.app == "ring") {
    return [o](ft::Ctx& ctx) { ring_workload(ctx, o.rounds, o.ckpt_every); };
  }
  if (o.app == "alltoall") {
    return
        [o](ft::Ctx& ctx) { alltoall_workload(ctx, o.rounds, o.ckpt_every); };
  }
  npb::App napp = o.app == "bt"   ? npb::App::kBT
                  : o.app == "sp" ? npb::App::kSP
                                  : npb::App::kLU;
  npb::Params params = npb::make_params(napp, o.ranks, o.scale);
  params.checkpoint_every = o.ckpt_every;
  return [params](ft::Ctx& ctx) { (void)npb::run_app(ctx, params, &ctx); };
}

// Socket-mode worker entry: the launcher re-execs this binary with the
// original app flags plus the --windar-* block; rebuild the same workload
// from the forwarded flags and run it under the worker lifecycle.
int sim_worker_main(int argc, char** argv) {
  const ft::WorkerConfig cfg = ft::WorkerConfig::parse(argc, argv);
  std::vector<char*> av;
  av.reserve(cfg.app_args.size());
  for (const std::string& s : cfg.app_args) {
    av.push_back(const_cast<char*>(s.c_str()));
  }
  SimOptions o = parse_sim_options(static_cast<int>(av.size()), av.data());
  o.ranks = cfg.n;  // the launcher's rank count is authoritative
  auto workload = make_workload(o);
  return ft::run_worker(cfg, [&workload](ft::Ctx& ctx) -> std::uint64_t {
    workload(ctx);
    return 0;  // these workloads carry no digest; convergence is the soak's job
  });
}

int run_socket_mode(const SimOptions& o, int argc, char** argv) {
  if (o.trace || o.dump_trace) {
    std::fprintf(stderr,
                 "windar_sim: --trace spans one address space; "
                 "unsupported with --transport=socket\n");
    return 2;
  }
  ft::LaunchSpec spec;
  spec.job.n = o.ranks;
  spec.job.protocol = o.protocol;
  spec.job.mode =
      o.blocking ? ft::SendMode::kBlocking : ft::SendMode::kNonBlocking;
  spec.job.faults = parse_faults(o.fault_spec);
  spec.job.logger_shards = o.logger_shards;
  // Forward the user's flags verbatim; each worker re-parses them.
  for (int i = 1; i < argc; ++i) spec.worker_args.push_back(argv[i]);

  util::Table table({"run", "wall ms", "msgs", "recoveries", "pkts sent",
                     "delivered", "MB wire"});
  bool ok = true;
  for (int rep = 0; rep < o.repeat; ++rep) {
    spec.job.seed = o.seed + static_cast<std::uint64_t>(rep);
    const ft::MultiProcResult r = ft::run_multiproc_job(spec);
    if (!r.ok) {
      std::fprintf(stderr, "windar_sim: job failed: %s\n", r.error.c_str());
      ok = false;
    }
    table.row({std::to_string(rep), util::fmt_double(r.wall_ms, 1),
               std::to_string(r.app_sent), std::to_string(r.recoveries),
               std::to_string(r.fabric.packets_sent),
               std::to_string(r.fabric.packets_delivered),
               util::fmt_double(
                   static_cast<double>(r.fabric.bytes_sent) / 1e6, 2)});
  }
  table.print("windar_sim — " + o.app + " / " + to_string(o.protocol) +
              " / socket (" + std::to_string(o.ranks) + " processes)");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (ft::WorkerConfig::is_worker_invocation(argc, argv)) {
    return sim_worker_main(argc, argv);
  }
  const SimOptions o = parse_sim_options(argc, argv);
  if (o.transport == net::TransportKind::kSocket) {
    return run_socket_mode(o, argc, argv);
  }

  ft::JobConfig cfg;
  cfg.n = o.ranks;
  cfg.protocol = o.protocol;
  cfg.mode = o.blocking ? ft::SendMode::kBlocking : ft::SendMode::kNonBlocking;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.seed = o.seed;
  cfg.exec_model = o.exec_model;
  cfg.exec_workers = o.exec_workers;
  cfg.logger_shards = o.logger_shards;
  cfg.faults = parse_faults(o.fault_spec);
  ft::TraceSink sink;
  if (o.trace || o.dump_trace) cfg.trace = &sink;

  auto workload = make_workload(o);
  ft::FtRankFn fn = [&workload](ft::Ctx& ctx) { workload(ctx); };

  util::Table table({"run", "wall ms", "msgs", "idents/msg", "pb B/msg",
                     "pb ratio", "resyncs", "track us/msg", "ctrl msgs",
                     "recoveries", "dup", "resent"});
  for (int rep = 0; rep < o.repeat; ++rep) {
    cfg.seed = o.seed + static_cast<std::uint64_t>(rep);
    sink.clear();
    auto result = ft::run_job(cfg, fn);
    const ft::Metrics& m = result.total;
    const double pb_per_msg =
        m.app_sent ? static_cast<double>(m.piggyback_bytes_sent) /
                         static_cast<double>(m.app_sent)
                   : 0.0;
    table.row({std::to_string(rep), util::fmt_double(result.wall_ms, 1),
               std::to_string(m.app_sent),
               util::fmt_double(m.avg_piggyback_idents(), 2),
               util::fmt_double(pb_per_msg, 1),
               util::fmt_double(m.piggyback_compression(), 3),
               std::to_string(m.piggyback_resyncs),
               util::fmt_double(m.avg_track_us(), 3),
               std::to_string(m.control_msgs),
               std::to_string(m.recoveries), std::to_string(m.dup_dropped),
               std::to_string(m.resent_msgs)});
    if (o.dump_trace) std::fputs(sink.dump().c_str(), stdout);
    if (o.trace) {
      const auto verdict = ft::validate_trace(sink.snapshot(), o.ranks);
      if (verdict.ok()) {
        std::printf("trace: OK (%llu deliveries, %llu sends validated)\n",
                    static_cast<unsigned long long>(verdict.deliveries_checked),
                    static_cast<unsigned long long>(verdict.sends_checked));
      } else {
        std::printf("trace: %zu VIOLATIONS, first: %s\n",
                    verdict.violations.size(),
                    verdict.violations[0].c_str());
        return 1;
      }
    }
  }
  table.print("windar_sim — " + o.app + " / " + to_string(cfg.protocol) +
              " / " + to_string(cfg.mode));
  return 0;
}
