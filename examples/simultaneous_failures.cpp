// Domain example: surviving *simultaneous* multi-node failures (the paper's
// §III.D / Fig. 2 scenario).
//
// A 2-D halo-exchange computation loses several ranks at the same instant.
// Their sender logs vanish with them, but the paper's argument holds: every
// lost message is regenerated — with its dependency vector — by the failed
// processes' own rolling forward, while surviving ranks replay from their
// logs, so recovery converges even though the failed ranks must recover
// *each other*.  The example runs the same computation with 0, 1, 2 and 3
// simultaneous failures and shows the checksum never changes.
//
//   ./simultaneous_failures [--ranks=6] [--iters=40] [--protocol=tdi]
#include <atomic>
#include <cstdio>

#include "mp/collectives.h"
#include "npb/topology.h"
#include "util/options.h"
#include "windar/runtime.h"

using namespace windar;

namespace {

constexpr int kTagX = 1;
constexpr int kTagY = 2;

double run_once(ft::JobConfig cfg, int iters,
                std::shared_ptr<std::atomic<double>> out) {
  out->store(0.0);
  auto result = ft::run_job(cfg, [iters, out](ft::Ctx& ctx) {
    const npb::Grid2D g(ctx.rank(), ctx.size());
    mp::Coll coll(ctx);
    double cell = 1.0 + 0.1 * ctx.rank();
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      cell = r.f64();
      const std::uint32_t seq = r.u32();
      coll.reset_seq(seq);
    }
    for (int it = start; it < iters; ++it) {
      if (it > 0 && it % 10 == 0) {
        util::ByteWriter w;
        w.i32(it);
        w.f64(cell);
        w.u32(coll.seq());
        ctx.checkpoint(w.view());
      }
      double west = 0.5, east = 0.5, north = 0.5, south = 0.5;
      if (g.east() >= 0) mp::send_value(ctx, g.east(), kTagX, cell);
      if (g.west() >= 0) west = mp::recv_value<double>(ctx, g.west(), kTagX);
      if (g.west() >= 0) mp::send_value(ctx, g.west(), kTagX, cell);
      if (g.east() >= 0) east = mp::recv_value<double>(ctx, g.east(), kTagX);
      if (g.south() >= 0) mp::send_value(ctx, g.south(), kTagY, cell);
      if (g.north() >= 0) north = mp::recv_value<double>(ctx, g.north(), kTagY);
      if (g.north() >= 0) mp::send_value(ctx, g.north(), kTagY, cell);
      if (g.south() >= 0) south = mp::recv_value<double>(ctx, g.south(), kTagY);
      cell = 0.4 * cell + 0.15 * (west + east + north + south);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    const double contrib[1] = {cell};
    const double total = coll.allreduce_sum(contrib)[0];
    if (ctx.rank() == 0) out->store(total);
  });
  std::printf("  faults=%zu  checksum=%.12f  wall=%.1fms  recoveries=%llu "
              "resent=%llu\n",
              cfg.faults.size(), out->load(), result.wall_ms,
              static_cast<unsigned long long>(result.total.recoveries),
              static_cast<unsigned long long>(result.total.resent_msgs));
  return out->load();
}

}  // namespace

int main(int argc, char** argv) {
  util::Options opts(argc, argv);
  const int ranks = static_cast<int>(opts.integer("ranks", 6, "process count"));
  const int iters = static_cast<int>(opts.integer("iters", 40, "iterations"));
  const std::string proto_name = opts.str("protocol", "tdi", "tdi | tag | tel");
  opts.finish();

  ft::JobConfig cfg;
  cfg.n = ranks;
  cfg.protocol = proto_name == "tag"   ? ft::ProtocolKind::kTag
                 : proto_name == "tel" ? ft::ProtocolKind::kTel
                                       : ft::ProtocolKind::kTdi;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.restart_delay_ms = 5;

  auto out = std::make_shared<std::atomic<double>>(0.0);

  std::printf("baseline (no faults):\n");
  const double expected = run_once(cfg, iters, out);

  bool ok = true;
  for (int k = 1; k <= 3 && k < ranks; ++k) {
    std::printf("%d simultaneous failure%s at t=8ms:\n", k, k > 1 ? "s" : "");
    cfg.faults.clear();
    for (int i = 0; i < k; ++i) cfg.faults.push_back({i + 1, 8.0});
    ok &= (run_once(cfg, iters, out) == expected);
  }
  std::printf(ok ? "OK: all failure counts reproduce the baseline checksum\n"
                 : "MISMATCH!\n");
  return ok ? 0 : 1;
}
