// Process-level behaviour tests: duplicate filtering, FIFO gating under
// fabric reordering, eager vs rendezvous acks, suppression counters, and
// queue introspection — driven through small jobs where the invariant can be
// asserted from the metrics.
#include <gtest/gtest.h>

#include "mp/comm.h"
#include "windar/runtime.h"

namespace windar::ft {
namespace {

using mp::recv_value;
using mp::send_value;

JobConfig base(int n, SendMode mode = SendMode::kNonBlocking) {
  JobConfig c;
  c.n = n;
  c.protocol = ProtocolKind::kTdi;
  c.mode = mode;
  c.latency = net::LatencyModel::turbulent();
  c.restart_delay_ms = 5;
  return c;
}

TEST(Process, FifoPreservedUnderHeavyJitter) {
  // The fabric reorders aggressively; the recovery layer's per-pair FIFO
  // gate must still deliver in send order.
  auto cfg = base(2);
  cfg.latency.base = std::chrono::nanoseconds(1'000);
  cfg.latency.jitter = std::chrono::nanoseconds(300'000);
  run_job(cfg, [](Ctx& ctx) {
    constexpr int kN = 300;
    if (ctx.rank() == 0) {
      for (int i = 0; i < kN; ++i) send_value(ctx, 1, 1, i);
    } else {
      for (int i = 0; i < kN; ++i) {
        ASSERT_EQ(recv_value<int>(ctx, 0, 1), i);
      }
    }
  });
}

TEST(Process, LargePayloadRoundTrip) {
  run_job(base(2), [](Ctx& ctx) {
    std::vector<double> big(20'000);
    for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<double>(i);
    if (ctx.rank() == 0) {
      mp::send_vec<double>(ctx, 1, 0, big);
    } else {
      EXPECT_EQ(mp::recv_vec<double>(ctx, 0, 0), big);
    }
  });
}

TEST(Process, RendezvousAckOnlyOnConsumption) {
  // Blocking mode, payload above the eager threshold: the sender must stall
  // until the receiver's application actually recvs.
  auto cfg = base(2, SendMode::kBlocking);
  cfg.eager_threshold = 1024;
  auto result = run_job(cfg, [](Ctx& ctx) {
    std::vector<std::uint8_t> big(64 * 1024, 7);
    if (ctx.rank() == 0) {
      ctx.send(1, 0, big);
    } else {
      // Delay consumption; the sender's block time must cover this.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      (void)ctx.recv(0, 0);
    }
  });
  EXPECT_GE(result.total.send_block_ns, 15'000'000);  // >= 15 ms
}

TEST(Process, EagerAckReleasesQuickly) {
  auto cfg = base(2, SendMode::kBlocking);
  cfg.eager_threshold = 1 << 20;
  auto result = run_job(cfg, [](Ctx& ctx) {
    std::vector<std::uint8_t> small(512, 7);
    if (ctx.rank() == 0) {
      ctx.send(1, 0, small);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      (void)ctx.recv(0, 0);
    }
  });
  // Eager ack comes from the receiver layer (pumping peers) long before the
  // application consumes; but in blocking mode the receiver only pumps when
  // inside recv — so the ack arrives once the receiver enters recv.  Still,
  // the sender must complete well within the test.
  EXPECT_EQ(result.total.dup_dropped, 0u);
}

TEST(Process, SuppressionCountsDuringRollForward) {
  JobConfig cfg = base(2);
  cfg.faults = {{0, 6.0}};
  auto result = run_job(cfg, [](Ctx& ctx) {
    const int peer = 1 - ctx.rank();
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
    }
    for (int i = start; i < 30; ++i) {
      if (i == 10 && ctx.rank() == 0) {
        util::ByteWriter w;
        w.i32(i);
        ctx.checkpoint(w.view());
      }
      send_value(ctx, peer, 0, i);
      (void)recv_value<int>(ctx, peer, 0);
      std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
  });
  EXPECT_EQ(result.total.recoveries, 1u);
  // Rolling forward re-executes sends; some are suppressed (peer confirmed
  // delivery via RESPONSE) or arrive as duplicates and are discarded.
  EXPECT_GT(result.total.suppressed_sends + result.total.dup_dropped, 0u);
}

TEST(Process, ResendsCoverInFlightLoss) {
  // Kill the receiver while traffic is in flight: the dropped packets must
  // be replayed from the sender log.
  JobConfig cfg = base(2);
  cfg.faults = {{1, 4.0}};
  auto result = run_job(cfg, [](Ctx& ctx) {
    if (ctx.rank() == 0) {
      // Pace the burst so it spans the 4 ms fault: without pacing the whole
      // stream can complete before the receiver dies (resent_msgs would be
      // legitimately 0 and the assertion below flaky).
      for (int i = 0; i < 2000; ++i) {
        if (i % 50 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        send_value(ctx, 1, 0, i);
      }
    } else {
      long long sum = 0;
      for (int i = 0; i < 2000; ++i) sum += recv_value<int>(ctx, 0, 0);
      EXPECT_EQ(sum, 2000ll * 1999 / 2);
    }
  });
  EXPECT_EQ(result.total.recoveries, 1u);
  EXPECT_GT(result.total.resent_msgs, 0u);
}

TEST(Process, DeliveredTotalMatchesMetrics) {
  auto cfg = base(3);
  run_job(cfg, [](Ctx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) (void)ctx.recv();
      EXPECT_EQ(ctx.process().delivered_total(), 5u);
      EXPECT_EQ(ctx.process().receive_queue_depth(), 0u);
    } else {
      for (int i = 0; i < 2; ++i) send_value(ctx, 0, 0, i);
      if (ctx.rank() == 1) send_value(ctx, 0, 0, 9);
    }
  });
}

TEST(Process, TagFilterHoldsUnrelatedMessages) {
  run_job(base(2), [](Ctx& ctx) {
    if (ctx.rank() == 0) {
      send_value(ctx, 1, 5, 55);
      send_value(ctx, 1, 6, 66);
    } else {
      // Consume in send order but match by tag explicitly.
      EXPECT_EQ(recv_value<int>(ctx, 0, 5), 55);
      EXPECT_EQ(recv_value<int>(ctx, 0, 6), 66);
    }
  });
}

TEST(Process, ManyRanksStress) {
  auto cfg = base(12);
  cfg.latency = net::LatencyModel::turbulent();
  auto result = run_job(cfg, [](Ctx& ctx) {
    const int n = ctx.size();
    // All-to-all twice.
    for (int round = 0; round < 2; ++round) {
      for (int d = 0; d < n; ++d) {
        if (d != ctx.rank()) send_value(ctx, d, round, ctx.rank());
      }
      int seen = 0;
      for (int i = 0; i < n - 1; ++i) {
        (void)ctx.recv(mp::kAnySource, round);
        ++seen;
      }
      EXPECT_EQ(seen, n - 1);
    }
  });
  EXPECT_EQ(result.total.app_sent, 12u * 11u * 2u);
  EXPECT_EQ(result.total.app_delivered, 12u * 11u * 2u);
}

TEST(Process, CheckpointIncludesLogAndCounters) {
  JobConfig cfg = base(2);
  cfg.faults = {{0, 8.0}};
  // Rank 0 checkpoints BETWEEN its sends; after recovery, the pre-checkpoint
  // sends must not be replayed to rank 1 (they were delivered and their
  // indices are in the restored last_send counters).
  auto result = run_job(cfg, [](Ctx& ctx) {
    if (ctx.rank() == 0) {
      int start = 0;
      if (ctx.restored()) {
        util::ByteReader r(*ctx.restored());
        start = r.i32();
      }
      for (int i = start; i < 20; ++i) {
        // Checkpoint once, on whichever execution first reaches i == 10: if
        // the fault lands after the checkpoint the incarnation restarts at
        // start == 10 and must not checkpoint again, and if it lands before,
        // the restart-from-scratch run takes the one checkpoint itself.
        if (i == 10 && !ctx.restored()) {
          util::ByteWriter w;
          w.i32(i);
          ctx.checkpoint(w.view());
        }
        send_value(ctx, 1, 0, i);
        (void)recv_value<int>(ctx, 1, 0);  // echo keeps the pair in lockstep
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        const int v = recv_value<int>(ctx, 0, 0);
        EXPECT_EQ(v, i);
        send_value(ctx, 0, 0, v);
      }
    }
  });
  EXPECT_EQ(result.total.recoveries, 1u);
  EXPECT_EQ(result.total.checkpoints, 1u);
}

}  // namespace
}  // namespace windar::ft
