// Unit tests for the blocking queue used by endpoint inboxes and send paths.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/queue.h"

namespace windar::util {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, PopUntilTimesOut) {
  BlockingQueue<int> q;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_until(t0 + 20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 19ms);
  EXPECT_FALSE(q.poisoned());
}

TEST(BlockingQueue, PopWakesOnPush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    q.push(42);
  });
  EXPECT_EQ(q.pop(), 42);
  producer.join();
}

TEST(BlockingQueue, PoisonWakesWaiter) {
  BlockingQueue<int> q;
  std::thread killer([&] {
    std::this_thread::sleep_for(10ms);
    q.poison();
  });
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.poisoned());
  killer.join();
}

TEST(BlockingQueue, PoisonDropsQueuedItems) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.poison();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, PushAfterPoisonIsDropped) {
  BlockingQueue<int> q;
  q.poison();
  q.push(7);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, ReviveRearms) {
  BlockingQueue<int> q;
  q.poison();
  q.revive();
  EXPECT_FALSE(q.poisoned());
  q.push(9);
  EXPECT_EQ(q.pop(), 9);
}

TEST(BlockingQueue, ManyProducersOneConsumer) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  long long sum = 0;
  for (int i = 0; i < kPerProducer * kProducers; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    sum += *v;
  }
  for (auto& t : producers) t.join();
  const long long total = kPerProducer * kProducers;
  EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(BlockingQueue, MoveOnlyPayload) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(11));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 11);
}

}  // namespace
}  // namespace windar::util
