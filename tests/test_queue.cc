// Unit tests for the blocking queue used by endpoint inboxes and send paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/queue.h"

namespace windar::util {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, TryPopEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.push(5));
  EXPECT_EQ(q.try_pop(), 5);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, PopUntilTimesOut) {
  BlockingQueue<int> q;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_until(t0 + 20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 19ms);
  EXPECT_FALSE(q.poisoned());
}

TEST(BlockingQueue, PopUntilPastDeadlineStillReturnsQueuedItem) {
  // An already-expired deadline must not mask an item that is sitting in
  // the queue: the final take happens under the lock regardless.
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(8));
  EXPECT_EQ(q.pop_until(std::chrono::steady_clock::now() - 1s), 8);
}

TEST(BlockingQueue, PopForTimesOutThenDelivers) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.pop_for(10ms).has_value());
  ASSERT_TRUE(q.push(9));
  EXPECT_EQ(q.pop_for(10ms), 9);
}

TEST(BlockingQueue, PoisonDuringTimedWaitReturnsImmediately) {
  BlockingQueue<int> q;
  std::thread killer([&] {
    std::this_thread::sleep_for(10ms);
    q.poison();
  });
  const auto t0 = std::chrono::steady_clock::now();
  // Deadline far out: only the poison can end this wait early.
  EXPECT_FALSE(q.pop_until(t0 + 5s).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
  EXPECT_TRUE(q.poisoned());
  killer.join();
}

TEST(BlockingQueue, WakeupWithoutItemDoesNotEndTimedWaitEarly) {
  // Two timed waiters, one item: the push wakes both (directly or via a
  // spurious wakeup), but the loser must re-check the predicate and keep
  // waiting until its deadline instead of returning empty early.
  BlockingQueue<int> q;
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + 100ms;
  int got = 0;
  std::atomic<bool> empty_before_deadline{false};
  auto waiter = [&] {
    auto v = q.pop_until(deadline);
    if (v) {
      ++got;  // threads can't both get the single item (joined before reads)
    } else if (std::chrono::steady_clock::now() < deadline - 5ms) {
      empty_before_deadline = true;
    }
  };
  std::thread a(waiter), b(waiter);
  std::this_thread::sleep_for(10ms);
  ASSERT_TRUE(q.push(1));
  a.join();
  b.join();
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(empty_before_deadline.load());
}

TEST(BlockingQueue, PopWakesOnPush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    ASSERT_TRUE(q.push(42));
  });
  EXPECT_EQ(q.pop(), 42);
  producer.join();
}

TEST(BlockingQueue, PoisonWakesWaiter) {
  BlockingQueue<int> q;
  std::thread killer([&] {
    std::this_thread::sleep_for(10ms);
    q.poison();
  });
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.poisoned());
  killer.join();
}

TEST(BlockingQueue, PoisonDropsQueuedItems) {
  BlockingQueue<int> q;
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.poison();
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, PushAfterPoisonIsDropped) {
  BlockingQueue<int> q;
  q.poison();
  EXPECT_FALSE(q.push(7));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, ReviveRearms) {
  BlockingQueue<int> q;
  q.poison();
  q.revive();
  EXPECT_FALSE(q.poisoned());
  EXPECT_TRUE(q.push(9));
  EXPECT_EQ(q.pop(), 9);
}

TEST(BlockingQueue, ManyProducersOneConsumer) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  long long sum = 0;
  for (int i = 0; i < kPerProducer * kProducers; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    sum += *v;
  }
  for (auto& t : producers) t.join();
  const long long total = kPerProducer * kProducers;
  EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(BlockingQueue, MoveOnlyPayload) {
  BlockingQueue<std::unique_ptr<int>> q;
  ASSERT_TRUE(q.push(std::make_unique<int>(11)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 11);
}

TEST(BlockingQueue, PushBatchKeepsOrderAndInterleavesWithPush) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.push_batch({1, 2, 3}), 3u);
  ASSERT_TRUE(q.push(4));
  EXPECT_EQ(q.push_batch({5, 6}), 2u);
  for (int want = 1; want <= 6; ++want) EXPECT_EQ(q.pop(), want);
}

TEST(BlockingQueue, PushBatchEmptyIsNoop) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.push_batch({}), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(BlockingQueue, PushBatchToPoisonedQueueDropsWhole) {
  BlockingQueue<int> q;
  q.poison();
  EXPECT_EQ(q.push_batch({1, 2, 3}), 0u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, PushBatchWakesAllWaiters) {
  BlockingQueue<int> q;
  constexpr int kWaiters = 3;
  std::atomic<int> got{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      if (q.pop().has_value()) got.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(q.push_batch({10, 11, 12}), 3u);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(got.load(), kWaiters);
}

TEST(BlockingQueue, PushBatchAtomicAgainstConcurrentPoison) {
  // A batch is accepted whole or dropped whole: whatever instant the poison
  // lands, every push_batch return is either 0 or the full batch size, and
  // the consumer sees batches as contiguous runs (never a torn prefix).
  constexpr int kBatch = 10;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    BlockingQueue<int> q;
    std::atomic<std::size_t> accepted{0};
    std::thread producer([&] {
      int next = 0;
      while (true) {
        std::vector<int> batch;
        for (int i = 0; i < kBatch; ++i) batch.push_back(next + i);
        const std::size_t n = q.push_batch(std::move(batch));
        ASSERT_TRUE(n == 0 || n == kBatch);
        if (n == 0) return;  // poisoned
        accepted.fetch_add(n);
        next += kBatch;
      }
    });
    // Poison at an arbitrary point in the producer's stream.
    std::this_thread::sleep_for(std::chrono::microseconds(round % 50));
    q.poison();
    producer.join();
    EXPECT_EQ(accepted.load() % kBatch, 0u);
  }
}

}  // namespace
}  // namespace windar::util
