// SendPath unit tests: the transmission plane against a real (tiny) fabric —
// send-side logging and metrics, rolling-forward suppression, the blocking
// ack wait with self-pumping, and the receiver-thread dispatch/wake loop.
// The engine layers above are replaced by test callbacks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/fabric.h"
#include "windar/send_path.h"

namespace windar::ft {
namespace {

ProcessParams make_params(SendMode mode) {
  ProcessParams p;
  p.rank = 0;
  p.n = 2;
  p.protocol = ProtocolKind::kTdi;
  p.mode = mode;
  return p;
}

// A rank-0 transmission plane wired to a two-endpoint fabric; rank 1 is
// driven by the test itself (popping its inbox directly).
struct Harness {
  explicit Harness(SendMode mode = SendMode::kNonBlocking)
      : fabric(2, net::LatencyModel::deterministic(
                       std::chrono::nanoseconds(1'000),
                       std::chrono::nanoseconds(0)),
               /*seed=*/7),
        params(make_params(mode)),
        channels(2, 0),
        tracker(make_protocol(ProtocolKind::kTdi, 0, 2)),
        log(2),
        path(fabric, params, life, channels, tracker, log, metrics) {
    SendPath::Callbacks cb;
    cb.dispatch = [this](net::Packet&& p) {
      if (p.kind == wire(Kind::kDeliverAck)) {
        channels.record_ack(p.src, static_cast<SeqNo>(p.seq));
      }
      ++dispatched;
      return true;
    };
    cb.periodic = [] {};
    cb.wake = [this] { ++woken; };
    cb.urgent = [] { return false; };
    cb.transport_closed = [] {};
    path.set_callbacks(std::move(cb));
  }

  net::Fabric fabric;
  ProcessParams params;
  LifeFlags life;
  ChannelState channels;
  ProtocolHost tracker;
  SenderLog log;
  SharedMetrics metrics;
  SendPath path;
  std::atomic<int> dispatched{0};
  std::atomic<int> woken{0};
};

TEST(SendPath, SendAppTransmitsLogsAndCounts) {
  Harness h;
  const util::Bytes payload{1, 2, 3, 4};
  h.path.send_app(1, 5, payload);

  auto p = h.fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kApp));
  EXPECT_EQ(p->src, 0);
  EXPECT_EQ(p->dst, 1);
  EXPECT_EQ(p->tag, 5);
  EXPECT_EQ(p->seq, 1u);  // first send on the (0 -> 1) pair
  EXPECT_EQ(p->payload, payload);

  // The message is retained for log-driven resends, with its piggyback.
  EXPECT_EQ(h.log.entries_for(1), 1u);
  const Metrics m = h.metrics.snapshot();
  EXPECT_EQ(m.app_sent, 1u);
  EXPECT_EQ(m.app_transmitted, 1u);
  EXPECT_EQ(m.payload_bytes, payload.size());
}

TEST(SendPath, SuppressedResendSkipsTheWireButIsLogged) {
  Harness h;
  // The peer's RESPONSE confirmed it delivered 5 of our messages; rolling
  // forward re-executes those sends and they must be suppressed.
  h.channels.observe_response(1, 0, 5);
  h.path.send_app(1, 0, util::Bytes{9});

  const Metrics m = h.metrics.snapshot();
  EXPECT_EQ(m.app_sent, 1u);
  EXPECT_EQ(m.suppressed_sends, 1u);
  EXPECT_EQ(m.app_transmitted, 0u);
  EXPECT_EQ(h.fabric.stats().packets_sent, 0u);  // nothing hit the fabric
  // Still logged: a later rollback of the peer may need it.
  EXPECT_EQ(h.log.entries_for(1), 1u);
}

// Regression: the app thread could read paused==true, lose the CPU, and
// push into a holdback queue that resume_channel had already swapped out —
// stranding the packet (and FIFO-parking all later traffic behind its seq)
// with no failure present.  maybe_holdback now re-checks the flag under
// hb_mu_.  Hammer the window from a churning pause/resume thread: with the
// bug a packet goes missing within a few thousand iterations; with the fix
// every send must reach the wire (directly or via a flush).
TEST(SendPath, PauseResumeRaceStrandsNoPackets) {
  Harness h;
  constexpr std::uint64_t kSends = 4000;
  std::atomic<bool> done{false};
  std::thread churn([&] {
    while (!done.load(std::memory_order_acquire)) {
      h.path.pause_channel(1);
      h.path.resume_channel(1);
    }
  });
  const util::Bytes payload{1};
  for (std::uint64_t i = 0; i < kSends; ++i) h.path.send_app(1, 0, payload);
  done.store(true, std::memory_order_release);
  churn.join();
  h.path.resume_channel(1);  // flush anything legitimately parked

  const Metrics m = h.metrics.snapshot();
  EXPECT_EQ(m.app_sent, kSends);
  EXPECT_EQ(m.suppressed_sends, 0u);
  // Every send either went out directly or was flushed by a resume; none
  // may remain stranded in a swapped-out holdback queue.
  EXPECT_EQ(m.app_transmitted, kSends);
}

TEST(SendPath, BlockingSendPumpsOwnInboxUntilAcked) {
  Harness h(SendMode::kBlocking);
  // Rank 1: accept the message after a delay, then ack it.
  std::thread receiver([&h] {
    auto p = h.fabric.endpoint(1).inbox().pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->kind, wire(Kind::kApp));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    h.fabric.send(control_packet(1, 0, Kind::kDeliverAck, p->seq));
  });
  // Returns only once the ack arrived — via pump_once on this same thread,
  // through the dispatch callback above.
  h.path.send_app(1, 0, util::Bytes{1, 2, 3});
  receiver.join();
  EXPECT_TRUE(h.channels.is_acked(1, 1));
  EXPECT_GE(h.metrics.snapshot().send_block_ns, 1'000'000);  // >= 1 ms stall
}

TEST(SendPath, PumpOnceThrowsKilledAfterFaultInjection) {
  Harness h(SendMode::kBlocking);
  h.life.killed.store(true);
  EXPECT_THROW(h.path.pump_once(SendPath::Clock::now()), Killed);
}

TEST(SendPath, RecvLoopDispatchesAndWakesApplication) {
  Harness h;
  h.path.start();
  h.fabric.send(control_packet(1, 0, Kind::kDeliverAck, 3));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (h.dispatched.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(h.dispatched.load(), 1);
  EXPECT_GE(h.woken.load(), 1);  // dispatch returned true -> wake followed
  EXPECT_TRUE(h.channels.is_acked(1, 3));
  h.path.stop();  // joins cleanly; idempotent with the destructor's stop
}

TEST(SendPath, ControlMessagesCountAndBypassQueueA) {
  Harness h;
  h.path.send_control(1, Kind::kCheckpointAdvance, 4, util::Bytes{});
  auto p = h.fabric.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->kind, wire(Kind::kCheckpointAdvance));
  EXPECT_EQ(p->seq, 4u);
  EXPECT_EQ(h.metrics.snapshot().control_msgs, 1u);
}

}  // namespace
}  // namespace windar::ft
