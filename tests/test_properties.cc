// Property-based tests: randomized workloads, fault schedules, and network
// seeds, checked against the paper's correctness obligations (§III.D):
//   P1  outcome equality — failure+recovery produces exactly the
//       failure-free result;
//   P2  no lost messages — every send is eventually delivered exactly once
//       (delivered counts match send counts);
//   P3  no duplicate deliveries — the application-observed per-pair
//       sequences are gap-free and strictly increasing (asserted inside the
//       app via its running digests);
//   P4  holds for every protocol and both send paths.
#include <gtest/gtest.h>

#include <atomic>

#include "mp/comm.h"
#include "util/rng.h"
#include "windar/runtime.h"

namespace windar::ft {
namespace {

using mp::recv_value;
using mp::send_value;

// A randomized but *deterministically generated* workload: given the same
// topology seed, every rank makes the same send/recv script regardless of
// timing, so the job outcome is a pure function of the script.
struct RandomWorkload {
  int n = 4;
  int steps = 60;
  std::uint64_t topology_seed = 1;
  int checkpoint_every = 12;

  // Each step: every rank sends to a script-chosen peer, then receives all
  // messages addressed to it this step (counts are globally known).
  std::uint64_t run(Ctx& ctx) const {
    util::Rng script(topology_seed);
    // Precompute the full destination matrix so all ranks agree.
    std::vector<std::vector<int>> dst_of(static_cast<std::size_t>(steps),
                                         std::vector<int>(static_cast<std::size_t>(n)));
    for (int s = 0; s < steps; ++s) {
      for (int r = 0; r < n; ++r) {
        int d = static_cast<int>(script.next_below(static_cast<std::uint64_t>(n)));
        dst_of[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] = d;
      }
    }
    const int me = ctx.rank();
    int start = 0;
    std::uint64_t digest = 0xABCD + static_cast<std::uint64_t>(me);
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      digest = r.u64();
    }
    for (int s = start; s < steps; ++s) {
      if (checkpoint_every > 0 && s > 0 && s % checkpoint_every == 0) {
        util::ByteWriter w;
        w.i32(s);
        w.u64(digest);
        ctx.checkpoint(w.view());
      }
      const int to = dst_of[static_cast<std::size_t>(s)][static_cast<std::size_t>(me)];
      send_value(ctx, to, s, digest ^ static_cast<std::uint64_t>(s));
      int expected = 0;
      for (int r = 0; r < n; ++r) {
        if (dst_of[static_cast<std::size_t>(s)][static_cast<std::size_t>(r)] == me) ++expected;
      }
      // ANY_SOURCE fan-in folded commutatively (order must not matter).
      std::uint64_t fold = 0;
      for (int i = 0; i < expected; ++i) {
        fold += recv_value<std::uint64_t>(ctx, mp::kAnySource, s);
      }
      digest = digest * 0x100000001B3ull + fold + static_cast<std::uint64_t>(s);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return digest;
  }
};

std::uint64_t job_outcome(const RandomWorkload& wl, ProtocolKind proto,
                          SendMode mode, std::vector<FaultEvent> faults,
                          std::uint64_t net_seed, Metrics* metrics = nullptr) {
  // Every property job also records its causal trace and must pass the
  // offline invariant validator (FIFO, continuity, gate, order).
  TraceSink sink;
  JobConfig cfg;
  cfg.n = wl.n;
  cfg.protocol = proto;
  cfg.mode = mode;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.seed = net_seed;
  cfg.faults = std::move(faults);
  cfg.restart_delay_ms = 3;
  cfg.trace = &sink;
  auto sum = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto result = run_job(cfg, [&wl, sum](Ctx& ctx) {
    sum->fetch_add(wl.run(ctx) % 0xFFFFFFFFFFFFull);
  });
  if (metrics) *metrics = result.total;
  const auto verdict = validate_trace(sink.snapshot(), cfg.n);
  EXPECT_TRUE(verdict.ok()) << "trace: " << verdict.violations.size()
                            << " violations, first: "
                            << verdict.violations[0];
  return sum->load();
}

class PropertySweep
    : public ::testing::TestWithParam<std::tuple<int, ProtocolKind>> {};

TEST_P(PropertySweep, FaultedOutcomeEqualsCleanOutcome) {
  const auto [sweep_seed, proto] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(sweep_seed) * 7919 + 13);

  RandomWorkload wl;
  wl.n = 3 + static_cast<int>(rng.next_below(4));        // 3..6 ranks
  wl.steps = 30 + static_cast<int>(rng.next_below(30));  // 30..59 steps
  wl.topology_seed = rng.next_u64();
  wl.checkpoint_every = 8 + static_cast<int>(rng.next_below(8));

  const SendMode mode = rng.next_below(2) ? SendMode::kBlocking
                                          : SendMode::kNonBlocking;

  const std::uint64_t clean =
      job_outcome(wl, proto, mode, {}, rng.next_u64());

  // Random fault schedule: 1-2 faults on random ranks, early in the run.
  std::vector<FaultEvent> faults;
  const int nfaults = 1 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < nfaults; ++i) {
    faults.push_back({static_cast<int>(rng.next_below(
                          static_cast<std::uint64_t>(wl.n))),
                      2.0 + static_cast<double>(rng.next_below(15))});
  }

  Metrics metrics;
  const std::uint64_t faulted =
      job_outcome(wl, proto, mode, faults, rng.next_u64(), &metrics);

  EXPECT_EQ(clean, faulted)
      << "protocol=" << to_string(proto) << " mode=" << to_string(mode)
      << " n=" << wl.n << " steps=" << wl.steps << " faults=" << nfaults;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PropertySweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(ProtocolKind::kTdi,
                                         ProtocolKind::kTag,
                                         ProtocolKind::kTel)),
    [](const auto& param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) + "_" +
             to_string(std::get<1>(param_info.param));
    });

TEST(Property, DeliveryConservationFailureFree) {
  // P2/P3 baseline: without faults every send is delivered exactly once —
  // no duplicates sneak past the filter, nothing is lost to jitter.
  // (Under faults the per-incarnation counters legitimately double-count
  // re-executed work; there, outcome equality is the conservation check.)
  RandomWorkload wl;
  wl.n = 4;
  wl.steps = 40;
  wl.topology_seed = 999;
  for (auto proto : {ProtocolKind::kTdi, ProtocolKind::kTag,
                     ProtocolKind::kTel}) {
    Metrics metrics;
    (void)job_outcome(wl, proto, SendMode::kNonBlocking, {}, 5, &metrics);
    EXPECT_EQ(metrics.app_delivered, metrics.app_sent) << to_string(proto);
    EXPECT_EQ(metrics.dup_dropped, 0u) << to_string(proto);
    EXPECT_EQ(metrics.suppressed_sends, 0u) << to_string(proto);
  }
}

TEST(Property, TdiPiggybackInvariantUnderFaults) {
  // TDI's piggyback is exactly n identifiers per message, faults or not.
  RandomWorkload wl;
  wl.n = 5;
  wl.steps = 30;
  wl.topology_seed = 7;
  Metrics metrics;
  (void)job_outcome(wl, ProtocolKind::kTdi, SendMode::kNonBlocking,
                    {{1, 4.0}}, 11, &metrics);
  EXPECT_DOUBLE_EQ(metrics.avg_piggyback_idents(), 5.0);
}

}  // namespace
}  // namespace windar::ft
