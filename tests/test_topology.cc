// Tests for process-grid topology helpers and NPB state serialization.
#include <gtest/gtest.h>

#include "npb/state.h"
#include "npb/topology.h"

namespace windar::npb {
namespace {

TEST(Factor2, NearSquare) {
  EXPECT_EQ(factor2(1), std::make_pair(1, 1));
  EXPECT_EQ(factor2(4), std::make_pair(2, 2));
  EXPECT_EQ(factor2(8), std::make_pair(4, 2));
  EXPECT_EQ(factor2(16), std::make_pair(4, 4));
  EXPECT_EQ(factor2(32), std::make_pair(8, 4));
  EXPECT_EQ(factor2(12), std::make_pair(4, 3));
  EXPECT_EQ(factor2(7), std::make_pair(7, 1));  // prime: 1-D strip
}

TEST(Grid2D, CoordinatesRowMajor) {
  Grid2D g(5, 8);  // px=4, py=2 -> rank 5 is (x=1, y=1)
  EXPECT_EQ(g.px, 4);
  EXPECT_EQ(g.py, 2);
  EXPECT_EQ(g.cx, 1);
  EXPECT_EQ(g.cy, 1);
  EXPECT_EQ(g.rank_of(g.cx, g.cy), 5);
}

TEST(Grid2D, NeighboursAndBoundaries) {
  // 4x2 grid:
  //   0 1 2 3
  //   4 5 6 7
  Grid2D g0(0, 8);
  EXPECT_EQ(g0.west(), -1);
  EXPECT_EQ(g0.north(), -1);
  EXPECT_EQ(g0.east(), 1);
  EXPECT_EQ(g0.south(), 4);
  Grid2D g7(7, 8);
  EXPECT_EQ(g7.east(), -1);
  EXPECT_EQ(g7.south(), -1);
  EXPECT_EQ(g7.west(), 6);
  EXPECT_EQ(g7.north(), 3);
}

TEST(Grid2D, EveryRankHasConsistentNeighbours) {
  const int n = 12;
  for (int r = 0; r < n; ++r) {
    Grid2D g(r, n);
    if (g.east() >= 0) {
      Grid2D e(g.east(), n);
      EXPECT_EQ(e.west(), r);
    }
    if (g.south() >= 0) {
      Grid2D s(g.south(), n);
      EXPECT_EQ(s.north(), r);
    }
  }
}

TEST(Grid2D, ChunkPartitionsExactly) {
  for (int total : {10, 17, 32}) {
    for (int parts : {1, 3, 4, 7}) {
      int sum = 0;
      for (int i = 0; i < parts; ++i) sum += Grid2D::chunk(total, parts, i);
      EXPECT_EQ(sum, total);
      // offsets are cumulative chunk sums
      int off = 0;
      for (int i = 0; i < parts; ++i) {
        EXPECT_EQ(Grid2D::offset(total, parts, i), off);
        off += Grid2D::chunk(total, parts, i);
      }
    }
  }
}

TEST(IterState, RoundTrip) {
  IterState s;
  s.iter = 9;
  s.coll_seq = 77;
  s.racc = 2.25;
  s.u = {1.0, -2.5, 3.75};
  const auto blob = s.serialize();
  const IterState back = IterState::deserialize(blob);
  EXPECT_EQ(back.iter, 9);
  EXPECT_EQ(back.coll_seq, 77u);
  EXPECT_DOUBLE_EQ(back.racc, 2.25);
  EXPECT_EQ(back.u, s.u);
}

TEST(IterState, EmptyGrid) {
  IterState s;
  const IterState back = IterState::deserialize(s.serialize());
  EXPECT_TRUE(back.u.empty());
  EXPECT_EQ(back.iter, 0);
}

}  // namespace
}  // namespace windar::npb
