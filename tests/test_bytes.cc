// Unit tests for the binary serialization primitives and the shared
// immutable Buffer they emit into.
#include <gtest/gtest.h>

#include <limits>

#include "util/buffer.h"
#include "util/bytes.h"

namespace windar::util {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159265358979);
  w.boolean(true);
  w.boolean(false);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripExtremes) {
  ByteWriter w;
  w.u32(std::numeric_limits<std::uint32_t>::max());
  w.i32(std::numeric_limits<std::int32_t>::min());
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  ByteReader r(w.view());
  EXPECT_EQ(r.u32(), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(r.i32(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -0.0);
}

TEST(Bytes, LengthPrefixedSections) {
  ByteWriter w;
  Bytes blob = {1, 2, 3, 4, 5};
  w.bytes(blob);
  w.str("hello windar");
  w.u32_vec(std::vector<std::uint32_t>{7, 8, 9});
  w.u64_vec(std::vector<std::uint64_t>{1ull << 40});

  ByteReader r(w.view());
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.str(), "hello windar");
  EXPECT_EQ(r.u32_vec(), (std::vector<std::uint32_t>{7, 8, 9}));
  EXPECT_EQ(r.u64_vec(), (std::vector<std::uint64_t>{1ull << 40}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, EmptySections) {
  ByteWriter w;
  w.bytes({});
  w.str("");
  w.u32_vec({});
  ByteReader r(w.view());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  EXPECT_TRUE(r.u32_vec().empty());
}

TEST(Bytes, UnderflowAborts) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.view());
  r.u8();
  r.u8();
  EXPECT_DEATH((void)r.u8(), "underflow");
}

TEST(Bytes, RawWithoutPrefix) {
  ByteWriter w;
  Bytes raw = {9, 9, 9};
  w.raw(raw);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.view(), raw);
}

TEST(Bytes, TriviallyCopyableRoundTrip) {
  struct P {
    int a;
    double b;
  };
  P p{42, 2.5};
  Bytes data = to_bytes(p);
  P q = from_bytes<P>(data);
  EXPECT_EQ(q.a, 42);
  EXPECT_DOUBLE_EQ(q.b, 2.5);
}

TEST(Bytes, TruncatedSectionAborts) {
  ByteWriter w;
  w.bytes(Bytes{1, 2, 3, 4, 5});
  const Bytes full = w.take();
  // Drop the tail of the section: the length prefix promises 5 bytes but
  // only 2 survive.
  std::span<const std::uint8_t> cut(full.data(), full.size() - 3);
  ByteReader r(cut);
  EXPECT_DEATH((void)r.bytes(), "underflow");
}

TEST(Bytes, TruncatedVectorAborts) {
  ByteWriter w;
  w.u64_vec(std::vector<std::uint64_t>{1, 2, 3});
  const Bytes full = w.take();
  std::span<const std::uint8_t> cut(full.data(), full.size() - 8);
  ByteReader r(cut);
  EXPECT_DEATH((void)r.u64_vec(), "underflow");
}

TEST(Bytes, CorruptLengthPrefixDiesOnBoundsCheckNotReserve) {
  // A hostile/corrupt prefix claiming ~4 billion elements must hit the
  // bounds check before any attempt to reserve that much memory.
  ByteWriter w;
  w.u32(0xFFFFFFF0u);  // element count
  w.u32(7);            // but only one element's worth of bytes follows
  const Bytes blob = w.take();
  EXPECT_DEATH((void)ByteReader(blob).u32_vec(), "underflow");
  EXPECT_DEATH((void)ByteReader(blob).u64_vec(), "underflow");
  EXPECT_DEATH((void)ByteReader(blob).bytes(), "underflow");
  EXPECT_DEATH((void)ByteReader(blob).str(), "underflow");
}

TEST(Bytes, WriterSizeTracksAppends) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.u64(1);
  EXPECT_EQ(w.size(), 8u);
  w.u8(1);
  EXPECT_EQ(w.size(), 9u);
  Bytes taken = w.take();
  EXPECT_EQ(taken.size(), 9u);
}

// ---- util::Buffer: shared immutable regions on the message path ----

TEST(Buffer, SmallRegionsStayInline) {
  const Buffer b = Buffer::copy_of(Bytes(Buffer::kInlineCapacity, 0x11));
  EXPECT_TRUE(b.inline_storage());
  EXPECT_EQ(b.size(), Buffer::kInlineCapacity);
  const Buffer big = Buffer::copy_of(Bytes(Buffer::kInlineCapacity + 1, 0x22));
  EXPECT_FALSE(big.inline_storage());
}

TEST(Buffer, AdoptingAVectorDoesNotChangeTheBytes) {
  Bytes src(100, 0xCD);
  src[0] = 1;
  src[99] = 2;
  const Bytes expect = src;
  const Buffer b(std::move(src));
  EXPECT_FALSE(b.inline_storage());
  EXPECT_EQ(b, expect);
  EXPECT_EQ(b.to_vector(), expect);
}

TEST(Buffer, SmallAdoptedVectorCollapsesInline) {
  const Buffer b = Buffer(Bytes{1, 2, 3});
  EXPECT_TRUE(b.inline_storage());
  EXPECT_EQ(b, Buffer({1, 2, 3}));
}

TEST(Buffer, CopiesShareTheHeapBlock) {
  const Buffer a = Buffer::copy_of(Bytes(64, 0xAB));
  const Buffer b = a;  // refcount bump, not a byte copy
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a.data(), b.data());
}

TEST(Buffer, ViewAliasesWithoutCopying) {
  Bytes src(64, 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i);
  }
  const Buffer whole(std::move(src));
  const Buffer mid = whole.view(10, 20);
  EXPECT_TRUE(mid.shares_storage_with(whole));
  EXPECT_EQ(mid.size(), 20u);
  EXPECT_EQ(mid.data(), whole.data() + 10);
  EXPECT_EQ(mid[0], 10);
  EXPECT_DEATH((void)whole.view(50, 20), "out of range");
}

TEST(Buffer, LogEntryOutlivesDeliveredPacket) {
  // The copy-once contract: the sender-log entry and the wire packet alias
  // one block, and the entry (kept for resends) must stay valid after the
  // packet is delivered and destroyed.
  Buffer log_entry;
  {
    const Buffer packet = Buffer::copy_of(Bytes(4096, 0x5A));
    log_entry = packet;
    EXPECT_TRUE(log_entry.shares_storage_with(packet));
  }  // packet destroyed — its refcount drops, the block survives
  ASSERT_EQ(log_entry.size(), 4096u);
  for (std::size_t i = 0; i < log_entry.size(); i += 512) {
    EXPECT_EQ(log_entry[i], 0x5A);
  }
}

TEST(Buffer, ViewKeepsParentBlockAlive) {
  Buffer tail;
  {
    const Buffer whole = Buffer::copy_of(Bytes(256, 0x77));
    tail = whole.view(200, 56);
  }
  ASSERT_EQ(tail.size(), 56u);
  EXPECT_EQ(tail[0], 0x77);
  EXPECT_EQ(tail[55], 0x77);
}

TEST(Buffer, CopyOfCountsExactlyOneCopy) {
  const std::uint64_t blocks0 = Buffer::heap_blocks_created();
  const std::uint64_t copied0 = Buffer::total_bytes_copied();
  const Buffer a = Buffer::copy_of(Bytes(1000, 1));
  const Buffer b = a;            // refcount bump
  const Buffer c = a.view(0, 500);  // alias
  EXPECT_EQ(Buffer::heap_blocks_created() - blocks0, 1u);
  EXPECT_EQ(Buffer::total_bytes_copied() - copied0, 1000u);
  EXPECT_EQ(b.size() + c.size(), 1500u);
}

TEST(Buffer, TakeBufferEmitsWriterBytesVerbatim) {
  ByteWriter w;
  w.u32(0xDEADBEEFu);
  w.str("payload");
  ByteWriter w2;
  w2.u32(0xDEADBEEFu);
  w2.str("payload");
  const Bytes expect = w2.take();
  const Buffer b = take_buffer(w);
  EXPECT_EQ(b, expect);
  ByteReader r(b);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.str(), "payload");
  EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, ConvertsToSpanForReaders) {
  const Buffer b({9, 8, 7});
  std::span<const std::uint8_t> s = b;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], 9);
  EXPECT_EQ(s[2], 7);
}

}  // namespace
}  // namespace windar::util
