// Unit tests for the binary serialization primitives.
#include <gtest/gtest.h>

#include <limits>

#include "util/bytes.h"

namespace windar::util {
namespace {

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159265358979);
  w.boolean(true);
  w.boolean(false);

  ByteReader r(w.view());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, RoundTripExtremes) {
  ByteWriter w;
  w.u32(std::numeric_limits<std::uint32_t>::max());
  w.i32(std::numeric_limits<std::int32_t>::min());
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  ByteReader r(w.view());
  EXPECT_EQ(r.u32(), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(r.i32(), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), -0.0);
}

TEST(Bytes, LengthPrefixedSections) {
  ByteWriter w;
  Bytes blob = {1, 2, 3, 4, 5};
  w.bytes(blob);
  w.str("hello windar");
  w.u32_vec(std::vector<std::uint32_t>{7, 8, 9});
  w.u64_vec(std::vector<std::uint64_t>{1ull << 40});

  ByteReader r(w.view());
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.str(), "hello windar");
  EXPECT_EQ(r.u32_vec(), (std::vector<std::uint32_t>{7, 8, 9}));
  EXPECT_EQ(r.u64_vec(), (std::vector<std::uint64_t>{1ull << 40}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, EmptySections) {
  ByteWriter w;
  w.bytes({});
  w.str("");
  w.u32_vec({});
  ByteReader r(w.view());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.str().empty());
  EXPECT_TRUE(r.u32_vec().empty());
}

TEST(Bytes, UnderflowAborts) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.view());
  r.u8();
  r.u8();
  EXPECT_DEATH((void)r.u8(), "underflow");
}

TEST(Bytes, RawWithoutPrefix) {
  ByteWriter w;
  Bytes raw = {9, 9, 9};
  w.raw(raw);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.view(), raw);
}

TEST(Bytes, TriviallyCopyableRoundTrip) {
  struct P {
    int a;
    double b;
  };
  P p{42, 2.5};
  Bytes data = to_bytes(p);
  P q = from_bytes<P>(data);
  EXPECT_EQ(q.a, 42);
  EXPECT_DOUBLE_EQ(q.b, 2.5);
}

TEST(Bytes, WriterSizeTracksAppends) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.u64(1);
  EXPECT_EQ(w.size(), 8u);
  w.u8(1);
  EXPECT_EQ(w.size(), 9u);
  Bytes taken = w.take();
  EXPECT_EQ(taken.size(), 9u);
}

}  // namespace
}  // namespace windar::util
