// DeliveryQueue unit tests: the receiving queue and its delivery gate driven
// directly — duplicate suppression against both the delivered watermark and
// the parked queue, per-pair FIFO ordering, the external protocol gate, and
// the blocking-mode ack hooks.  No Process, no fabric, no helper threads.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "windar/delivery_queue.h"

namespace windar::ft {
namespace {

ProcessParams make_params(SendMode mode, std::size_t eager_threshold) {
  ProcessParams p;
  p.rank = 1;
  p.n = 2;
  p.protocol = ProtocolKind::kTdi;
  p.mode = mode;
  p.eager_threshold = eager_threshold;
  return p;
}

// A rank-1 engine slice receiving from rank 0, with a sender-side protocol
// instance producing genuine piggyback blobs.
struct Harness {
  explicit Harness(SendMode mode = SendMode::kNonBlocking,
                   std::size_t eager_threshold = 8 * 1024)
      : params(make_params(mode, eager_threshold)),
        channels(2, 1),
        tracker(make_protocol(ProtocolKind::kTdi, 1, 2)),
        sender(make_protocol(ProtocolKind::kTdi, 0, 2)),
        queue(params, channels, tracker, gate, metrics) {}

  /// Builds the kApp packet rank 0's send path would emit for send_index
  /// `idx`, with a real TDI piggyback.
  net::Packet packet(SeqNo idx, std::int32_t tag = 0,
                     std::size_t payload_size = 4) {
    const Piggyback pb = sender->on_send(1, idx);
    return app_packet(0, 1, tag, idx, pb.blob,
                      util::Bytes(payload_size, std::uint8_t{0xab}));
  }

  ProcessParams params;
  ChannelState channels;
  ProtocolHost tracker;
  std::unique_ptr<LoggingProtocol> sender;
  std::atomic<bool> gate{true};
  SharedMetrics metrics;
  DeliveryQueue queue;
};

TEST(DeliveryQueue, FifoGateHoldsOutOfOrderArrival) {
  Harness h;
  h.queue.admit(h.packet(2));  // reordered: index 2 lands first
  EXPECT_EQ(h.queue.depth(), 1u);
  EXPECT_FALSE(h.queue.has_deliverable(0, 0));

  h.queue.admit(h.packet(1));
  auto d1 = h.queue.try_deliver(0, 0);
  ASSERT_TRUE(d1.has_value());
  EXPECT_EQ(d1->deliver_seq, 1u);
  auto d2 = h.queue.try_deliver(0, 0);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->deliver_seq, 2u);
  EXPECT_EQ(h.queue.depth(), 0u);
  EXPECT_EQ(h.channels.last_deliver_of(0), 2u);
  EXPECT_EQ(h.metrics.snapshot().app_delivered, 2u);
}

TEST(DeliveryQueue, DuplicatesDroppedQueuedAndDelivered) {
  Harness h;
  h.queue.admit(h.packet(1));
  h.queue.admit(h.packet(1));  // duplicate of a parked message
  EXPECT_EQ(h.queue.depth(), 1u);
  EXPECT_EQ(h.metrics.snapshot().dup_dropped, 1u);

  ASSERT_TRUE(h.queue.try_deliver(0, 0).has_value());
  h.queue.admit(h.packet(1));  // repetitive message: already delivered
  EXPECT_EQ(h.queue.depth(), 0u);
  EXPECT_EQ(h.metrics.snapshot().dup_dropped, 2u);
}

TEST(DeliveryQueue, ClosedGateHoldsEverything) {
  Harness h;
  h.gate.store(false);  // determinant gather in flight
  h.queue.admit(h.packet(1));
  EXPECT_FALSE(h.queue.has_deliverable(mp::kAnySource, mp::kAnyTag));
  EXPECT_FALSE(h.queue.try_deliver(0, 0).has_value());
  h.gate.store(true);
  EXPECT_TRUE(h.queue.has_deliverable(mp::kAnySource, mp::kAnyTag));
  EXPECT_TRUE(h.queue.try_deliver(0, 0).has_value());
}

TEST(DeliveryQueue, SourceAndTagFiltersHoldUnrelatedMessages) {
  Harness h;
  h.queue.admit(h.packet(1, /*tag=*/7));
  EXPECT_FALSE(h.queue.try_deliver(0, 8).has_value());
  EXPECT_FALSE(h.queue.has_deliverable(0, 8));
  auto d = h.queue.try_deliver(mp::kAnySource, 7);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->msg.tag, 7);
  EXPECT_EQ(d->msg.src, 0);
}

TEST(DeliveryQueue, BlockingModeEagerAckOnAdmit) {
  Harness h(SendMode::kBlocking, /*eager_threshold=*/64);
  std::vector<std::pair<int, SeqNo>> acks;
  DeliveryQueue::Hooks hooks;
  hooks.send_ack = [&](int dst, SeqNo idx) { acks.emplace_back(dst, idx); };
  h.queue.set_hooks(std::move(hooks));

  h.queue.admit(h.packet(1, 0, /*payload_size=*/16));  // below threshold
  ASSERT_EQ(acks.size(), 1u);  // eager acceptance, before any recv
  EXPECT_EQ(acks[0], (std::pair<int, SeqNo>{0, 1}));
  ASSERT_TRUE(h.queue.try_deliver(0, 0).has_value());
  EXPECT_EQ(acks.size(), 1u);  // no second ack on consumption

  // A duplicate of an already-delivered message re-acks (the blocked sender
  // incarnation may never have seen the first ack).
  h.queue.admit(h.packet(1, 0, 16));
  EXPECT_EQ(acks.size(), 2u);
}

TEST(DeliveryQueue, BlockingModeRendezvousAckOnConsumption) {
  Harness h(SendMode::kBlocking, /*eager_threshold=*/64);
  std::vector<std::pair<int, SeqNo>> acks;
  DeliveryQueue::Hooks hooks;
  hooks.send_ack = [&](int dst, SeqNo idx) { acks.emplace_back(dst, idx); };
  h.queue.set_hooks(std::move(hooks));

  h.queue.admit(h.packet(1, 0, /*payload_size=*/256));  // above threshold
  EXPECT_TRUE(acks.empty());  // rendezvous: no ack until the app consumes
  ASSERT_TRUE(h.queue.try_deliver(0, 0).has_value());
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0], (std::pair<int, SeqNo>{0, 1}));
}

TEST(DeliveryQueue, RecvWaitThrowsOnceKilled) {
  Harness h;
  LifeFlags life;
  life.killed.store(true);
  // Nothing deliverable; the bounded wait must notice the fault flag within
  // one tick instead of hanging.
  EXPECT_THROW(h.queue.recv_wait(0, 0, life), Killed);
}

}  // namespace
}  // namespace windar::ft
