// Unit tests for the strict-PWD replay gate shared by TAG and TEL.
#include <gtest/gtest.h>

#include "windar/pwd_replay.h"

namespace windar::ft {
namespace {

TEST(PwdReplay, InactiveAdmitsEverything) {
  PwdReplayGate g;
  EXPECT_FALSE(g.active());
  EXPECT_TRUE(g.deliverable(3, 7, 0));
}

TEST(PwdReplay, EnforcesExactOrder) {
  PwdReplayGate g;
  g.begin(0);
  g.add({1, 0, 1, 1}, 0);  // (src 1, idx 1) was delivery #1
  g.add({2, 0, 1, 2}, 0);  // (src 2, idx 1) was delivery #2
  EXPECT_TRUE(g.deliverable(1, 1, 0));
  EXPECT_FALSE(g.deliverable(2, 1, 0));
  g.on_deliver(1);
  EXPECT_TRUE(g.deliverable(2, 1, 1));
  EXPECT_FALSE(g.deliverable(1, 1, 1));  // already past its slot
}

TEST(PwdReplay, IgnoresForeignReceivers) {
  PwdReplayGate g;
  g.begin(0);
  g.add({1, 5, 1, 1}, 0);  // receiver 5, not us
  EXPECT_EQ(g.pending(), 0u);
  EXPECT_TRUE(g.deliverable(9, 9, 0));  // no recorded history -> free
}

TEST(PwdReplay, IgnoresPreCheckpointDeterminants) {
  PwdReplayGate g;
  g.begin(10);
  g.add({1, 0, 3, 7}, 0);  // deliver_seq 7 <= base 10: already covered
  EXPECT_EQ(g.pending(), 0u);
  EXPECT_TRUE(g.deliverable(4, 4, 10));
}

TEST(PwdReplay, UnrecordedWaitForAllRecorded) {
  PwdReplayGate g;
  g.begin(0);
  g.add({2, 0, 1, 1}, 0);
  g.add({1, 0, 1, 2}, 0);
  // Unrecorded message: must wait until the contiguous recorded prefix
  // (deliveries 1-2) has been replayed.
  EXPECT_FALSE(g.deliverable(3, 1, 0));
  EXPECT_FALSE(g.deliverable(3, 1, 1));
  EXPECT_TRUE(g.deliverable(3, 1, 2));
}

TEST(PwdReplay, DisarmsAfterHistoryReplayed) {
  PwdReplayGate g;
  g.begin(0);
  g.add({1, 0, 1, 1}, 0);
  g.on_deliver(0);
  EXPECT_TRUE(g.active());
  g.on_deliver(1);
  EXPECT_FALSE(g.active());
  EXPECT_EQ(g.pending(), 0u);
}

TEST(PwdReplay, DuplicateAddIsIdempotent) {
  PwdReplayGate g;
  g.begin(0);
  g.add({1, 0, 1, 1}, 0);
  g.add({1, 0, 1, 1}, 0);
  EXPECT_EQ(g.pending(), 1u);
}

TEST(PwdReplay, GapTruncatesRecordedHistory) {
  // Determinants 1 and 3 present, 2 lost (multi-failure scenario): only the
  // contiguous prefix {1} is enforced; everything else is free afterwards.
  PwdReplayGate g;
  g.begin(0);
  g.add({1, 0, 1, 1}, 0);
  g.add({2, 0, 1, 3}, 0);  // recorded as delivery #3, but #2 is missing
  EXPECT_EQ(g.contiguous_end(), 1u);
  EXPECT_TRUE(g.deliverable(1, 1, 0));    // recorded #1
  EXPECT_FALSE(g.deliverable(2, 1, 0));   // beyond the gap: not yet
  EXPECT_FALSE(g.deliverable(9, 9, 0));   // unrecorded: not yet
  g.on_deliver(1);
  EXPECT_FALSE(g.active());               // prefix replayed -> disarmed
  EXPECT_TRUE(g.deliverable(2, 1, 1));    // post-gap: arrival order
  EXPECT_TRUE(g.deliverable(9, 9, 1));
}

TEST(PwdReplay, GapFillExtendsPrefix) {
  PwdReplayGate g;
  g.begin(0);
  g.add({1, 0, 1, 1}, 0);
  g.add({3, 0, 1, 3}, 0);
  EXPECT_EQ(g.contiguous_end(), 1u);
  g.add({2, 0, 1, 2}, 0);  // the missing determinant arrives later
  EXPECT_EQ(g.contiguous_end(), 3u);
  EXPECT_FALSE(g.deliverable(3, 1, 0));
  EXPECT_TRUE(g.deliverable(1, 1, 0));
}

TEST(PwdReplay, AllRecordsBeyondGapActLikeUnrecorded) {
  PwdReplayGate g;
  g.begin(5);
  g.add({1, 0, 1, 8}, 0);  // base is 5; determinant 6 and 7 missing
  EXPECT_EQ(g.contiguous_end(), 5u);
  EXPECT_TRUE(g.deliverable(1, 1, 5));  // free immediately (prefix empty)
}

TEST(PwdReplay, BeginResetsPriorState) {
  PwdReplayGate g;
  g.begin(0);
  g.add({1, 0, 1, 5}, 0);
  g.begin(3);
  EXPECT_EQ(g.pending(), 0u);
  EXPECT_TRUE(g.active());
  g.on_deliver(3);
  EXPECT_FALSE(g.active());
}

}  // namespace
}  // namespace windar::ft
