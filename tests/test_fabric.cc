// Tests for the simulated interconnect: delivery, latency ordering, the
// fault plane, and statistics.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/fabric.h"

namespace windar::net {
namespace {

using namespace std::chrono_literals;

Packet make(int src, int dst, std::uint64_t seq, std::size_t payload = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  p.payload = util::Buffer(util::Bytes(payload, 0));
  return p;
}

TEST(Fabric, DeliversPacket) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.send(make(0, 1, 7));
  auto p = f.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src, 0);
  EXPECT_EQ(p->seq, 7u);
}

TEST(Fabric, ZeroJitterPreservesSameSizeOrder) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  for (std::uint64_t i = 1; i <= 50; ++i) f.send(make(0, 1, i));
  for (std::uint64_t i = 1; i <= 50; ++i) {
    auto p = f.endpoint(1).inbox().pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(Fabric, JitterReordersIndependentPackets) {
  // With heavy jitter relative to base latency, a burst should arrive out of
  // send order at least once.
  LatencyModel m;
  m.base = std::chrono::nanoseconds(1000);
  m.per_byte = std::chrono::nanoseconds(0);
  m.jitter = std::chrono::nanoseconds(500'000);
  Fabric f(2, m, 99);
  constexpr int kN = 64;
  for (std::uint64_t i = 1; i <= kN; ++i) f.send(make(0, 1, i));
  bool reordered = false;
  std::uint64_t prev = 0;
  for (int i = 0; i < kN; ++i) {
    auto p = f.endpoint(1).inbox().pop();
    ASSERT_TRUE(p.has_value());
    if (p->seq < prev) reordered = true;
    prev = p->seq;
  }
  EXPECT_TRUE(reordered);
}

TEST(Fabric, LargerPayloadTakesLonger) {
  LatencyModel m = LatencyModel::deterministic(std::chrono::nanoseconds(1000),
                                               std::chrono::nanoseconds(500));
  Fabric f(2, m, 1);
  // Send the big packet first; the small one should overtake it.
  f.send(make(0, 1, 1, 64 * 1024));
  f.send(make(0, 1, 2, 0));
  auto first = f.endpoint(1).inbox().pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 2u);
}

TEST(Fabric, KillDropsQueuedAndInFlight) {
  Fabric f(2, LatencyModel::deterministic(std::chrono::microseconds(2000)), 1);
  f.send(make(0, 1, 1));
  f.kill(1);
  f.send(make(0, 1, 2));
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(f.endpoint(1).inbox().poisoned());
  EXPECT_FALSE(f.endpoint(1).alive());
  auto stats = f.stats();
  EXPECT_GE(stats.packets_dropped_dead, 1u);
}

TEST(Fabric, ReviveRestoresDelivery) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.kill(1);
  std::this_thread::sleep_for(5ms);
  f.revive(1);
  f.send(make(0, 1, 3));
  auto p = f.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 3u);
  EXPECT_TRUE(f.endpoint(1).alive());
}

TEST(Fabric, StatsCountTraffic) {
  Fabric f(3, LatencyModel::deterministic(), 1);
  f.send(make(0, 1, 1, 100));
  f.send(make(0, 2, 1, 100));
  (void)f.endpoint(1).inbox().pop();
  (void)f.endpoint(2).inbox().pop();
  auto stats = f.stats();
  EXPECT_EQ(stats.packets_sent, 2u);
  EXPECT_EQ(stats.packets_delivered, 2u);
  EXPECT_GT(stats.bytes_sent, 200u);
}

TEST(Fabric, ShutdownPoisonsEndpoints) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.shutdown();
  EXPECT_FALSE(f.endpoint(0).inbox().pop().has_value());
  f.shutdown();  // idempotent
}

TEST(Fabric, SendAfterShutdownIsDropped) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.shutdown();
  f.send(make(0, 1, 1));  // must not crash
}

TEST(Fabric, WireSizeIncludesHeaderAndSections) {
  Packet p = make(0, 1, 1, 10);
  p.meta = util::Buffer(util::Bytes(6, 0));
  EXPECT_EQ(p.wire_size(), 30u + 16u);
}

}  // namespace
}  // namespace windar::net
