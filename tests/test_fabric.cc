// Tests for the simulated interconnect: delivery, latency ordering, the
// fault plane, sharded scheduling, statistics, and the drop-accounting
// invariant  packets_sent == packets_delivered + packets_dropped_dead +
// packets_dropped_chaos.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/fabric.h"
#include "net/socket_transport.h"
#include "util/pool.h"

namespace windar::net {
namespace {

using namespace std::chrono_literals;

Packet make(int src, int dst, std::uint64_t seq, std::size_t payload = 0) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.seq = seq;
  p.payload = util::Buffer(util::Bytes(payload, 0));
  return p;
}

// Waits for the fabric to quiesce (every sent packet accounted for) and
// returns the stats at that point.  The invariant only holds once nothing is
// in flight — a transient sent > delivered + dropped is expected while a
// shard is mid-drain, since delivery happens outside the shard lock and the
// stats delta is booked after the batch lands.
FabricStats quiesced_stats(Fabric& f) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline) {
    const FabricStats s = f.stats();
    if (s.packets_sent == s.packets_delivered + s.packets_dropped_dead +
                              s.packets_dropped_chaos) {
      return s;
    }
    std::this_thread::sleep_for(200us);
  }
  return f.stats();
}

TEST(Fabric, DeliversPacket) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.send(make(0, 1, 7));
  auto p = f.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->src, 0);
  EXPECT_EQ(p->seq, 7u);
}

TEST(Fabric, ZeroJitterPreservesSameSizeOrder) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  for (std::uint64_t i = 1; i <= 50; ++i) f.send(make(0, 1, i));
  for (std::uint64_t i = 1; i <= 50; ++i) {
    auto p = f.endpoint(1).inbox().pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(Fabric, JitterReordersIndependentPackets) {
  // With heavy jitter relative to base latency, a burst should arrive out of
  // send order at least once.
  LatencyModel m;
  m.base = std::chrono::nanoseconds(1000);
  m.per_byte = std::chrono::nanoseconds(0);
  m.jitter = std::chrono::nanoseconds(500'000);
  Fabric f(2, m, 99);
  constexpr int kN = 64;
  for (std::uint64_t i = 1; i <= kN; ++i) f.send(make(0, 1, i));
  bool reordered = false;
  std::uint64_t prev = 0;
  for (int i = 0; i < kN; ++i) {
    auto p = f.endpoint(1).inbox().pop();
    ASSERT_TRUE(p.has_value());
    if (p->seq < prev) reordered = true;
    prev = p->seq;
  }
  EXPECT_TRUE(reordered);
}

TEST(Fabric, LargerPayloadTakesLonger) {
  LatencyModel m = LatencyModel::deterministic(std::chrono::nanoseconds(1000),
                                               std::chrono::nanoseconds(500));
  Fabric f(2, m, 1);
  // Send the big packet first; the small one should overtake it.
  f.send(make(0, 1, 1, 64 * 1024));
  f.send(make(0, 1, 2, 0));
  auto first = f.endpoint(1).inbox().pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->seq, 2u);
}

TEST(Fabric, KillDropsQueuedAndInFlight) {
  Fabric f(2, LatencyModel::deterministic(std::chrono::microseconds(2000)), 1);
  f.send(make(0, 1, 1));
  f.kill(1);
  f.send(make(0, 1, 2));
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(f.endpoint(1).inbox().poisoned());
  EXPECT_FALSE(f.endpoint(1).alive());
  auto stats = quiesced_stats(f);
  EXPECT_GE(stats.packets_dropped_dead, 1u);
}

TEST(Fabric, ReviveRestoresDelivery) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.kill(1);
  std::this_thread::sleep_for(5ms);
  f.revive(1);
  f.send(make(0, 1, 3));
  auto p = f.endpoint(1).inbox().pop();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seq, 3u);
  EXPECT_TRUE(f.endpoint(1).alive());
}

TEST(Fabric, StatsCountTraffic) {
  Fabric f(3, LatencyModel::deterministic(), 1);
  f.send(make(0, 1, 1, 100));
  f.send(make(0, 2, 1, 100));
  (void)f.endpoint(1).inbox().pop();
  (void)f.endpoint(2).inbox().pop();
  // pop() returns as soon as the push lands, which can be before the shard
  // books its stats delta — poll until the accounting catches up.
  auto stats = quiesced_stats(f);
  EXPECT_EQ(stats.packets_sent, 2u);
  EXPECT_EQ(stats.packets_delivered, 2u);
  EXPECT_GT(stats.bytes_sent, 200u);
}

TEST(Fabric, ShutdownPoisonsEndpoints) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.shutdown();
  EXPECT_FALSE(f.endpoint(0).inbox().pop().has_value());
  f.shutdown();  // idempotent
}

TEST(Fabric, SendAfterShutdownIsDropped) {
  Fabric f(2, LatencyModel::deterministic(), 1);
  f.shutdown();
  f.send(make(0, 1, 1));  // must not crash
}

TEST(Fabric, WireSizeIncludesHeaderAndSections) {
  Packet p = make(0, 1, 1, 10);
  p.meta = util::Buffer(util::Bytes(6, 0));
  EXPECT_EQ(p.wire_size(), 30u + 16u);
}

// --- Sharded scheduling -----------------------------------------------------

TEST(Fabric, ExplicitShardCountClampsToEndpoints) {
  Fabric f(2, LatencyModel::deterministic(), 1, 8);
  EXPECT_EQ(f.shard_count(), 2);
  Fabric g(8, LatencyModel::deterministic(), 1, 3);
  EXPECT_EQ(g.shard_count(), 3);
}

TEST(Fabric, ShardedFabricPreservesPerChannelFifo) {
  // All packets for one destination flow through one shard (dst % shards),
  // so zero-jitter same-size streams arrive in send order on every channel
  // even with the maximum shard spread.
  constexpr int kEndpoints = 5;
  Fabric f(kEndpoints, LatencyModel::deterministic(), 1, kEndpoints);
  ASSERT_EQ(f.shard_count(), kEndpoints);
  constexpr std::uint64_t kN = 40;
  for (std::uint64_t i = 1; i <= kN; ++i) {
    for (int dst = 1; dst < kEndpoints; ++dst) f.send(make(0, dst, i));
  }
  for (int dst = 1; dst < kEndpoints; ++dst) {
    for (std::uint64_t i = 1; i <= kN; ++i) {
      auto p = f.endpoint(dst).inbox().pop();
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(p->seq, i) << "channel 0->" << dst;
    }
  }
}

TEST(Fabric, StatsMergeAcrossShards) {
  Fabric f(4, LatencyModel::deterministic(), 1, 4);
  constexpr int kPerDst = 25;
  for (int dst = 0; dst < 4; ++dst) {
    for (int i = 0; i < kPerDst; ++i) {
      f.send(make((dst + 1) % 4, dst, static_cast<std::uint64_t>(i), 32));
    }
  }
  const FabricStats s = quiesced_stats(f);
  EXPECT_EQ(s.packets_sent, 4u * kPerDst);
  EXPECT_EQ(s.packets_delivered, 4u * kPerDst);
  EXPECT_EQ(s.packets_dropped_dead, 0u);
  EXPECT_EQ(s.packets_dropped_chaos, 0u);
}

TEST(Fabric, ChaosSenderKillBooksUnderChaosCounter) {
  // A chaos kill fired by the victim's own send drops the triggering packet:
  // it must land in packets_dropped_chaos, not pollute the dead-destination
  // signal, and still count as sent so the accounting invariant closes.
  Fabric f(2, LatencyModel::deterministic(), 1, 1);
  FaultSchedule chaos;
  ChaosEvent ev;
  ev.when = ChaosEvent::When::kSend;
  ev.action = ChaosEvent::Action::kKill;
  ev.endpoint = 0;
  ev.nth = 3;
  chaos.set_kill_handler([&](const ChaosEvent& fired) {
    f.kill(fired.target);
  });
  chaos.add(ev);
  f.set_chaos(&chaos);
  for (std::uint64_t i = 1; i <= 5; ++i) f.send(make(0, 1, i));
  const FabricStats s = quiesced_stats(f);
  EXPECT_EQ(s.packets_sent, 5u);
  EXPECT_EQ(s.packets_dropped_chaos, 1u);  // the 3rd send died mid-send
  EXPECT_EQ(s.packets_dropped_dead, 0u);   // endpoint 1 stayed alive
  EXPECT_EQ(s.packets_delivered, 4u);
  EXPECT_FALSE(f.endpoint(0).alive());
}

TEST(Fabric, CutThroughDeliversAndPreservesChannelFifo) {
  // An identically-zero latency model activates the sender-side cut-through.
  // A tiny ring forces constant full-ring fallbacks to the shard path, so
  // this exercises the cut-through/shard interleave: the shard_pending gate
  // must keep every channel's packets in order across the two routes.
  constexpr int kSenders = 3;
  constexpr int kPerSender = 4000;
  Fabric f(kSenders + 1, LatencyModel{0ns, 0ns, 0ns}, 11, 2,
           InboxConfig{InboxKind::kRing, 8});
  std::vector<std::uint64_t> next_seq(kSenders, 0);
  std::atomic<int> received{0};
  std::thread consumer([&] {
    while (received.load(std::memory_order_relaxed) < kSenders * kPerSender) {
      auto p = f.endpoint(kSenders).inbox().pop_until(
          std::chrono::steady_clock::now() + 100ms);
      if (!p) continue;
      ASSERT_LT(p->src, kSenders);
      // Same-size zero-jitter stream: per-channel FIFO is contractual.
      EXPECT_EQ(p->seq, next_seq[static_cast<std::size_t>(p->src)]++)
          << "channel " << p->src;
      received.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      for (int i = 0; i < kPerSender; ++i) {
        f.send(make(s, kSenders, static_cast<std::uint64_t>(i)));
      }
    });
  }
  for (auto& t : senders) t.join();
  consumer.join();
  const FabricStats s = quiesced_stats(f);
  EXPECT_EQ(s.packets_sent,
            static_cast<std::uint64_t>(kSenders) * kPerSender);
  EXPECT_EQ(s.packets_delivered, s.packets_sent);
  EXPECT_EQ(s.packets_dropped_dead, 0u);
}

TEST(Fabric, CutThroughKillStormAccountsEveryPacket) {
  // The drop-accounting invariant must close exactly when deliveries happen
  // on sender threads (cut-through) racing kill()/revive() — same contract
  // as the shard path: a packet books delivered only if its inbox push
  // succeeded, else dropped_dead, never both and never neither.
  for (const int shards : {1, 2, 4}) {
    constexpr int kSenders = 4;
    constexpr int kPerSender = 2000;
    Fabric f(kSenders + 1, LatencyModel{0ns, 0ns, 0ns}, 13, shards);
    std::atomic<bool> stop{false};
    std::thread chaos_monkey([&] {
      while (!stop.load(std::memory_order_acquire)) {
        f.kill(1);
        std::this_thread::sleep_for(50us);
        f.revive(1);
        std::this_thread::sleep_for(150us);
      }
      f.revive(1);
    });
    std::thread drainer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)f.endpoint(1).inbox().pop_until(
            std::chrono::steady_clock::now() + 1ms);
      }
    });
    std::vector<std::thread> senders;
    for (int s = 0; s < kSenders; ++s) {
      senders.emplace_back([&, s] {
        for (int i = 0; i < kPerSender; ++i) {
          f.send(make(s + (s >= 1 ? 1 : 0), 1, static_cast<std::uint64_t>(i)));
        }
      });
    }
    for (auto& t : senders) t.join();
    const FabricStats storm = quiesced_stats(f);
    stop.store(true, std::memory_order_release);
    chaos_monkey.join();
    drainer.join();
    EXPECT_EQ(storm.packets_sent,
              static_cast<std::uint64_t>(kSenders) * kPerSender)
        << "shards=" << shards;
    EXPECT_EQ(storm.packets_sent,
              storm.packets_delivered + storm.packets_dropped_dead +
                  storm.packets_dropped_chaos)
        << "shards=" << shards;
  }
}

TEST(Fabric, CutThroughDisableEnvKeepsShardPath) {
  // WINDAR_FABRIC_CUTTHROUGH=0 must force the classic shard route even on a
  // zero-latency fabric — the A/B escape hatch for bisects.
  ::setenv("WINDAR_FABRIC_CUTTHROUGH", "0", 1);
  {
    Fabric f(2, LatencyModel{0ns, 0ns, 0ns}, 1, 1);
    f.send(make(0, 1, 7));
    auto p = f.endpoint(1).inbox().pop_until(
        std::chrono::steady_clock::now() + 5s);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, 7u);
    EXPECT_TRUE(quiesced_stats(f).accounted());
  }
  ::unsetenv("WINDAR_FABRIC_CUTTHROUGH");
}

TEST(Fabric, KillDuringDeliveryStormAccountsEveryPacket) {
  // The lost-delivery miscount regression: a packet must never be counted
  // delivered and then vanish into a just-poisoned inbox.  Hammer endpoint 1
  // with concurrent senders while killing/reviving it, on every shard layout,
  // and require the accounting to close EXACTLY.
  for (const int shards : {1, 2, 4}) {
    constexpr int kSenders = 4;
    constexpr int kPerSender = 2000;
    Fabric f(kSenders + 1,
             LatencyModel::deterministic(std::chrono::nanoseconds(200),
                                         std::chrono::nanoseconds(0)),
             7, shards);
    std::atomic<bool> stop{false};
    std::thread chaos_monkey([&] {
      while (!stop.load(std::memory_order_acquire)) {
        f.kill(1);
        std::this_thread::sleep_for(50us);
        f.revive(1);
        std::this_thread::sleep_for(150us);
      }
      f.revive(1);
    });
    std::thread drainer([&] {
      // Keep the victim's inbox from growing without bound; pop_until also
      // tolerates the poison windows.
      while (!stop.load(std::memory_order_acquire)) {
        (void)f.endpoint(1).inbox().pop_until(
            std::chrono::steady_clock::now() + 1ms);
      }
    });
    std::vector<std::thread> senders;
    for (int s = 0; s < kSenders; ++s) {
      senders.emplace_back([&, s] {
        for (int i = 0; i < kPerSender; ++i) {
          f.send(make(s + (s >= 1 ? 1 : 0), 1, static_cast<std::uint64_t>(i)));
        }
      });
    }
    for (auto& t : senders) t.join();
    // Phase 1 (racy): the kill/revive storm ran concurrently with delivery.
    // Whatever split the race produced, the accounting must close EXACTLY —
    // no packet both counted delivered and swallowed by a poisoned inbox.
    const FabricStats storm = quiesced_stats(f);
    stop.store(true, std::memory_order_release);
    chaos_monkey.join();
    drainer.join();
    EXPECT_EQ(storm.packets_sent,
              static_cast<std::uint64_t>(kSenders) * kPerSender)
        << "shards=" << shards;
    EXPECT_EQ(storm.packets_sent,
              storm.packets_delivered + storm.packets_dropped_dead +
                  storm.packets_dropped_chaos)
        << "shards=" << shards;
    // Phase 2 (deterministic): with the endpoint held dead for a whole
    // burst, every one of those packets must book under dropped_dead.
    f.kill(1);
    constexpr int kDeadBurst = 500;
    for (int i = 0; i < kDeadBurst; ++i) {
      f.send(make(0, 1, static_cast<std::uint64_t>(i)));
    }
    const FabricStats dead = quiesced_stats(f);
    EXPECT_EQ(dead.packets_dropped_dead,
              storm.packets_dropped_dead + kDeadBurst)
        << "shards=" << shards;
    EXPECT_EQ(dead.packets_delivered, storm.packets_delivered)
        << "shards=" << shards;
    EXPECT_EQ(dead.packets_sent,
              dead.packets_delivered + dead.packets_dropped_dead +
                  dead.packets_dropped_chaos)
        << "shards=" << shards;
  }
}

TEST(Fabric, InboxBackendParityUnderKillStorm) {
  // The drop-accounting contract is backend-independent: the same concurrent
  // kill/revive storm must close exactly whether endpoint inboxes are the
  // bounded ring (and its capacity backpressure) or the legacy queue.
  for (const InboxKind kind : {InboxKind::kRing, InboxKind::kQueue}) {
    constexpr int kSenders = 3;
    constexpr int kPerSender = 1000;
    Fabric f(kSenders + 1,
             LatencyModel::deterministic(std::chrono::nanoseconds(200),
                                         std::chrono::nanoseconds(0)),
             5, 2, InboxConfig{kind, 32});
    std::atomic<bool> stop{false};
    std::thread chaos_monkey([&] {
      while (!stop.load(std::memory_order_acquire)) {
        f.kill(1);
        std::this_thread::sleep_for(40us);
        f.revive(1);
        std::this_thread::sleep_for(120us);
      }
      f.revive(1);
    });
    std::thread drainer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)f.endpoint(1).inbox().pop_until(
            std::chrono::steady_clock::now() + 1ms);
      }
    });
    std::vector<std::thread> senders;
    for (int s = 0; s < kSenders; ++s) {
      senders.emplace_back([&, s] {
        for (int i = 0; i < kPerSender; ++i) {
          f.send(make(s + (s >= 1 ? 1 : 0), 1, static_cast<std::uint64_t>(i)));
        }
      });
    }
    for (auto& t : senders) t.join();
    const FabricStats s = quiesced_stats(f);
    stop.store(true, std::memory_order_release);
    chaos_monkey.join();
    drainer.join();
    EXPECT_EQ(s.packets_sent,
              static_cast<std::uint64_t>(kSenders) * kPerSender)
        << "inbox=" << to_string(kind);
    EXPECT_EQ(s.packets_sent, s.packets_delivered + s.packets_dropped_dead +
                                  s.packets_dropped_chaos)
        << "inbox=" << to_string(kind);
  }
}

TEST(Fabric, RecycledPacketsAreNotDoubleCountedAsAllocs) {
  // The packets_recycled accounting invariant: every pool-backed payload is
  // either a fresh allocation or a recycled block, never both and never
  // neither — created + recycled deltas must sum to the payload count, with
  // steady-state traffic recycling nearly everything.
  util::BlockPool::global().trim();
  const std::uint64_t created0 = util::BlockPool::blocks_created();
  const std::uint64_t recycled0 = util::BlockPool::blocks_recycled();
  Fabric f(2, LatencyModel::deterministic(), 1);
  constexpr std::uint64_t kN = 200;
  const util::Bytes payload(512, 0x5A);
  for (std::uint64_t i = 1; i <= kN; ++i) {
    Packet p;
    p.src = 0;
    p.dst = 1;
    p.seq = i;
    p.payload = util::Buffer::copy_of(payload);
    f.send(std::move(p));
    auto got = f.endpoint(1).inbox().pop();
    ASSERT_TRUE(got.has_value());
    // Packet (and its payload block) dies here, feeding the next send.
  }
  const std::uint64_t created = util::BlockPool::blocks_created() - created0;
  const std::uint64_t recycled = util::BlockPool::blocks_recycled() - recycled0;
  EXPECT_EQ(created + recycled, kN);
  EXPECT_LE(created, 4u);  // only the warm-up sends may allocate fresh
}

// --- Backend parity ----------------------------------------------------------

// The drop-accounting invariant is a *Transport* contract, not a Fabric
// implementation detail: the same mixed traffic (normal delivery, a
// mid-burst kill, post-kill sends) must close exactly on both backends.
TEST(TransportInvariant, AccountsEveryPacketOnBothBackends) {
  constexpr int kEndpoints = 4;
  constexpr std::uint64_t kPerChannel = 30;

  const auto drive = [&](auto& send, auto& kill_ep, auto& drain) {
    for (std::uint64_t i = 1; i <= kPerChannel; ++i) {
      for (int dst = 0; dst < kEndpoints; ++dst) {
        send(make((dst + 1) % kEndpoints, dst, i));
      }
    }
    drain();
    kill_ep(1);
    for (std::uint64_t i = 1; i <= kPerChannel; ++i) send(make(0, 1, i));
  };

  // In-process simulated backend.
  {
    Fabric f(kEndpoints, LatencyModel::deterministic(), 1, 2);
    std::function<void(Packet)> send = [&](Packet p) { f.send(std::move(p)); };
    std::function<void(int)> kill_ep = [&](int ep) { f.kill(ep); };
    std::function<void()> drain = [&] {
      for (int ep = 0; ep < kEndpoints; ++ep) {
        for (std::uint64_t i = 0; i < kPerChannel; ++i) {
          ASSERT_TRUE(f.endpoint(ep).inbox().pop().has_value());
        }
      }
    };
    drive(send, kill_ep, drain);
    const FabricStats s = quiesced_stats(f);
    EXPECT_EQ(s.packets_sent, (kEndpoints + 1) * kPerChannel);
    EXPECT_TRUE(s.accounted());
    EXPECT_EQ(s.packets_dropped_dead, kPerChannel);
  }

  // Socket backend: one transport per "process", merged stats.
  {
    char tmpl[] = "/tmp/windar_fab_XXXXXX";
    const std::string dir = ::mkdtemp(tmpl);
    std::vector<std::unique_ptr<SocketTransport>> nodes;
    for (int i = 0; i < kEndpoints; ++i) {
      SocketTransportOptions o;
      o.endpoints = kEndpoints;
      o.self = i;
      o.dir = dir;
      nodes.push_back(std::make_unique<SocketTransport>(o));
    }
    const auto merged = [&] {
      FabricStats s;
      for (const auto& t : nodes) s.merge(t->stats());
      return s;
    };
    std::function<void(Packet)> send = [&](Packet p) {
      nodes[static_cast<std::size_t>(p.src)]->send(std::move(p));
    };
    // Killing a rank in socket mode poisons its hosted inbox (the launcher's
    // SIGKILL analogue) — later arrivals book as dropped_dead on the
    // receiver side.
    std::function<void(int)> kill_ep = [&](int ep) {
      nodes[static_cast<std::size_t>(ep)]->kill(ep);
    };
    std::function<void()> drain = [&] {
      for (int ep = 0; ep < kEndpoints; ++ep) {
        for (std::uint64_t i = 0; i < kPerChannel; ++i) {
          ASSERT_TRUE(nodes[static_cast<std::size_t>(ep)]
                          ->endpoint(ep)
                          .inbox()
                          .pop_until(std::chrono::steady_clock::now() + 10s)
                          .has_value());
        }
      }
    };
    drive(send, kill_ep, drain);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    FabricStats s = merged();
    while (std::chrono::steady_clock::now() < deadline &&
           !(s.accounted() &&
             s.packets_sent == (kEndpoints + 1) * kPerChannel)) {
      std::this_thread::sleep_for(500us);
      s = merged();
    }
    EXPECT_EQ(s.packets_sent, (kEndpoints + 1) * kPerChannel);
    EXPECT_TRUE(s.accounted());
    EXPECT_EQ(s.packets_dropped_dead, kPerChannel);
    EXPECT_EQ(s.frame_errors, 0u);
    for (auto& t : nodes) t->shutdown();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

}  // namespace
}  // namespace windar::net
