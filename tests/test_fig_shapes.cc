// Regression guards for the paper's headline result shapes, on scaled-down
// workloads.  Only count-based metrics are asserted (timing orderings are
// checked by the benches, not the suite, to keep CI deterministic).
#include <gtest/gtest.h>

#include <atomic>

#include "npb/driver.h"
#include "windar/runtime.h"

namespace windar::ft {
namespace {

Metrics run_app_metrics(npb::App app, int n, ProtocolKind proto) {
  npb::Params p = npb::make_params(app, n, /*scale=*/0.25);
  p.checkpoint_every = 4;
  JobConfig cfg;
  cfg.n = n;
  cfg.protocol = proto;
  cfg.latency = net::LatencyModel::turbulent();
  auto result = run_job(cfg, [&](Ctx& ctx) { (void)npb::run_app(ctx, p, &ctx); });
  return result.total;
}

TEST(FigShapes, TdiPiggybackIsExactlyNEverywhere) {
  for (auto app : {npb::App::kLU, npb::App::kBT, npb::App::kSP}) {
    for (int n : {4, 8}) {
      const Metrics m = run_app_metrics(app, n, ProtocolKind::kTdi);
      EXPECT_DOUBLE_EQ(m.avg_piggyback_idents(), n)
          << to_string(app) << " n=" << n;
    }
  }
}

TEST(FigShapes, BaselinesExceedTdi) {
  // Paper Fig. 6: TAG and TEL piggyback "remarkably" more than TDI.
  for (auto app : {npb::App::kLU, npb::App::kSP}) {
    const Metrics tdi = run_app_metrics(app, 8, ProtocolKind::kTdi);
    const Metrics tag = run_app_metrics(app, 8, ProtocolKind::kTag);
    const Metrics tel = run_app_metrics(app, 8, ProtocolKind::kTel);
    EXPECT_GT(tag.avg_piggyback_idents(), 2 * tdi.avg_piggyback_idents())
        << to_string(app);
    EXPECT_GT(tel.avg_piggyback_idents(), tdi.avg_piggyback_idents())
        << to_string(app);
  }
}

TEST(FigShapes, TagPiggybackGrowsWithScale) {
  // Paper Fig. 6: determinant protocols grow super-linearly with scale;
  // TDI is exactly linear (the vector).
  const Metrics tag4 = run_app_metrics(npb::App::kLU, 4, ProtocolKind::kTag);
  const Metrics tag8 = run_app_metrics(npb::App::kLU, 8, ProtocolKind::kTag);
  EXPECT_GT(tag8.avg_piggyback_idents(),
            1.5 * tag4.avg_piggyback_idents());
}

TEST(FigShapes, PesPiggybacksNothingButTalksToLogger) {
  const Metrics pes = run_app_metrics(npb::App::kSP, 4, ProtocolKind::kPes);
  EXPECT_EQ(pes.piggyback_idents, 0u);
  EXPECT_GT(pes.control_msgs, 0u);
}

TEST(FigShapes, MessageFrequencyProfilesMatchPaper) {
  // LU must send the most messages per rank, BT the fewest with the
  // biggest payloads (paper §IV).
  const Metrics lu = run_app_metrics(npb::App::kLU, 4, ProtocolKind::kTdi);
  const Metrics bt = run_app_metrics(npb::App::kBT, 4, ProtocolKind::kTdi);
  const Metrics sp = run_app_metrics(npb::App::kSP, 4, ProtocolKind::kTdi);
  EXPECT_GT(lu.app_sent, sp.app_sent);
  EXPECT_GT(sp.app_sent, bt.app_sent);
  const auto bytes_per = [](const Metrics& m) {
    return static_cast<double>(m.payload_bytes) /
           static_cast<double>(m.app_sent);
  };
  EXPECT_GT(bytes_per(bt), bytes_per(sp));
  EXPECT_GT(bytes_per(sp), bytes_per(lu));
}

}  // namespace
}  // namespace windar::ft
