// Shared harness for the chaos soak drivers (tests/soak_chaos.cc,
// bench/chaos_soak.cc, tests/test_chaos.cc): an iterative ring-exchange
// application whose running digest is a pure function of the delivered
// message values — independent of latency, protocol, and fault timing — so
// a faulty run converging to the failure-free digest certifies no lost, no
// duplicated, and no mis-ordered delivery.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "mp/collectives.h"
#include "windar/fault.h"
#include "windar/runtime.h"

namespace windar::ft::chaos {

struct SoakOutcome {
  std::uint64_t digest = 0;  // per-rank digests summed mod a prime
  JobResult result;
};

/// Builds the JobConfig a plan describes; `with_faults` toggles the chaos
/// schedule so the same call produces the faulty run and its clean baseline.
/// `logger_shards` > 0 runs TEL/PES against a sharded event logger (0 keeps
/// the env/default resolution), `exec_model` picks the rank execution model
/// — both are soak dimensions for the sharded-logger schedules.
inline JobConfig plan_config(const ChaosPlan& plan, ProtocolKind proto,
                             bool with_faults, int logger_shards = 0,
                             exec::ExecModel exec_model =
                                 exec::ExecModel::kAuto) {
  JobConfig cfg;
  cfg.n = plan.n;
  cfg.protocol = proto;
  cfg.mode = SendMode::kNonBlocking;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.seed = plan.seed;
  cfg.restart_delay_ms = 2;
  cfg.logger_shards = logger_shards;
  cfg.exec_model = exec_model;
  if (with_faults) cfg.chaos = plan.events;
  return cfg;
}

/// The per-rank ring-exchange body, shared verbatim by the in-process
/// runtime (run_plan below) and the multi-process socket workers
/// (bench/chaos_soak.cc, tests/test_socket_job.cc).  Returns this rank's
/// final digest — a pure function of the delivered values, so the in-process
/// and multi-process combines are directly comparable.
inline std::uint64_t ring_digest_rank(Ctx& ctx, int iterations,
                                      int checkpoint_every) {
  const int n = ctx.size();
  const int me = ctx.rank();
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  int start = 0;
  std::uint64_t digest = 0x9E37 + static_cast<std::uint64_t>(me);
  if (ctx.restored()) {
    util::ByteReader r(*ctx.restored());
    start = r.i32();
    digest = r.u64();
  }
  for (int it = start; it < iterations; ++it) {
    if (it > 0 && it % checkpoint_every == 0) {
      util::ByteWriter w;
      w.i32(it);
      w.u64(digest);
      ctx.checkpoint(w.view());
    }
    mp::send_value(ctx, right, 1, digest ^ static_cast<std::uint64_t>(it));
    const auto from_left = mp::recv_value<std::uint64_t>(ctx, left, 1);
    digest = digest * 1099511628211ull + from_left +
             static_cast<std::uint64_t>(it);
  }
  return digest;
}

/// Runs the plan's ring exchange under `proto` and returns the summed digest
/// plus the job result.  Deterministic: two calls with the same plan and
/// protocol produce the same digest whatever faults fired.
inline SoakOutcome run_plan(const ChaosPlan& plan, ProtocolKind proto,
                            bool with_faults, int logger_shards = 0,
                            exec::ExecModel exec_model =
                                exec::ExecModel::kAuto) {
  const int iterations = plan.iterations;
  const int checkpoint_every = plan.checkpoint_every;
  auto sum = std::make_shared<std::atomic<std::uint64_t>>(0);
  SoakOutcome out;
  out.result = run_job(plan_config(plan, proto, with_faults, logger_shards,
                                   exec_model),
                       [iterations, checkpoint_every, sum](Ctx& ctx) {
                         sum->fetch_add(
                             ring_digest_rank(ctx, iterations,
                                              checkpoint_every) %
                             1000000007ull);
                       });
  out.digest = sum->load();
  return out;
}

}  // namespace windar::ft::chaos
