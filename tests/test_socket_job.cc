// End-to-end tests for the multi-process socket transport path
// (windar/launcher.h): real fork/exec'd worker processes over Unix-domain
// sockets, real SIGKILLs, recovery from disk checkpoints.
//
// This binary owns main(): the launcher re-execs it as each per-rank worker
// (is_worker_invocation branches before gtest ever runs), so it links
// GTest::gtest without gtest_main.
//
// Every test compares the multi-process digest against the in-process
// simulated digest for the same ring workload — the digest is a pure
// function of the delivered values, so equality certifies no lost, no
// duplicated, and no mis-ordered delivery across the process boundary.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "chaos_app.h"
#include "windar/launcher.h"

namespace windar::ft {
namespace {

constexpr int kIters = 12;
constexpr int kCkpt = 4;

/// The failure-free expected digest, computed in one address space.
std::uint64_t sim_digest(int n, ProtocolKind proto) {
  JobConfig cfg;
  cfg.n = n;
  cfg.protocol = proto;
  cfg.mode = SendMode::kNonBlocking;
  auto sum = std::make_shared<std::atomic<std::uint64_t>>(0);
  run_job(cfg, [sum](Ctx& ctx) {
    sum->fetch_add(chaos::ring_digest_rank(ctx, kIters, kCkpt) %
                   1000000007ull);
  });
  return sum->load();
}

LaunchSpec base_spec(int n, ProtocolKind proto) {
  LaunchSpec spec;
  spec.job.n = n;
  spec.job.protocol = proto;
  spec.job.mode = SendMode::kNonBlocking;
  spec.job.restart_delay_ms = 2;
  spec.worker_args = {"--iters=" + std::to_string(kIters),
                      "--ckpt=" + std::to_string(kCkpt)};
  spec.timeout_ms = 60000;
  return spec;
}

TEST(SocketJob, CleanJobMatchesSimDigest) {
  const LaunchSpec spec = base_spec(4, ProtocolKind::kTdi);
  const MultiProcResult r = run_multiproc_job(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.digest, sim_digest(4, ProtocolKind::kTdi));
  EXPECT_EQ(r.recoveries, 0u);
  EXPECT_EQ(r.rank_digest.size(), 4u);
}

TEST(SocketJob, CleanJobFabricStatsBalance) {
  const LaunchSpec spec = base_spec(4, ProtocolKind::kTdi);
  const MultiProcResult r = run_multiproc_job(spec);
  ASSERT_TRUE(r.ok) << r.error;
  // Merged across all worker incarnations of a fault-free job, every packet
  // sent over the sockets must be accounted for — same invariant the
  // in-process Fabric maintains.
  EXPECT_TRUE(r.fabric.accounted()) << "sent=" << r.fabric.packets_sent
                                    << " delivered="
                                    << r.fabric.packets_delivered;
  EXPECT_EQ(r.fabric.frame_errors, 0u);
  EXPECT_GT(r.app_sent, 0u);
}

TEST(SocketJob, WallClockSigkillConverges) {
  LaunchSpec spec = base_spec(4, ProtocolKind::kTdi);
  spec.job.faults = {{1, 10.0}};
  const MultiProcResult r = run_multiproc_job(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.digest, sim_digest(4, ProtocolKind::kTdi));
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_GT(r.checkpoints, 0u);
}

TEST(SocketJob, ChaosDeliveryKillConverges) {
  LaunchSpec spec = base_spec(4, ProtocolKind::kTag);
  net::ChaosEvent ev;
  ev.when = net::ChaosEvent::When::kDeliver;
  ev.action = net::ChaosEvent::Action::kKill;
  ev.endpoint = 2;
  ev.kind = static_cast<std::uint16_t>(Kind::kApp);
  ev.nth = 5;  // SIGKILL rank 2 in its reader thread at its 5th app delivery
  spec.job.chaos = {ev};
  const MultiProcResult r = run_multiproc_job(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.digest, sim_digest(4, ProtocolKind::kTag));
  EXPECT_GE(r.recoveries, 1u);
  EXPECT_GE(r.chaos_triggers_fired, 1u);
}

TEST(SocketJob, ChaosSendKillConvergesWithEventLogger) {
  LaunchSpec spec = base_spec(4, ProtocolKind::kTel);
  net::ChaosEvent ev;
  ev.when = net::ChaosEvent::When::kSend;
  ev.action = net::ChaosEvent::Action::kKill;
  ev.endpoint = 0;
  ev.kind = static_cast<std::uint16_t>(Kind::kApp);
  ev.nth = 3;  // SIGKILL rank 0 mid-send of its 3rd app packet
  spec.job.chaos = {ev};
  const MultiProcResult r = run_multiproc_job(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.digest, sim_digest(4, ProtocolKind::kTel));
  EXPECT_GE(r.recoveries, 1u);
  // TEL routes determinants through the launcher-hosted event logger.
  EXPECT_GT(r.logger_batches, 0u);
}

TEST(SocketJob, OverlappingKillsConverge) {
  LaunchSpec spec = base_spec(5, ProtocolKind::kTdi);
  spec.job.faults = {{1, 8.0}, {3, 12.0}};
  const MultiProcResult r = run_multiproc_job(spec);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.digest, sim_digest(5, ProtocolKind::kTdi));
  EXPECT_GE(r.recoveries, 2u);
}

}  // namespace
}  // namespace windar::ft

int main(int argc, char** argv) {
  if (windar::ft::WorkerConfig::is_worker_invocation(argc, argv)) {
    const windar::ft::WorkerConfig cfg =
        windar::ft::WorkerConfig::parse(argc, argv);
    int iters = 12;
    int ckpt = 4;
    for (const std::string& a : cfg.app_args) {
      if (a.rfind("--iters=", 0) == 0) iters = std::atoi(a.c_str() + 8);
      if (a.rfind("--ckpt=", 0) == 0) ckpt = std::atoi(a.c_str() + 7);
    }
    return windar::ft::run_worker(cfg, [iters, ckpt](windar::ft::Ctx& ctx) {
      return windar::ft::chaos::ring_digest_rank(ctx, iters, ckpt);
    });
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
