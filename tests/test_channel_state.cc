// ChannelState unit tests: the counter plane in isolation — send-index
// allocation, duplicate detection, ack watermarks, the epoch-guarded
// suppression watermark, and the checkpoint snapshot/advance cycle.  No
// runtime, no fabric, no threads.
#include <gtest/gtest.h>

#include "windar/channel_state.h"

namespace windar::ft {
namespace {

TEST(ChannelState, SendIndicesArePerPair) {
  ChannelState cs(3, 0);
  EXPECT_EQ(cs.next_send_index(1), 1u);
  EXPECT_EQ(cs.next_send_index(1), 2u);
  EXPECT_EQ(cs.next_send_index(2), 1u);  // independent counter per pair
  EXPECT_EQ(cs.next_send_index(1), 3u);
}

TEST(ChannelState, DeliverySideDetectsRepetitiveMessages) {
  ChannelState cs(2, 1);
  EXPECT_FALSE(cs.already_delivered(0, 1));
  EXPECT_EQ(cs.advance_deliver(0), 1u);  // receiver-global deliver_seq
  EXPECT_EQ(cs.advance_deliver(0), 2u);
  EXPECT_TRUE(cs.already_delivered(0, 1));
  EXPECT_TRUE(cs.already_delivered(0, 2));
  EXPECT_FALSE(cs.already_delivered(0, 3));
  EXPECT_EQ(cs.delivered_total(), 2u);
  EXPECT_EQ(cs.last_deliver_of(0), 2u);
  EXPECT_EQ(cs.last_deliver_of(1), 0u);
}

TEST(ChannelState, AckTrackingAndWatermarkBothRelease) {
  ChannelState cs(2, 0);
  EXPECT_FALSE(cs.is_acked(1, 1));
  cs.record_ack(1, 1);
  EXPECT_TRUE(cs.is_acked(1, 1));
  EXPECT_FALSE(cs.is_acked(1, 2));
  // A suppression watermark (peer confirmed delivery via RESPONSE) releases
  // a blocked sender even without an explicit ack.
  cs.observe_response(1, 1, 5);
  EXPECT_TRUE(cs.is_acked(1, 2));
  EXPECT_TRUE(cs.is_acked(1, 5));
  EXPECT_FALSE(cs.is_acked(1, 6));
}

TEST(ChannelState, RollbackOverwritesWatermarkOnSameOrNewerEpoch) {
  ChannelState cs(2, 0);
  cs.observe_response(1, 1, 10);  // incarnation 1 confirmed 10 deliveries
  EXPECT_TRUE(cs.should_suppress(1, 10));

  // The peer fails again: incarnation 2 restored to only 4 deliveries.  The
  // old watermark overstates what it has — ROLLBACK must overwrite, not max.
  cs.observe_rollback(1, 2, 4);
  EXPECT_TRUE(cs.should_suppress(1, 4));
  EXPECT_FALSE(cs.should_suppress(1, 5));

  // A stale ROLLBACK from the dead incarnation 1 must be ignored... but a
  // re-broadcast from the live incarnation 2 restates the same value.
  cs.observe_rollback(1, 1, 9);
  EXPECT_FALSE(cs.should_suppress(1, 5));
  cs.observe_rollback(1, 2, 4);
  EXPECT_TRUE(cs.should_suppress(1, 4));
}

TEST(ChannelState, ResponseEpochSemantics) {
  ChannelState cs(2, 0);
  cs.observe_response(1, 1, 7);
  EXPECT_TRUE(cs.should_suppress(1, 7));
  // Same incarnation only advances (max): a reordered older RESPONSE cannot
  // retract confirmed deliveries.
  cs.observe_response(1, 1, 3);
  EXPECT_TRUE(cs.should_suppress(1, 7));
  cs.observe_response(1, 1, 9);
  EXPECT_TRUE(cs.should_suppress(1, 9));
  // First contact with a newer incarnation replaces the watermark outright.
  cs.observe_response(1, 2, 2);
  EXPECT_FALSE(cs.should_suppress(1, 3));
  EXPECT_TRUE(cs.should_suppress(1, 2));
  // An older incarnation's late value is stale.
  cs.observe_response(1, 1, 50);
  EXPECT_FALSE(cs.should_suppress(1, 3));
}

TEST(ChannelState, SnapshotRestoreRoundTrip) {
  ChannelState a(3, 0);
  a.next_send_index(1);
  a.next_send_index(1);
  a.next_send_index(2);
  a.advance_deliver(1);
  a.advance_deliver(2);
  a.advance_deliver(2);
  const ChannelState::Snapshot snap = a.snapshot();
  EXPECT_EQ(snap.last_send, (std::vector<SeqNo>{0, 2, 1}));
  EXPECT_EQ(snap.last_deliver, (std::vector<SeqNo>{0, 1, 2}));
  EXPECT_EQ(snap.delivered_total, 3u);

  ChannelState b(3, 0);
  b.restore(snap.last_send, snap.last_deliver, snap.delivered_total);
  EXPECT_EQ(b.delivered_total(), 3u);
  EXPECT_EQ(b.last_deliver_of(2), 2u);
  EXPECT_EQ(b.next_send_index(1), 3u);  // continues where the image left off
  EXPECT_TRUE(b.already_delivered(1, 1));
  // The restored deliver vector IS the checkpoint watermark: nothing has
  // advanced past it yet, so no CHECKPOINT_ADVANCE is due.
  EXPECT_TRUE(b.take_checkpoint_advances().empty());
}

TEST(ChannelState, CheckpointAdvancesOnlyForProgressedPeers) {
  ChannelState cs(3, 0);
  cs.advance_deliver(1);
  cs.advance_deliver(1);
  auto adv = cs.take_checkpoint_advances();
  ASSERT_EQ(adv.size(), 1u);
  EXPECT_EQ(adv[0], (std::pair<int, SeqNo>{1, 2}));
  // Idempotent until new deliveries happen.
  EXPECT_TRUE(cs.take_checkpoint_advances().empty());
  cs.advance_deliver(2);
  adv = cs.take_checkpoint_advances();
  ASSERT_EQ(adv.size(), 1u);
  EXPECT_EQ(adv[0], (std::pair<int, SeqNo>{2, 1}));
}

TEST(ChannelState, SelfRollbackWatermarkCoversRestoredSelfChannel) {
  ChannelState cs(2, 0);
  cs.advance_deliver(0);
  cs.advance_deliver(0);
  EXPECT_FALSE(cs.should_suppress(0, 1));
  cs.set_self_rollback_watermark();
  EXPECT_TRUE(cs.should_suppress(0, 2));
  EXPECT_FALSE(cs.should_suppress(0, 3));
}

}  // namespace
}  // namespace windar::ft
