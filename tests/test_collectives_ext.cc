// Tests for the extended collectives: generic-op reductions, allgather,
// alltoall, scan, scatter — on the raw transport and on the recovery layer
// (including with a fault, since collectives are just logged traffic).
#include <gtest/gtest.h>

#include "mp/collectives.h"
#include "mp/runtime.h"
#include "windar/runtime.h"

namespace windar::mp {
namespace {

class CollExtP : public ::testing::TestWithParam<int> {};

TEST_P(CollExtP, ReduceMinMax) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    const double contrib[2] = {static_cast<double>(c.rank() + 1),
                               static_cast<double>(-c.rank())};
    auto mins = coll.allreduce(contrib, Coll::Op::kMin);
    EXPECT_DOUBLE_EQ(mins[0], 1.0);
    EXPECT_DOUBLE_EQ(mins[1], -(n - 1));
    auto maxs = coll.allreduce(contrib, Coll::Op::kMax);
    EXPECT_DOUBLE_EQ(maxs[0], n);
    EXPECT_DOUBLE_EQ(maxs[1], 0.0);
  });
}

TEST_P(CollExtP, ReduceGenericSumMatchesDedicated) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    const double contrib[1] = {static_cast<double>(c.rank())};
    auto a = coll.allreduce(contrib, Coll::Op::kSum);
    auto b = coll.allreduce_sum(contrib);
    EXPECT_DOUBLE_EQ(a[0], b[0]);
    EXPECT_DOUBLE_EQ(a[0], n * (n - 1) / 2.0);
  });
}

TEST_P(CollExtP, AllgatherRankOrder) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    const double mine[2] = {static_cast<double>(c.rank()),
                            static_cast<double>(c.rank() * 10)};
    auto all = coll.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 2u);
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][0], r);
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][1], r * 10);
    }
  });
}

TEST_P(CollExtP, AlltoallTransposesBlocks) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    // Block (me -> dst) = {me * 100 + dst}.
    std::vector<std::vector<double>> blocks(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      blocks[static_cast<std::size_t>(d)] = {
          static_cast<double>(c.rank() * 100 + d)};
    }
    auto got = coll.alltoall(blocks);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
      ASSERT_EQ(got[static_cast<std::size_t>(src)].size(), 1u);
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(src)][0],
                       src * 100 + c.rank());
    }
  });
}

TEST_P(CollExtP, ScanIsInclusivePrefix) {
  const int n = GetParam();
  (void)n;
  run_raw(GetParam(), [](Comm& c) {
    Coll coll(c);
    const double contrib[1] = {static_cast<double>(c.rank() + 1)};
    auto prefix = coll.scan_sum(contrib);
    const double expect = (c.rank() + 1) * (c.rank() + 2) / 2.0;
    EXPECT_DOUBLE_EQ(prefix[0], expect);
  });
}

TEST_P(CollExtP, ScatterDistributesBlocks) {
  const int n = GetParam();
  run_raw(n, [n](Comm& c) {
    Coll coll(c);
    std::vector<std::vector<double>> blocks;
    if (c.rank() == 1 % n) {
      for (int r = 0; r < n; ++r) {
        blocks.push_back({static_cast<double>(r * 7)});
      }
    }
    auto mine = coll.scatter(blocks, 1 % n);
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_DOUBLE_EQ(mine[0], c.rank() * 7);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollExtP, ::testing::Values(1, 2, 3, 5, 8));

TEST(CollExtFt, AllWorkOnRecoveryLayerWithFault) {
  ft::JobConfig cfg;
  cfg.n = 4;
  cfg.protocol = ft::ProtocolKind::kTdi;
  cfg.latency = net::LatencyModel::turbulent();
  cfg.restart_delay_ms = 4;
  cfg.faults = {{2, 5.0}};
  ft::run_job(cfg, [](ft::Ctx& ctx) {
    Coll coll(ctx);
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      coll.reset_seq(r.u32());
    }
    for (int round = start; round < 12; ++round) {
      if (round > 0 && round % 4 == 0) {
        util::ByteWriter w;
        w.i32(round);
        w.u32(coll.seq());
        ctx.checkpoint(w.view());
      }
      const double mine[1] = {static_cast<double>(ctx.rank() + round)};
      auto all = coll.allgather(mine);
      for (int r = 0; r < 4; ++r) {
        ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(r)][0], r + round);
      }
      auto total = coll.allreduce(mine, Coll::Op::kMax);
      ASSERT_DOUBLE_EQ(total[0], 3.0 + round);
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
}

}  // namespace
}  // namespace windar::mp
