// Runtime-level tests: fault injector semantics, restart policy, result
// aggregation, and configuration validation.
#include <gtest/gtest.h>

#include <atomic>

#include "mp/comm.h"
#include "windar/runtime.h"

namespace windar::ft {
namespace {

using mp::recv_value;
using mp::send_value;

JobConfig base(int n) {
  JobConfig c;
  c.n = n;
  c.latency = net::LatencyModel::turbulent();
  c.restart_delay_ms = 3;
  return c;
}

TEST(Runtime, FaultAfterCompletionIsSkipped) {
  // The injector must never kill a rank whose function already returned.
  JobConfig cfg = base(2);
  cfg.faults = {{0, 50.0}, {1, 60.0}};  // far beyond the job's lifetime
  auto result = run_job(cfg, [](Ctx& ctx) {
    if (ctx.rank() == 0) send_value(ctx, 1, 0, 1);
    else (void)ctx.recv();
  });
  EXPECT_EQ(result.total.recoveries, 0u);
}

TEST(Runtime, RepeatedFaultsProduceOneRecoveryEach) {
  JobConfig cfg = base(2);
  cfg.faults = {{1, 4.0}, {1, 12.0}, {1, 20.0}};
  auto result = run_job(cfg, [](Ctx& ctx) {
    const int peer = 1 - ctx.rank();
    int start = 0;
    if (ctx.restored()) {
      // Application state must restore consistently with the recovery
      // layer's counters: resume the loop where the checkpoint was taken.
      util::ByteReader r(*ctx.restored());
      start = r.i32();
    }
    for (int i = start; i < 60; ++i) {
      if (i % 10 == 5) {
        util::ByteWriter w;
        w.i32(i);
        ctx.checkpoint(w.view());
      }
      send_value(ctx, peer, 0, i);
      (void)recv_value<int>(ctx, peer, 0);
      std::this_thread::sleep_for(std::chrono::microseconds(400));
    }
  });
  // Every fault that fired produced exactly one recovery; late ones may be
  // skipped if the job finished first.
  EXPECT_GE(result.total.recoveries, 1u);
  EXPECT_LE(result.total.recoveries, 3u);
}

TEST(Runtime, PerRankMetricsSumToTotal) {
  auto result = run_job(base(3), [](Ctx& ctx) {
    for (int d = 0; d < ctx.size(); ++d) {
      if (d != ctx.rank()) send_value(ctx, d, 0, 1);
    }
    for (int i = 0; i < ctx.size() - 1; ++i) (void)ctx.recv();
  });
  ASSERT_EQ(result.per_rank.size(), 3u);
  std::uint64_t sent = 0;
  for (const auto& m : result.per_rank) sent += m.app_sent;
  EXPECT_EQ(sent, result.total.app_sent);
  EXPECT_EQ(sent, 6u);
}

TEST(Runtime, WallTimeIsMeasured) {
  auto result = run_job(base(1), [](Ctx&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  });
  EXPECT_GE(result.wall_ms, 14.0);
}

TEST(Runtime, TelJobsReportLoggerActivity) {
  JobConfig cfg = base(2);
  cfg.protocol = ProtocolKind::kTel;
  auto result = run_job(cfg, [](Ctx& ctx) {
    const int peer = 1 - ctx.rank();
    for (int i = 0; i < 10; ++i) {
      send_value(ctx, peer, 0, i);
      (void)recv_value<int>(ctx, peer, 0);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  EXPECT_GT(result.logger_batches, 0u);
}

TEST(Runtime, CheckpointStoreStatsFlow) {
  auto result = run_job(base(2), [](Ctx& ctx) {
    ctx.checkpoint({});
    ctx.checkpoint({});
  });
  EXPECT_EQ(result.checkpoints.saves, 4u);
  EXPECT_EQ(result.total.checkpoints, 4u);
}

TEST(Runtime, RestartFromScratchWithoutCheckpoint) {
  JobConfig cfg = base(2);
  cfg.faults = {{1, 3.0}};
  auto done = std::make_shared<std::atomic<int>>(0);
  auto result = run_job(cfg, [done](Ctx& ctx) {
    EXPECT_FALSE(ctx.restored().has_value());  // never checkpointed
    const int peer = 1 - ctx.rank();
    for (int i = 0; i < 15; ++i) {
      send_value(ctx, peer, 0, i);
      (void)recv_value<int>(ctx, peer, 0);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    done->fetch_add(1);
  });
  // Both logical ranks completed; a killed first attempt never increments,
  // and a kill in the tiny window between increment and return legitimately
  // re-runs the function, so 3 is possible.
  EXPECT_GE(done->load(), 2);
  EXPECT_LE(done->load(), 2 + static_cast<int>(result.total.recoveries));
}

TEST(Runtime, BadFaultRankAborts) {
  JobConfig cfg = base(2);
  cfg.faults = {{7, 1.0}};
  EXPECT_DEATH((void)run_job(cfg, [](Ctx& ctx) {
                 std::this_thread::sleep_for(std::chrono::milliseconds(10));
                 (void)ctx;
               }),
               "bad rank");
}

TEST(Runtime, ZeroRanksRejected) {
  JobConfig cfg = base(0);
  EXPECT_DEATH((void)run_job(cfg, [](Ctx&) {}), "at least one rank");
}

TEST(Runtime, CtxExposesRankAndSize) {
  run_job(base(3), [](Ctx& ctx) {
    EXPECT_GE(ctx.rank(), 0);
    EXPECT_LT(ctx.rank(), 3);
    EXPECT_EQ(ctx.size(), 3);
  });
}

}  // namespace
}  // namespace windar::ft
