// Unit tests for the bounded MPSC ring behind endpoint inboxes: FIFO order,
// full-ring backpressure, poison/revive semantics, batch pop, and the
// concurrent-producer contract (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "util/ring.h"

namespace windar::util {
namespace {

using namespace std::chrono_literals;

TEST(MpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscRing<int>(1024).capacity(), 1024u);
}

TEST(MpscRing, FifoOrder) {
  MpscRing<int> r(8);
  EXPECT_TRUE(r.push(1));
  EXPECT_TRUE(r.push(2));
  EXPECT_TRUE(r.push(3));
  EXPECT_EQ(r.pop(), 1);
  EXPECT_EQ(r.pop(), 2);
  EXPECT_EQ(r.pop(), 3);
}

TEST(MpscRing, TryPopEmpty) {
  MpscRing<int> r(4);
  EXPECT_FALSE(r.try_pop().has_value());
  EXPECT_TRUE(r.push(5));
  EXPECT_EQ(r.try_pop(), 5);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(MpscRing, OfferFullLeavesItemIntact) {
  MpscRing<int> r(2);
  int item = 7;
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kAccepted);
  item = 8;
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kAccepted);
  item = 9;
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kFull);
  EXPECT_EQ(item, 9);  // caller keeps ownership on kFull
  EXPECT_EQ(r.pop(), 7);
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kAccepted);
  EXPECT_EQ(r.pop(), 8);
  EXPECT_EQ(r.pop(), 9);
}

TEST(MpscRing, OfferDeadOnPoisonedRing) {
  MpscRing<int> r(4);
  r.poison();
  int item = 1;
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kDead);
  EXPECT_EQ(r.offer_for(item, 10ms), MpscRing<int>::Offer::kDead);
}

TEST(MpscRing, OfferForAcceptsOnceConsumerFreesSlot) {
  MpscRing<int> r(2);
  int item = 0;
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kAccepted);
  item = 1;
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kAccepted);
  std::thread consumer([&] {
    std::this_thread::sleep_for(5ms);
    EXPECT_EQ(r.pop(), 0);
  });
  item = 2;
  EXPECT_EQ(r.offer_for(item, 5s), MpscRing<int>::Offer::kAccepted);
  consumer.join();
  EXPECT_EQ(r.pop(), 1);
  EXPECT_EQ(r.pop(), 2);
}

TEST(MpscRing, OfferForTimesOutOnStuckFullRing) {
  MpscRing<int> r(2);
  int item = 0;
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kAccepted);
  EXPECT_EQ(r.offer(item), MpscRing<int>::Offer::kAccepted);
  item = 42;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(r.offer_for(item, 20ms), MpscRing<int>::Offer::kFull);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 19ms);
  EXPECT_EQ(item, 42);
}

TEST(MpscRing, PopUntilTimesOut) {
  MpscRing<int> r(4);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(r.pop_until(t0 + 20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 19ms);
  EXPECT_FALSE(r.poisoned());
}

TEST(MpscRing, PopUntilPastDeadlineStillReturnsQueuedItem) {
  // A push that raced the timeout must not be misreported as empty: the
  // final locked re-check sees it even when the deadline already passed.
  MpscRing<int> r(4);
  ASSERT_TRUE(r.push(3));
  EXPECT_EQ(r.pop_until(std::chrono::steady_clock::now() - 1s), 3);
}

TEST(MpscRing, PopWakesOnPush) {
  MpscRing<int> r(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    ASSERT_TRUE(r.push(42));
  });
  EXPECT_EQ(r.pop(), 42);
  producer.join();
}

TEST(MpscRing, FullRingBlocksProducerUntilPop) {
  MpscRing<int> r(2);
  ASSERT_TRUE(r.push(1));
  ASSERT_TRUE(r.push(2));
  EXPECT_EQ(r.size(), 2u);
  std::atomic<bool> third_landed{false};
  std::thread producer([&] {
    ASSERT_TRUE(r.push(3));  // blocks: ring full
    third_landed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(third_landed.load(std::memory_order_acquire));
  EXPECT_EQ(r.pop(), 1);  // frees a slot
  producer.join();
  EXPECT_TRUE(third_landed.load());
  EXPECT_EQ(r.pop(), 2);
  EXPECT_EQ(r.pop(), 3);
}

TEST(MpscRing, PushBatchKeepsOrderAndInterleavesWithPush) {
  MpscRing<int> r(16);
  EXPECT_EQ(r.push_batch({1, 2, 3}), 3u);
  ASSERT_TRUE(r.push(4));
  EXPECT_EQ(r.push_batch({5, 6}), 2u);
  for (int want = 1; want <= 6; ++want) EXPECT_EQ(r.pop(), want);
}

TEST(MpscRing, PushBatchLargerThanCapacityBackpressures) {
  // A batch bigger than the ring drains through as the consumer pops —
  // bounded capacity throttles, it never truncates.
  MpscRing<int> r(4);
  std::vector<int> batch;
  for (int i = 0; i < 64; ++i) batch.push_back(i);
  std::thread producer([&] { EXPECT_EQ(r.push_batch(std::move(batch)), 64u); });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(r.pop(), i);
  producer.join();
}

TEST(MpscRing, TryPopBatchDrainsFifoUpToMax) {
  MpscRing<int> r(16);
  for (int i = 1; i <= 6; ++i) ASSERT_TRUE(r.push(i));
  std::vector<int> out{0};  // pre-existing content must be appended to
  EXPECT_EQ(r.try_pop_batch(&out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(r.try_pop_batch(&out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(r.try_pop_batch(&out, 10), 0u);
}

TEST(MpscRing, PoisonDropsQueuedItems) {
  MpscRing<int> r(8);
  ASSERT_TRUE(r.push(1));
  ASSERT_TRUE(r.push(2));
  r.poison();
  EXPECT_FALSE(r.pop().has_value());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_TRUE(r.poisoned());
}

TEST(MpscRing, PushAfterPoisonIsDropped) {
  MpscRing<int> r(4);
  r.poison();
  EXPECT_FALSE(r.push(7));
  EXPECT_EQ(r.size(), 0u);
}

TEST(MpscRing, PoisonWakesBlockedConsumer) {
  MpscRing<int> r(4);
  std::thread killer([&] {
    std::this_thread::sleep_for(10ms);
    r.poison();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(r.pop().has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
  killer.join();
}

TEST(MpscRing, PoisonWakesAllBlockedProducers) {
  // Fill the ring, park several producers on the full-ring wait, then
  // poison: every one must return false promptly instead of blocking for
  // the dead consumer.
  MpscRing<int> r(2);
  ASSERT_TRUE(r.push(1));
  ASSERT_TRUE(r.push(2));
  constexpr int kProducers = 3;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&] {
      if (!r.push(99)) rejected.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(20ms);
  r.poison();
  for (auto& t : producers) t.join();
  EXPECT_EQ(rejected.load(), kProducers);
}

TEST(MpscRing, ReviveRearmsAfterPoison) {
  MpscRing<int> r(4);
  r.poison();
  r.revive();
  EXPECT_FALSE(r.poisoned());
  EXPECT_TRUE(r.push(9));
  EXPECT_EQ(r.pop(), 9);
}

TEST(MpscRing, ReviveOnHealthyRingKeepsQueuedItems) {
  // Regression: callers revive defensively on every incarnation, including
  // the first.  A revive of a never-poisoned ring must not discard packets
  // that legitimately arrived before the consumer came up.
  MpscRing<int> r(8);
  ASSERT_TRUE(r.push(1));
  ASSERT_TRUE(r.push(2));
  r.revive();
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.pop(), 1);
  EXPECT_EQ(r.pop(), 2);
}

TEST(MpscRing, MoveOnlyPayload) {
  MpscRing<std::unique_ptr<int>> r(4);
  ASSERT_TRUE(r.push(std::make_unique<int>(11)));
  auto v = r.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 11);
}

TEST(MpscRing, DestructionReleasesQueuedItems) {
  // Leak check (ASan/valgrind): items still queued at destruction are
  // destroyed, not leaked.
  auto payload = std::make_shared<int>(5);
  {
    MpscRing<std::shared_ptr<int>> r(8);
    ASSERT_TRUE(r.push(payload));
    ASSERT_TRUE(r.push(payload));
  }
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(MpscRing, ConcurrentProducersDeliverEverythingInPerProducerOrder) {
  // The MPSC contract under real contention (primary TSan target): N
  // producers race a small ring; the consumer must see every item exactly
  // once, FIFO per producer.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  MpscRing<int> r(16);  // small on purpose: exercises the full-ring path
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&r, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(r.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  std::vector<int> batch;
  int total = 0;
  while (total < kProducers * kPerProducer) {
    batch.clear();
    if (r.try_pop_batch(&batch, 64) == 0) {
      auto v = r.pop_for(1s);
      ASSERT_TRUE(v.has_value());
      batch.push_back(*v);
    }
    for (int v : batch) {
      const int p = v / kPerProducer;
      const int i = v % kPerProducer;
      EXPECT_GT(i, last_seen[static_cast<std::size_t>(p)]);
      last_seen[static_cast<std::size_t>(p)] = i;
      ++total;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(r.size(), 0u);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seen[static_cast<std::size_t>(p)], kPerProducer - 1);
  }
}

TEST(MpscRing, ConcurrentProducersSurvivePoisonMidStream) {
  // Poison at a random instant under producer load: every push return must
  // be truthful (true = consumed exactly once or still queued; false =
  // dropped), with no torn state for the next incarnation after revive.
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    MpscRing<int> r(8);
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          if (r.push(1)) {
            accepted.fetch_add(1);
          } else {
            return;  // poisoned
          }
        }
      });
    }
    std::uint64_t popped = 0;
    std::thread consumer([&] {
      while (auto v = r.pop()) ++popped;
    });
    std::this_thread::sleep_for(std::chrono::microseconds(100 * (round % 7)));
    r.poison();
    stop.store(true, std::memory_order_release);
    for (auto& t : producers) t.join();
    consumer.join();
    // Accepted items were either consumed or discarded by poison's drain;
    // the consumer can never see more than was accepted.
    EXPECT_LE(popped, accepted.load());
    r.revive();
    EXPECT_TRUE(r.push(7));
    EXPECT_EQ(r.try_pop(), 7);
  }
}

}  // namespace
}  // namespace windar::util
