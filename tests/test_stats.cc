// Unit tests for the statistics helpers.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace windar::util {
namespace {

TEST(OnlineStats, Basics) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  for (double v : {2.0, 4.0, 6.0}) s.add(v);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 10 - 5;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Samples, ExactPercentilesSmall) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
}

TEST(Samples, ThinningKeepsApproximateQuantiles) {
  Samples s(/*limit=*/256);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) s.add(rng.next_double());
  EXPECT_EQ(s.count(), 100000u);
  EXPECT_NEAR(s.median(), 0.5, 0.08);
  EXPECT_NEAR(s.percentile(0.9), 0.9, 0.08);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(FmtDouble, TrimsZeros) {
  EXPECT_EQ(fmt_double(1.5), "1.5");
  EXPECT_EQ(fmt_double(2.0), "2");
  EXPECT_EQ(fmt_double(0.125, 3), "0.125");
  EXPECT_EQ(fmt_double(1.0 / 3.0, 2), "0.33");
}

}  // namespace
}  // namespace windar::util
