// Tests for the slab recycling layer: BlockPool size classes and intrusive
// refcounts, Pool<T> object recycling, the Buffer integration (copy-once +
// recycled blocks), and the kill/revive storm slice that proves a killed
// endpoint's in-flight pooled packets return to the slab without
// use-after-free (the ASan target).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/fabric.h"
#include "util/buffer.h"
#include "util/pool.h"

namespace windar::util {
namespace {

using namespace std::chrono_literals;

// The global pool is process-wide state; start each counting test from an
// empty free list so earlier tests can't donate blocks.
class BlockPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { BlockPool::global().trim(); }
};

TEST_F(BlockPoolTest, AcquireReleaseRecycles) {
  BlockRef a = BlockPool::global().acquire(1000);
  EXPECT_FALSE(a.recycled());
  EXPECT_GE(a.capacity(), 1000u);
  const void* id = a.id();
  a.reset();  // back to the freelist
  EXPECT_EQ(BlockPool::global().free_blocks(), 1u);

  BlockRef b = BlockPool::global().acquire(900);  // same 1 KiB class
  EXPECT_TRUE(b.recycled());
  EXPECT_EQ(b.id(), id);
  EXPECT_EQ(BlockPool::global().free_blocks(), 0u);
}

TEST_F(BlockPoolTest, DifferentSizeClassesDoNotShareFreeLists) {
  BlockRef small = BlockPool::global().acquire(100);
  small.reset();
  BlockRef big = BlockPool::global().acquire(60000);
  EXPECT_FALSE(big.recycled());  // 256 B freelist can't serve a 64 KiB ask
  big.reset();
  EXPECT_EQ(BlockPool::global().free_blocks(), 2u);
}

TEST_F(BlockPoolTest, OversizeBlocksAreNeverPooled) {
  BlockRef huge = BlockPool::global().acquire(1 << 20);
  EXPECT_GE(huge.capacity(), 1u << 20);
  huge.reset();
  EXPECT_EQ(BlockPool::global().free_blocks(), 0u);
  EXPECT_FALSE(BlockPool::global().acquire(1 << 20).recycled());
}

TEST_F(BlockPoolTest, CopiedRefKeepsBlockOutOfFreeList) {
  BlockRef a = BlockPool::global().acquire(512);
  BlockRef b = a;  // refcount 2
  a.reset();
  EXPECT_EQ(BlockPool::global().free_blocks(), 0u);  // b still holds it
  b.reset();
  EXPECT_EQ(BlockPool::global().free_blocks(), 1u);
}

TEST_F(BlockPoolTest, DisabledPoolAllocatesFresh) {
  BlockPool::global().set_enabled(false);
  BlockRef a = BlockPool::global().acquire(512);
  a.reset();
  EXPECT_EQ(BlockPool::global().free_blocks(), 0u);
  EXPECT_FALSE(BlockPool::global().acquire(512).recycled());
  BlockPool::global().set_enabled(true);
}

TEST_F(BlockPoolTest, TrimFreesEverything) {
  for (int i = 0; i < 4; ++i) BlockPool::global().acquire(100).reset();
  EXPECT_GT(BlockPool::global().free_blocks(), 0u);
  BlockPool::global().trim();
  EXPECT_EQ(BlockPool::global().free_blocks(), 0u);
}

TEST(ObjectPool, RecyclesUpToBound) {
  struct Widget {
    int v = 0;
  };
  Pool<Widget> pool(/*max_free=*/2);
  auto a = pool.acquire();
  auto b = pool.acquire();
  auto c = pool.acquire();
  EXPECT_EQ(pool.created(), 3u);
  Widget* const a_raw = a.get();
  pool.release(std::move(a));
  pool.release(std::move(b));
  pool.release(std::move(c));  // over the bound: freed, not retained
  EXPECT_EQ(pool.free_count(), 2u);

  auto d = pool.acquire();  // LIFO: the most recently released first
  auto e = pool.acquire();
  EXPECT_EQ(pool.recycled(), 2u);
  EXPECT_EQ(pool.created(), 3u);
  EXPECT_TRUE(d.get() == a_raw || e.get() == a_raw);
  EXPECT_FALSE(pool.acquire() == nullptr);  // empty freelist → fresh object
  EXPECT_EQ(pool.created(), 4u);
}

// --- Buffer integration ------------------------------------------------------

TEST_F(BlockPoolTest, BufferCopyOfRecyclesSteadyState) {
  std::vector<std::uint8_t> payload(1024, 0xAB);
  const std::uint64_t created0 = BlockPool::blocks_created();
  { Buffer warm = Buffer::copy_of(payload); }  // seeds the freelist
  for (int i = 0; i < 100; ++i) {
    Buffer b = Buffer::copy_of(payload);
    EXPECT_TRUE(b.recycled()) << "iteration " << i;
    EXPECT_EQ(b, std::span<const std::uint8_t>(payload));
  }
  EXPECT_EQ(BlockPool::blocks_created(), created0 + 1);
}

TEST_F(BlockPoolTest, InlineBuffersNeverTouchThePool) {
  const std::uint64_t created0 = BlockPool::blocks_created();
  std::vector<std::uint8_t> tiny(Buffer::kInlineCapacity, 0x11);
  Buffer b = Buffer::copy_of(tiny);
  EXPECT_TRUE(b.inline_storage());
  EXPECT_FALSE(b.recycled());
  EXPECT_EQ(BlockPool::blocks_created(), created0);
}

TEST_F(BlockPoolTest, ViewKeepsRecycledBlockAlive) {
  // A view aliasing a pooled block must pin it: the block may only reach
  // the freelist after the last view dies, or a later copy_of would scribble
  // over live bytes.
  std::vector<std::uint8_t> payload(256, 0);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  Buffer whole = Buffer::copy_of(payload);
  Buffer slice = whole.view(100, 50);
  EXPECT_TRUE(slice.shares_storage_with(whole));
  whole = Buffer();  // drop the parent; the slice still pins the block
  EXPECT_EQ(BlockPool::global().free_blocks(), 0u);
  Buffer other = Buffer::copy_of(payload);  // must NOT reuse the pinned block
  EXPECT_FALSE(other.shares_storage_with(slice));
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(slice[i], static_cast<std::uint8_t>(100 + i));
  }
  slice = Buffer();
  EXPECT_GE(BlockPool::global().free_blocks(), 1u);
}

// --- Kill/revive storm (the ASan slice) -------------------------------------

TEST_F(BlockPoolTest, KillReviveStormRecyclesInFlightPacketsCleanly) {
  // Senders pump pool-backed payloads at one victim endpoint while a chaos
  // monkey kills/revives it.  Every poison discards in-flight packets whose
  // Buffers return their blocks to the slab; later sends immediately reuse
  // those blocks.  Under ASan this is the use-after-free probe (freelisted
  // block data is poisoned); in any build the fabric accounting must still
  // close exactly and payload bytes must survive intact.
  constexpr int kSenders = 3;
  constexpr int kPerSender = 1500;
  constexpr std::size_t kPayload = 512;
  net::Fabric f(kSenders + 1,
                net::LatencyModel::deterministic(std::chrono::nanoseconds(200),
                                                 std::chrono::nanoseconds(0)),
                11, 2,
                net::InboxConfig{net::InboxKind::kRing, 64});
  std::atomic<bool> stop{false};
  std::thread chaos_monkey([&] {
    while (!stop.load(std::memory_order_acquire)) {
      f.kill(1);
      std::this_thread::sleep_for(50us);
      f.revive(1);
      std::this_thread::sleep_for(150us);
    }
    f.revive(1);
  });
  std::atomic<std::uint64_t> bad_payloads{0};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto p = f.endpoint(1).inbox().pop_until(
          std::chrono::steady_clock::now() + 1ms);
      if (!p) continue;
      // Reading the payload after the hop catches a block recycled while
      // this packet still aliased it.
      const std::uint8_t want = static_cast<std::uint8_t>(p->seq & 0xFF);
      for (std::size_t i = 0; i < p->payload.size(); ++i) {
        if (p->payload[i] != want) {
          bad_payloads.fetch_add(1);
          break;
        }
      }
    }
  });
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&, s] {
      std::vector<std::uint8_t> scratch(kPayload);
      for (int i = 0; i < kPerSender; ++i) {
        net::Packet p;
        p.src = s + 2 > kSenders ? 0 : s + 2;  // any live src rank
        p.dst = 1;
        p.seq = static_cast<std::uint64_t>(i);
        std::fill(scratch.begin(), scratch.end(),
                  static_cast<std::uint8_t>(i & 0xFF));
        p.payload = Buffer::copy_of(scratch);
        f.send(std::move(p));
      }
    });
  }
  for (auto& t : senders) t.join();
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  net::FabricStats s = f.stats();
  while (std::chrono::steady_clock::now() < deadline && !s.accounted()) {
    std::this_thread::sleep_for(200us);
    s = f.stats();
  }
  stop.store(true, std::memory_order_release);
  chaos_monkey.join();
  drainer.join();
  EXPECT_EQ(s.packets_sent,
            static_cast<std::uint64_t>(kSenders) * kPerSender);
  EXPECT_EQ(s.packets_sent, s.packets_delivered + s.packets_dropped_dead +
                                s.packets_dropped_chaos);
  EXPECT_EQ(bad_payloads.load(), 0u);
  // The storm must have actually exercised recycling, or the ASan probe
  // proved nothing.
  EXPECT_GT(BlockPool::blocks_recycled(), 0u);
}

}  // namespace
}  // namespace windar::util
