// Job-level tests for the sharded TEL/PES event logger: digest equivalence
// against the single-logger seed deployment, batched-ack accounting, chaos
// kills racing in-flight DET batches, and both rank execution models across
// shard counts.  The unit-level shard tests live in test_event_logger.cc.
#include <gtest/gtest.h>

#include "chaos_app.h"

namespace windar::ft {
namespace {

ChaosPlan quiet_plan(std::uint64_t seed, int n, int iterations) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.n = n;
  plan.iterations = iterations;
  plan.checkpoint_every = 5;
  return plan;
}

TEST(LoggerShards, ShardedTelMatchesSingleLoggerDigest) {
  const ChaosPlan plan = quiet_plan(7, 4, 24);
  const auto seed_run =
      chaos::run_plan(plan, ProtocolKind::kTel, false, /*logger_shards=*/1);
  for (int shards : {2, 4}) {
    const auto sharded =
        chaos::run_plan(plan, ProtocolKind::kTel, false, shards);
    EXPECT_EQ(sharded.digest, seed_run.digest) << "shards=" << shards;
    EXPECT_GT(sharded.result.logger_batches, 0u);
    EXPECT_GT(sharded.result.logger_commit_rounds, 0u);
    // Batched acks: one per affected rank per commit round, never one per
    // kTelLog packet, let alone one per determinant.
    EXPECT_LE(sharded.result.logger_acks,
              sharded.result.logger_commit_rounds *
                  static_cast<std::uint64_t>(plan.n));
  }
}

TEST(LoggerShards, PesRidesTheShardedLogger) {
  const ChaosPlan plan = quiet_plan(11, 4, 16);
  const auto seed_run =
      chaos::run_plan(plan, ProtocolKind::kPes, false, /*logger_shards=*/1);
  const auto sharded =
      chaos::run_plan(plan, ProtocolKind::kPes, false, /*logger_shards=*/2);
  EXPECT_EQ(sharded.digest, seed_run.digest);
  EXPECT_GT(sharded.result.logger_commit_rounds, 0u);
}

TEST(LoggerShards, ShardCountClampsToJobSize) {
  // More shards than ranks: clamped, still converges.
  const ChaosPlan plan = quiet_plan(13, 3, 12);
  const auto base = chaos::run_plan(plan, ProtocolKind::kTel, false, 1);
  const auto over = chaos::run_plan(plan, ProtocolKind::kTel, false, 16);
  EXPECT_EQ(over.digest, base.digest);
}

TEST(LoggerShards, KillMidDetBatchLosesNoStability) {
  // Kill a sender exactly as it puts a kTelLog batch on the wire: the batch
  // (committed late or dropped) was never acked, so its determinants were
  // still piggybacked and survivors hold copies — recovery must converge to
  // the clean digest, on the seed layout and on a sharded logger.
  ChaosPlan plan = quiet_plan(17, 4, 24);
  plan.events.push_back(kill_on_send(1, Kind::kTelLog, /*nth=*/2));
  for (int shards : {1, 2}) {
    const auto clean = chaos::run_plan(plan, ProtocolKind::kTel, false, shards);
    const auto faulty = chaos::run_plan(plan, ProtocolKind::kTel, true, shards);
    EXPECT_EQ(faulty.digest, clean.digest) << "shards=" << shards;
    EXPECT_GE(faulty.result.chaos_triggers_fired, 1u) << "shards=" << shards;
    EXPECT_GE(faulty.result.total.recoveries, 1u) << "shards=" << shards;
  }
}

TEST(LoggerShards, BothExecModelsConvergeAcrossShardCounts) {
  const ChaosPlan plan = quiet_plan(19, 4, 16);
  const auto baseline = chaos::run_plan(plan, ProtocolKind::kTel, false, 1,
                                        exec::ExecModel::kThreads);
  for (const auto exec_model :
       {exec::ExecModel::kThreads, exec::ExecModel::kCoop}) {
    for (int shards : {1, 2, 4}) {
      const auto run = chaos::run_plan(plan, ProtocolKind::kTel, false, shards,
                                       exec_model);
      EXPECT_EQ(run.digest, baseline.digest)
          << "exec=" << static_cast<int>(exec_model) << " shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace windar::ft
