// Tests for checkpoint images and the stable store (in-memory and on-disk).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "windar/checkpoint.h"

namespace windar::ft {
namespace {

CheckpointImage sample_image() {
  CheckpointImage img;
  img.ckpt_seq = 3;
  img.app = {1, 2, 3};
  img.proto = {9, 8};
  img.last_send = {0, 5, 2};
  img.last_deliver = {0, 4, 4};
  img.delivered_total = 8;
  img.log = {7};
  return img;
}

TEST(CheckpointImage, SerializeRoundTrip) {
  const CheckpointImage img = sample_image();
  const util::Bytes blob = img.serialize();
  const CheckpointImage back = CheckpointImage::deserialize(blob);
  EXPECT_EQ(back.ckpt_seq, img.ckpt_seq);
  EXPECT_EQ(back.app, img.app);
  EXPECT_EQ(back.proto, img.proto);
  EXPECT_EQ(back.last_send, img.last_send);
  EXPECT_EQ(back.last_deliver, img.last_deliver);
  EXPECT_EQ(back.delivered_total, img.delivered_total);
  EXPECT_EQ(back.log, img.log);
}

TEST(CheckpointImage, BytesEstimatePositive) {
  EXPECT_GT(sample_image().bytes(), 0u);
}

TEST(CheckpointStore, SaveLoadInMemory) {
  CheckpointStore store;
  EXPECT_FALSE(store.has(1));
  EXPECT_FALSE(store.load(1).has_value());
  store.save(1, sample_image());
  EXPECT_TRUE(store.has(1));
  auto img = store.load(1);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->delivered_total, 8u);
}

TEST(CheckpointStore, OverwriteKeepsLatest) {
  CheckpointStore store;
  store.save(0, sample_image());
  CheckpointImage img2 = sample_image();
  img2.ckpt_seq = 9;
  img2.delivered_total = 100;
  store.save(0, img2);
  auto loaded = store.load(0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->ckpt_seq, 9u);
  EXPECT_EQ(loaded->delivered_total, 100u);
}

TEST(CheckpointStore, PerRankIsolation) {
  CheckpointStore store;
  store.save(0, sample_image());
  EXPECT_FALSE(store.has(1));
}

TEST(CheckpointStore, StatsAccumulate) {
  CheckpointStore store;
  store.save(0, sample_image());
  store.save(0, sample_image());
  (void)store.load(0);
  auto stats = store.stats();
  EXPECT_EQ(stats.saves, 2u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST(CheckpointStore, SpillToDiskRoundTrip) {
  const std::string dir = "/tmp/windar_test_ckpt";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore store(dir);
    store.save(2, sample_image());
    EXPECT_TRUE(std::filesystem::exists(dir + "/ckpt_rank2.bin"));
    auto img = store.load(2);
    ASSERT_TRUE(img.has_value());
    EXPECT_EQ(img->app, sample_image().app);
  }
  std::filesystem::remove_all(dir);
}

// A respawned OS process constructs a brand-new store over the same spill
// directory; disk must be the source of truth even though the in-memory map
// is empty (this is exactly the socket-transport recovery path).
TEST(CheckpointStore, FreshStoreReloadsPredecessorsImages) {
  const std::string dir = "/tmp/windar_test_ckpt_reload";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore first(dir);
    CheckpointImage img = sample_image();
    img.ckpt_seq = 7;
    first.save(1, img);
  }  // "process" dies; only the files survive
  {
    CheckpointStore respawned(dir);
    EXPECT_TRUE(respawned.has(1));
    EXPECT_FALSE(respawned.has(0));
    auto img = respawned.load(1);
    ASSERT_TRUE(img.has_value());
    EXPECT_EQ(img->ckpt_seq, 7u);
    EXPECT_EQ(img->app, sample_image().app);
  }
  std::filesystem::remove_all(dir);
}

// Saves go through write-then-rename: after a completed save no .tmp file
// remains, and a stale .tmp from a crashed predecessor never shadows the
// real image.
TEST(CheckpointStore, SaveIsAtomicAndIgnoresStaleTmp) {
  const std::string dir = "/tmp/windar_test_ckpt_atomic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {  // a predecessor died mid-checkpoint, leaving a truncated tmp file
    std::ofstream junk(dir + "/ckpt_rank3.bin.tmp", std::ios::binary);
    junk << "garbage";
  }
  CheckpointStore store(dir);
  EXPECT_FALSE(store.has(3));
  EXPECT_FALSE(store.load(3).has_value());
  store.save(3, sample_image());
  EXPECT_FALSE(std::filesystem::exists(dir + "/ckpt_rank3.bin.tmp"));
  auto img = store.load(3);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->delivered_total, 8u);
  std::filesystem::remove_all(dir);
}

// Disk reflects the latest save immediately: a second store opened while the
// first is still alive sees the overwrite, not the original.
TEST(CheckpointStore, DiskReflectsLatestOverwrite) {
  const std::string dir = "/tmp/windar_test_ckpt_latest";
  std::filesystem::remove_all(dir);
  CheckpointStore writer(dir);
  writer.save(0, sample_image());
  CheckpointImage img2 = sample_image();
  img2.ckpt_seq = 42;
  writer.save(0, img2);
  CheckpointStore reader(dir);
  auto loaded = reader.load(0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->ckpt_seq, 42u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, ClearRemovesAll) {
  CheckpointStore store;
  store.save(0, sample_image());
  store.clear();
  EXPECT_FALSE(store.has(0));
}

// ---------------------------------------------------------------------------
// delta codec
// ---------------------------------------------------------------------------

SealedCheckpoint big_sealed(std::uint64_t seq) {
  CheckpointImage img = sample_image();
  img.ckpt_seq = seq;
  img.app.assign(64 * 1024, 0xA5);  // hundreds of diff pages, mostly cold
  img.log.assign(4 * 1024, 0x3C);
  return ckptwire::to_sealed(img);
}

// The reference equivalence assert: a delta applied to its base must decode
// to exactly the image a full blob would have carried.
TEST(CkptDelta, AppliedDeltaEqualsFullImage) {
  const SealedCheckpoint base = big_sealed(1);
  SealedCheckpoint next = big_sealed(2);
  // Dirty a few scattered bytes: the iterative-solver shape deltas exist for.
  util::Bytes app = next.app.to_vector();
  app[100] ^= 0xFF;
  app[40'000] ^= 0x01;
  next.app = util::Buffer(std::move(app));
  next.delivered_total = 99;

  const util::Bytes delta = ckptwire::encode_delta(next, base);
  const util::Bytes full = ckptwire::encode_full(next);
  ASSERT_TRUE(ckptwire::is_delta(delta));
  ASSERT_FALSE(ckptwire::is_delta(full));
  EXPECT_EQ(ckptwire::blob_seq(delta), 2u);
  // Two dirty pages out of 256: the delta must be far smaller than a full
  // image (this inequality IS the incremental-checkpoint win).
  EXPECT_LT(delta.size(), full.size() / 8);

  const auto applied = ckptwire::apply_delta(delta, base);
  ASSERT_TRUE(applied.has_value());
  EXPECT_EQ(ckptwire::encode_full(*applied), full);
  EXPECT_EQ(ckptwire::image_hash(*applied), ckptwire::image_hash(next));
}

// A delta must refuse to graft onto anything but its recorded base: wrong
// seq or wrong content (the stale-lineage hazard) both return nullopt.
TEST(CkptDelta, RejectsForeignBase) {
  const SealedCheckpoint base = big_sealed(1);
  SealedCheckpoint next = big_sealed(2);
  next.delivered_total = 50;
  const util::Bytes delta = ckptwire::encode_delta(next, base);

  SealedCheckpoint impostor = big_sealed(1);  // same seq, different content
  util::Bytes app = impostor.app.to_vector();
  app[7] ^= 0x42;
  impostor.app = util::Buffer(std::move(app));
  EXPECT_FALSE(ckptwire::apply_delta(delta, impostor).has_value());
  EXPECT_FALSE(ckptwire::apply_delta(delta, big_sealed(3)).has_value());
  EXPECT_TRUE(ckptwire::apply_delta(delta, base).has_value());
}

// Fail-soft decoding: a blob whose 13-byte header is plausible but whose
// body is truncated (host crash mid-write on a non-atomic filesystem) must
// report failure through the return value, never CHECK-abort — load()
// consumes whatever the spill directory holds.
TEST(CkptDelta, TruncatedBlobsFailSoftAtEveryCut) {
  const SealedCheckpoint base = big_sealed(1);
  SealedCheckpoint next = big_sealed(2);
  util::Bytes app = next.app.to_vector();
  app[123] ^= 0xFF;
  next.app = util::Buffer(std::move(app));

  const util::Bytes full = ckptwire::encode_full(next);
  ASSERT_TRUE(ckptwire::try_decode_full(full).has_value());
  const util::Bytes delta = ckptwire::encode_delta(next, base);
  ASSERT_TRUE(ckptwire::apply_delta(delta, base).has_value());

  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    const util::Bytes torn(full.begin(),
                           full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(ckptwire::try_decode_full(torn).has_value()) << cut;
  }
  for (std::size_t cut = 0; cut < delta.size(); cut += 7) {
    const util::Bytes torn(delta.begin(),
                           delta.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(ckptwire::apply_delta(torn, base).has_value()) << cut;
  }

  // Trailing garbage is rejected too, not silently ignored.
  util::Bytes padded = full;
  padded.push_back(0);
  EXPECT_FALSE(ckptwire::try_decode_full(padded).has_value());
}

// ---------------------------------------------------------------------------
// delta chains on disk
// ---------------------------------------------------------------------------

TEST(CheckpointStore, DeltaChainSurvivesRespawn) {
  const std::string dir = "/tmp/windar_test_ckpt_delta";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore writer(dir, /*anchor_every=*/4);
    for (std::uint64_t seq = 1; seq <= 6; ++seq) {
      CheckpointImage img = sample_image();
      img.ckpt_seq = seq;
      img.delivered_total = static_cast<SeqNo>(10 * seq);
      img.app.push_back(static_cast<std::uint8_t>(seq));
      writer.save(0, img);
    }
    const auto stats = writer.stats();
    EXPECT_EQ(stats.saves, 6u);
    // K=4: full at seq 1 and 5, deltas at 2,3,4 and 6.
    EXPECT_EQ(stats.full_saves, 2u);
    EXPECT_EQ(stats.delta_saves, 4u);
    // The seq-5 anchor compacted the earlier chain's files.
    EXPECT_FALSE(std::filesystem::exists(dir + "/ckpt_rank0.d2.bin"));
    EXPECT_TRUE(std::filesystem::exists(dir + "/ckpt_rank0.d6.bin"));
  }  // process dies; only files survive
  CheckpointStore respawned(dir);
  auto img = respawned.load(0);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->ckpt_seq, 6u);  // anchor + delta chain reconstructed
  EXPECT_EQ(img->delivered_total, 60u);
  EXPECT_EQ(img->app.back(), 6u);
  std::filesystem::remove_all(dir);
}

// Crash window: a torn/garbage delta file (the write died before fsync
// completed on a non-atomic filesystem, or a stale lineage left one behind)
// must not poison the load — the reader keeps the longest valid chain.
TEST(CheckpointStore, CorruptDeltaFileFallsBackToAnchor) {
  const std::string dir = "/tmp/windar_test_ckpt_torn_delta";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore writer(dir, /*anchor_every=*/4);
    CheckpointImage img = sample_image();
    img.ckpt_seq = 1;
    writer.save(0, img);
  }
  {
    std::ofstream junk(dir + "/ckpt_rank0.d2.bin", std::ios::binary);
    junk << "not a checkpoint blob";
  }
  CheckpointStore reader(dir);
  auto img = reader.load(0);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->ckpt_seq, 1u);
  std::filesystem::remove_all(dir);
}

// Crash window, anchor edition: a torn anchor whose header survived intact
// (truncated past the first 13 bytes) must read as "no checkpoint", and a
// torn delta next to a good anchor must not mask the anchor.
TEST(CheckpointStore, TruncatedFilesWithPlausibleHeadersFailSoft) {
  const std::string dir = "/tmp/windar_test_ckpt_truncated";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore writer(dir, /*anchor_every=*/4);
    CheckpointImage img = sample_image();
    img.ckpt_seq = 1;
    writer.save(0, img);
    img.ckpt_seq = 2;
    img.delivered_total = 20;
    writer.save(0, img);  // delta file d2
  }
  // Truncate the delta just past its header: the anchor must still load.
  std::filesystem::resize_file(dir + "/ckpt_rank0.d2.bin", 16);
  {
    CheckpointStore reader(dir);
    auto img = reader.load(0);
    ASSERT_TRUE(img.has_value());
    EXPECT_EQ(img->ckpt_seq, 1u);
  }
  // Truncate the anchor itself: no checkpoint, but no abort either.
  std::filesystem::resize_file(dir + "/ckpt_rank0.bin", 14);
  {
    CheckpointStore reader(dir);
    EXPECT_FALSE(reader.load(0).has_value());
  }
  std::filesystem::remove_all(dir);
}

// Satellite regression: clear() used to iterate the in-memory map only, so
// a fresh process (empty map) over an old spill dir left every stale file
// in place.  It must enumerate the directory.
TEST(CheckpointStore, ClearOnFreshProcessRemovesStaleFiles) {
  const std::string dir = "/tmp/windar_test_ckpt_stale_clear";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore writer(dir, /*anchor_every=*/2);
    writer.save(0, sample_image());
    writer.save(4, sample_image());
    CheckpointImage img2 = sample_image();
    img2.ckpt_seq = 4;
    writer.save(4, img2);  // leaves a delta file too
  }
  CheckpointStore respawned(dir);  // empty in-memory map
  respawned.clear();
  std::size_t leftovers = 0;
  for (const auto& ent : std::filesystem::directory_iterator(dir)) {
    leftovers += ent.path().filename().string().rfind("ckpt_rank", 0) == 0;
  }
  EXPECT_EQ(leftovers, 0u);
  EXPECT_FALSE(respawned.has(0));
  EXPECT_FALSE(respawned.has(4));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// commit pipeline
// ---------------------------------------------------------------------------

// Simulated kill between seal and fsync: the commit is abandoned, reported
// as such (the caller must not fan out advances), and the previous image
// stays the restore point.
TEST(CheckpointStore, PreCommitDropAbandonsCommit) {
  CheckpointStore store;
  store.save(3, sample_image());
  store.set_pre_commit_hook_for_test(
      [](int) { return CheckpointStore::CommitAction::kDrop; });
  CheckpointImage img2 = sample_image();
  img2.ckpt_seq = 9;
  EXPECT_FALSE(store.save_sealed(3, ckptwire::to_sealed(img2)));
  const auto stats = store.stats();
  EXPECT_EQ(stats.dropped_saves, 1u);
  EXPECT_EQ(stats.saves, 1u);
  auto img = store.load(3);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->ckpt_seq, 3u);  // the dropped seq-9 image never published
}

// Satellite regression: save/load used to hold the store mutex across the
// full serialize + disk I/O.  A commit stalled inside the durable write
// must not block another rank's save or any load.
TEST(CheckpointStore, SlowCommitDoesNotBlockOtherRanks) {
  const std::string dir = "/tmp/windar_test_ckpt_noblock";
  std::filesystem::remove_all(dir);
  CheckpointStore store(dir, 1);
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  store.set_pre_commit_hook_for_test([&](int rank) {
    if (rank == 5) {
      entered.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return CheckpointStore::CommitAction::kProceed;
  });
  std::thread slow([&] { store.save(5, sample_image()); });
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Rank 5's commit is wedged mid-write; rank 1 must still round-trip.
  store.save(1, sample_image());
  EXPECT_TRUE(store.load(1).has_value());
  EXPECT_FALSE(store.has(5));  // wedged commit not published yet
  release.store(true);
  slow.join();
  EXPECT_TRUE(store.has(5));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace windar::ft
