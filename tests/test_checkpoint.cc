// Tests for checkpoint images and the stable store (in-memory and on-disk).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "windar/checkpoint.h"

namespace windar::ft {
namespace {

CheckpointImage sample_image() {
  CheckpointImage img;
  img.ckpt_seq = 3;
  img.app = {1, 2, 3};
  img.proto = {9, 8};
  img.last_send = {0, 5, 2};
  img.last_deliver = {0, 4, 4};
  img.delivered_total = 8;
  img.log = {7};
  return img;
}

TEST(CheckpointImage, SerializeRoundTrip) {
  const CheckpointImage img = sample_image();
  const util::Bytes blob = img.serialize();
  const CheckpointImage back = CheckpointImage::deserialize(blob);
  EXPECT_EQ(back.ckpt_seq, img.ckpt_seq);
  EXPECT_EQ(back.app, img.app);
  EXPECT_EQ(back.proto, img.proto);
  EXPECT_EQ(back.last_send, img.last_send);
  EXPECT_EQ(back.last_deliver, img.last_deliver);
  EXPECT_EQ(back.delivered_total, img.delivered_total);
  EXPECT_EQ(back.log, img.log);
}

TEST(CheckpointImage, BytesEstimatePositive) {
  EXPECT_GT(sample_image().bytes(), 0u);
}

TEST(CheckpointStore, SaveLoadInMemory) {
  CheckpointStore store;
  EXPECT_FALSE(store.has(1));
  EXPECT_FALSE(store.load(1).has_value());
  store.save(1, sample_image());
  EXPECT_TRUE(store.has(1));
  auto img = store.load(1);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->delivered_total, 8u);
}

TEST(CheckpointStore, OverwriteKeepsLatest) {
  CheckpointStore store;
  store.save(0, sample_image());
  CheckpointImage img2 = sample_image();
  img2.ckpt_seq = 9;
  img2.delivered_total = 100;
  store.save(0, img2);
  auto loaded = store.load(0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->ckpt_seq, 9u);
  EXPECT_EQ(loaded->delivered_total, 100u);
}

TEST(CheckpointStore, PerRankIsolation) {
  CheckpointStore store;
  store.save(0, sample_image());
  EXPECT_FALSE(store.has(1));
}

TEST(CheckpointStore, StatsAccumulate) {
  CheckpointStore store;
  store.save(0, sample_image());
  store.save(0, sample_image());
  (void)store.load(0);
  auto stats = store.stats();
  EXPECT_EQ(stats.saves, 2u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST(CheckpointStore, SpillToDiskRoundTrip) {
  const std::string dir = "/tmp/windar_test_ckpt";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore store(dir);
    store.save(2, sample_image());
    EXPECT_TRUE(std::filesystem::exists(dir + "/ckpt_rank2.bin"));
    auto img = store.load(2);
    ASSERT_TRUE(img.has_value());
    EXPECT_EQ(img->app, sample_image().app);
  }
  std::filesystem::remove_all(dir);
}

// A respawned OS process constructs a brand-new store over the same spill
// directory; disk must be the source of truth even though the in-memory map
// is empty (this is exactly the socket-transport recovery path).
TEST(CheckpointStore, FreshStoreReloadsPredecessorsImages) {
  const std::string dir = "/tmp/windar_test_ckpt_reload";
  std::filesystem::remove_all(dir);
  {
    CheckpointStore first(dir);
    CheckpointImage img = sample_image();
    img.ckpt_seq = 7;
    first.save(1, img);
  }  // "process" dies; only the files survive
  {
    CheckpointStore respawned(dir);
    EXPECT_TRUE(respawned.has(1));
    EXPECT_FALSE(respawned.has(0));
    auto img = respawned.load(1);
    ASSERT_TRUE(img.has_value());
    EXPECT_EQ(img->ckpt_seq, 7u);
    EXPECT_EQ(img->app, sample_image().app);
  }
  std::filesystem::remove_all(dir);
}

// Saves go through write-then-rename: after a completed save no .tmp file
// remains, and a stale .tmp from a crashed predecessor never shadows the
// real image.
TEST(CheckpointStore, SaveIsAtomicAndIgnoresStaleTmp) {
  const std::string dir = "/tmp/windar_test_ckpt_atomic";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {  // a predecessor died mid-checkpoint, leaving a truncated tmp file
    std::ofstream junk(dir + "/ckpt_rank3.bin.tmp", std::ios::binary);
    junk << "garbage";
  }
  CheckpointStore store(dir);
  EXPECT_FALSE(store.has(3));
  EXPECT_FALSE(store.load(3).has_value());
  store.save(3, sample_image());
  EXPECT_FALSE(std::filesystem::exists(dir + "/ckpt_rank3.bin.tmp"));
  auto img = store.load(3);
  ASSERT_TRUE(img.has_value());
  EXPECT_EQ(img->delivered_total, 8u);
  std::filesystem::remove_all(dir);
}

// Disk reflects the latest save immediately: a second store opened while the
// first is still alive sees the overwrite, not the original.
TEST(CheckpointStore, DiskReflectsLatestOverwrite) {
  const std::string dir = "/tmp/windar_test_ckpt_latest";
  std::filesystem::remove_all(dir);
  CheckpointStore writer(dir);
  writer.save(0, sample_image());
  CheckpointImage img2 = sample_image();
  img2.ckpt_seq = 42;
  writer.save(0, img2);
  CheckpointStore reader(dir);
  auto loaded = reader.load(0);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->ckpt_seq, 42u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointStore, ClearRemovesAll) {
  CheckpointStore store;
  store.save(0, sample_image());
  store.clear();
  EXPECT_FALSE(store.has(0));
}

}  // namespace
}  // namespace windar::ft
