// Chaos soak (CI slice): a fixed set of seeded randomized fault schedules
// per protocol, each checked for convergence to the failure-free digest.
// The full-width sweep lives in bench/chaos_soak.cc; this slice pins a
// handful of seeds so CI stays fast and failures name the seed to replay
// (`chaos_soak --replay=<seed>`).
#include <gtest/gtest.h>

#include <tuple>

#include "chaos_app.h"

namespace windar::ft {
namespace {

// Seeds are arbitrary but fixed: together the derived plans cover delivery-
// keyed kills, mid-checkpoint and mid-recovery kills, held-down restarts,
// and control-packet duplication/delay.
constexpr std::uint64_t kSeeds[] = {101, 102, 103, 104, 105, 106};

class ChaosSoak : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ChaosSoak, SeededSchedulesConvergeToCleanDigest) {
  const ProtocolKind proto = GetParam();
  for (const std::uint64_t seed : kSeeds) {
    const ChaosPlan plan = make_chaos_plan(seed);
    SCOPED_TRACE(plan.describe());
    const auto clean = chaos::run_plan(plan, proto, /*with_faults=*/false);
    const auto faulty = chaos::run_plan(plan, proto, /*with_faults=*/true);
    EXPECT_EQ(clean.digest, faulty.digest);
    // Recoveries imply fired triggers; a plan whose kills never armed (e.g.
    // a RESPONSE-keyed kill with no other failure) legitimately fires none.
    EXPECT_GE(faulty.result.chaos_triggers_fired,
              faulty.result.total.recoveries > 0 ? 1u : 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChaosSoak,
                         ::testing::Values(ProtocolKind::kTdi,
                                           ProtocolKind::kTag,
                                           ProtocolKind::kTel),
                         [](const auto& param_info) {
                           std::string name = to_string(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

// Sharded-logger slice: the same seeded schedules for the logger-backed
// protocols, but against 2 and 4 logger shards and both execution models —
// kills now race per-shard commit threads and batched-ack watermarks.
class ShardedChaosSoak
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, int>> {};

TEST_P(ShardedChaosSoak, SeededSchedulesConvergeToCleanDigest) {
  const auto [proto, shards] = GetParam();
  for (const std::uint64_t seed : {kSeeds[0], kSeeds[2], kSeeds[4]}) {
    const ChaosPlan plan = make_chaos_plan(seed);
    SCOPED_TRACE(plan.describe());
    for (const auto exec_model :
         {exec::ExecModel::kThreads, exec::ExecModel::kCoop}) {
      const auto clean =
          chaos::run_plan(plan, proto, false, shards, exec_model);
      const auto faulty =
          chaos::run_plan(plan, proto, true, shards, exec_model);
      EXPECT_EQ(clean.digest, faulty.digest)
          << "exec=" << static_cast<int>(exec_model);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LoggerShards, ShardedChaosSoak,
    ::testing::Combine(::testing::Values(ProtocolKind::kTel,
                                         ProtocolKind::kPes),
                       ::testing::Values(2, 4)),
    [](const auto& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      std::erase(name, '-');
      return name + "x" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace windar::ft
