// Tests for the CLI option parser, the table printer, the clock helpers,
// and the dynamic rank bitset.
#include <gtest/gtest.h>

#include <thread>

#include "util/bitset.h"
#include "util/clock.h"
#include "util/options.h"
#include "util/table.h"

namespace windar::util {
namespace {

Options make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, DefaultsWhenAbsent) {
  auto o = make({});
  EXPECT_EQ(o.str("name", "dflt"), "dflt");
  EXPECT_EQ(o.integer("k", 7), 7);
  EXPECT_DOUBLE_EQ(o.real("x", 1.5), 1.5);
  EXPECT_FALSE(o.flag("f", false));
  o.finish();
}

TEST(Options, EqualsSyntax) {
  auto o = make({"--name=abc", "--k=42", "--x=2.5", "--f=true"});
  EXPECT_EQ(o.str("name", ""), "abc");
  EXPECT_EQ(o.integer("k", 0), 42);
  EXPECT_DOUBLE_EQ(o.real("x", 0), 2.5);
  EXPECT_TRUE(o.flag("f", false));
  o.finish();
}

TEST(Options, SpaceSyntaxAndBareFlag) {
  auto o = make({"--k", "13", "--verbose"});
  EXPECT_EQ(o.integer("k", 0), 13);
  EXPECT_TRUE(o.flag("verbose", false));
  o.finish();
}

TEST(Options, IntList) {
  auto o = make({"--ranks=4,8,16"});
  EXPECT_EQ(o.int_list("ranks", {1}), (std::vector<int>{4, 8, 16}));
  o.finish();
}

TEST(Options, IntListDefault) {
  auto o = make({});
  EXPECT_EQ(o.int_list("ranks", {2, 3}), (std::vector<int>{2, 3}));
  o.finish();
}

TEST(OptionsDeath, UnknownOptionExits) {
  EXPECT_EXIT(
      {
        auto o = make({"--bogus=1"});
        (void)o.integer("k", 0);
        o.finish();
      },
      ::testing::ExitedWithCode(2), "unknown option");
}

TEST(Table, PrintsAlignedAndCsv) {
  Table t({"a", "long header", "c"});
  t.row({"1", "2", "3"}).row({"wide cell", "x", "y"});
  const std::string csv = t.csv();
  EXPECT_EQ(csv, "a,long header,c\n1,2,3\nwide cell,x,y\n");
  t.print("title");  // must not crash
}

TEST(TableDeath, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.row({"only one"}), "width");
}

TEST(Clock, StopwatchAccumulates) {
  Stopwatch sw;
  sw.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sw.stop();
  sw.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sw.stop();
  EXPECT_GE(sw.total_ns(), 3'500'000);
  EXPECT_EQ(sw.laps(), 2u);
  sw.reset();
  EXPECT_EQ(sw.total_ns(), 0);
}

TEST(Clock, ScopedLapStops) {
  Stopwatch sw;
  {
    ScopedLap lap(sw);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sw.total_ns(), 500'000);
  EXPECT_EQ(sw.laps(), 1u);
}

TEST(Clock, MonotonicNow) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
}

TEST(RankBitset, SetTestAcrossWordBoundary) {
  RankBitset b;
  EXPECT_TRUE(b.empty());
  for (int r : {0, 63, 64, 127, 128, 1000}) {
    EXPECT_FALSE(b.test(r));
    b.set(r);
    EXPECT_TRUE(b.test(r));
  }
  EXPECT_FALSE(b.empty());
  EXPECT_FALSE(b.test(65));
  EXPECT_FALSE(b.test(999));
  EXPECT_FALSE(b.test(1001));
}

TEST(RankBitset, MergeIsSetUnionWithMixedWidths) {
  RankBitset small = RankBitset::of(3, 40);     // inline word only
  const RankBitset wide = RankBitset::of(64, 200);
  small.merge(wide);
  for (int r : {3, 40, 64, 200}) EXPECT_TRUE(small.test(r));
  // Merging a narrow set into a wide one must not shrink the spill.
  RankBitset wide2 = RankBitset::of(200);
  wide2.merge(RankBitset::of(1));
  EXPECT_TRUE(wide2.test(200));
  EXPECT_TRUE(wide2.test(1));
}

TEST(RankBitset, SaveLoadRoundTrips) {
  RankBitset b = RankBitset::of(5, 70);
  b.set(500);
  ByteWriter w;
  b.save(w);
  ByteReader r(w.view());
  const RankBitset back = RankBitset::load(r);
  for (int k : {5, 70, 500}) EXPECT_TRUE(back.test(k));
  EXPECT_FALSE(back.test(6));
  EXPECT_FALSE(back.test(64));
}

}  // namespace
}  // namespace windar::util
