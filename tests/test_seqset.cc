// Unit tests for the watermark + sparse sequence set.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"
#include "windar/seqset.h"

namespace windar::ft {
namespace {

TEST(SeqSet, ContiguousFoldsIntoWatermark) {
  SeqSet s;
  s.add(1);
  s.add(2);
  s.add(3);
  EXPECT_EQ(s.watermark(), 3u);
  EXPECT_EQ(s.sparse_size(), 0u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(4));
}

TEST(SeqSet, OutOfOrderHeldSparse) {
  SeqSet s;
  s.add(3);
  s.add(5);
  EXPECT_EQ(s.watermark(), 0u);
  EXPECT_EQ(s.sparse_size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(4));
}

TEST(SeqSet, GapFillCompacts) {
  SeqSet s;
  s.add(2);
  s.add(3);
  s.add(5);
  s.add(1);  // fills gap -> watermark jumps over 2, 3
  EXPECT_EQ(s.watermark(), 3u);
  EXPECT_EQ(s.sparse_size(), 1u);
  s.add(4);
  EXPECT_EQ(s.watermark(), 5u);
  EXPECT_EQ(s.sparse_size(), 0u);
}

TEST(SeqSet, DuplicatesIgnored) {
  SeqSet s;
  s.add(1);
  s.add(1);
  s.add(2);
  s.add(2);
  EXPECT_EQ(s.watermark(), 2u);
  EXPECT_EQ(s.sparse_size(), 0u);
}

TEST(SeqSet, ResetToWatermark) {
  SeqSet s;
  s.add(1);
  s.add(7);
  s.reset(10);
  EXPECT_EQ(s.watermark(), 10u);
  EXPECT_EQ(s.sparse_size(), 0u);
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(11));
}

TEST(SeqSet, RandomPermutationCompactsFully) {
  std::vector<SeqNo> order(500);
  for (SeqNo i = 0; i < 500; ++i) order[i] = i + 1;
  util::Rng rng(17);
  std::shuffle(order.begin(), order.end(), rng);
  SeqSet s;
  for (SeqNo v : order) s.add(v);
  EXPECT_EQ(s.watermark(), 500u);
  EXPECT_EQ(s.sparse_size(), 0u);
}

}  // namespace
}  // namespace windar::ft
