// Unit tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace windar::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(11);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = r.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng base(42);
  Rng a = base.split(1);
  Rng b = base.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng base1(42), base2(42);
  Rng a = base1.split(5);
  Rng b = base2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace windar::util
