// Tests for TEL's stable-storage event logger service.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <thread>

#include "net/fabric.h"
#include "windar/event_logger.h"

namespace windar::ft {
namespace {

constexpr int kRanks = 3;
constexpr int kLoggerEp = kRanks;

// Delivery is asynchronous: block until the serve thread has queued `count`
// batches for a paused commit thread before releasing it.
void wait_pending(const EventLogger& logger, std::size_t count) {
  while (logger.pending_for_test() < count) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

struct LoggerFixture : ::testing::Test {
  LoggerFixture()
      : fabric(kRanks + 1, net::LatencyModel::deterministic(), 1),
        logger(fabric, {kLoggerEp, kRanks, std::chrono::microseconds(0)}) {}

  void log_batch(int owner, std::vector<Determinant> dets) {
    net::Packet p;
    p.src = owner;
    p.dst = kLoggerEp;
    p.kind = wire(Kind::kTelLog);
    util::ByteWriter w;
    write_determinants(w, dets);
    p.payload = w.take();
    fabric.send(std::move(p));
  }

  net::Packet expect_packet(int at, Kind kind) {
    auto p = fabric.endpoint(at).inbox().pop();
    EXPECT_TRUE(p.has_value());
    EXPECT_EQ(p->kind, wire(kind));
    return std::move(*p);
  }

  net::Fabric fabric;
  EventLogger logger;
};

TEST_F(LoggerFixture, AcksContiguousWatermark) {
  log_batch(1, {{0, 1, 1, 1}, {0, 1, 2, 2}});
  auto ack = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack.seq, 2u);
  EXPECT_EQ(logger.stored_determinants(), 2u);
  EXPECT_EQ(logger.batches(), 1u);
}

TEST_F(LoggerFixture, OutOfOrderBatchesHoldWatermark) {
  log_batch(1, {{0, 1, 3, 3}});  // gap: deliveries 1-2 missing
  auto ack1 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack1.seq, 0u);
  log_batch(1, {{0, 1, 1, 1}, {0, 1, 2, 2}});
  auto ack2 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack2.seq, 3u);  // gap filled, watermark jumps
}

TEST_F(LoggerFixture, PerRankIsolation) {
  log_batch(1, {{0, 1, 1, 1}});
  (void)expect_packet(1, Kind::kTelAck);
  log_batch(2, {{0, 2, 1, 1}});
  auto ack = expect_packet(2, Kind::kTelAck);
  EXPECT_EQ(ack.seq, 1u);  // rank 2's stream starts fresh
}

TEST_F(LoggerFixture, QueryReturnsOwnDeterminants) {
  log_batch(1, {{0, 1, 1, 1}, {2, 1, 1, 2}});
  (void)expect_packet(1, Kind::kTelAck);

  net::Packet q;
  q.src = 1;
  q.dst = kLoggerEp;
  q.kind = wire(Kind::kTelQuery);
  fabric.send(std::move(q));
  auto reply = expect_packet(1, Kind::kTelQueryReply);
  util::ByteReader r(reply.payload);
  const auto dets = read_determinants(r);
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_EQ(dets[0].deliver_seq, 1u);
  EXPECT_EQ(dets[1].deliver_seq, 2u);
}

TEST_F(LoggerFixture, QueryForEmptyRankReturnsNothing) {
  net::Packet q;
  q.src = 2;
  q.dst = kLoggerEp;
  q.kind = wire(Kind::kTelQuery);
  fabric.send(std::move(q));
  auto reply = expect_packet(2, Kind::kTelQueryReply);
  util::ByteReader r(reply.payload);
  EXPECT_TRUE(read_determinants(r).empty());
}

TEST_F(LoggerFixture, CheckpointAdvanceReleasesPrefix) {
  log_batch(1, {{0, 1, 1, 1}, {0, 1, 2, 2}, {0, 1, 3, 3}});
  (void)expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(logger.stored_determinants(), 3u);

  net::Packet adv;
  adv.src = 1;
  adv.dst = kLoggerEp;
  adv.kind = wire(Kind::kCheckpointAdvance);
  adv.seq = 2;  // rank 1 checkpointed after 2 deliveries
  fabric.send(std::move(adv));
  // Poke with a query to serialize behind the advance.
  net::Packet q;
  q.src = 1;
  q.dst = kLoggerEp;
  q.kind = wire(Kind::kTelQuery);
  fabric.send(std::move(q));
  auto reply = expect_packet(1, Kind::kTelQueryReply);
  util::ByteReader r(reply.payload);
  const auto dets = read_determinants(r);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].deliver_seq, 3u);
}

TEST_F(LoggerFixture, DuplicateLogIsIdempotent) {
  log_batch(1, {{0, 1, 1, 1}});
  (void)expect_packet(1, Kind::kTelAck);
  log_batch(1, {{0, 1, 1, 1}});  // re-flush after an incarnation restart
  auto ack = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack.seq, 1u);
  EXPECT_EQ(logger.stored_determinants(), 1u);
}

TEST_F(LoggerFixture, StopIsIdempotent) {
  logger.stop();
  logger.stop();
}

TEST_F(LoggerFixture, PausedCommitsCoalesceIntoOneRoundAndOneAckPerRank) {
  logger.pause_commits();
  log_batch(1, {{0, 1, 1, 1}});
  log_batch(1, {{0, 1, 2, 2}});
  log_batch(1, {{0, 1, 3, 3}});
  log_batch(2, {{0, 2, 1, 1}});
  wait_pending(logger, 4);
  logger.resume_commits();
  // One commit round drained all four batches; each affected rank got
  // exactly one ack carrying its final contiguous watermark.
  auto ack1 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack1.seq, 3u);
  auto ack2 = expect_packet(2, Kind::kTelAck);
  EXPECT_EQ(ack2.seq, 1u);
  EXPECT_EQ(logger.batches(), 4u);
  EXPECT_EQ(logger.commit_rounds(), 1u);
  EXPECT_EQ(logger.acks_sent(), 2u);
  EXPECT_TRUE(fabric.endpoint(1).inbox().empty());
  EXPECT_TRUE(fabric.endpoint(2).inbox().empty());
}

TEST_F(LoggerFixture, WatermarkStaysMonotoneUnderOutOfOrderCommits) {
  // Batches arrive out of delivery order across several commit rounds; the
  // per-rank ack watermark must never move backwards.
  logger.pause_commits();
  log_batch(1, {{0, 1, 3, 3}});  // gap: 1-2 missing
  log_batch(1, {{0, 1, 5, 5}});  // further gap
  wait_pending(logger, 2);
  logger.resume_commits();
  auto ack1 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack1.seq, 0u);  // nothing contiguous yet

  logger.pause_commits();
  log_batch(1, {{0, 1, 2, 2}});
  wait_pending(logger, 1);
  logger.resume_commits();
  auto ack2 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack2.seq, 0u);  // still gapped at 1

  logger.pause_commits();
  log_batch(1, {{0, 1, 1, 1}});
  log_batch(1, {{0, 1, 4, 4}});
  wait_pending(logger, 2);
  logger.resume_commits();
  auto ack3 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack3.seq, 5u);  // every gap filled in one round: jump to 5
  EXPECT_GE(ack3.seq, ack2.seq);
  EXPECT_GE(ack2.seq, ack1.seq);
}

// --------------------------------------------------------------------------
// Sharded deployment
// --------------------------------------------------------------------------

struct ShardedLoggerFixture : ::testing::Test {
  static constexpr int kN = 4;
  static constexpr int kShards = 2;

  ShardedLoggerFixture()
      : fabric(kN + kShards, net::LatencyModel::deterministic(), 1) {
    for (int s = 0; s < kShards; ++s) {
      shards.push_back(std::make_unique<EventLogger>(
          fabric, EventLogger::Params{kN + s, kN,
                                      std::chrono::microseconds(0), kShards,
                                      s}));
    }
  }

  void log_batch(int owner, std::vector<Determinant> dets) {
    net::Packet p;
    p.src = owner;
    p.dst = logger_shard_endpoint(kN, owner, kShards);
    p.kind = wire(Kind::kTelLog);
    util::ByteWriter w;
    write_determinants(w, dets);
    p.payload = w.take();
    fabric.send(std::move(p));
  }

  net::Packet expect_packet(int at, Kind kind) {
    auto p = fabric.endpoint(at).inbox().pop();
    EXPECT_TRUE(p.has_value());
    EXPECT_EQ(p->kind, wire(kind));
    return std::move(*p);
  }

  net::Fabric fabric;
  std::vector<std::unique_ptr<EventLogger>> shards;
};

TEST(LoggerSharding, EndpointMathRoutesRankModShards) {
  // shard = rank % shards; endpoints follow the ranks at n..n+shards-1.
  EXPECT_EQ(logger_shard_index(0, 2), 0);
  EXPECT_EQ(logger_shard_index(1, 2), 1);
  EXPECT_EQ(logger_shard_index(5, 2), 1);
  EXPECT_EQ(logger_shard_endpoint(4, 0, 2), 4);
  EXPECT_EQ(logger_shard_endpoint(4, 3, 2), 5);
  // shards == 1 is the seed's single-logger layout for every rank.
  EXPECT_EQ(logger_shard_endpoint(4, 3, 1), 4);
  EXPECT_EQ(logger_shard_endpoint(4, 0, 1), 4);
}

TEST(LoggerSharding, ResolveShardsPrefersConfiguredThenEnvThenOne) {
  ::unsetenv("WINDAR_LOGGER_SHARDS");
  EXPECT_EQ(resolve_logger_shards(3), 3);
  EXPECT_EQ(resolve_logger_shards(0), 1);
  ::setenv("WINDAR_LOGGER_SHARDS", "4", 1);
  EXPECT_EQ(resolve_logger_shards(0), 4);
  EXPECT_EQ(resolve_logger_shards(2), 2);  // explicit config beats env
  ::setenv("WINDAR_LOGGER_SHARDS", "garbage", 1);
  EXPECT_EQ(resolve_logger_shards(0), 1);
  ::unsetenv("WINDAR_LOGGER_SHARDS");
}

TEST_F(ShardedLoggerFixture, RanksCommitOnTheirOwnShardOnly) {
  log_batch(0, {{1, 0, 1, 1}});
  log_batch(2, {{1, 2, 1, 1}});  // also shard 0 (2 % 2)
  log_batch(1, {{0, 1, 1, 1}});  // shard 1
  (void)expect_packet(0, Kind::kTelAck);
  (void)expect_packet(2, Kind::kTelAck);
  (void)expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(shards[0]->stored_determinants(), 2u);
  EXPECT_EQ(shards[1]->stored_determinants(), 1u);
  EXPECT_EQ(shards[0]->batches(), 2u);
  EXPECT_EQ(shards[1]->batches(), 1u);
}

TEST_F(ShardedLoggerFixture, ShardsBatchAndAckIndependently) {
  shards[0]->pause_commits();
  log_batch(0, {{1, 0, 1, 1}});
  log_batch(2, {{1, 2, 1, 1}});
  wait_pending(*shards[0], 2);
  // Shard 1 is not paused: rank 1's commit proceeds immediately.
  log_batch(1, {{0, 1, 1, 1}});
  auto ack1 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack1.seq, 1u);
  shards[0]->resume_commits();
  (void)expect_packet(0, Kind::kTelAck);
  (void)expect_packet(2, Kind::kTelAck);
  EXPECT_EQ(shards[0]->commit_rounds(), 1u);  // both batches in one round
  EXPECT_EQ(shards[0]->acks_sent(), 2u);      // one per affected rank
}

TEST_F(ShardedLoggerFixture, QueryServedByOwnShardAfterCrossRankTraffic) {
  log_batch(1, {{0, 1, 1, 1}, {2, 1, 2, 2}});
  (void)expect_packet(1, Kind::kTelAck);
  net::Packet q;
  q.src = 1;
  q.dst = logger_shard_endpoint(kN, 1, kShards);
  q.kind = wire(Kind::kTelQuery);
  fabric.send(std::move(q));
  auto reply = expect_packet(1, Kind::kTelQueryReply);
  util::ByteReader r(reply.payload);
  EXPECT_EQ(read_determinants(r).size(), 2u);
}

}  // namespace
}  // namespace windar::ft
