// Tests for TEL's stable-storage event logger service.
#include <gtest/gtest.h>

#include "net/fabric.h"
#include "windar/event_logger.h"

namespace windar::ft {
namespace {

constexpr int kRanks = 3;
constexpr int kLoggerEp = kRanks;

struct LoggerFixture : ::testing::Test {
  LoggerFixture()
      : fabric(kRanks + 1, net::LatencyModel::deterministic(), 1),
        logger(fabric, {kLoggerEp, kRanks, std::chrono::microseconds(0)}) {}

  void log_batch(int owner, std::vector<Determinant> dets) {
    net::Packet p;
    p.src = owner;
    p.dst = kLoggerEp;
    p.kind = wire(Kind::kTelLog);
    util::ByteWriter w;
    write_determinants(w, dets);
    p.payload = w.take();
    fabric.send(std::move(p));
  }

  net::Packet expect_packet(int at, Kind kind) {
    auto p = fabric.endpoint(at).inbox().pop();
    EXPECT_TRUE(p.has_value());
    EXPECT_EQ(p->kind, wire(kind));
    return std::move(*p);
  }

  net::Fabric fabric;
  EventLogger logger;
};

TEST_F(LoggerFixture, AcksContiguousWatermark) {
  log_batch(1, {{0, 1, 1, 1}, {0, 1, 2, 2}});
  auto ack = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack.seq, 2u);
  EXPECT_EQ(logger.stored_determinants(), 2u);
  EXPECT_EQ(logger.batches(), 1u);
}

TEST_F(LoggerFixture, OutOfOrderBatchesHoldWatermark) {
  log_batch(1, {{0, 1, 3, 3}});  // gap: deliveries 1-2 missing
  auto ack1 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack1.seq, 0u);
  log_batch(1, {{0, 1, 1, 1}, {0, 1, 2, 2}});
  auto ack2 = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack2.seq, 3u);  // gap filled, watermark jumps
}

TEST_F(LoggerFixture, PerRankIsolation) {
  log_batch(1, {{0, 1, 1, 1}});
  (void)expect_packet(1, Kind::kTelAck);
  log_batch(2, {{0, 2, 1, 1}});
  auto ack = expect_packet(2, Kind::kTelAck);
  EXPECT_EQ(ack.seq, 1u);  // rank 2's stream starts fresh
}

TEST_F(LoggerFixture, QueryReturnsOwnDeterminants) {
  log_batch(1, {{0, 1, 1, 1}, {2, 1, 1, 2}});
  (void)expect_packet(1, Kind::kTelAck);

  net::Packet q;
  q.src = 1;
  q.dst = kLoggerEp;
  q.kind = wire(Kind::kTelQuery);
  fabric.send(std::move(q));
  auto reply = expect_packet(1, Kind::kTelQueryReply);
  util::ByteReader r(reply.payload);
  const auto dets = read_determinants(r);
  ASSERT_EQ(dets.size(), 2u);
  EXPECT_EQ(dets[0].deliver_seq, 1u);
  EXPECT_EQ(dets[1].deliver_seq, 2u);
}

TEST_F(LoggerFixture, QueryForEmptyRankReturnsNothing) {
  net::Packet q;
  q.src = 2;
  q.dst = kLoggerEp;
  q.kind = wire(Kind::kTelQuery);
  fabric.send(std::move(q));
  auto reply = expect_packet(2, Kind::kTelQueryReply);
  util::ByteReader r(reply.payload);
  EXPECT_TRUE(read_determinants(r).empty());
}

TEST_F(LoggerFixture, CheckpointAdvanceReleasesPrefix) {
  log_batch(1, {{0, 1, 1, 1}, {0, 1, 2, 2}, {0, 1, 3, 3}});
  (void)expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(logger.stored_determinants(), 3u);

  net::Packet adv;
  adv.src = 1;
  adv.dst = kLoggerEp;
  adv.kind = wire(Kind::kCheckpointAdvance);
  adv.seq = 2;  // rank 1 checkpointed after 2 deliveries
  fabric.send(std::move(adv));
  // Poke with a query to serialize behind the advance.
  net::Packet q;
  q.src = 1;
  q.dst = kLoggerEp;
  q.kind = wire(Kind::kTelQuery);
  fabric.send(std::move(q));
  auto reply = expect_packet(1, Kind::kTelQueryReply);
  util::ByteReader r(reply.payload);
  const auto dets = read_determinants(r);
  ASSERT_EQ(dets.size(), 1u);
  EXPECT_EQ(dets[0].deliver_seq, 3u);
}

TEST_F(LoggerFixture, DuplicateLogIsIdempotent) {
  log_batch(1, {{0, 1, 1, 1}});
  (void)expect_packet(1, Kind::kTelAck);
  log_batch(1, {{0, 1, 1, 1}});  // re-flush after an incarnation restart
  auto ack = expect_packet(1, Kind::kTelAck);
  EXPECT_EQ(ack.seq, 1u);
  EXPECT_EQ(logger.stored_determinants(), 1u);
}

TEST_F(LoggerFixture, StopIsIdempotent) {
  logger.stop();
  logger.stop();
}

}  // namespace
}  // namespace windar::ft
