// Unit tests for the cooperative rank scheduler (exec/scheduler.h) and its
// interplay with the WaitSet-backed blocking primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/scheduler.h"
#include "util/queue.h"
#include "util/wait.h"

namespace windar::exec {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

TEST(ExecModel, Parse) {
  ExecModel m = ExecModel::kAuto;
  EXPECT_TRUE(parse_exec_model("threads", &m));
  EXPECT_EQ(m, ExecModel::kThreads);
  EXPECT_TRUE(parse_exec_model("coop", &m));
  EXPECT_EQ(m, ExecModel::kCoop);
  EXPECT_TRUE(parse_exec_model("auto", &m));
  EXPECT_EQ(m, ExecModel::kAuto);
  EXPECT_FALSE(parse_exec_model("fibers", &m));
}

TEST(Scheduler, SpawnAndJoinAll) {
  Scheduler sched(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i) {
    sched.spawn([&] { ran.fetch_add(1); });
  }
  sched.join_all();
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(sched.tasks_started(), 10u);
  EXPECT_EQ(sched.workers(), 2);
}

TEST(Scheduler, OnTaskAndCurrent) {
  EXPECT_FALSE(Scheduler::on_task());
  EXPECT_EQ(Scheduler::current(), nullptr);
  Scheduler sched(1);
  std::atomic<bool> on_task_inside{false};
  std::atomic<Scheduler*> current_inside{nullptr};
  sched.spawn([&] {
    on_task_inside = Scheduler::on_task();
    current_inside = Scheduler::current();
  });
  sched.join_all();
  EXPECT_TRUE(on_task_inside.load());
  EXPECT_EQ(current_inside.load(), &sched);
  EXPECT_FALSE(Scheduler::on_task());
}

TEST(Scheduler, ManyTasksFewWorkers) {
  // 512 tasks on 2 workers: the pool size bounds thread count, not n.
  Scheduler sched(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 512; ++i) {
    sched.spawn([&] {
      Scheduler::yield();
      done.fetch_add(1);
    });
  }
  sched.join_all();
  EXPECT_EQ(done.load(), 512);
}

TEST(Scheduler, YieldInterleaves) {
  // With one worker, a spin-without-yield would starve the second task
  // forever; yield must let it through.
  Scheduler sched(1);
  std::atomic<bool> flag{false};
  sched.spawn([&] {
    while (!flag.load()) Scheduler::yield();
  });
  sched.spawn([&] { flag.store(true); });
  sched.join_all();
  EXPECT_TRUE(flag.load());
}

TEST(Scheduler, ParkTimesOut) {
  Scheduler sched(1);
  Clock::duration waited{};
  sched.spawn([&] {
    const auto t0 = Clock::now();
    Scheduler::park_until(t0 + 30ms);
    waited = Clock::now() - t0;
  });
  sched.join_all();
  EXPECT_GE(waited, 29ms);
}

TEST(Scheduler, UnparkWakesParkedTask) {
  Scheduler sched(1);
  util::ParkRef ref;
  std::mutex mu;
  std::condition_variable cv;
  Clock::duration waited{};
  sched.spawn([&] {
    {
      std::scoped_lock lock(mu);
      ref = Scheduler::self();
    }
    cv.notify_one();
    const auto t0 = Clock::now();
    Scheduler::park_until(t0 + 10s);
    waited = Clock::now() - t0;
  });
  {
    // Cross-thread unpark: wait for the handle, give the task time to park,
    // then wake it long before its 10s deadline.
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return ref != nullptr; });
  }
  std::this_thread::sleep_for(20ms);
  ref->unpark();
  sched.join_all();
  EXPECT_LT(waited, 5s);
}

TEST(Scheduler, UnparkBeforeParkIsAPermit) {
  Scheduler sched(1);
  Clock::duration waited{};
  sched.spawn([&] {
    util::ParkRef self = Scheduler::self();
    self->unpark();  // permit stored while kRunning
    const auto t0 = Clock::now();
    Scheduler::park_until(t0 + 10s);  // consumes the permit, returns at once
    waited = Clock::now() - t0;
  });
  sched.join_all();
  EXPECT_LT(waited, 1s);
}

TEST(Scheduler, UnparkAfterCompletionIsNoop) {
  util::ParkRef ref;
  {
    Scheduler sched(1);
    std::mutex mu;
    sched.spawn([&] {
      std::scoped_lock lock(mu);
      ref = Scheduler::self();
    });
    sched.join_all();
  }
  ASSERT_NE(ref, nullptr);
  ref->unpark();  // scheduler destroyed, task done: must not crash
}

TEST(Scheduler, SleepForHasSleepSemantics) {
  Scheduler sched(1);
  Clock::duration waited{};
  sched.spawn([&] {
    const auto t0 = Clock::now();
    util::coop_sleep_for(25ms);
    waited = Clock::now() - t0;
  });
  sched.join_all();
  EXPECT_GE(waited, 24ms);
}

TEST(Scheduler, SpawnFromTask) {
  Scheduler sched(2);
  std::atomic<int> ran{0};
  TaskHandle inner;
  sched.spawn([&] {
    inner = Scheduler::current()->spawn([&] { ran.fetch_add(1); });
    inner.join();  // task-to-task join parks instead of blocking the worker
    ran.fetch_add(10);
  });
  sched.join_all();
  EXPECT_EQ(ran.load(), 11);
  EXPECT_TRUE(inner.done());
}

TEST(Scheduler, JoinFromPlainThread) {
  Scheduler sched(1);
  TaskHandle h = sched.spawn([] { util::coop_sleep_for(10ms); });
  h.join();
  EXPECT_TRUE(h.done());
  sched.join_all();
}

TEST(Scheduler, ExceptionPropagatesThroughJoinAll) {
  Scheduler sched(2);
  sched.spawn([] { throw std::runtime_error("task boom"); });
  sched.spawn([] { util::coop_sleep_for(1ms); });
  EXPECT_THROW(sched.join_all(), std::runtime_error);
  sched.join_all();  // error already consumed; all tasks finished
}

TEST(Scheduler, BlockingQueueAcrossTasks) {
  // Producer and consumer both run as fibers on ONE worker: pop() must park
  // the consumer task or the producer never runs and this deadlocks.
  Scheduler sched(1);
  util::BlockingQueue<int> q;
  std::vector<int> got;
  sched.spawn([&] {
    for (int i = 0; i < 100; ++i) {
      if (auto v = q.pop()) got.push_back(*v);
    }
  });
  sched.spawn([&] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(q.push(i));
      if (i % 7 == 0) Scheduler::yield();
    }
  });
  sched.join_all();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Scheduler, BlockingQueueThreadToTask) {
  // OS-thread producer wakes a parked fiber through the WaitSet, the path the
  // fabric shard threads use to wake rank tasks.
  Scheduler sched(1);
  util::BlockingQueue<int> q;
  std::atomic<int> sum{0};
  sched.spawn([&] {
    while (auto v = q.pop()) sum.fetch_add(*v);
  });
  std::thread producer([&] {
    for (int i = 1; i <= 50; ++i) {
      ASSERT_TRUE(q.push(i));
      if (i % 10 == 0) std::this_thread::sleep_for(1ms);
    }
    q.poison();
  });
  producer.join();
  sched.join_all();
  EXPECT_EQ(sum.load(), 50 * 51 / 2);
}

TEST(Scheduler, PoisonWakesParkedConsumerTask) {
  Scheduler sched(1);
  util::BlockingQueue<int> q;
  std::atomic<bool> popped_null{false};
  sched.spawn([&] { popped_null = !q.pop().has_value(); });
  std::this_thread::sleep_for(10ms);  // let the task park on the empty queue
  q.poison();
  sched.join_all();
  EXPECT_TRUE(popped_null.load());
}

TEST(Scheduler, PopUntilDeadlineOnTask) {
  Scheduler sched(1);
  util::BlockingQueue<int> q;
  Clock::duration waited{};
  bool value = true;
  sched.spawn([&] {
    const auto t0 = Clock::now();
    value = q.pop_until(t0 + 20ms).has_value();
    waited = Clock::now() - t0;
  });
  sched.join_all();
  EXPECT_FALSE(value);
  EXPECT_GE(waited, 19ms);
}

TEST(Scheduler, StressPingPong) {
  // Two queues, two fibers bouncing a token with timed pops under a second
  // scheduler thread pushing noise: exercises park/unpark/timer races.
  Scheduler sched(2);
  util::BlockingQueue<int> a2b;
  util::BlockingQueue<int> b2a;
  std::atomic<int> rounds{0};
  sched.spawn([&] {
    ASSERT_TRUE(a2b.push(0));
    while (auto v = b2a.pop_for(2s)) {
      if (*v >= 500) break;
      ASSERT_TRUE(a2b.push(*v + 1));
    }
  });
  sched.spawn([&] {
    while (auto v = a2b.pop_for(2s)) {
      rounds.fetch_add(1);
      if (!b2a.push(*v + 1)) break;
      if (*v + 1 >= 500) break;
    }
  });
  sched.join_all();
  EXPECT_GE(rounds.load(), 250);
}

TEST(WaitSet, NotifyWakesThreadAndTaskWaiters) {
  util::WaitSet ws;
  std::mutex mu;
  bool go = false;
  std::atomic<int> woke{0};
  Scheduler sched(1);
  sched.spawn([&] {
    std::unique_lock lock(mu);
    ws.wait(lock, [&] { return go; });
    woke.fetch_add(1);
  });
  std::thread waiter([&] {
    std::unique_lock lock(mu);
    ws.wait(lock, [&] { return go; });
    woke.fetch_add(1);
  });
  std::this_thread::sleep_for(10ms);
  {
    std::scoped_lock lock(mu);
    go = true;
  }
  ws.notify_all();
  waiter.join();
  sched.join_all();
  EXPECT_EQ(woke.load(), 2);
}

}  // namespace
}  // namespace windar::exec
