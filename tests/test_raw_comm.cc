// Tests for the plain transport: FIFO restoration over the jittered fabric,
// matching semantics, and the raw job runner.
#include <gtest/gtest.h>

#include <atomic>

#include "mp/raw_comm.h"
#include "mp/runtime.h"
#include "net/fabric.h"

namespace windar::mp {
namespace {

TEST(RawComm, PairwiseFifoDespiteJitter) {
  run_raw(
      2,
      [](Comm& c) {
        constexpr int kN = 200;
        if (c.rank() == 0) {
          for (int i = 0; i < kN; ++i) send_value(c, 1, 5, i);
        } else {
          for (int i = 0; i < kN; ++i) {
            EXPECT_EQ(recv_value<int>(c, 0, 5), i);
          }
        }
      },
      net::LatencyModel::turbulent(), 7);
}

TEST(RawComm, AnySourceReceivesAll) {
  run_raw(4, [](Comm& c) {
    if (c.rank() == 0) {
      long long sum = 0;
      for (int i = 0; i < 3; ++i) sum += recv_value<int>(c, kAnySource, 1);
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      send_value(c, 0, 1, c.rank());
    }
  });
}

TEST(RawComm, TagFiltering) {
  run_raw(2, [](Comm& c) {
    if (c.rank() == 0) {
      send_value(c, 1, 10, 100);
      send_value(c, 1, 20, 200);
    } else {
      // Ask for tag 20 first even though tag 10 was sent first.
      EXPECT_EQ(recv_value<int>(c, 0, 20), 200);
      EXPECT_EQ(recv_value<int>(c, 0, 10), 100);
    }
  });
}

TEST(RawComm, SourceFiltering) {
  run_raw(3, [](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_EQ(recv_value<int>(c, 2, kAnyTag), 22);
      EXPECT_EQ(recv_value<int>(c, 1, kAnyTag), 11);
    } else {
      send_value(c, 0, 0, c.rank() * 11);
    }
  });
}

TEST(RawComm, VectorPayloads) {
  run_raw(2, [](Comm& c) {
    std::vector<double> v{1.5, 2.5, 3.5};
    if (c.rank() == 0) {
      send_vec<double>(c, 1, 3, v);
    } else {
      EXPECT_EQ(recv_vec<double>(c, 0, 3), v);
    }
  });
}

TEST(RawComm, MessageStatusFields) {
  run_raw(2, [](Comm& c) {
    if (c.rank() == 0) {
      send_value(c, 1, 42, 7);
    } else {
      Message m = c.recv();
      EXPECT_EQ(m.src, 0);
      EXPECT_EQ(m.tag, 42);
      EXPECT_EQ(m.payload.size(), sizeof(int));
    }
  });
}

TEST(RawRuntime, PropagatesRankException) {
  EXPECT_THROW(run_raw(2,
                       [](Comm& c) {
                         if (c.rank() == 1) throw std::runtime_error("boom");
                         // rank 0 blocks forever; the runtime must still
                         // unwind it when rank 1 fails.
                         (void)c.recv(1, 0);
                       }),
               std::exception);
}

TEST(RawRuntime, ReportsTraffic) {
  auto result = run_raw(2, [](Comm& c) {
    if (c.rank() == 0) send_value(c, 1, 0, 1);
    else (void)c.recv();
  });
  EXPECT_EQ(result.packets, 1u);
  EXPECT_GT(result.bytes, 0u);
  EXPECT_GT(result.wall_ms, 0.0);
}

TEST(RawRuntime, ManyRanksAllToAll) {
  constexpr int kN = 8;
  run_raw(kN, [](Comm& c) {
    for (int dst = 0; dst < c.size(); ++dst) {
      if (dst != c.rank()) send_value(c, dst, 9, c.rank());
    }
    long long sum = 0;
    for (int i = 0; i < c.size() - 1; ++i) {
      sum += recv_value<int>(c, kAnySource, 9);
    }
    EXPECT_EQ(sum, kN * (kN - 1) / 2 - c.rank());
  });
}

}  // namespace
}  // namespace windar::mp
