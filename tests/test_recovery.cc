// Recovery integration tests: inject faults and verify the paper's
// correctness obligations — no lost message, no duplicate delivery, no
// orphan (dependency gate respected), and bit-identical application outcomes
// versus failure-free runs.
//
// Faults are event-keyed (kill_on_delivery: "kill rank R on its Kth app
// delivery") rather than wall-clock, so each scenario lands at the same
// protocol-relative point on any host speed; test_recovery_edge.cc keeps
// wall-clock schedules covered.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

#include "mp/collectives.h"
#include "windar/fault.h"
#include "windar/runtime.h"

namespace windar::ft {
namespace {

using mp::recv_value;
using mp::send_value;

JobConfig config(int n, ProtocolKind proto, SendMode mode,
                 std::uint64_t seed = 1) {
  JobConfig c;
  c.n = n;
  c.protocol = proto;
  c.mode = mode;
  c.latency = net::LatencyModel::turbulent();
  c.seed = seed;
  c.restart_delay_ms = 5;
  return c;
}

// An iterative neighbour-exchange app with per-iteration checkpoints and a
// deterministic running digest.  Any lost/duplicated/mis-ordered delivery
// changes the digest.
struct ExchangeApp {
  int iterations = 30;
  int checkpoint_every = 5;
  // Milliseconds of fake compute per iteration to give the injector a window.
  int compute_us = 300;

  std::uint64_t operator()(Ctx& ctx) const {
    const int n = ctx.size();
    const int me = ctx.rank();
    const int right = (me + 1) % n;
    const int left = (me - 1 + n) % n;

    int start = 0;
    std::uint64_t digest = 0x9E37 + static_cast<std::uint64_t>(me);
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
      digest = r.u64();
    }
    for (int it = start; it < iterations; ++it) {
      if (checkpoint_every > 0 && it > 0 && it % checkpoint_every == 0) {
        util::ByteWriter w;
        w.i32(it);
        w.u64(digest);
        ctx.checkpoint(w.view());
      }
      send_value(ctx, right, 1, digest ^ static_cast<std::uint64_t>(it));
      const auto from_left = recv_value<std::uint64_t>(ctx, left, 1);
      digest = digest * 1099511628211ull + from_left + static_cast<std::uint64_t>(it);
      std::this_thread::sleep_for(std::chrono::microseconds(compute_us));
    }
    return digest;
  }
};

/// Runs the exchange app and gathers every rank's digest at rank 0, summed
/// into a single job outcome value (order-insensitive but value-sensitive).
double run_exchange(const JobConfig& cfg, const ExchangeApp& app) {
  auto outcome = std::make_shared<std::atomic<std::uint64_t>>(0);
  run_job(cfg, [&app, outcome](Ctx& ctx) {
    const std::uint64_t digest = app(ctx);
    outcome->fetch_add(digest % 1000000007ull);
  });
  return static_cast<double>(outcome->load());
}

class RecoveryMatrix
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, SendMode>> {};

TEST_P(RecoveryMatrix, SingleFaultSameOutcome) {
  auto [proto, mode] = GetParam();
  ExchangeApp app;
  const double clean = run_exchange(config(4, proto, mode), app);

  JobConfig faulty = config(4, proto, mode);
  faulty.chaos = {kill_on_delivery(1, 8)};
  const double recovered = run_exchange(faulty, app);
  EXPECT_EQ(clean, recovered);
}

TEST_P(RecoveryMatrix, FaultBeforeFirstCheckpointRestartsFromScratch) {
  auto [proto, mode] = GetParam();
  ExchangeApp app;
  app.iterations = 12;
  app.checkpoint_every = 0;  // never checkpoint: recovery = full restart
  const double clean = run_exchange(config(3, proto, mode), app);
  JobConfig faulty = config(3, proto, mode);
  faulty.chaos = {kill_on_delivery(2, 3)};
  EXPECT_EQ(clean, run_exchange(faulty, app));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RecoveryMatrix,
    ::testing::Combine(::testing::Values(ProtocolKind::kTdi,
                                         ProtocolKind::kTdiSparse,
                                         ProtocolKind::kTag,
                                         ProtocolKind::kTel,
                                         ProtocolKind::kPes),
                       ::testing::Values(SendMode::kBlocking,
                                         SendMode::kNonBlocking)),
    [](const auto& param_info) {
      std::string name = to_string(std::get<0>(param_info.param)) + "_" +
                         to_string(std::get<1>(param_info.param));
      // gtest parameter names must be alphanumeric.
      std::erase(name, '-');
      return name;
    });

TEST(Recovery, RecoveryMetricsReported) {
  ExchangeApp app;
  // Checkpoint every iteration so a checkpoint exists before the 8 ms fault
  // even when instrumentation (e.g. TSan) slows iteration progress; the
  // loads > 0 assertion below depends on it.
  app.checkpoint_every = 1;
  JobConfig cfg = config(4, ProtocolKind::kTdi, SendMode::kNonBlocking);
  cfg.chaos = {kill_on_delivery(1, 8)};
  auto outcome = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto result = run_job(cfg, [&app, outcome](Ctx& ctx) {
    outcome->fetch_add(app(ctx) % 97);
  });
  EXPECT_EQ(result.total.recoveries, 1u);
  EXPECT_GT(result.total.resent_msgs + result.total.dup_dropped +
                result.total.suppressed_sends,
            0u);
  EXPECT_GT(result.checkpoints.loads, 0u);
}

TEST(Recovery, TwoSequentialFaultsSameRank) {
  ExchangeApp app;
  app.iterations = 40;
  const double clean =
      run_exchange(config(3, ProtocolKind::kTdi, SendMode::kNonBlocking), app);
  JobConfig faulty = config(3, ProtocolKind::kTdi, SendMode::kNonBlocking);
  faulty.chaos = {kill_on_delivery(1, 6), kill_on_delivery(1, 25)};
  EXPECT_EQ(clean, run_exchange(faulty, app));
}

TEST(Recovery, FaultsOnDifferentRanks) {
  ExchangeApp app;
  app.iterations = 40;
  const double clean =
      run_exchange(config(4, ProtocolKind::kTdi, SendMode::kNonBlocking), app);
  JobConfig faulty = config(4, ProtocolKind::kTdi, SendMode::kNonBlocking);
  faulty.chaos = {kill_on_delivery(0, 6), kill_on_delivery(2, 20)};
  EXPECT_EQ(clean, run_exchange(faulty, app));
}

TEST(Recovery, SimultaneousFaults) {
  // Paper §III.D / Fig. 2: multiple simultaneous failures; lost logs are
  // regenerated during the failed processes' rolling forward.
  ExchangeApp app;
  app.iterations = 30;
  for (ProtocolKind proto :
       {ProtocolKind::kTdi, ProtocolKind::kTag, ProtocolKind::kTel}) {
    const double clean =
        run_exchange(config(4, proto, SendMode::kNonBlocking), app);
    JobConfig faulty = config(4, proto, SendMode::kNonBlocking);
    faulty.chaos = {kill_on_delivery(1, 8), kill_on_delivery(2, 8)};
    EXPECT_EQ(clean, run_exchange(faulty, app))
        << "protocol " << to_string(proto);
  }
}

TEST(Recovery, AnySourceNondeterminismStaysCorrectUnderTdi) {
  // The paper's §II.C observation: ANY_SOURCE delivery order must not affect
  // the outcome; TDI replays independent messages in arrival order and the
  // commutative reduction still gets the right answer.
  auto total = std::make_shared<std::atomic<long long>>(0);
  JobConfig cfg = config(5, ProtocolKind::kTdi, SendMode::kNonBlocking);
  // Kill rank 0 on its 25th delivery: one past the checkpoint it takes at
  // round rounds/2 (24 worker messages delivered by then).
  cfg.chaos = {kill_on_delivery(0, 25)};
  run_job(cfg, [total](Ctx& ctx) {
    const int rounds = 12;
    if (ctx.rank() == 0) {
      long long sum = 0;
      int start = 0;
      // Resume from the checkpoint: channel state restores alongside the app
      // blob, so restarting the loop at round 0 would wait forever for the
      // rounds the restored watermarks already cover.
      if (ctx.restored()) {
        util::ByteReader r(*ctx.restored());
        sum = r.i64();
        start = r.i32();
      }
      for (int round = start; round < rounds; ++round) {
        if (round == rounds / 2) {
          util::ByteWriter w;
          w.i64(sum);
          w.i32(round);
          ctx.checkpoint(w.view());
        }
        for (int i = 1; i < ctx.size(); ++i) {
          sum += recv_value<int>(ctx);  // ANY_SOURCE
        }
      }
      total->store(sum);
    } else {
      int start = 0;
      if (ctx.restored()) start = 0;  // workers are stateless; resend all
      for (int round = start; round < rounds; ++round) {
        send_value(ctx, 0, 1, ctx.rank() * 10 + round);
      }
    }
  });
  // Expected: sum over rounds, workers of (rank*10 + round).
  long long expect = 0;
  for (int round = 0; round < 12; ++round) {
    for (int r = 1; r < 5; ++r) expect += r * 10 + round;
  }
  EXPECT_EQ(total->load(), expect);
}

TEST(Recovery, SurvivorLogsServeRecoveryAfterCompletion) {
  // Rank 1 fails late; rank 0 may already be finished and parked — its
  // Process must still serve the ROLLBACK.
  ExchangeApp app;
  app.iterations = 20;
  const double clean =
      run_exchange(config(2, ProtocolKind::kTdi, SendMode::kNonBlocking), app);
  JobConfig faulty = config(2, ProtocolKind::kTdi, SendMode::kNonBlocking);
  faulty.chaos = {kill_on_delivery(1, 19)};
  EXPECT_EQ(clean, run_exchange(faulty, app));
}

TEST(Recovery, CheckpointSpillToDisk) {
  ExchangeApp app;
  JobConfig cfg = config(3, ProtocolKind::kTdi, SendMode::kNonBlocking);
  // PID-unique dir: ctest registers this binary twice (plain and
  // _logger_shards4) and runs both concurrently under -j; a shared dir
  // lets one process delete or clobber the other's checkpoints mid-write
  // (rename CHECK-aborts, or recovery restores a foreign image and hangs).
  const std::string dir =
      "/tmp/windar_test_recovery_spill." + std::to_string(::getpid());
  cfg.checkpoint_spill_dir = dir;
  cfg.chaos = {kill_on_delivery(1, 8)};
  const double clean =
      run_exchange(config(3, ProtocolKind::kTdi, SendMode::kNonBlocking), app);
  EXPECT_EQ(clean, run_exchange(cfg, app));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace windar::ft
