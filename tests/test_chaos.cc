// Event-keyed fault injection: regression tests for the chaos schedule and
// the overlapping/repeated-failure hardening.  Unlike the wall-clock faults
// in test_recovery.cc, every kill here is keyed to a protocol event (nth
// delivery, nth control-packet send), so the scenario lands at the same
// protocol-relative point however slow the host runs.
#include <gtest/gtest.h>

#include "chaos_app.h"

namespace windar::ft {
namespace {

ChaosPlan base_plan(std::uint64_t seed = 7) {
  ChaosPlan plan;
  plan.seed = seed;
  plan.n = 4;
  plan.iterations = 30;
  plan.checkpoint_every = 3;
  return plan;
}

std::uint64_t clean_digest(const ChaosPlan& plan, ProtocolKind proto) {
  return chaos::run_plan(plan, proto, /*with_faults=*/false).digest;
}

TEST(Chaos, DeliveryKeyedKillConverges) {
  ChaosPlan plan = base_plan();
  plan.events = {kill_on_delivery(1, 8)};
  const auto faulty = chaos::run_plan(plan, ProtocolKind::kTdi, true);
  EXPECT_EQ(clean_digest(plan, ProtocolKind::kTdi), faulty.digest);
  EXPECT_EQ(faulty.result.chaos_triggers_fired, 1u);
  EXPECT_EQ(faulty.result.total.recoveries, 1u);
}

TEST(Chaos, RepeatedKillOfSameRankCountsBothRecoveries) {
  // Satellite regression: two kills of the same rank must report
  // recoveries == 2 (the old `recoveries = 1` assignment collapsed them).
  ChaosPlan plan = base_plan();
  plan.events = {kill_on_delivery(1, 6), kill_on_delivery(1, 16)};
  const auto faulty = chaos::run_plan(plan, ProtocolKind::kTdi, true);
  EXPECT_EQ(clean_digest(plan, ProtocolKind::kTdi), faulty.digest);
  EXPECT_EQ(faulty.result.chaos_triggers_fired, 2u);
  EXPECT_EQ(faulty.result.total.recoveries, 2u);
}

TEST(Chaos, KillDuringOwnGatherWindow) {
  // The incarnation of rank 1 is killed as it broadcasts its first ROLLBACK
  // — a repeated failure landing inside its own recovery, usually within
  // the Process construction window (exercising the deferred-kill path).
  ChaosPlan plan = base_plan();
  plan.events = {kill_on_delivery(1, 6),
                 kill_on_send(1, Kind::kRollback, 1)};
  const auto faulty = chaos::run_plan(plan, ProtocolKind::kTdi, true);
  EXPECT_EQ(clean_digest(plan, ProtocolKind::kTdi), faulty.digest);
  EXPECT_EQ(faulty.result.total.recoveries, 2u);
}

TEST(Chaos, OverlappingFailureDuringPeersGatherWindow) {
  // Rank 2 dies exactly as it answers rank 1's ROLLBACK: its RESPONSE send
  // is the trigger.  Rank 1's gather must fall back to rank 2's incarnation
  // (served by the immediate targeted re-broadcast when rank 2's own
  // ROLLBACK arrives).
  for (ProtocolKind proto : {ProtocolKind::kTdi, ProtocolKind::kTag}) {
    ChaosPlan plan = base_plan();
    plan.events = {kill_on_delivery(1, 6),
                   kill_on_send(2, Kind::kResponse, 1)};
    const auto faulty = chaos::run_plan(plan, proto, true);
    EXPECT_EQ(clean_digest(plan, proto), faulty.digest)
        << "protocol " << to_string(proto);
    EXPECT_EQ(faulty.result.total.recoveries, 2u);
  }
}

TEST(Chaos, KillMidCheckpointFanOut) {
  // The image is saved before CHECKPOINT_ADVANCE notifications fan out, so
  // dying on the first advance send recovers from the checkpoint just taken.
  ChaosPlan plan = base_plan();
  plan.events = {kill_on_send(1, Kind::kCheckpointAdvance, 2)};
  const auto faulty = chaos::run_plan(plan, ProtocolKind::kTdi, true);
  EXPECT_EQ(clean_digest(plan, ProtocolKind::kTdi), faulty.digest);
  EXPECT_EQ(faulty.result.total.recoveries, 1u);
}

TEST(Chaos, HeldDownRestartStillConverges) {
  // revive_after_packets holds the incarnation's restart until the fabric
  // delivered that much further traffic — survivors run ahead before the
  // rollback lands.
  ChaosPlan plan = base_plan();
  plan.events = {kill_on_delivery(1, 6, /*revive_after=*/40)};
  const auto faulty = chaos::run_plan(plan, ProtocolKind::kTdi, true);
  EXPECT_EQ(clean_digest(plan, ProtocolKind::kTdi), faulty.digest);
  EXPECT_EQ(faulty.result.total.recoveries, 1u);
}

TEST(Chaos, DuplicatedAndDelayedControlPacketsAreHarmless) {
  // Control-plane shaping: duplicated ROLLBACKs and delayed RESPONSEs must
  // not corrupt recovery (duplicate RESPONSEs are idempotent, ROLLBACK
  // handling re-runs safely).
  ChaosPlan plan = base_plan();
  plan.events = {kill_on_delivery(1, 6),
                 duplicate_on_send(1, Kind::kRollback, 1, /*repeat=*/true),
                 delay_on_send(2, Kind::kResponse, 1, /*delay_us=*/2000)};
  const auto faulty = chaos::run_plan(plan, ProtocolKind::kTdi, true);
  EXPECT_EQ(clean_digest(plan, ProtocolKind::kTdi), faulty.digest);
  EXPECT_GE(faulty.result.chaos_triggers_fired, 2u);
}

TEST(Chaos, BackoffCapsRollbackRebroadcastsDuringLongOutage) {
  // Rank 2 stays down (held by revive_after) while rank 1 recovers; rank
  // 1's re-broadcasts must back off exponentially rather than fire at the
  // base interval for the whole outage.  Bound is generous: with base 1 ms
  // and cap 64 ms even a multi-second outage fits in ~40 rounds per
  // recovery, where a fixed 1 ms interval would take thousands.
  ChaosPlan plan = base_plan();
  plan.iterations = 20;
  plan.events = {kill_on_delivery(1, 6), kill_on_delivery(2, 6, 60)};
  JobConfig cfg = chaos::plan_config(plan, ProtocolKind::kTdi, true);
  cfg.rollback_retry = std::chrono::milliseconds(1);
  cfg.rollback_retry_cap = std::chrono::milliseconds(64);
  auto sum = std::make_shared<std::atomic<std::uint64_t>>(0);
  const JobResult result = run_job(cfg, [sum](Ctx& ctx) {
    (void)ctx;
    // Reuse the harness shape via run_plan for digest tests; here only the
    // broadcast accounting matters, so a minimal exchange suffices.
    const int n = ctx.size();
    const int right = (ctx.rank() + 1) % n;
    const int left = (ctx.rank() - 1 + n) % n;
    int start = 0;
    if (ctx.restored()) {
      util::ByteReader r(*ctx.restored());
      start = r.i32();
    }
    for (int it = start; it < 20; ++it) {
      if (it > 0 && it % 3 == 0) {
        util::ByteWriter w;
        w.i32(it);
        ctx.checkpoint(w.view());
      }
      mp::send_value(ctx, right, 1, static_cast<std::uint64_t>(it));
      (void)mp::recv_value<std::uint64_t>(ctx, left, 1);
    }
    sum->fetch_add(1);
  });
  EXPECT_GE(result.total.recoveries, 2u);
  EXPECT_GE(result.total.rollback_broadcasts, 2u);
  EXPECT_LE(result.total.rollback_broadcasts,
            40u * result.total.recoveries);
}

TEST(Chaos, SurvivorsKeepSendingDuringPacedReplay) {
  // Survivor non-stop recovery under chaos: replay_burst=1 forces every
  // ROLLBACK answer through the paced-replay path (one logged resend per
  // periodic tick), and a tiny holdback_cap exercises the overflow valve.
  // Convergence to the clean digest proves survivors neither stalled their
  // own traffic nor corrupted the replay stream; a long checkpoint interval
  // keeps the sender logs deep so the replay window is wide.
  ChaosPlan plan = base_plan();
  plan.checkpoint_every = 1000;  // no log release: maximal replay depth
  plan.events = {kill_on_delivery(1, 20)};
  JobConfig cfg = chaos::plan_config(plan, ProtocolKind::kTdi, true);
  cfg.replay_burst = 1;
  cfg.holdback_cap = 2;
  auto sum = std::make_shared<std::atomic<std::uint64_t>>(0);
  const int iterations = plan.iterations;
  const JobResult faulty = run_job(cfg, [iterations, sum](Ctx& ctx) {
    sum->fetch_add(chaos::ring_digest_rank(ctx, iterations, 1000) %
                   1000000007ull);
  });
  EXPECT_EQ(clean_digest(plan, ProtocolKind::kTdi), sum->load());
  EXPECT_EQ(faulty.total.recoveries, 1u);
  // The replay outlived one burst, so it went through the paced path.
  EXPECT_GT(faulty.total.resent_msgs, 1u);
}

TEST(Chaos, ChaosRunsAcrossAllProtocols) {
  for (ProtocolKind proto :
       {ProtocolKind::kTdi, ProtocolKind::kTdiSparse, ProtocolKind::kTag,
        ProtocolKind::kTel, ProtocolKind::kPes}) {
    ChaosPlan plan = base_plan();
    plan.events = {kill_on_delivery(2, 7)};
    const auto faulty = chaos::run_plan(plan, proto, true);
    EXPECT_EQ(clean_digest(plan, proto), faulty.digest)
        << "protocol " << to_string(proto);
  }
}

TEST(Chaos, KillTargetMustBeARank) {
  JobConfig cfg;
  cfg.n = 2;
  cfg.chaos = {kill_on_delivery(5, 1)};
  EXPECT_DEATH(run_job(cfg, [](Ctx&) {}), "must be a rank");
}

}  // namespace
}  // namespace windar::ft
